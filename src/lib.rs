//! # stick-a-fork
//!
//! A from-scratch Rust reproduction of *"Stick a fork in it: Analyzing the
//! Ethereum network partition"* (Kiffer, Levin, Mislove — HotNets 2017).
//!
//! The workspace implements the paper's entire measured world as a
//! simulator — chain rules (difficulty adjustment, proof-of-work seals, the
//! DAO extra-data rule), a gas-metered EVM subset, a devp2p-style p2p layer
//! with Kademlia discovery, mining pools, a market model, the replay-attack
//! machinery — plus the paper's measurement pipeline, so that **every figure
//! and every in-text observation can be regenerated**.
//!
//! ## Quickstart
//!
//! ```
//! use stick_a_fork::core::{observations, ForkStudy};
//!
//! // Test-scale run (seconds). Use ForkStudy::fork_month / nine_months for
//! // the paper-scale experiments (see the `make-figures` binary).
//! let result = ForkStudy::quick(42).run();
//! println!("{}", stick_a_fork::core::summary_text(&result));
//! let obs = observations::short_term(&result);
//! for o in &obs.observations {
//!     println!("[{}] {} -> {}", o.id, o.paper, o.measured);
//! }
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`primitives`] | `fork-primitives` | U256, hashes, addresses, time |
//! | [`crypto`] | `fork-crypto` | Keccak-256, recoverable signatures |
//! | [`rlp`] | `fork-rlp` | canonical RLP |
//! | [`chain`] | `fork-chain` | headers, transactions, difficulty, store |
//! | [`evm`] | `fork-evm` | gas-metered EVM subset, world state |
//! | [`net`] | `fork-net` | Kademlia, messages, gossip, fault injection |
//! | [`sim`] | `fork-sim` | two-chain + networked engines, scenarios |
//! | [`market`] | `fork-market` | prices, rational hashpower allocation |
//! | [`pools`] | `fork-pools` | payouts, pool dynamics, concentration |
//! | [`replay`] | `fork-replay` | echo detection, replay protection |
//! | [`analytics`] | `fork-analytics` | the measurement pipeline |
//! | [`archive`] | `fork-archive` | durable block/tx archive, replay, verify |
//! | [`query`] | `fork-query` | concurrent cached query engine over archives |
//! | [`serve`] | `fork-serve` | archive query daemon + load generator |
//! | [`explorer`] | `fork-explorer` | hash-indexed lookups, explorer pages |
//! | [`core`] | `fork-core` | `ForkStudy`, figures, observations |
//! | [`telemetry`] | `fork-telemetry` | counters, histograms, span timers |

#![forbid(unsafe_code)]

pub use fork_analytics as analytics;
pub use fork_archive as archive;
pub use fork_chain as chain;
pub use fork_core as core;
pub use fork_crypto as crypto;
pub use fork_evm as evm;
pub use fork_explorer as explorer;
pub use fork_market as market;
pub use fork_net as net;
pub use fork_pools as pools;
pub use fork_primitives as primitives;
pub use fork_query as query;
pub use fork_replay as replay;
pub use fork_rlp as rlp;
pub use fork_serve as serve;
pub use fork_sim as sim;
pub use fork_telemetry as telemetry;
