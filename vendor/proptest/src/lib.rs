//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! slice of proptest the workspace's property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_recursive` / `boxed`, `any::<T>()` for
//! primitives and arrays, numeric ranges as strategies, tuple strategies,
//! `proptest::collection::vec`, and the `proptest!` / `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! values via the normal panic message), and a fixed deterministic seed per
//! test (derived from the test's source location) instead of a persisted
//! failure file. Each test runs [`CASES`] cases.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// Cases per property (upstream default is 256; 64 keeps the heavier
/// simulator properties fast while still exploring the space).
pub const CASES: u32 = 64;

/// The RNG driving generation (deterministic per test).
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG from a seed (the `proptest!` macro derives the seed
    /// from the test's source location).
    pub fn deterministic(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed ^ 0x5EED_CAFE_F00D_D00D))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Recursive structures: `f` receives a strategy for the inner level and
    /// returns the branching strategy. `depth` bounds recursion; the size
    /// hints are accepted for API compatibility and unused.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = f(current).boxed();
            current = Union {
                a: leaf.clone(),
                b: branch,
            }
            .boxed();
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// 50/50 choice between two strategies (used by `prop_recursive` so leaves
/// terminate the recursion).
struct Union<T> {
    a: BoxedStrategy<T>,
    b: BoxedStrategy<T>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        if rng.next_u64() & 1 == 0 {
            self.a.generate(rng)
        } else {
            self.b.generate(rng)
        }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`: `any::<u8>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Output of [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric values spanning many magnitudes.
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let exp = (rng.next_u64() % 61) as i32 - 30;
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * unit * 2f64.powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// String patterns as strategies, like upstream's regex support — reduced to
/// the `[class]{m,n}` shape the workspace uses (e.g. `"[a-z]{1,8}"`). A
/// pattern not of that shape generates itself literally.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_repeat(self) {
            Some((chars, lo, hi)) => {
                let span = (hi - lo + 1) as u64;
                let len = lo + (rng.next_u64() % span) as usize;
                (0..len)
                    .map(|_| chars[(rng.next_u64() % chars.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_owned(),
        }
    }
}

/// Parses `[a-zA-Z0-9_]{m,n}` (or `{n}`) into (alphabet, min, max).
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    let mut chars = Vec::new();
    let mut it = class.chars().peekable();
    while let Some(c) = it.next() {
        if it.peek() == Some(&'-') {
            it.next();
            let end = it.next()?;
            if c > end {
                return None;
            }
            chars.extend(c..=end);
        } else {
            chars.push(c);
        }
    }
    if chars.is_empty() {
        None
    } else {
        Some((chars, lo, hi))
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Accepted length specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi_inclusive {
                self.size.lo
            } else {
                use rand::Rng as _;
                rng.0.gen_range(self.size.lo..=self.size.hi_inclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports property tests pull in.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                // Deterministic per-test seed from the source location.
                let mut __proptest_rng =
                    $crate::TestRng::deterministic((line!() as u64) << 32 | column!() as u64);
                for __proptest_case in 0..$crate::CASES {
                    let _ = __proptest_case;
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )+
    };
}

/// `assert!` that reports through the property harness (plain assert here).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Expands to `continue` targeting the case loop in `proptest!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_and_any_generate_in_domain() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..256 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.0f64..1.0).generate(&mut rng);
            assert!((0.0..1.0).contains(&f));
            let arr = any::<[u8; 32]>().generate(&mut rng);
            assert_eq!(arr.len(), 32);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::deterministic(2);
        for _ in 0..256 {
            let v = crate::collection::vec(any::<u8>(), 3..7).generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let fixed = crate::collection::vec(any::<u8>(), 4usize).generate(&mut rng);
        assert_eq!(fixed.len(), 4);
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 6, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::deterministic(3);
        for _ in 0..128 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 5, "depth {}", depth(&t));
        }
    }

    #[test]
    fn string_pattern_strategy() {
        let mut rng = TestRng::deterministic(4);
        for _ in 0..128 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()), "bad len {}", s.len());
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "bad chars {s}");
        }
        let fixed = "[01]{4}".generate(&mut rng);
        assert_eq!(fixed.len(), 4);
        assert_eq!("literal".generate(&mut rng), "literal");
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(a in 0u8..100, (b, c) in (0u64..10, 0.0f64..1.0)) {
            prop_assume!(a != 13);
            prop_assert!(a < 100);
            prop_assert_eq!(b, b);
            prop_assert_ne!(c - 1.0, c);
        }
    }
}
