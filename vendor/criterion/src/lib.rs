//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of criterion the workspace's benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `throughput` / `bench_function` /
//! `finish`, `Bencher::iter`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark runs a short warm-up,
//! then a fixed wall-clock budget of timed iterations, and prints the mean
//! time per iteration (plus throughput when configured). There is no
//! statistical analysis, HTML report, or baseline comparison.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-element / per-byte throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), None, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes runs by wall-clock
    /// budget rather than sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput annotation applied to subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.throughput, f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; call [`Bencher::iter`] with the body.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `body`.
    pub fn iter<O, B: FnMut() -> O>(&mut self, mut body: B) {
        // Warm-up.
        for _ in 0..3 {
            black_box(body());
        }
        let budget = Duration::from_millis(300);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget {
            black_box(body());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let per_iter_ns = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    let mut line = format!("{name:<48} {:>12}/iter", fmt_ns(per_iter_ns));
    if let Some(tp) = throughput {
        let per_sec = match tp {
            Throughput::Bytes(n) | Throughput::Elements(n) => n as f64 * 1e9 / per_iter_ns.max(1.0),
        };
        let unit = match tp {
            Throughput::Bytes(_) => "B/s",
            Throughput::Elements(_) => "elem/s",
        };
        line.push_str(&format!("  {:>12.3e} {unit}", per_sec));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group runner, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sample");
        group.sample_size(10);
        group.throughput(Throughput::Elements(1));
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.finish();
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut criterion = Criterion::default();
        sample_bench(&mut criterion);
        criterion.bench_function("free", |b| b.iter(|| black_box(3u64)));
    }

    #[test]
    fn format_helpers() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("us"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with('s'));
    }
}
