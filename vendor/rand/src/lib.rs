//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `rand` it actually uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, uniform range sampling over the
//! integer and float ranges the simulators draw from, [`seq::SliceRandom`]
//! shuffling, and a deterministic [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — a different stream
//! than upstream's ChaCha12, but the workspace only relies on determinism
//! per seed and statistical quality, never on the exact upstream stream.

#![forbid(unsafe_code)]

use core::fmt;
use core::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (infallible here; kept for API
/// compatibility with `rand_core`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core RNG interface: raw integer output and byte filling.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible variant of [`RngCore::fill_bytes`] (never fails here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (matches the
    /// `rand_core` approach; the exact stream differs from upstream, which
    /// no caller relies on).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let z = splitmix64(&mut state);
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Built-in generators.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// A deterministic, high-quality, non-cryptographic PRNG
    /// (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
            }
            // The all-zero state is a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

/// Uniform sampling from a range, the slice of `rand::distributions` the
/// workspace uses.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics on an empty range, like upstream.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                let offset = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + offset as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    // Full domain: every output of next_u64 is valid.
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                let offset = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                lo + offset as $t
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let offset = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (self.start as $u).wrapping_add(offset as $u) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as $u).wrapping_sub(lo as $u) as u64 + 1;
                let offset = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (lo as $u).wrapping_add(offset as $u) as $t
            }
        }
    )*};
}

impl_sample_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 (resp. 24) uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = self.start + unit * (self.end - self.start);
                // Rounding can land exactly on the excluded upper bound.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates), the only `SliceRandom` method used.
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u8 = rng.gen_range(1..=255u8);
            assert!(w >= 1);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let z: u64 = rng.gen_range(0..=0u64);
            assert_eq!(z, 0);
            let i: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn range_mean_is_central() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| rng.gen_range(0..100u64)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 49.5).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(a, sorted, "50 elements virtually never shuffle to identity");
    }
}
