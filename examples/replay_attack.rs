//! Replay attack walkthrough: the Figure 4 mechanism at transaction level.
//!
//! ```sh
//! cargo run --example replay_attack
//! ```
//!
//! Demonstrates, against real chain machinery:
//! 1. a legacy transaction included on ETH replaying verbatim on ETC;
//! 2. the defensive fund-split (chain-specific nonce bump) stopping it;
//! 3. EIP-155 chain ids making replays unrecoverable;
//! 4. the DAO-style drain that motivated the fork in the first place.

use stick_a_fork::chain::{ChainSpec, Transaction};
use stick_a_fork::crypto::Keypair;
use stick_a_fork::evm::{contracts, CallParams, Evm, GasSchedule, WorldState};
use stick_a_fork::evm::{BlockContext, TxContext};
use stick_a_fork::primitives::{units::ether, Address, ChainId, U256};
use stick_a_fork::replay::{check_replay, Replayability};

fn main() {
    println!("== 1. The replay channel ==\n");

    let alice = Keypair::from_seed("alice", 0);
    let bob = Keypair::from_seed("bob", 0);

    // The fork duplicated every account: Alice owns 10 ether on BOTH chains.
    let mut etc_state = WorldState::new();
    etc_state.set_balance(alice.address(), ether(10));

    // Alice pays Bob 3 ether on ETH with a LEGACY transaction.
    let tx = Transaction::transfer(
        &alice,
        0,
        bob.address(),
        ether(3),
        U256::from_u64(20_000_000_000),
        None, // no chain id: pre-EIP-155
    );
    println!("Alice pays Bob 3 ETH (legacy tx, hash {}).", tx.hash());

    // Bob lifts the exact bytes into ETC.
    let etc_spec = ChainSpec::etc(vec![], Address::ZERO);
    let verdict = check_replay(&tx, &etc_spec, 2_000_000, &etc_state);
    println!("Replaying on ETC: {verdict:?} — Bob collects 3 ETC too!\n");
    assert_eq!(verdict, Replayability::Replayable);

    println!("== 2. The defense: split your funds ==\n");
    // Alice follows the community advice: she first moves her ETC with a
    // chain-specific transaction, bumping her ETC nonce.
    let mut split_state = etc_state.clone();
    split_state.set_nonce(alice.address(), 1);
    let verdict = check_replay(&tx, &etc_spec, 2_000_000, &split_state);
    println!("After Alice's ETC-side self-transfer: {verdict:?}\n");
    assert!(!verdict.is_replayable());

    println!("== 3. EIP-155: chain ids in the signing domain ==\n");
    let protected = Transaction::transfer(
        &alice,
        0,
        bob.address(),
        ether(3),
        U256::from_u64(20_000_000_000),
        Some(ChainId::ETH),
    );
    let verdict = check_replay(&protected, &etc_spec, 3_100_000, &etc_state);
    println!("An ETH-chain-id tx on ETC: {verdict:?}");
    let mut relabeled = protected.clone();
    relabeled.chain_id = Some(ChainId::ETC);
    println!(
        "Relabeling the chain id breaks signature recovery: sender = {:?}\n",
        relabeled.sender()
    );

    println!("== 4. Why the fork happened: the DAO drain ==\n");
    let mut world = WorldState::new();
    let vault = Address([0xDA; 20]);
    let attacker_contract = Address([0xBA; 20]);
    let attacker = Keypair::from_seed("attacker", 0);
    let victim = Keypair::from_seed("victim", 0);
    world.set_code(vault, contracts::vulnerable_vault());
    world.set_code(attacker_contract, contracts::reentrancy_attacker());
    world.set_balance(victim.address(), ether(1_000));
    world.set_balance(attacker.address(), ether(10));

    let call =
        |caller: Address, to: Address, value: U256, input: Vec<u8>, world: &mut WorldState| {
            let mut evm = Evm::new(
                world,
                GasSchedule::frontier(),
                BlockContext::default(),
                TxContext {
                    origin: caller,
                    gas_price: U256::ONE,
                },
            );
            let r = evm.call(CallParams {
                caller,
                address: to,
                value,
                input,
                gas: 8_000_000,
            });
            assert!(r.success, "call failed: {:?}", r.error);
        };

    // Victims crowdfund 1,000 ether into the vault.
    call(
        victim.address(),
        vault,
        ether(1_000),
        contracts::vault_deposit_calldata(),
        &mut world,
    );
    println!("The DAO holds {} wei.", world.balance(vault));

    // The attacker deposits 10 and re-enters withdraw 40 times.
    call(
        attacker.address(),
        attacker_contract,
        ether(10),
        contracts::attacker_setup_calldata(40, vault),
        &mut world,
    );
    println!(
        "After the reentrancy attack: attacker contract holds {} ether, \
         the vault holds {} ether.",
        world.balance(attacker_contract) / ether(1),
        world.balance(vault) / ether(1),
    );
    println!(
        "\nEvery call was valid under 'code is law' — which is exactly the \
         dispute that split Ethereum in two."
    );
}
