//! Partition demo: watch the network split at the message level.
//!
//! ```sh
//! cargo run --example partition_demo -- [--drop-chance PCT] [--corrupt-chance PCT]
//! ```
//!
//! Runs the fully networked engine (per-node chain stores, Kademlia
//! topology, gossip over latency/fault-injected links — the smoltcp-style
//! fault options are available on the command line) with a 60/40 pro-/anti-
//! fork node split, and reports how the one connected network becomes two.

use stick_a_fork::chain::ChainSpec;
use stick_a_fork::net::{FaultPlan, LatencyModel};
use stick_a_fork::primitives::Address;
use stick_a_fork::sim::micro::{MicroConfig, MicroNet, SpecAssignment};

fn parse_flag(name: &str) -> Option<f64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .map(|pct| pct / 100.0)
}

fn main() {
    let drop_chance = parse_flag("--drop-chance").unwrap_or(0.0);
    let corrupt_chance = parse_flag("--corrupt-chance").unwrap_or(0.0);

    // Fork-split specs at test scale (fork block = 1).
    let dao = vec![Address([0xDA; 20])];
    let refund = Address([0xFD; 20]);
    let mut eth = ChainSpec::eth(dao.clone(), refund);
    let mut etc = ChainSpec::etc(dao, refund);
    for spec in [&mut eth, &mut etc] {
        spec.difficulty = ChainSpec::test().difficulty;
        spec.pow_work_factor = 2;
        if let Some(d) = spec.dao_fork.as_mut() {
            d.block = 1;
        }
        spec.eip150_block = None;
        spec.eip155 = None;
    }

    println!(
        "30 nodes (60% pro-fork), all mining; faults: drop {:.0}%, corrupt {:.0}%\n",
        drop_chance * 100.0,
        corrupt_chance * 100.0
    );

    let mut net = MicroNet::new(MicroConfig {
        seed: 7,
        n_nodes: 30,
        n_miners: 30,
        duration_secs: 1_800,
        latency: LatencyModel::default(),
        faults: FaultPlan::new(drop_chance, 0.0, corrupt_chance)
            .expect("fault chances validated at parse time"),
        specs: SpecAssignment::ForkSplit {
            eth,
            etc,
            eth_fraction: 0.6,
        },
        ..MicroConfig::default()
    });
    let report = net.run();

    println!("After 30 simulated minutes:");
    println!(
        "  partition groups (nodes agreeing on the fork-height block): {:?}",
        report.partition_groups
    );
    println!(
        "  peer links severed by the Status fork-hash re-handshake: {}",
        report.handshake_drops
    );
    println!(
        "  total blocks mined: {}   side-chain blocks: {}   reorgs: {}",
        report.mined.iter().sum::<u64>(),
        report.side_blocks,
        report.reorgs
    );
    println!(
        "  mean block propagation: {:.0} ms   corrupted frames dropped: {}",
        report.mean_propagation_ms, report.corrupted_frames
    );
    println!("\nPer-node head heights (first 18 = pro-fork, rest = anti-fork):");
    println!("  {:?}", report.head_numbers);
    println!(
        "\nThe paper's partition — 'nodes can no longer communicate due to a \
         portion of the nodes adopting a new protocol' — reproduced: one \
         gossip network became {} disjoint ones.",
        report.partition_groups.len()
    );
}
