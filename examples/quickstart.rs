//! Quickstart: run a down-scaled fork study end-to-end and print the report.
//!
//! ```sh
//! cargo run --example quickstart [seed]
//! ```
//!
//! The run simulates both post-fork networks (real chain rules at toy
//! difficulty) for a few hours, demonstrates the partition by cross-feeding
//! a head block, and prints the paper's observation checks plus one ASCII
//! figure.

use stick_a_fork::core::{full_report, observations, ForkStudy};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    println!("Running quick fork study (seed {seed})...\n");
    let result = ForkStudy::quick(seed).run();
    let obs = observations::short_term(&result);
    println!("{}", full_report(&result, &obs));

    println!(
        "Note: `quick` runs a toy-difficulty window. For the paper-scale\n\
         figures use the `make-figures` binary in crates/bench."
    );
}
