//! Fork timeline: replay the first days after the DAO fork at full
//! difficulty scale and print the paper's Figure 1 panels.
//!
//! ```sh
//! cargo run --release --example fork_timeline -- [days] [seed]
//! ```
//!
//! Defaults to 7 days (about a minute of wall-clock in release mode); run
//! with 31 to regenerate the paper's full month window.

use stick_a_fork::core::{observations, ForkStudy};
use stick_a_fork::replay::Side;

fn main() {
    let days: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2016);

    println!("Simulating the DAO fork at full difficulty scale for {days} days (seed {seed})...");
    println!("(ETC starts with ~0.5% of the hashpower; watch it crawl back)\n");

    let study = ForkStudy::days(seed, days);
    let result = study.run();

    let fig1 = result.figure1();
    println!("{}", fig1.render_ascii(76, 14));

    // The in-text numbers around Figure 1.
    let obs = observations::short_term(&result);
    println!("{}", obs.to_markdown());

    // A few headline numbers in plain words.
    let etc_bph = result.pipeline.blocks_per_hour(Side::Etc);
    let first_day = etc_bph.window(result.start, result.start.plus_days(1));
    println!(
        "\nETC produced {:.0} blocks/hour on average during the first day \
         (target: ~257).",
        if first_day.is_empty() {
            0.0
        } else {
            first_day.mean()
        }
    );
    let delta = result.pipeline.block_delta(Side::Etc);
    if let Some((_, max)) = delta.value_range() {
        println!("Peak hourly-mean ETC inter-block delta: {max:.0} seconds.");
    }
}
