//! Pool dynamics: Figure 5's convergence story plus payout-scheme variance.
//!
//! ```sh
//! cargo run --example pool_dynamics -- [days]
//! ```
//!
//! Evolves an ETH-like (converged) and an ETC-like (fragmented) pool
//! ecosystem under preferential-attachment churn, prints the daily top-1/3/5
//! concentration series, then quantifies why miners pool at all by comparing
//! income variance under solo vs pooled mining.

use rand::Rng;
use stick_a_fork::analytics::{ascii_chart, TimeSeries};
use stick_a_fork::pools::{
    distribute, income_coefficient_of_variation, DailyWinners, PayoutScheme, PoolSet, ShareLedger,
};
use stick_a_fork::primitives::{units::ether, Address, SimTime, U256};
use stick_a_fork::sim::SimRng;

fn main() {
    let days: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(240);
    let mut rng = SimRng::new(5);

    // --- Part 1: concentration convergence (Figure 5's mechanism) ---
    let mut eth = PoolSet::converged("eth");
    let mut etc = PoolSet::fragmented("etc", 20);
    let blocks_per_day = 6_171; // 86,400 / 14

    let mut series: Vec<TimeSeries> = ["ETH top5", "ETH top1", "ETC top5", "ETC top1"]
        .iter()
        .map(|l| TimeSeries::new(*l))
        .collect();

    for day in 0..days {
        let t = SimTime::from_unix(day * 86_400);
        // Sample a day of winners per network and record the measured top-N.
        let mut eth_day = DailyWinners::new();
        let mut etc_day = DailyWinners::new();
        for _ in 0..blocks_per_day {
            eth_day.record(eth.sample_winner(&mut rng));
        }
        for _ in 0..blocks_per_day {
            etc_day.record(etc.sample_winner(&mut rng));
        }
        series[0].push(t, 100.0 * eth_day.top_n_fraction(5).unwrap());
        series[1].push(t, 100.0 * eth_day.top_n_fraction(1).unwrap());
        series[2].push(t, 100.0 * etc_day.top_n_fraction(5).unwrap());
        series[3].push(t, 100.0 * etc_day.top_n_fraction(1).unwrap());
        // ETH's ecosystem is mature (tiny churn); ETC's coalesces.
        eth.step_preferential(0.004, &mut rng);
        etc.step_preferential(0.020, &mut rng);
    }

    let refs: Vec<&TimeSeries> = series.iter().collect();
    println!(
        "{}",
        ascii_chart("% of daily blocks won by top-N pools", &refs, 76, 16)
    );
    println!(
        "ETC top-5 share: {:.0}% on day 1 -> {:.0}% on day {} (ETH held ~{:.0}%)\n",
        series[2].points.first().map(|(_, v)| *v).unwrap_or(0.0),
        series[2].points.last().map(|(_, v)| *v).unwrap_or(0.0),
        days,
        series[0].mean(),
    );

    // --- Part 2: why pools exist — payout variance (paper §3.3) ---
    println!("Why miners pool: 30 days of income for 50 equal miners\n");
    let miners: Vec<Address> = (0..50).map(|i| Address([i as u8 + 1; 20])).collect();
    let blocks = 30 * blocks_per_day as usize;

    // Solo: each block is a lottery among the 50.
    let mut solo_income = vec![0.0f64; miners.len()];
    for _ in 0..blocks {
        let w = rng.gen_range(0..miners.len());
        solo_income[w] += 5.0;
    }

    // Pooled (proportional): everyone submits equal shares, rewards split.
    let mut pooled_income = vec![0.0f64; miners.len()];
    for _ in 0..blocks {
        let mut ledger = ShareLedger::new();
        for m in &miners {
            ledger.submit(*m, 1_000);
        }
        for (m, amount) in distribute(PayoutScheme::Proportional, ether(5), &ledger) {
            let idx = miners.iter().position(|x| *x == m).unwrap();
            pooled_income[idx] += amount.to_f64_lossy() / ether(1).to_f64_lossy();
        }
        let _ = U256::ZERO;
    }

    println!(
        "  solo   income coefficient of variation: {:.4}",
        income_coefficient_of_variation(&solo_income)
    );
    println!(
        "  pooled income coefficient of variation: {:.4}",
        income_coefficient_of_variation(&pooled_income)
    );
    println!("\n'Mining is essentially a lottery' — pooling removes the variance,");
    println!("which is why Figure 5's beneficiary addresses are pool addresses.");
}
