//! Market efficiency: Figure 3's equilibrium, from mechanism to measurement.
//!
//! ```sh
//! cargo run --example market_efficiency -- [seed]
//! ```
//!
//! Builds the calibrated ETH/ETC USD price series, lets rational hashpower
//! re-allocate daily, derives each chain's equilibrium difficulty, and shows
//! that expected hashes-per-USD comes out nearly identical on both chains —
//! with the Zcash-launch dip and the March 2017 drop in the right places.

use stick_a_fork::analytics::{ascii_chart, correlation, ratio, TimeSeries};
use stick_a_fork::market::{
    calibrated_pair, HashpowerAllocator, HashpowerSplit, TotalHashpowerPath,
};
use stick_a_fork::primitives::time::DAO_FORK_TIMESTAMP;
use stick_a_fork::primitives::{units, SimTime, U256};
use stick_a_fork::sim::SimRng;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2016);
    let mut rng = SimRng::new(seed).fork("prices");
    let (eth_price, etc_price) = calibrated_pair(&mut rng);

    let start = SimTime::from_unix(DAO_FORK_TIMESTAMP);
    let total = TotalHashpowerPath::default();
    let allocator = HashpowerAllocator::default();
    let mut split = HashpowerSplit { eth_fraction: 0.9 };

    let mut eth_hpu = TimeSeries::new("ETH");
    let mut etc_hpu = TimeSeries::new("ETC");
    let target_block_time = 14.4; // the stochastic Homestead equilibrium

    for day in 0..270u64 {
        let t = start.plus_days(day);
        let (p_eth, p_etc) = (eth_price.usd_at(t), etc_price.usd_at(t));
        split = allocator.step(split, p_eth, p_etc);
        let h = total.at_day(day);
        // At equilibrium the difficulty tracks hashrate × block time.
        let d_eth = h * split.eth_fraction * target_block_time;
        let d_etc = h * split.etc_fraction() * target_block_time;
        if let Some(v) = units::hashes_per_usd(U256::from_u128(d_eth as u128), p_eth) {
            eth_hpu.push(t, v);
        }
        if let Some(v) = units::hashes_per_usd(U256::from_u128(d_etc as u128), p_etc) {
            etc_hpu.push(t, v);
        }
    }

    println!(
        "{}",
        ascii_chart(
            "Expected hashes to earn 1 USD (Figure 3)",
            &[&eth_hpu, &etc_hpu],
            76,
            14
        )
    );

    let corr = correlation(&eth_hpu, &etc_hpu).unwrap_or(f64::NAN);
    let mean_ratio = ratio(&eth_hpu, &etc_hpu, "ETH:ETC").mean();
    println!("Correlation between the two curves: {corr:.4}");
    println!("Mean ETH:ETC hashes-per-USD ratio: {mean_ratio:.3}");

    // The two dips the paper narrates (window means beat day noise).
    let zcash_day = 100u64;
    let before = eth_hpu
        .window(
            start.plus_days(zcash_day - 12),
            start.plus_days(zcash_day - 1),
        )
        .mean();
    let at = eth_hpu
        .window(start.plus_days(zcash_day), start.plus_days(zcash_day + 12))
        .mean();
    println!(
        "\nZcash launch (day ~{zcash_day}): hashes/USD dips {:.0}% as miners \
         leave both chains.",
        100.0 * (1.0 - at / before)
    );
    let winter = eth_hpu.nearest(start.plus_days(200)).unwrap();
    let march = eth_hpu.nearest(start.plus_days(255)).unwrap();
    println!(
        "March 2017 surge (day ~250): ether price outruns difficulty; \
         hashes/USD falls {:.0}% from its winter level.",
        100.0 * (1.0 - march / winter)
    );
    println!(
        "\nPaper's conclusion reproduced: 'the curves are almost identical' — \
         mining ETH and mining ETC pay the same, because hashpower flows \
         until they do."
    );
}
