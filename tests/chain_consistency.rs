//! Cross-crate chain invariants under realistic traffic.

use stick_a_fork::chain::{ChainSpec, ChainStore, GenesisBuilder, Transaction};
use stick_a_fork::crypto::Keypair;
use stick_a_fork::primitives::{units::ether, Address, U256};

fn users(n: u64) -> Vec<Keypair> {
    (0..n).map(|i| Keypair::from_seed("cc", i)).collect()
}

fn store_with_users(users: &[Keypair]) -> ChainStore {
    let mut g = GenesisBuilder::new()
        .difficulty(U256::from_u64(1 << 16))
        .timestamp(1_469_020_839);
    for u in users {
        g = g.alloc(u.address(), ether(1_000));
    }
    let (genesis, state) = g.build();
    ChainStore::new(ChainSpec::test(), genesis, state).with_retention(16)
}

/// Total wei is conserved across many blocks of transfers: the only new
/// ether is the block rewards.
#[test]
fn ether_conservation_with_rewards() {
    let users = users(8);
    let mut store = store_with_users(&users);
    let miner = Address([0xC0; 20]);
    let initial_supply = ether(1_000) * U256::from_u64(8);

    let mut t = 1_469_020_839u64;
    let mut blocks = 0u64;
    for round in 0..20u64 {
        t += 14;
        let txs: Vec<Transaction> = users
            .iter()
            .enumerate()
            .map(|(i, u)| {
                Transaction::transfer(
                    u,
                    round,
                    users[(i + 1) % users.len()].address(),
                    U256::from_u64(1_000 + round),
                    U256::from_u64(3),
                    None,
                )
            })
            .collect();
        let block = store.propose(miner, t, vec![], &txs);
        assert_eq!(block.transactions.len(), 8, "round {round}");
        store.import(block).unwrap();
        blocks += 1;
    }

    // Sum every account in the final state.
    let total: U256 = store.state().iter_accounts().map(|(_, a)| a.balance).sum();
    let expected = initial_supply + ether(5) * U256::from_u64(blocks);
    assert_eq!(total, expected, "supply = initial + block rewards");
}

/// Nonces advance exactly once per included transaction, and gas fees flow
/// from senders to the beneficiary.
#[test]
fn nonce_and_fee_accounting() {
    let users = users(3);
    let mut store = store_with_users(&users);
    let miner = Address([0xC0; 20]);
    let mut t = 1_469_020_839u64;

    for round in 0..5u64 {
        t += 14;
        let txs: Vec<Transaction> = users
            .iter()
            .map(|u| Transaction::transfer(u, round, miner, U256::ONE, U256::from_u64(7), None))
            .collect();
        let block = store.propose(miner, t, vec![], &txs);
        store.import(block).unwrap();
    }
    for u in &users {
        assert_eq!(store.state().nonce(u.address()), 5);
    }
    // Miner: 5 rewards + 15 × (21000×7 + 1).
    let expected = ether(5) * U256::from_u64(5) + U256::from_u64(15 * (21_000 * 7 + 1));
    assert_eq!(store.state().balance(miner), expected);
}

/// Finalized blocks leave the store but their effects persist; deep history
/// cannot be reorged.
#[test]
fn finalization_is_irreversible() {
    let users = users(2);
    let mut store = store_with_users(&users);
    let miner = Address([0xC0; 20]);
    let mut t = 1_469_020_839u64;

    let mut finalized = 0;
    for round in 0..40u64 {
        t += 14;
        let tx = Transaction::transfer(
            &users[0],
            round,
            users[1].address(),
            U256::from_u64(10),
            U256::ONE,
            None,
        );
        let block = store.propose(miner, t, vec![], &[tx]);
        finalized += store.import(block).unwrap().finalized.len();
    }
    assert!(finalized >= 24, "{finalized}");
    // The balance reflects every one of the 40 transfers, including the
    // finalized ones.
    assert_eq!(
        store.state().balance(users[1].address()),
        ether(1_000) + U256::from_u64(400)
    );
    // Early canonical hashes are no longer addressable (pruned)...
    assert_eq!(store.canonical_hash(1), None);
    // ...and the retained window is bounded.
    assert!(store.retained_blocks() <= 17);
}

/// A uniform network of stores importing each other's blocks stays
/// consistent (same head, same state root) regardless of import order.
#[test]
fn replicated_stores_agree() {
    let users = users(4);
    let mut producer = store_with_users(&users);
    let mut replica_a = store_with_users(&users);
    let mut replica_b = store_with_users(&users);
    let miner = Address([0xC0; 20]);
    let mut t = 1_469_020_839u64;

    let mut blocks = Vec::new();
    for round in 0..10u64 {
        t += 14;
        let tx = Transaction::transfer(
            &users[0],
            round,
            users[1].address(),
            U256::from_u64(5),
            U256::ONE,
            None,
        );
        let block = producer.propose(miner, t, vec![], &[tx]);
        producer.import(block.clone()).unwrap();
        blocks.push(block);
    }
    // Replica A imports in order; replica B with orphan-causing order would
    // fail (store rejects unknown parents), so import in order but batched
    // differently — the result must be identical state.
    for b in &blocks {
        replica_a.import(b.clone()).unwrap();
    }
    for chunk in blocks.chunks(3) {
        for b in chunk {
            replica_b.import(b.clone()).unwrap();
        }
    }
    assert_eq!(replica_a.head_hash(), producer.head_hash());
    assert_eq!(replica_b.head_hash(), producer.head_hash());
    assert_eq!(
        replica_a.state().state_root(),
        producer.state().state_root()
    );
    assert_eq!(
        replica_b.state().state_root(),
        producer.state().state_root()
    );
}
