//! The paper's in-text observations, verified on a quick-scale run.
//!
//! The full-scale counterparts (exact block-rate and difficulty magnitudes)
//! are exercised by the `make-figures` binary and recorded in
//! EXPERIMENTS.md; these tests assert the *shape* on the fast configuration
//! so CI catches regressions in the mechanisms.

use stick_a_fork::core::{observations, ForkStudy};
use stick_a_fork::replay::Side;

#[test]
fn quick_run_reproduces_short_term_shape() {
    let result = ForkStudy::quick(2016).run();
    let report = observations::short_term(&result);

    let by_id = |id: &str| {
        report
            .observations
            .iter()
            .find(|o| o.id == id)
            .unwrap_or_else(|| panic!("missing observation {id}"))
            .clone()
    };

    // O1: the collapse of ETC block production is visible even at quick
    // scale (the hashrate schedule is the real one, scaled).
    let o1 = by_id("O1");
    assert!(o1.pass, "O1: {}", o1.measured);

    // O5a/O5b: the echo spike and its ETH→ETC direction.
    let o5a = by_id("O5a");
    assert!(o5a.pass, "O5a: {}", o5a.measured);
    let o5b = by_id("O5b");
    assert!(o5b.pass, "O5b: {}", o5b.measured);
}

#[test]
fn etc_blocks_scarce_then_recovering() {
    let result = ForkStudy::quick(7).run();
    let eth_bph = result.pipeline.blocks_per_hour(Side::Eth);
    let etc_bph = result.pipeline.blocks_per_hour(Side::Etc);
    // ETH mines several times ETC's blocks in the first hours (the quick
    // preset softens the collapse to 8% so ETC still has a ledger; the
    // paper-scale run uses the real 0.5% collapse).
    let eth_total: f64 = eth_bph.points.iter().map(|(_, v)| v).sum();
    let etc_total: f64 = etc_bph.points.iter().map(|(_, v)| v).sum();
    assert!(
        eth_total > 4.0 * etc_total.max(1.0),
        "{eth_total} vs {etc_total}"
    );
}

#[test]
fn echo_percentages_bounded_and_directional() {
    let result = ForkStudy::quick(8).run();
    for side in [Side::Eth, Side::Etc] {
        for (_, v) in &result.pipeline.echo_percent(side).points {
            assert!((0.0..=100.0).contains(v));
        }
    }
    assert!(
        result.pipeline.total_echoes(Side::Etc) > result.pipeline.total_echoes(Side::Eth),
        "echo direction must be ETH -> ETC dominant"
    );
}

#[test]
fn pool_concentration_gap_at_start() {
    let result = ForkStudy::quick(9).run();
    let eth5 = result.pipeline.pool_top_n(Side::Eth, 5);
    let etc5 = result.pipeline.pool_top_n(Side::Etc, 5);
    // ETH's converged ecosystem concentrates ≥70%; ETC's fragmented one
    // starts near 25% (±sampling noise on few blocks).
    assert!(eth5.mean() > 60.0, "ETH top5 {}", eth5.mean());
    if !etc5.is_empty() {
        assert!(etc5.mean() < 65.0, "ETC top5 {}", etc5.mean());
    }
}

#[test]
fn observation_report_serializes() {
    let result = ForkStudy::quick(10).run();
    let report = observations::short_term(&result);
    let json = report.to_json();
    assert!(json.contains("\"O1\""));
    assert!(stick_a_fork::telemetry::json::Value::parse(&json).is_ok());
    let md = report.to_markdown();
    assert!(md.contains("| O1 |"));
}
