//! End-to-end check of the explorer's lookup path: over full simulated
//! fork archives, every sidecar-indexed lookup must answer byte-identically
//! to a naive full scan — cold (index built from scratch) and warm (index
//! loaded from the persisted sidecar) — and header chains must verify
//! client-side from frame checksums alone.

use std::path::PathBuf;

use stick_a_fork::archive::{
    ArchiveConfig, ArchiveReader, ArchiveRecord, Codec, HashIndex, SidecarLoad, SIDECAR_FILE,
};
use stick_a_fork::core::ForkStudy;
use stick_a_fork::primitives::H256;
use stick_a_fork::query::{Lookup, LookupOutput, QueryExecutor, ReaderPool};
use stick_a_fork::replay::Side;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fork-explorer-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Samples real hashes and block numbers from the archive, spread across
/// both sides and the whole seq range.
struct Sampled {
    block_hashes: Vec<H256>,
    tx_hashes: Vec<H256>,
    number_range: (u64, u64),
}

fn sample(reader: &ArchiveReader) -> Sampled {
    let mut block_hashes = Vec::new();
    let mut tx_hashes = Vec::new();
    let mut number_range: Option<(u64, u64)> = None;
    for side in [Side::Eth, Side::Etc] {
        let mut blocks = Vec::new();
        let mut txs = Vec::new();
        for item in reader.records(side) {
            match item.expect("clean archive").1 {
                ArchiveRecord::Block(b) => {
                    number_range = Some(match number_range {
                        None => (b.number, b.number),
                        Some((lo, hi)) => (lo.min(b.number), hi.max(b.number)),
                    });
                    blocks.push(b.hash);
                }
                ArchiveRecord::Tx(t) => txs.push(t.hash),
            }
        }
        // First, last, and a spread of interior records per side.
        for set in [(&blocks, &mut block_hashes), (&txs, &mut tx_hashes)] {
            let (from, into) = set;
            if from.is_empty() {
                continue;
            }
            for k in 0..8 {
                into.push(from[k * (from.len() - 1) / 7]);
            }
        }
    }
    Sampled {
        block_hashes,
        tx_hashes,
        number_range: number_range.expect("archive has blocks"),
    }
}

fn lookups_for(s: &Sampled) -> Vec<Lookup> {
    let (lo, hi) = s.number_range;
    let mut lookups = vec![
        Lookup::TipHistory,
        Lookup::BlockByHash {
            hash: H256([0xEE; 32]),
        }, // absent
        Lookup::TxByHash {
            hash: H256([0xEE; 32]),
        }, // absent
    ];
    lookups.extend(
        s.block_hashes
            .iter()
            .map(|&hash| Lookup::BlockByHash { hash }),
    );
    lookups.extend(s.tx_hashes.iter().map(|&hash| Lookup::TxByHash { hash }));
    for side in [Side::Eth, Side::Etc] {
        for number in [lo, (lo + hi) / 2, hi, hi + 1000] {
            lookups.push(Lookup::BlockByNumber { side, number });
        }
        lookups.push(Lookup::Headers {
            side,
            first: lo + (hi - lo) / 3,
            last: lo + (hi - lo) / 3 + 20,
        });
        lookups.push(Lookup::Headers {
            side,
            first: lo,
            last: hi,
        });
    }
    lookups
}

#[test]
fn indexed_lookups_are_byte_identical_to_naive_scans_across_seeds() {
    for seed in [7u64, 21, 63] {
        let dir = scratch(&format!("seed-{seed}"));
        ForkStudy::quick(seed)
            .archive_to_with(
                &dir,
                ArchiveConfig {
                    codec: Codec::Delta,
                    ..ArchiveConfig::default()
                },
            )
            .unwrap();

        let naive_reader = ArchiveReader::open(&dir).unwrap();
        let sampled = sample(&naive_reader);
        let lookups = lookups_for(&sampled);
        assert!(lookups.len() > 30, "seed {seed}: sample too thin");

        // Cold: a fresh pool with no sidecar on disk builds the index from
        // a scan. Warm: a second pool loads the persisted sidecar. Both
        // must agree with the naive reference on every lookup.
        let exec = QueryExecutor::new(2);
        for pass in ["cold", "warm"] {
            let pool = ReaderPool::open(&dir).unwrap();
            for lookup in &lookups {
                let got = exec.run_lookup(&pool, lookup).unwrap();
                let want = QueryExecutor::run_lookup_naive(&naive_reader, lookup).unwrap();
                assert_eq!(
                    got, want,
                    "seed {seed}, {pass}: indexed {lookup:?} diverged from the naive scan"
                );
                if let LookupOutput::Found(found) = &got {
                    if matches!(lookup, Lookup::BlockByHash { hash } | Lookup::TxByHash { hash }
                        if hash.0 == [0xEE; 32])
                    {
                        assert!(found.is_none(), "seed {seed}: absent hash matched");
                    }
                }
            }
            if pass == "cold" {
                assert!(
                    dir.join(SIDECAR_FILE).exists(),
                    "seed {seed}: cold pass did not persist the sidecar"
                );
            }
        }

        // The warm path really was a load, not a silent rebuild.
        let (_, load) = HashIndex::load_or_build(&naive_reader);
        assert_eq!(load, SidecarLoad::Loaded, "seed {seed}");

        // Header chains verify offline, and any payload damage is caught.
        let (lo, hi) = sampled.number_range;
        let pool = ReaderPool::open(&dir).unwrap();
        for side in [Side::Eth, Side::Etc] {
            let lookup = Lookup::Headers {
                side,
                first: lo,
                last: (lo + 40).min(hi),
            };
            let chain = match exec.run_lookup(&pool, &lookup).unwrap() {
                LookupOutput::Headers(chain) => chain,
                other => panic!("seed {seed}: headers answered {other:?}"),
            };
            let blocks = chain.verify().expect("clean chain verifies");
            assert!(!blocks.is_empty(), "seed {seed}: empty header chain");
            assert!(blocks.iter().all(|b| b.network == side));

            let mut tampered = chain.clone();
            let byte = tampered.headers[0].payload.len() / 2;
            tampered.headers[0].payload[byte] ^= 0x01;
            assert!(
                tampered.verify().is_err(),
                "seed {seed}: tampered header chain still verified"
            );
        }

        let _ = std::fs::remove_dir_all(&dir);
    }
}
