//! Integration: the replay/echo pipeline across real chain execution.

use stick_a_fork::chain::{ChainSpec, ChainStore, GenesisBuilder, Transaction};
use stick_a_fork::crypto::Keypair;
use stick_a_fork::primitives::{units::ether, Address, ChainId, U256};
use stick_a_fork::replay::{check_replay, EchoDetector, Side};

fn test_spec(name: &'static str) -> ChainSpec {
    let mut spec = ChainSpec::test();
    spec.name = name;
    spec
}

/// A full replay round trip: the victim's ETH payment is included on ETH,
/// lifted verbatim, included on ETC, and detected as an echo — then the
/// victim's defensive split stops the next one.
#[test]
fn replay_included_on_both_chains_and_detected() {
    let victim = Keypair::from_seed("victim", 9);
    let merchant = Keypair::from_seed("merchant", 9);

    let (genesis, state) = GenesisBuilder::new()
        .difficulty(U256::from_u64(1 << 16))
        .timestamp(1_469_020_839)
        .alloc(victim.address(), ether(100))
        .build();
    let mut eth = ChainStore::new(test_spec("ETH"), genesis.clone(), state.clone());
    let mut etc = ChainStore::new(test_spec("ETC"), genesis.clone(), state);

    let pay = Transaction::transfer(
        &victim,
        0,
        merchant.address(),
        ether(10),
        U256::from_u64(20),
        None,
    );

    // Include on ETH.
    let t = genesis.header.timestamp;
    let b1 = eth.propose(
        Address([0xAA; 20]),
        t + 14,
        vec![],
        std::slice::from_ref(&pay),
    );
    assert_eq!(b1.transactions.len(), 1);
    eth.import(b1.clone()).unwrap();

    // The merchant checks replayability against ETC's state, then replays.
    assert!(check_replay(&pay, etc.spec(), etc.head_number() + 1, etc.state()).is_replayable());
    let b2 = etc.propose(
        Address([0xBB; 20]),
        t + 14,
        vec![],
        std::slice::from_ref(&pay),
    );
    assert_eq!(b2.transactions.len(), 1, "replay included on ETC");
    etc.import(b2.clone()).unwrap();

    // Money moved on BOTH chains from the one signature.
    assert_eq!(eth.state().balance(merchant.address()), ether(10));
    assert_eq!(etc.state().balance(merchant.address()), ether(10));

    // The paper's detector flags it.
    let mut detector = EchoDetector::new();
    assert!(!detector.observe(Side::Eth, pay.hash(), 0));
    assert!(detector.observe(Side::Etc, pay.hash(), 0));
    assert_eq!(detector.total_echoes(Side::Etc), 1);

    // Defense: the victim self-transfers on ETC (nonce 1 burned there),
    // then pays again on ETH with nonce 1 — that one cannot be replayed.
    let split = Transaction::transfer(
        &victim,
        1,
        victim.address(),
        U256::ONE,
        U256::from_u64(20),
        None,
    );
    let b3 = etc.propose(Address([0xBB; 20]), t + 28, vec![], &[split]);
    etc.import(b3).unwrap();
    let pay2 = Transaction::transfer(
        &victim,
        1,
        merchant.address(),
        ether(10),
        U256::from_u64(20),
        None,
    );
    let b4 = eth.propose(
        Address([0xAA; 20]),
        t + 28,
        vec![],
        std::slice::from_ref(&pay2),
    );
    eth.import(b4).unwrap();
    assert!(
        !check_replay(&pay2, etc.spec(), etc.head_number() + 1, etc.state()).is_replayable(),
        "nonce split defeats the replay"
    );
    // And the miner's selection agrees: the lifted tx is not included.
    let b5 = etc.propose(Address([0xBB; 20]), t + 42, vec![], &[pay2]);
    assert!(b5.transactions.is_empty());
}

/// EIP-155 transactions are rejected by the other chain's block producer and
/// validator alike.
#[test]
fn eip155_transactions_cannot_cross() {
    let user = Keypair::from_seed("user", 3);
    let (genesis, state) = GenesisBuilder::new()
        .difficulty(U256::from_u64(1 << 16))
        .timestamp(1_469_020_839)
        .alloc(user.address(), ether(100))
        .build();

    // Both chains have EIP-155 active from block 1.
    let mut eth_spec = test_spec("ETH");
    eth_spec.eip155 = Some((1, ChainId::ETH));
    let mut etc_spec = test_spec("ETC");
    etc_spec.eip155 = Some((1, ChainId::ETC));
    let mut eth = ChainStore::new(eth_spec, genesis.clone(), state.clone());
    let mut etc = ChainStore::new(etc_spec, genesis.clone(), state);

    let protected = Transaction::transfer(
        &user,
        0,
        Address([0x99; 20]),
        ether(1),
        U256::from_u64(20),
        Some(ChainId::ETH),
    );

    let t = genesis.header.timestamp;
    // ETH includes it.
    let b = eth.propose(
        Address([0xAA; 20]),
        t + 14,
        vec![],
        std::slice::from_ref(&protected),
    );
    assert_eq!(b.transactions.len(), 1);
    eth.import(b).unwrap();
    // ETC's producer refuses it.
    let b = etc.propose(
        Address([0xBB; 20]),
        t + 14,
        vec![],
        std::slice::from_ref(&protected),
    );
    assert!(b.transactions.is_empty());
    // And a malicious ETC miner force-including it produces an invalid
    // block under ETC's rules.
    assert!(!etc
        .spec()
        .accepts_chain_id(protected.chain_id, etc.head_number() + 1));
}
