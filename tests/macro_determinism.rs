//! Macro-scale determinism and invariants.
//!
//! The macro engine's load-bearing promise is that the shard count is a
//! pure performance knob: serial, 2-shard, and 8-shard runs of the same
//! `(config, seed)` must be byte-identical, report and telemetry both.
//! These tests lock that down across seeds, run the 1,000-node acceptance
//! scenario (two-cluster partition/heal) through the macro convergence
//! invariants, and sanity-check the topology generator's statistical
//! shape under a fixed seed.

use stick_a_fork::sim::macroscale::{
    macro_partition, MacroConfig, MacroError, MacroNet, TopologyGenConfig,
};
use stick_a_fork::sim::{check_macro_heal_convergence, check_macro_reorg_depth, ChaosPlan};
use stick_a_fork::telemetry::TimingMode;

fn with_shards(mut config: MacroConfig, n_shards: usize) -> MacroConfig {
    config.n_shards = n_shards;
    config
}

/// A mid-size propagation-style run: big enough that shards genuinely
/// interleave (hundreds of nodes, thousands of messages), small enough to
/// run three seeds × three shard counts quickly.
fn midsize(seed: u64) -> MacroConfig {
    MacroConfig {
        seed,
        topology: TopologyGenConfig {
            n_nodes: 240,
            ..TopologyGenConfig::default()
        },
        duration_secs: 240,
        block_every_secs: 8.0,
        fork_at_secs: Some(120),
        etc_share: 0.2,
        ..MacroConfig::default()
    }
}

#[test]
fn shard_count_is_invisible_across_seeds() {
    for seed in [101u64, 202, 303] {
        let mut runs = Vec::new();
        for shards in [1usize, 2, 8] {
            let mut net =
                MacroNet::new(with_shards(midsize(seed), shards)).expect("midsize config is valid");
            let report = net.run();
            let snapshot = net.telemetry_snapshot().to_json(TimingMode::Zeroed);
            runs.push((shards, format!("{report:?}"), snapshot));
        }
        let (_, ref report0, ref snap0) = runs[0];
        for (shards, report, snap) in &runs[1..] {
            assert_eq!(
                report, report0,
                "seed {seed}: {shards}-shard report diverged from serial"
            );
            assert_eq!(
                snap, snap0,
                "seed {seed}: {shards}-shard telemetry diverged from serial"
            );
        }
        assert!(report0.contains("mined_prefork"), "report is populated");
    }
}

#[test]
fn thousand_node_partition_heal_is_deterministic_and_convergent() {
    for seed in [7u64, 8, 9] {
        let preset = macro_partition(seed, 1_000);
        let serial = MacroNet::new(with_shards(preset.config.clone(), 1))
            .expect("preset valid")
            .run();
        let mut sharded_net =
            MacroNet::new(with_shards(preset.config.clone(), 8)).expect("preset valid");
        let sharded = sharded_net.run();
        assert_eq!(
            format!("{serial:?}"),
            format!("{sharded:?}"),
            "seed {seed}: 1,000-node sharded run must be byte-identical to serial"
        );
        assert_eq!(sharded.partitions_started, 1);
        assert_eq!(sharded.partitions_healed, 1);
        assert!(sharded.edges_cut > 0, "the partition cut real edges");
        assert_eq!(sharded.edges_cut, sharded.edges_restored);
        check_macro_heal_convergence(&sharded_net, preset.expected_groups)
            .expect("heal must reconverge the macro census");
        check_macro_reorg_depth(&sharded_net, preset.reorg_depth_bound)
            .expect("reorg bounded by partition duration");
        assert!(
            sharded.max_reorg_depth > 0,
            "seed {seed}: the heal produced a reorg"
        );
    }
}

#[test]
fn generated_topology_has_realistic_shape() {
    let config = TopologyGenConfig {
        n_nodes: 1_000,
        ..TopologyGenConfig::default()
    };
    let net = MacroNet::new(MacroConfig {
        seed: 42,
        topology: config.clone(),
        duration_secs: 1, // topology-only: no need to simulate
        ..MacroConfig::default()
    })
    .expect("valid config");
    let stats = net.topology().stats();
    assert_eq!(stats.n_nodes, 1_000);
    assert!(
        net.topology().is_connected(),
        "repair guarantees connectivity"
    );
    // Power-law tail: the p99 degree must sit well above the median.
    assert!(
        stats.p99_degree >= 2 * stats.median_degree,
        "degree tail too thin: p99 {} vs median {}",
        stats.p99_degree,
        stats.median_degree
    );
    assert!(stats.mean_degree >= config.min_degree as f64);
    // Geo structure: every configured cluster is populated, roughly per
    // its weight (the quotas are exact by construction).
    assert_eq!(stats.cluster_sizes.len(), 3);
    assert!(stats.cluster_sizes.iter().all(|&s| s > 100));
    // RTT bands: intra draws stay inside the per-cluster bands' envelope
    // and inter draws inside the inter band.
    let (intra_lo, intra_hi) = stats.intra_rtt_span;
    assert!(
        intra_lo >= 10 && intra_hi <= 80,
        "intra span {intra_lo}..{intra_hi}"
    );
    let (inter_lo, inter_hi) = stats.inter_rtt_span;
    assert!(
        inter_lo >= 80 && inter_hi <= 300,
        "inter span {inter_lo}..{inter_hi}"
    );
    // Client diversity: all three labels present, majority client dominant.
    assert_eq!(stats.client_counts.len(), 3);
    let geth = stats.client_counts[0].1;
    assert!(geth > 500, "majority client holds a majority: {geth}");
}

#[test]
fn oversized_chaos_plan_is_rejected_before_the_run() {
    // A plan written for a 2,000-node topology, applied to 100 nodes: the
    // engine must fail construction with a typed error, not panic deep in
    // the run or silently no-op.
    let config = MacroConfig {
        seed: 1,
        topology: TopologyGenConfig {
            n_nodes: 100,
            ..TopologyGenConfig::default()
        },
        chaos: ChaosPlan::NONE
            .create_partition(10_000, vec![(0..50).collect(), (50..2_000).collect()]),
        ..MacroConfig::default()
    };
    match MacroNet::new(config) {
        Err(MacroError::Chaos(e)) => {
            let msg = e.to_string();
            assert!(
                msg.contains("100"),
                "error names the real node count: {msg}"
            );
        }
        Err(other) => panic!("expected a chaos validation error, got {other:?}"),
        Ok(_) => panic!("expected a chaos validation error, got a working net"),
    }
}
