//! The fork atlas, swept across seeds: every partition preset must pass the
//! safety invariants at each 60-second window, and — once its scripted heal
//! plus grace has elapsed — collapse back to per-spec census agreement
//! within a bounded number of blocks, with heal-reorg depth bounded by the
//! partition duration.
//!
//! The never-healed negative control proves the convergence invariant has
//! teeth: the same flash partition without its heal must *fail*
//! `check_heal_convergence` while still upholding every safety invariant.

use stick_a_fork::sim::invariants::{
    check_heal_convergence, check_invariants, check_reorg_depth, InvariantViolation,
};
use stick_a_fork::sim::micro::MicroNet;
use stick_a_fork::sim::scenario::{atlas_never_healed, atlas_presets, AtlasPreset};

const SEEDS: [u64; 3] = [1, 2, 3];

/// Steps a preset to its end in 60-second windows, checking the safety
/// invariants at every boundary and the convergence invariant at every
/// boundary past the preset's deadline. Returns the finalized net.
fn run_preset(preset: &AtlasPreset, seed: u64) -> MicroNet {
    let end_ms = preset.config.duration_secs * 1_000;
    let mut net = MicroNet::new(preset.config.clone());

    // Head height when the last scripted heal fires — the baseline for the
    // blocks-to-converge bound. The spec-driven preset has no heal; its
    // baseline is genesis.
    let heal_ms = preset
        .config
        .chaos
        .partitions
        .iter()
        .filter_map(|p| p.heal_at_ms)
        .max()
        .unwrap_or(0);
    let mut head_at_heal: Option<u64> = None;
    let mut converged_at: Option<(u64, u64)> = None; // (t_ms, max head)

    let mut t = 0;
    while t < end_ms {
        t = (t + 60_000).min(end_ms);
        net.run_until(t);
        if let Err(v) = check_invariants(&net) {
            panic!(
                "{} seed {seed}, t={}s: invariant violated: {v}",
                preset.name,
                t / 1_000
            );
        }
        let max_head = (0..preset.config.n_nodes)
            .map(|i| net.node_store(i).head_number())
            .max()
            .unwrap();
        if t >= heal_ms && head_at_heal.is_none() {
            head_at_heal = Some(max_head);
        }
        if t >= preset.converge_by_ms {
            // Past the deadline the census must hold at every window, not
            // just the last one — convergence that flaps is not convergence.
            check_heal_convergence(&net, preset.expected_groups).unwrap_or_else(|v| {
                panic!(
                    "{} seed {seed}, t={}s: not converged: {v}",
                    preset.name,
                    t / 1_000
                )
            });
            if converged_at.is_none() {
                converged_at = Some((t, max_head));
            }
        }
    }

    // Blocks burned between heal and first converged window stay bounded:
    // the post-heal network can transiently mine faster than the 14 s target
    // (both sides retargeted down while split), hence the 2× margin.
    let (t_conv, head_conv) = converged_at.expect("deadline lands inside the run");
    let grace_blocks = 2 * (t_conv.saturating_sub(heal_ms)) / 14_000 + 8;
    let blocks_after_heal = head_conv - head_at_heal.unwrap_or(0);
    assert!(
        blocks_after_heal <= grace_blocks,
        "{} seed {seed}: {blocks_after_heal} blocks to converge after heal (bound {grace_blocks})",
        preset.name
    );

    // Heal-reorg depth is bounded by what the partition duration justifies.
    check_reorg_depth(&net, preset.reorg_depth_bound).unwrap_or_else(|v| {
        panic!(
            "{} seed {seed}: {v} (partition was {}s)",
            preset.name, preset.partition_secs
        )
    });
    net
}

#[test]
fn atlas_presets_converge_under_invariants() {
    for &seed in &SEEDS {
        for preset in atlas_presets(seed) {
            let mut net = run_preset(&preset, seed);
            let report = net.finalize_report();

            assert_eq!(
                report.partition_groups.len(),
                preset.expected_groups,
                "{} seed {seed}: final census {:?}",
                preset.name,
                report.partition_groups
            );
            // Scripted partitions must actually have fired and healed; the
            // spec-driven split must have severed cross-spec edges on its
            // own (handshake rejection, not the chaos layer).
            let scripted = preset.config.chaos.partitions.len() as u64;
            assert_eq!(report.partitions_started, scripted, "{}", preset.name);
            assert_eq!(report.partitions_healed, scripted, "{}", preset.name);
            if scripted > 0 {
                assert!(
                    report.partition_edges_cut > 0 && report.partition_edges_restored > 0,
                    "{} seed {seed}: partition never touched the topology",
                    preset.name
                );
                assert!(
                    report.reorgs > 0,
                    "{} seed {seed}: a healed partition must reorg someone",
                    preset.name
                );
            }
        }
    }
}

#[test]
fn never_healed_control_fails_convergence_only() {
    for &seed in &SEEDS {
        let control = atlas_never_healed(seed);
        let end_ms = control.config.duration_secs * 1_000;
        let mut net = MicroNet::new(control.config.clone());

        let mut t = 0;
        while t < end_ms {
            t = (t + 60_000).min(end_ms);
            net.run_until(t);
            // Safety invariants hold throughout — a partition is not
            // corruption, it is two healthy networks that can't talk.
            if let Err(v) = check_invariants(&net) {
                panic!("control seed {seed}, t={}s: {v}", t / 1_000);
            }
        }

        // ...but the convergence invariant must catch the missing heal.
        match check_heal_convergence(&net, control.expected_groups) {
            Err(InvariantViolation::HealConvergenceFailed { groups, expected }) => {
                assert_eq!(expected, 1, "control seed {seed}");
                assert_eq!(groups, vec![8, 8], "control seed {seed}: census {groups:?}");
            }
            other => {
                panic!("control seed {seed}: never-healed run must fail convergence, got {other:?}")
            }
        }
        let report = net.finalize_report();
        assert_eq!(report.partitions_started, 1, "control seed {seed}");
        assert_eq!(report.partitions_healed, 0, "control seed {seed}");
        assert_eq!(report.partition_edges_restored, 0, "control seed {seed}");
    }
}
