//! End-to-end archive round-trips: a study archived to disk and replayed
//! through `ArchiveReader` must reproduce the live run's figure exports
//! byte for byte, and a damaged archive must degrade into a report — never
//! a panic.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use stick_a_fork::analytics::{to_csv, to_json};
use stick_a_fork::archive::ArchiveReader;
use stick_a_fork::core::{ForkStudy, StudyResult};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fork-archive-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every figure's CSV and JSON export, concatenated.
fn figure_bytes(result: &StudyResult) -> (String, String) {
    let mut csv = String::new();
    let mut json = String::new();
    for fig in result.all_figures() {
        let series = fig.all_series();
        csv.push_str(&to_csv(&series));
        json.push_str(&to_json(&series));
    }
    (csv, json)
}

#[test]
fn replay_reproduces_figures_byte_identically_for_three_seeds() {
    for seed in [3u64, 1971, 2016] {
        let dir = scratch(&format!("seed{seed}"));
        let live = ForkStudy::quick(seed).archive_to(&dir).unwrap();
        let replayed = StudyResult::from_archive(&dir).unwrap();

        assert_eq!(live.summary.blocks, replayed.summary.blocks, "seed {seed}");
        assert_eq!(live.summary.txs, replayed.summary.txs, "seed {seed}");
        let (live_csv, live_json) = figure_bytes(&live);
        let (rep_csv, rep_json) = figure_bytes(&replayed);
        assert_eq!(live_csv, rep_csv, "CSV diverged for seed {seed}");
        assert_eq!(live_json, rep_json, "JSON diverged for seed {seed}");

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn compressed_archive_replays_byte_identically_to_raw() {
    use stick_a_fork::archive::{ArchiveConfig, Codec};

    let raw_dir = scratch("codec-raw");
    let delta_dir = scratch("codec-delta");
    let live_raw = ForkStudy::quick(9)
        .archive_to_with(
            &raw_dir,
            ArchiveConfig {
                codec: Codec::Raw,
                ..ArchiveConfig::default()
            },
        )
        .unwrap();
    let live_delta = ForkStudy::quick(9)
        .archive_to_with(
            &delta_dir,
            ArchiveConfig {
                codec: Codec::Delta,
                ..ArchiveConfig::default()
            },
        )
        .unwrap();
    assert_eq!(
        live_raw.summary, live_delta.summary,
        "codec never touches the run"
    );

    // Both replays reproduce the live run's figure exports byte for byte,
    // so raw and delta replays are byte-identical to each other too.
    let (live_csv, live_json) = figure_bytes(&live_raw);
    for dir in [&raw_dir, &delta_dir] {
        let replayed = StudyResult::from_archive(dir).unwrap();
        let (csv, json) = figure_bytes(&replayed);
        assert_eq!(live_csv, csv, "CSV diverged for {}", dir.display());
        assert_eq!(live_json, json, "JSON diverged for {}", dir.display());
        assert!(
            ArchiveReader::open(dir).unwrap().verify().is_clean(),
            "verify must cover the {} archive",
            dir.display()
        );
    }

    // The delta codec must actually compress the same record stream.
    let disk_bytes = |dir: &Path| {
        let mut total = 0;
        for side in ["eth", "etc"] {
            for entry in std::fs::read_dir(dir.join(side)).unwrap() {
                total += entry.unwrap().metadata().unwrap().len();
            }
        }
        total
    };
    let (raw_bytes, delta_bytes) = (disk_bytes(&raw_dir), disk_bytes(&delta_dir));
    assert!(
        delta_bytes < raw_bytes * 3 / 4,
        "delta ({delta_bytes} B) should be at least 25% smaller than raw ({raw_bytes} B)"
    );

    let _ = std::fs::remove_dir_all(&raw_dir);
    let _ = std::fs::remove_dir_all(&delta_dir);
}

fn first_segment(dir: &Path) -> PathBuf {
    let seg = dir.join("eth").join("seg-00000.seg");
    assert!(seg.is_file(), "expected {}", seg.display());
    seg
}

#[test]
fn torn_tail_recovers_without_panicking() {
    let dir = scratch("torn");
    ForkStudy::quick(5).archive_to(&dir).unwrap();
    let seg = first_segment(&dir);
    let len = std::fs::metadata(&seg).unwrap().len();
    // Chop a partial frame off the tail, as a crash mid-write would.
    OpenOptions::new()
        .write(true)
        .open(&seg)
        .unwrap()
        .set_len(len - 21)
        .unwrap();

    let reader = ArchiveReader::open(&dir).unwrap();
    assert_eq!(reader.open_report().torn_segments, 1);
    assert!(reader.open_report().torn_bytes > 0);

    // The replay still succeeds on the surviving prefix.
    let replayed = StudyResult::from_archive(&dir).unwrap();
    assert!(replayed.summary.blocks[0] > 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_byte_is_reported_not_panicked() {
    let dir = scratch("flip");
    let live = ForkStudy::quick(6).archive_to(&dir).unwrap();
    let seg = first_segment(&dir);

    // Flip one bit in the middle of the segment's frame area.
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&seg)
        .unwrap();
    let offset = std::fs::metadata(&seg).unwrap().len() / 2;
    let mut byte = [0u8; 1];
    f.seek(SeekFrom::Start(offset)).unwrap();
    f.read_exact(&mut byte).unwrap();
    byte[0] ^= 0x40;
    f.seek(SeekFrom::Start(offset)).unwrap();
    f.write_all(&byte).unwrap();
    drop(f);

    let reader = ArchiveReader::open(&dir).unwrap();
    let verify = reader.verify();
    let (ok, bad, _) = verify.totals();
    assert!(!verify.is_clean(), "flip must be detected");
    assert!(bad >= 1);
    let live_records =
        live.summary.blocks[0] + live.summary.blocks[1] + live.summary.txs[0] + live.summary.txs[1];
    assert!(ok < live_records);

    // A full replay refuses to silently skip data: it surfaces the corrupt
    // frame as an error — never a panic, never a short read passed off as
    // complete.
    match StudyResult::from_archive(&dir) {
        Err(stick_a_fork::archive::ArchiveError::Corrupt { .. }) => {}
        Err(other) => panic!("unexpected error: {other}"),
        Ok(_) => panic!("replay of a corrupted archive must error"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}
