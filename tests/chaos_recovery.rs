//! The chaos harness: the standard fault-injection scenario swept across
//! seeds, with every safety invariant checked window by window.
//!
//! The scenario (see `fork_sim::scenario::chaos_scenario`) runs a 20-node
//! fork-split network through two node crashes (one restarting intact, one
//! with a truncated store tail), a 10-minute 15%-drop link storm, and three
//! byzantine peers — all inside the first 25 simulated minutes — followed by
//! a long fault-free tail. The test asserts that across ≥8 seeds:
//!
//! * no invariant (store consistency, cross-spec isolation, bounded memory)
//!   is ever violated, at any 60-second checkpoint;
//! * every scripted fault actually fired (crashes, restarts, bans,
//!   timeouts, equivocations — chaos that silently no-ops tests nothing);
//! * both partition sides converge internally after the faults clear, and
//!   their post-fault block production is within 25% of the 14-second
//!   target;
//! * a `ChaosPlan::NONE` run of the same configuration is byte-identically
//!   deterministic — the chaos layer costs a clean run nothing.

use stick_a_fork::sim::invariants::{check_invariants, check_side_agreement};
use stick_a_fork::sim::micro::MicroNet;
use stick_a_fork::sim::scenario::chaos_scenario;
use stick_a_fork::telemetry::TimingMode;

const SEEDS: [u64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

#[test]
fn chaos_seed_sweep_holds_every_invariant_and_recovers() {
    for &seed in &SEEDS {
        let scenario = chaos_scenario(seed);
        let end_ms = scenario.config.duration_secs * 1_000;
        let clear_ms = scenario.faults_clear_secs * 1_000;
        let mut net = MicroNet::new(scenario.config.clone());

        // Step in 60-second windows, checking invariants at each boundary so
        // a violation is pinned near the event that caused it. Capture each
        // side's clean representative head as the faults clear.
        let mut heads_at_clear: Option<(u64, u64)> = None;
        let mut t = 0;
        while t < end_ms {
            t = (t + 60_000).min(end_ms);
            net.run_until(t);
            if let Err(v) = check_invariants(&net) {
                panic!("seed {seed}, t={}s: invariant violated: {v}", t / 1_000);
            }
            if t >= clear_ms && heads_at_clear.is_none() {
                heads_at_clear = Some((
                    net.node_store(0).head_number(),
                    net.node_store(19).head_number(),
                ));
            }
        }
        let report = net.finalize_report();

        // Every scripted fault must actually have fired.
        assert_eq!(report.crashes, 2, "seed {seed}");
        assert_eq!(report.restarts, 2, "seed {seed}");
        assert_eq!(
            report.recovery_ms.len(),
            2,
            "seed {seed}: both restarts were behind and must measurably recover: {:?}",
            report.recovery_ms
        );
        assert!(
            report.equivocations > 0,
            "seed {seed}: the equivocating miner never found a block"
        );
        assert!(
            report.corrupted_frames > 0,
            "seed {seed}: the corrupt-frame byzantine left no trace"
        );
        assert!(
            report.sync_timeouts > 0 && report.sync_retries > 0,
            "seed {seed}: fakes and the drop storm must exercise retry ({} timeouts, {} retries)",
            report.sync_timeouts,
            report.sync_retries
        );
        assert!(
            report.peer_bans > 0,
            "seed {seed}: sustained misbehavior must cost at least one ban"
        );

        // The partition survived the chaos: exactly two sides, and each side
        // internally converged once faults cleared.
        assert_eq!(
            report.partition_groups,
            vec![10, 10],
            "seed {seed}: groups {:?}, heads {:?}, online {:?}",
            report.partition_groups,
            report.head_numbers,
            (0..20).map(|i| net.is_online(i)).collect::<Vec<_>>()
        );
        check_side_agreement(&net, &scenario.eth_nodes, 3)
            .unwrap_or_else(|v| panic!("seed {seed}: pro-fork side diverged: {v}"));
        check_side_agreement(&net, &scenario.etc_nodes, 3)
            .unwrap_or_else(|v| panic!("seed {seed}: anti-fork side diverged: {v}"));

        // Post-fault block production within 25% of the 14-second target,
        // measured on each side's chaos-free representative (nodes 0 / 19)
        // over the fault-free tail.
        let (eth_clear, etc_clear) = heads_at_clear.expect("run passed faults_clear");
        let tail_secs = (end_ms - clear_ms) as f64 / 1_000.0;
        for (side, clear_head, node) in [("eth", eth_clear, 0usize), ("etc", etc_clear, 19)] {
            let blocks = net.node_store(node).head_number() - clear_head;
            assert!(blocks > 0, "seed {seed}: {side} side stalled after faults");
            let block_time = tail_secs / blocks as f64;
            let target = scenario.target_block_secs;
            assert!(
                (block_time - target).abs() <= 0.25 * target,
                "seed {seed}: {side} post-fault block time {block_time:.1}s vs target {target}s"
            );
        }
    }
}

#[test]
fn chaos_none_is_byte_identical() {
    let scenario = chaos_scenario(3);

    // Two clean runs of the same seed: reports and telemetry JSON must match
    // byte for byte — the chaos layer, compiled in but inert, perturbs
    // nothing.
    let base = scenario.base_without_chaos();
    let mut a = MicroNet::new(base.clone());
    let report_a = a.run();
    let mut b = MicroNet::new(base);
    let report_b = b.run();
    assert_eq!(report_a, report_b);
    assert_eq!(
        a.telemetry_snapshot().to_json(TimingMode::Zeroed),
        b.telemetry_snapshot().to_json(TimingMode::Zeroed),
    );

    // And the chaos plan is not a no-op: the same seed under chaos tells a
    // different story.
    let mut chaotic = MicroNet::new(scenario.config.clone());
    let chaos_report = chaotic.run();
    assert_ne!(report_a, chaos_report);
    assert_eq!(chaos_report.crashes, 2);
}
