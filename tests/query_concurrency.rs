//! Concurrency stress for the fork-query engine: many threads, one shared
//! pool and cache, mixed range/time/aggregate queries — every result must
//! be byte-identical to a single-threaded naive scan of the same archive,
//! and no query may ever observe a torn (partially written) frame.

use std::path::PathBuf;

use stick_a_fork::archive::{ArchiveConfig, ArchiveReader, Codec};
use stick_a_fork::core::ForkStudy;
use stick_a_fork::query::{Projection, Query, QueryExecutor, QueryOutput, QueryRange, ReaderPool};
use stick_a_fork::replay::Side;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fork-query-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A mixed batch: raw scans, block-number ranges, time windows, and every
/// aggregate projection, across both sides.
fn mixed_queries(reader: &ArchiveReader) -> Vec<Query> {
    let mut num_range: Option<(u64, u64)> = None;
    let mut time_range: Option<(u64, u64)> = None;
    for side in [Side::Eth, Side::Etc] {
        for (_, scan) in reader.segments(side) {
            for (acc, seen) in [
                (&mut num_range, scan.block_range),
                (&mut time_range, scan.time_range),
            ] {
                if let Some((lo, hi)) = seen {
                    *acc = Some(match *acc {
                        None => (lo, hi),
                        Some((alo, ahi)) => (alo.min(lo), ahi.max(hi)),
                    });
                }
            }
        }
    }
    let (nlo, nhi) = num_range.expect("archive has blocks");
    let (tlo, thi) = time_range.expect("archive has timestamps");
    let mid_blocks = QueryRange::Blocks {
        first: nlo + (nhi - nlo) / 4,
        last: nhi - (nhi - nlo) / 4,
    };
    let mid_time = QueryRange::Time {
        start: tlo + (thi - tlo) / 4,
        end: thi - (thi - tlo) / 4,
    };

    let mut queries = Vec::new();
    for side in [Side::Eth, Side::Etc] {
        for range in [QueryRange::All, mid_blocks, mid_time] {
            for projection in [
                Projection::Blocks,
                Projection::InterArrival,
                Projection::Difficulty,
            ] {
                queries.push(Query {
                    side: Some(side),
                    range,
                    projection,
                });
            }
        }
        for range in [QueryRange::All, mid_time] {
            for projection in [
                Projection::Txs,
                Projection::Echoes { window_days: 1 },
                Projection::Echoes { window_days: 7 },
            ] {
                queries.push(Query {
                    side: Some(side),
                    range,
                    projection,
                });
            }
        }
    }
    for range in [QueryRange::All, mid_time] {
        queries.push(Query {
            side: None,
            range,
            projection: Projection::TxRatioPerDay,
        });
    }
    queries
}

#[test]
fn eight_threads_match_naive_scan_and_skip_torn_frames() {
    let dir = scratch("stress");
    ForkStudy::quick(13)
        .archive_to_with(
            &dir,
            ArchiveConfig {
                codec: Codec::Delta,
                ..ArchiveConfig::default()
            },
        )
        .unwrap();

    // Simulate a crash mid-append: garbage bytes on one segment's tail. The
    // open-time scan must fence every cursor at the torn boundary, so no
    // query — pooled or naive — ever decodes a partial frame.
    let eth_dir = dir.join("eth");
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&eth_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segs.sort();
    let tail_seg = segs.last().unwrap();
    let mut bytes = std::fs::read(tail_seg).unwrap();
    bytes.extend_from_slice(&[0xAB; 23]); // not even a whole frame header
    std::fs::write(tail_seg, bytes).unwrap();

    let pool = ReaderPool::open(&dir).unwrap();
    assert_eq!(pool.reader().open_report().torn_segments, 1);
    assert!(pool.reader().open_report().torn_bytes >= 23);

    let queries = mixed_queries(pool.reader());
    assert!(queries.len() >= 30, "the batch should be genuinely mixed");

    // Single-threaded naive reference, computed up front.
    let naive_reader = ArchiveReader::open(&dir).unwrap();
    let expected: Vec<QueryOutput> = queries
        .iter()
        .map(|q| QueryExecutor::run_naive(&naive_reader, q).expect("naive scan"))
        .collect();

    // 8 OS threads hammer the shared pool concurrently, each walking the
    // batch from a different starting offset so overlapping queries run
    // simultaneously. Two rounds: the second runs against a warm cache.
    let exec = QueryExecutor::new(8);
    for round in 0..2 {
        std::thread::scope(|scope| {
            for thread in 0..8usize {
                let (exec, pool, queries, expected) = (&exec, &pool, &queries, &expected);
                scope.spawn(move || {
                    for i in 0..queries.len() {
                        let k = (i + thread * 5) % queries.len();
                        let got = exec
                            .run(pool, &queries[k])
                            .unwrap_or_else(|e| panic!("round {round}: {:?}: {e}", queries[k]));
                        assert_eq!(
                            got, expected[k],
                            "round {round}, thread {thread}: pooled result diverged from \
                             the naive scan on {:?}",
                            queries[k]
                        );
                    }
                });
            }
        });
    }

    // The batch executor path agrees too, and the repeat pass was served
    // mostly from memory.
    let batched = exec.run_batch(&pool, &queries);
    for (got, want) in batched.into_iter().zip(&expected) {
        assert_eq!(&got.unwrap(), want);
    }
    let stats = pool.cache().stats();
    assert!(
        stats.hit_rate() > 0.5,
        "repeated mixed batches should be mostly cache hits, got {:.3}",
        stats.hit_rate()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
