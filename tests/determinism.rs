//! Determinism across the whole stack: identical seeds must produce
//! identical ledgers, figures and observation values.

use stick_a_fork::core::ForkStudy;
use stick_a_fork::replay::Side;
use stick_a_fork::sim::micro::{MicroConfig, MicroNet};
use stick_a_fork::sim::{CountingSink, ResolvedForkConfig, TwoChainEngine};

#[test]
fn quick_study_bitwise_deterministic() {
    let run = |seed: u64| {
        let r = ForkStudy::quick(seed).run();
        (
            r.summary.clone(),
            r.figure1().panels[0].series[0].points.clone(),
            r.figure4().panels[1].series[1].points.clone(),
            r.figure5().panels[0].series[0].points.clone(),
        )
    };
    assert_eq!(run(11), run(11));
    let a = run(11);
    let b = run(12);
    assert_ne!(a.1, b.1, "different seeds must differ");
}

#[test]
fn meso_engine_deterministic_via_public_config() {
    let mut study_a = ForkStudy::quick(21);
    let mut study_b = ForkStudy::quick(21);
    // Mutating both configs identically keeps them identical.
    study_a.config_mut().users = 30;
    study_b.config_mut().users = 30;
    let mut sink_a = CountingSink::default();
    let mut sink_b = CountingSink::default();
    let a = TwoChainEngine::new(study_a.config_mut().clone()).run(&mut sink_a);
    let b = TwoChainEngine::new(study_b.config_mut().clone()).run(&mut sink_b);
    assert_eq!(a, b);
    assert_eq!(sink_a.blocks, sink_b.blocks);
    assert_eq!(sink_a.txs, sink_b.txs);
}

#[test]
fn micro_engine_deterministic() {
    let run = |seed: u64| {
        let mut net = MicroNet::new(MicroConfig {
            seed,
            n_nodes: 12,
            n_miners: 5,
            duration_secs: 900,
            ..MicroConfig::default()
        });
        let r = net.run();
        (r.mined, r.head_numbers, r.delivered, r.side_blocks)
    };
    assert_eq!(run(33), run(33));
}

#[test]
fn resolved_fork_deterministic() {
    let a = stick_a_fork::sim::resolved::run(&ResolvedForkConfig::eth_dos_2016(5));
    let b = stick_a_fork::sim::resolved::run(&ResolvedForkConfig::eth_dos_2016(5));
    assert_eq!(a, b);
}

#[test]
fn ledger_heads_deterministic() {
    let run = |seed: u64| {
        let mut study = ForkStudy::quick(seed);
        let mut sink = CountingSink::default();
        let mut engine = TwoChainEngine::new(study.config_mut().clone());
        engine.run(&mut sink);
        (
            engine.store(Side::Eth).head_hash(),
            engine.store(Side::Etc).head_hash(),
        )
    };
    assert_eq!(run(44), run(44));
}
