//! In-text observation T3: the two *resolved* forks' minority-branch
//! lengths — ETH's 86 blocks vs ETC's 3,583.

use stick_a_fork::sim::resolved::{run, ResolvedForkConfig};

#[test]
fn branch_lengths_match_paper_orders() {
    let eth = run(&ResolvedForkConfig::eth_dos_2016(1));
    let etc = run(&ResolvedForkConfig::etc_replay_2017(1));

    // Paper: 86 vs 3,583. Same order of magnitude required.
    assert!(
        (25..350).contains(&eth.minority_branch_len),
        "ETH branch {} (paper: 86)",
        eth.minority_branch_len
    );
    assert!(
        (1_200..9_000).contains(&etc.minority_branch_len),
        "ETC branch {} (paper: 3,583)",
        etc.minority_branch_len
    );
    assert!(
        etc.minority_branch_len > 10 * eth.minority_branch_len,
        "the factor-~40 gap must be directionally preserved: {} vs {}",
        etc.minority_branch_len,
        eth.minority_branch_len
    );
}

/// The paper's 86-block ETH branch, scaled by a 5× simulation-variance
/// envelope. The point of the constant is the *ordering*: the Nov 2016
/// branch dies inside it, the Jan 2017 branch outlives it — a partition
/// that resolves within hours vs one that persists for months, regardless
/// of the exact branch lengths a seed produces.
const SCALED_ETH_ENVELOPE: u64 = 5 * 86;

#[test]
fn scaled_envelope_orders_the_resolved_forks() {
    for seed in 1..=3 {
        let eth = run(&ResolvedForkConfig::eth_dos_2016(seed));
        let etc = run(&ResolvedForkConfig::etc_replay_2017(seed));
        assert!(
            eth.minority_branch_len <= SCALED_ETH_ENVELOPE,
            "seed {seed}: Nov 2016 branch {} outlived the scaled 86-block envelope {}",
            eth.minority_branch_len,
            SCALED_ETH_ENVELOPE
        );
        assert!(
            etc.minority_branch_len > SCALED_ETH_ENVELOPE,
            "seed {seed}: Jan 2017 branch {} died within the envelope {} — \
             it must outlive the Nov 2016 shape",
            etc.minority_branch_len,
            SCALED_ETH_ENVELOPE
        );
    }
}

#[test]
fn episode_statistics_stable_across_seeds() {
    let lens: Vec<u64> = (0..5)
        .map(|s| run(&ResolvedForkConfig::eth_dos_2016(s)).minority_branch_len)
        .collect();
    let mean = lens.iter().sum::<u64>() as f64 / lens.len() as f64;
    assert!(
        (40.0..250.0).contains(&mean),
        "mean ETH branch length {mean} from {lens:?}"
    );
}

#[test]
fn minority_difficulty_decays_majority_does_not_stall() {
    let etc = run(&ResolvedForkConfig::etc_replay_2017(4));
    let cfg = ResolvedForkConfig::etc_replay_2017(4);
    assert!(etc.final_difficulty < cfg.pre_fork_difficulty);
    // The majority produced blocks throughout the episode.
    assert!(etc.majority_blocks > etc.minority_branch_len / 4);
}
