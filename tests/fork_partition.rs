//! Cross-crate integration: the partition emerges at every layer.

use stick_a_fork::chain::{ChainSpec, ChainStore, GenesisBuilder, ImportOutcome};
use stick_a_fork::net::{Message, Status, PROTOCOL_VERSION};
use stick_a_fork::primitives::{units::ether, Address, H256, U256};

fn fork_specs() -> (ChainSpec, ChainSpec) {
    let dao = vec![Address([0xDA; 20])];
    let refund = Address([0xFD; 20]);
    let mut eth = ChainSpec::eth(dao.clone(), refund);
    let mut etc = ChainSpec::etc(dao, refund);
    for spec in [&mut eth, &mut etc] {
        spec.difficulty = ChainSpec::test().difficulty;
        spec.pow_work_factor = 2;
        if let Some(d) = spec.dao_fork.as_mut() {
            d.block = 1;
        }
        spec.eip150_block = None;
        spec.eip155 = None;
    }
    (eth, etc)
}

fn shared_genesis() -> (stick_a_fork::chain::Block, stick_a_fork::evm::WorldState) {
    GenesisBuilder::new()
        .difficulty(U256::from_u64(1 << 16))
        .timestamp(1_469_020_839)
        .alloc(Address([0x01; 20]), ether(100))
        .alloc(Address([0xDA; 20]), ether(3_600_000)) // the DAO's loot
        .build()
}

/// The full story in one test: shared history, diverging fork blocks,
/// mutual rejection, diverging state, diverging handshakes.
#[test]
fn the_partition_end_to_end() {
    let (eth_spec, etc_spec) = fork_specs();
    let (genesis, state) = shared_genesis();

    let mut eth = ChainStore::new(eth_spec, genesis.clone(), state.clone());
    let mut etc = ChainStore::new(etc_spec, genesis.clone(), state);

    // Both networks share the genesis — same hash, same state.
    assert_eq!(eth.head_hash(), etc.head_hash());

    // Each side mines its own fork block.
    let t = genesis.header.timestamp;
    let eth_fork_block = eth.propose(Address([0xAA; 20]), t + 14, vec![], &[]);
    let etc_fork_block = etc.propose(Address([0xBB; 20]), t + 14, vec![], &[]);
    eth.import(eth_fork_block.clone()).unwrap();
    etc.import(etc_fork_block.clone()).unwrap();

    // 1. The extra-data marker differs.
    assert_eq!(
        eth_fork_block.header.extra_data,
        stick_a_fork::chain::spec::DAO_EXTRA_DATA
    );
    assert!(etc_fork_block.header.extra_data.is_empty());

    // 2. Cross-imports are rejected — the chains can no longer merge.
    assert!(eth.import(etc_fork_block.clone()).is_err());
    assert!(etc.import(eth_fork_block.clone()).is_err());

    // 3. The irregular state change applied only on ETH: the DAO's balance
    //    moved to the refund contract.
    assert_eq!(eth.state().balance(Address([0xDA; 20])), U256::ZERO);
    assert_eq!(eth.state().balance(Address([0xFD; 20])), ether(3_600_000));
    assert_eq!(etc.state().balance(Address([0xDA; 20])), ether(3_600_000));

    // 4. The handshake now separates the networks.
    let status = |store: &ChainStore| Status {
        protocol_version: PROTOCOL_VERSION,
        network_id: store.spec().network_id,
        total_difficulty: store.head_total_difficulty(),
        head_hash: store.head_hash(),
        genesis_hash: store.canonical_hash(0).unwrap(),
        fork_block_hash: store.canonical_hash(1),
    };
    let eth_status = status(&eth);
    let etc_status = status(&etc);
    assert_eq!(eth_status.genesis_hash, etc_status.genesis_hash);
    assert!(!eth_status.compatible_with(&etc_status));

    // 5. But a pre-fork node (no fork block yet) still talks to both —
    //    which is how the partition propagated gradually.
    let pre_fork = Status {
        fork_block_hash: None,
        ..eth_status.clone()
    };
    assert!(pre_fork.compatible_with(&eth_status));
    assert!(pre_fork.compatible_with(&etc_status));

    // 6. Both networks keep extending their own chains indefinitely.
    for k in 2..6u64 {
        let b = eth.propose(Address([0xAA; 20]), t + k * 14, vec![], &[]);
        assert_eq!(eth.import(b).unwrap().outcome, ImportOutcome::Extended);
        let b = etc.propose(Address([0xBB; 20]), t + k * 14, vec![], &[]);
        assert_eq!(etc.import(b).unwrap().outcome, ImportOutcome::Extended);
    }
    assert_eq!(eth.head_number(), 5);
    assert_eq!(etc.head_number(), 5);
    assert_ne!(eth.head_hash(), etc.head_hash());
}

/// Blocks survive the wire: a block encoded into a NewBlock message by one
/// network decodes bit-exact and is judged by the receiving node's rules.
#[test]
fn wire_roundtrip_preserves_verdicts() {
    let (eth_spec, etc_spec) = fork_specs();
    let (genesis, state) = shared_genesis();
    let mut eth = ChainStore::new(eth_spec, genesis.clone(), state.clone());
    let mut etc = ChainStore::new(etc_spec, genesis.clone(), state);

    let t = genesis.header.timestamp;
    let block = eth.propose(Address([0xAA; 20]), t + 14, vec![], &[]);
    eth.import(block.clone()).unwrap();

    let msg = Message::NewBlock {
        block: block.clone(),
        total_difficulty: eth.head_total_difficulty(),
    };
    let decoded = Message::decode(&msg.encode()).unwrap();
    let Message::NewBlock {
        block: wire_block, ..
    } = decoded
    else {
        panic!("wrong message type");
    };
    assert_eq!(wire_block.hash(), block.hash());
    // ETH accepts its own block from the wire (AlreadyKnown), ETC rejects.
    assert!(matches!(
        eth.import(wire_block.clone()).unwrap().outcome,
        ImportOutcome::AlreadyKnown
    ));
    assert!(etc.import(wire_block).is_err());
}

/// Seal tampering detected after wire transfer.
#[test]
fn tampered_wire_block_rejected() {
    let (eth_spec, _) = fork_specs();
    let (genesis, state) = shared_genesis();
    let mut eth = ChainStore::new(eth_spec, genesis.clone(), state.clone());
    let mut eth2 = ChainStore::new(fork_specs().0, genesis.clone(), state);

    let t = genesis.header.timestamp;
    let block = eth.propose(Address([0xAA; 20]), t + 14, vec![], &[]);
    eth.import(block.clone()).unwrap();

    // A "man in the middle" bumps the beneficiary (fee theft attempt).
    let mut stolen = block;
    stolen.header.beneficiary = Address([0x66; 20]);
    let msg = Message::NewBlock {
        block: stolen,
        total_difficulty: U256::from_u64(1),
    };
    let Message::NewBlock {
        block: wire_block, ..
    } = Message::decode(&msg.encode()).unwrap()
    else {
        panic!("wrong type");
    };
    // With overwhelming probability the seal no longer verifies; a lucky
    // seal would still fail on the state root (rewards go elsewhere).
    assert!(eth2.import(wire_block).is_err());
}

#[test]
fn genesis_hash_is_seed_independent_but_alloc_dependent() {
    let (g1, _) = shared_genesis();
    let (g2, _) = shared_genesis();
    assert_eq!(g1.hash(), g2.hash());
    let (g3, _) = GenesisBuilder::new()
        .difficulty(U256::from_u64(1 << 16))
        .timestamp(1_469_020_839)
        .alloc(Address([0x01; 20]), ether(101))
        .build();
    assert_ne!(g1.hash(), g3.hash());
    let _ = H256::ZERO;
}
