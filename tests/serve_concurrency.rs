//! End-to-end serving stress: a real `fork-served` daemon on an ephemeral
//! TCP port, hammered by concurrent clients over the sealed wire protocol.
//! Every decoded response must be byte-identical to an in-process naive
//! `evaluate()` scan of the same archive; the admission cap must shed a
//! deliberate flood with typed `Overloaded` errors; the per-connection cap
//! must reject pipelining past it; graceful shutdown must drain.

use std::path::{Path, PathBuf};
use std::time::Duration;

use stick_a_fork::archive::{ArchiveConfig, ArchiveReader, Codec};
use stick_a_fork::core::ForkStudy;
use stick_a_fork::query::{Projection, Query, QueryExecutor, QueryOutput, QueryRange};
use stick_a_fork::replay::Side;
use stick_a_fork::serve::{ErrorKind, RequestBody, ResponseBody, ServeClient, ServeConfig, Server};
use stick_a_fork::telemetry::Snapshot;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fork-serve-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_archive(dir: &PathBuf, seed: u64) {
    ForkStudy::quick(seed)
        .archive_to_with(
            dir,
            ArchiveConfig {
                codec: Codec::Delta,
                ..ArchiveConfig::default()
            },
        )
        .unwrap();
}

/// The same mixed batch the query-engine e2e uses: full scans, mid-range
/// block and time windows, every aggregate projection, both sides.
fn mixed_queries(reader: &ArchiveReader) -> Vec<Query> {
    let mut num_range: Option<(u64, u64)> = None;
    let mut time_range: Option<(u64, u64)> = None;
    for side in [Side::Eth, Side::Etc] {
        for (_, scan) in reader.segments(side) {
            for (acc, seen) in [
                (&mut num_range, scan.block_range),
                (&mut time_range, scan.time_range),
            ] {
                if let Some((lo, hi)) = seen {
                    *acc = Some(match *acc {
                        None => (lo, hi),
                        Some((alo, ahi)) => (alo.min(lo), ahi.max(hi)),
                    });
                }
            }
        }
    }
    let (nlo, nhi) = num_range.expect("archive has blocks");
    let (tlo, thi) = time_range.expect("archive has timestamps");
    let mid_blocks = QueryRange::Blocks {
        first: nlo + (nhi - nlo) / 4,
        last: nhi - (nhi - nlo) / 4,
    };
    let mid_time = QueryRange::Time {
        start: tlo + (thi - tlo) / 4,
        end: thi - (thi - tlo) / 4,
    };

    let mut queries = Vec::new();
    for side in [Side::Eth, Side::Etc] {
        for range in [QueryRange::All, mid_blocks, mid_time] {
            for projection in [
                Projection::Blocks,
                Projection::InterArrival,
                Projection::Difficulty,
            ] {
                queries.push(Query {
                    side: Some(side),
                    range,
                    projection,
                });
            }
        }
        for range in [QueryRange::All, mid_time] {
            for projection in [
                Projection::Txs,
                Projection::Echoes { window_days: 1 },
                Projection::Echoes { window_days: 7 },
            ] {
                queries.push(Query {
                    side: Some(side),
                    range,
                    projection,
                });
            }
        }
    }
    for range in [QueryRange::All, mid_time] {
        queries.push(Query {
            side: None,
            range,
            projection: Projection::TxRatioPerDay,
        });
    }
    queries
}

fn naive_expected(dir: &Path, queries: &[Query]) -> Vec<QueryOutput> {
    let reader = ArchiveReader::open(dir).unwrap();
    queries
        .iter()
        .map(|q| QueryExecutor::run_naive(&reader, q).expect("naive scan"))
        .collect()
}

#[test]
fn served_responses_match_naive_scan_across_seeds() {
    for seed in [7u64, 21] {
        let dir = scratch(&format!("match-{seed}"));
        build_archive(&dir, seed);
        let reader = ArchiveReader::open(&dir).unwrap();
        let queries = mixed_queries(&reader);
        assert!(queries.len() >= 30, "the batch should be genuinely mixed");
        let expected = naive_expected(&dir, &queries);
        let (blocks, txs) = reader.totals();
        drop(reader);

        let handle = Server::start(ServeConfig::new(&dir)).unwrap();
        let addr = handle.local_addr().to_string();

        // The daemon advertises the same archive shape it serves.
        let mut probe = ServeClient::connect_retry(&addr, Duration::from_secs(5)).unwrap();
        let meta = probe.meta().unwrap();
        assert_eq!((meta.blocks, meta.txs), (blocks, txs));
        probe.ping().unwrap();

        // 8 concurrent client connections, each walking the whole batch
        // from a different offset; two rounds so the second hits a warm
        // server cache. Every response must equal the naive scan exactly.
        std::thread::scope(|scope| {
            for thread in 0..8usize {
                let (addr, queries, expected) = (&addr, &queries, &expected);
                scope.spawn(move || {
                    let mut client =
                        ServeClient::connect_retry(addr, Duration::from_secs(5)).unwrap();
                    for round in 0..2 {
                        for i in 0..queries.len() {
                            let k = (i + thread * 5) % queries.len();
                            let got = client
                                .query(&queries[k])
                                .unwrap_or_else(|e| panic!("round {round}: {:?}: {e}", queries[k]));
                            assert_eq!(
                                got, expected[k],
                                "round {round}, thread {thread}: served result diverged \
                                 from the naive scan on {:?}",
                                queries[k]
                            );
                        }
                    }
                });
            }
        });

        // The stats control request returns a parseable telemetry snapshot
        // with per-endpoint latency histograms populated.
        let stats = probe.stats().unwrap();
        let snap = Snapshot::from_json(&stats).expect("stats is a fork-telemetry/v1 snapshot");
        let served: u64 = snap
            .histograms
            .iter()
            .filter(|(name, _)| name.starts_with("serve.latency."))
            .map(|(_, h)| h.count)
            .sum();
        assert_eq!(
            served,
            (8 * 2 * queries.len()) as u64,
            "every query should be counted in exactly one endpoint histogram"
        );
        assert_eq!(snap.counters["serve.queries"], served);
        assert_eq!(snap.counters["serve.rejected.overloaded"], 0);

        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn flood_past_admission_cap_returns_typed_overloaded_and_recovers() {
    let dir = scratch("flood");
    build_archive(&dir, 7);
    let reader = ArchiveReader::open(&dir).unwrap();
    let queries = mixed_queries(&reader);
    let expected = naive_expected(&dir, &queries);
    drop(reader);

    // A deliberately tiny daemon: one worker, two in-flight slots. Eight
    // clients pipelining 40 queries each must overrun the cap.
    let mut cfg = ServeConfig::new(&dir);
    cfg.workers = 1;
    cfg.global_inflight = 2;
    cfg.per_conn_inflight = 64;
    let handle = Server::start(cfg).unwrap();
    let addr = handle.local_addr().to_string();

    let mut total_ok = 0u64;
    let mut total_overloaded = 0u64;
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for thread in 0..8usize {
            let (addr, queries, expected) = (&addr, &queries, &expected);
            workers.push(scope.spawn(move || {
                let mut client = ServeClient::connect_retry(addr, Duration::from_secs(5)).unwrap();
                // Fire 40 pipelined queries without reading, then drain.
                let mut sent: Vec<(u64, usize)> = Vec::new();
                for i in 0..40usize {
                    let k = (i + thread * 7) % queries.len();
                    let id = client.send(RequestBody::Query(queries[k])).unwrap();
                    sent.push((id, k));
                }
                let (mut ok, mut overloaded) = (0u64, 0u64);
                for _ in 0..sent.len() {
                    let resp = client.recv().expect("flood responses still arrive");
                    let k = sent
                        .iter()
                        .find(|(id, _)| *id == resp.id)
                        .map(|&(_, k)| k)
                        .expect("response matches a sent id");
                    match resp.body {
                        ResponseBody::Output(out) => {
                            assert_eq!(
                                out, expected[k],
                                "admitted queries must still answer exactly"
                            );
                            ok += 1;
                        }
                        ResponseBody::Error(e) => {
                            assert_eq!(
                                e.kind,
                                ErrorKind::Overloaded,
                                "only the admission cap may reject here: {e}"
                            );
                            overloaded += 1;
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                (ok, overloaded)
            }));
        }
        for w in workers {
            let (ok, overloaded) = w.join().unwrap();
            total_ok += ok;
            total_overloaded += overloaded;
        }
    });
    assert_eq!(total_ok + total_overloaded, 8 * 40);
    assert!(total_ok > 0, "some queries must be admitted");
    assert!(
        total_overloaded > 0,
        "a 320-query flood against a 2-slot daemon must shed load"
    );

    // The daemon recovers: a fresh sequential client gets exact answers.
    let mut client = ServeClient::connect_retry(&addr, Duration::from_secs(5)).unwrap();
    let got = client.query(&queries[0]).unwrap();
    assert_eq!(got, expected[0]);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn load_generator_retries_overloaded_sheds_with_backoff() {
    use stick_a_fork::serve::{run_load, LoadConfig};

    let dir = scratch("load-retry");
    build_archive(&dir, 7);

    // The same deliberately tiny daemon as the flood test: one worker, two
    // admission slots. The load generator's pipelined traffic must overrun
    // the cap — but with a retry budget, shed requests re-queue with
    // backoff instead of counting as terminal.
    let mut cfg = ServeConfig::new(&dir);
    cfg.workers = 1;
    cfg.global_inflight = 2;
    cfg.per_conn_inflight = 64;
    let handle = Server::start(cfg).unwrap();

    let mut load_cfg = LoadConfig::new(handle.local_addr().to_string());
    load_cfg.connections = 8;
    load_cfg.requests_per_conn = 20;
    load_cfg.pipeline_depth = 4;
    load_cfg.phases = 2;
    let report = run_load(&load_cfg).expect("load run");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let overall = &report.overall;
    // Every distinct request reaches exactly one terminal outcome; retry
    // attempts are counted separately, never double-booked as requests.
    assert_eq!(overall.requests, 8 * 20 * 2);
    assert_eq!(
        overall.ok + overall.overloaded + overall.backpressure + overall.errors,
        overall.requests,
        "terminal outcomes must partition the requests: {overall:?}"
    );
    assert_eq!(overall.errors, 0, "no transport failures expected");
    assert!(
        overall.retries > 0,
        "a 2-slot daemon under 32 pipelined requests must shed and retry"
    );
    // The retry budget converts most sheds into eventual successes.
    assert!(
        overall.ok > overall.requests / 2,
        "retries should recover the bulk of shed requests: {overall:?}"
    );

    // The `fork-load/v1` report carries the retry count.
    let json = report.to_json();
    assert!(
        json.contains(&format!("\"retries\": {}", overall.retries)),
        "JSON report must carry retry counts: {json}"
    );
}

#[test]
fn per_conn_backpressure_rejects_and_shutdown_drains() {
    let dir = scratch("backpressure");
    build_archive(&dir, 11);
    let reader = ArchiveReader::open(&dir).unwrap();
    let queries = mixed_queries(&reader);
    drop(reader);

    // Per-connection cap of 1 with a single worker: a heavy query parks
    // the worker, so a burst of pipelined follow-ups must bounce with
    // typed Backpressure instead of queueing unboundedly.
    let mut cfg = ServeConfig::new(&dir);
    cfg.workers = 1;
    cfg.per_conn_inflight = 1;
    let handle = Server::start(cfg).unwrap();
    let addr = handle.local_addr().to_string();

    let heavy = Query {
        side: Some(Side::Eth),
        range: QueryRange::All,
        projection: Projection::Echoes { window_days: 1 },
    };
    let mut client = ServeClient::connect_retry(&addr, Duration::from_secs(5)).unwrap();
    let mut sent = vec![client.send(RequestBody::Query(heavy)).unwrap()];
    for _ in 0..20 {
        sent.push(client.send(RequestBody::Query(heavy)).unwrap());
    }
    let (mut ok, mut backpressure) = (0u64, 0u64);
    for _ in 0..sent.len() {
        let resp = client.recv().unwrap();
        assert!(sent.contains(&resp.id));
        match resp.body {
            ResponseBody::Output(_) => ok += 1,
            ResponseBody::Error(e) => {
                assert_eq!(e.kind, ErrorKind::Backpressure, "{e}");
                backpressure += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(ok >= 1, "the first query is always admitted");
    assert!(
        backpressure >= 1,
        "pipelining 21 queries past a 1-slot connection must bounce"
    );
    handle.shutdown();

    // Graceful shutdown drains: pipeline a batch, shut the daemon down
    // from the handle while they're in flight, and every response must
    // still arrive — exact — before the socket closes.
    let dir2 = scratch("drain");
    build_archive(&dir2, 11);
    let handle = Server::start(ServeConfig::new(&dir2)).unwrap();
    let addr = handle.local_addr().to_string();
    let expected2 = naive_expected(&dir2, &queries);

    let mut client = ServeClient::connect_retry(&addr, Duration::from_secs(5)).unwrap();
    let mut sent: Vec<(u64, usize)> = Vec::new();
    for (k, query) in queries.iter().enumerate().take(10) {
        let id = client.send(RequestBody::Query(*query)).unwrap();
        sent.push((id, k));
    }
    // The drain guarantee covers *admitted* queries; wait until the daemon
    // has pulled all ten off the socket before asking it to stop.
    let mut probe = ServeClient::connect_retry(&addr, Duration::from_secs(5)).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let snap = Snapshot::from_json(&probe.stats().unwrap()).unwrap();
        if snap.counters.get("serve.queries").copied().unwrap_or(0) >= sent.len() as u64 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never admitted the pipelined batch"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown(); // blocks until drained and joined
    for _ in 0..sent.len() {
        let resp = client.recv().expect("in-flight responses survive shutdown");
        let k = sent
            .iter()
            .find(|(id, _)| *id == resp.id)
            .map(|&(_, k)| k)
            .unwrap();
        match resp.body {
            ResponseBody::Output(out) => assert_eq!(out, expected2[k]),
            other => panic!("in-flight query {k} got {other:?}"),
        }
    }
    // After the drain the daemon is gone: the next round-trip fails.
    assert!(client.ping().is_err(), "daemon must be down after shutdown");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}
