//! fork-trace end-to-end: determinism, inertness, and dump-on-violation.
//!
//! The tracing layer's contract has three legs:
//!
//! * **Determinism** — a trace is a pure function of the seed: the same
//!   `trace_scenario` run twice exports byte-identical Chrome trace JSON,
//!   across multiple seeds.
//! * **Inertness** — attaching a tracer must not perturb the simulation
//!   (identical `MicroReport` with and without it), and a net without one
//!   carries a disabled sink that records nothing.
//! * **Post-mortem** — a run with a flight recorder attached produces, on a
//!   forced invariant violation, a dump whose per-node rings are bounded
//!   and end with the stamped `InvariantViolated` event.

use std::sync::Arc;

use stick_a_fork::sim::micro::{MicroNet, MicroReport};
use stick_a_fork::sim::scenario::{trace_scenario, TRACE_FORK_BLOCK};
use stick_a_fork::sim::{check_side_agreement, violation_report};
use stick_a_fork::telemetry::{chrome_trace_json, propagation_rows, TraceEventKind, TraceSink};

/// Runs the trace preset (optionally truncated) with `sink` attached.
fn run_traced(seed: u64, duration_secs: u64, sink: TraceSink) -> (MicroNet, MicroReport) {
    let mut scenario = trace_scenario(seed);
    scenario.config.duration_secs = duration_secs;
    let mut net = MicroNet::new(scenario.config.clone());
    net.attach_tracer(Arc::new(sink));
    let report = net.run();
    (net, report)
}

#[test]
fn same_seed_traces_are_byte_identical_across_seeds() {
    let labels: Vec<String> = (0..20).map(|i| format!("node{i:02}")).collect();
    for seed in [1u64, 7, 2016] {
        let (net_a, _) = run_traced(seed, 900, TraceSink::new());
        let (net_b, _) = run_traced(seed, 900, TraceSink::new());
        let a = chrome_trace_json(&net_a.tracer().events(), &labels);
        let b = chrome_trace_json(&net_b.tracer().events(), &labels);
        assert!(
            !net_a.tracer().is_empty(),
            "seed {seed}: trace is non-empty"
        );
        assert_eq!(a, b, "seed {seed}: same seed, byte-identical trace");
    }
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let scenario = trace_scenario(3);
    let mut plain = MicroNet::new(scenario.config.clone());
    let untraced = plain.run();
    let (_, traced) = run_traced(3, scenario.config.duration_secs, TraceSink::new());
    assert_eq!(untraced, traced, "tracer attached vs not: identical run");

    // A net nobody attached to carries a runtime-disabled sink.
    assert!(!plain.tracer().is_active());
    assert!(plain.tracer().events().is_empty());
    assert!(plain.flight_dump().is_none());
}

#[test]
fn trace_covers_the_block_lifecycle_with_causal_links() {
    let (net, report) = run_traced(5, 1_800, TraceSink::new());
    let events = net.tracer().events();
    let has = |k: TraceEventKind| events.iter().any(|e| e.kind == k);
    for kind in [
        TraceEventKind::Mined,
        TraceEventKind::GossipSent,
        TraceEventKind::GossipRecv,
        TraceEventKind::Validated,
        TraceEventKind::Imported,
    ] {
        assert!(has(kind), "{kind:?} missing from a full run");
    }
    assert_eq!(
        events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Mined)
            .count() as u64,
        report.mined.iter().sum::<u64>() + report.equivocations,
        "one Mined event per sealed block (twins included)"
    );

    // Causality: every GossipRecv at node n from peer p has a matching
    // GossipSent at p toward n carrying the same block.
    let recv = events
        .iter()
        .find(|e| e.kind == TraceEventKind::GossipRecv)
        .expect("at least one hop");
    let from = recv.peer.expect("receives carry their sender");
    assert!(
        events.iter().any(|e| e.kind == TraceEventKind::GossipSent
            && e.node == from
            && e.peer == Some(recv.node)
            && e.block == recv.block),
        "GossipRecv links back to its GossipSent"
    );

    // The preset forks at TRACE_FORK_BLOCK, so both propagation regimes are
    // populated for both sides.
    let mut side_of = vec![0usize; 20];
    for s in side_of.iter_mut().skip(10) {
        *s = 1;
    }
    let rows = propagation_rows(&events, &side_of, &["eth", "etc"], TRACE_FORK_BLOCK);
    assert_eq!(rows.len(), 4);
    for row in &rows {
        assert!(row.blocks > 0, "{} {} row is empty", row.side, row.phase);
        assert!(row.p50_ms <= row.p90_ms && row.p90_ms <= row.max_ms);
    }
}

#[test]
fn forced_violation_dumps_the_flight_recorder() {
    const CAP: usize = 8;
    let (net, _) = run_traced(11, 1_800, TraceSink::recorder_only(CAP));

    // Constant memory: every ring respects the per-node bound mid-flight.
    let dump = net.flight_dump().expect("recorder-carrying sink");
    assert_eq!(dump.capacity, CAP);
    assert!(!dump.is_empty());
    for (node, ring) in &dump.events {
        assert!(ring.len() <= CAP, "node {node} ring over capacity");
    }

    // Nodes 0 and 19 sit on opposite sides of the fork, so demanding they
    // agree on canonical hashes (unbounded head tolerance skips the spread
    // check) is a deterministic SideDisagreement.
    let v =
        check_side_agreement(&net, &[0, 19], u64::MAX).expect_err("cross-side agreement must fail");
    let offending = match &v {
        stick_a_fork::sim::InvariantViolation::SideDisagreement { b, .. } => *b,
        other => panic!("expected SideDisagreement, got {other}"),
    };
    let report = violation_report(&net, &v);
    assert!(report.contains("INVARIANT VIOLATED"));
    assert!(report.contains("disagree on the canonical block"));
    assert!(report.contains(&format!("FLIGHT RECORDER DUMP (last {CAP} events per node")));
    assert!(
        report.contains(&format!("node {offending}:")),
        "offending node's history is in the dump"
    );
    assert!(
        report.contains("InvariantViolated"),
        "the violation itself is stamped into the offending node's ring"
    );
    assert!(report.contains("TELEMETRY AT DUMP TIME"));
    assert!(
        report.contains("Imported"),
        "recent lifecycle events survive in the rings"
    );
}
