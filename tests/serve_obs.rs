//! End-to-end observability-plane checks against a real `fork-served`
//! daemon: per-request stage spans must tile end-to-end latency, tracing
//! must be byte-neutral to query results, the slow-query log must stay
//! bounded and worst-first, the sampler must fill the series ring, and the
//! Prometheus exposition must be well-formed.

use std::path::PathBuf;
use std::time::Duration;

use stick_a_fork::archive::{ArchiveConfig, Codec};
use stick_a_fork::core::ForkStudy;
use stick_a_fork::query::Query;
use stick_a_fork::serve::{
    encode_response, RequestBody, ServeClient, ServeConfig, Server, ENDPOINTS,
};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fork-serve-obs-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_archive(dir: &PathBuf, seed: u64) {
    ForkStudy::quick(seed)
        .archive_to_with(
            dir,
            ArchiveConfig {
                codec: Codec::Delta,
                ..ArchiveConfig::default()
            },
        )
        .unwrap();
}

/// A small mixed workload built from the daemon's own metadata.
fn workload(client: &mut ServeClient) -> Vec<Query> {
    let meta = client.meta().unwrap();
    stick_a_fork::serve::workload_queries(&meta)
}

#[test]
fn tracing_is_byte_neutral_and_stage_spans_tile_latency() {
    let dir = scratch("neutral");
    build_archive(&dir, 11);

    // Two daemons over the same archive: tracing on (default) and off.
    let on_handle = Server::start(ServeConfig::new(&dir)).unwrap();
    let mut off_cfg = ServeConfig::new(&dir);
    off_cfg.tracing = false;
    let off_handle = Server::start(off_cfg).unwrap();

    let mut on =
        ServeClient::connect_retry(&on_handle.local_addr().to_string(), Duration::from_secs(5))
            .unwrap();
    let mut off =
        ServeClient::connect_retry(&off_handle.local_addr().to_string(), Duration::from_secs(5))
            .unwrap();

    // Same queries in the same order on both connections: correlation ids
    // line up, so every encoded response must be byte-identical.
    let queries = workload(&mut on);
    let _ = workload(&mut off); // consume the same id on the off connection
    assert!(queries.len() >= 20, "workload should be genuinely mixed");
    for q in &queries {
        let id_on = on.send(RequestBody::Query(*q)).unwrap();
        let id_off = off.send(RequestBody::Query(*q)).unwrap();
        assert_eq!(id_on, id_off);
        let resp_on = on.recv().unwrap();
        let resp_off = off.recv().unwrap();
        assert_eq!(
            encode_response(&resp_on),
            encode_response(&resp_off),
            "tracing changed the bytes of the response to {q:?}"
        );
    }

    // The traced daemon's slow log holds real records whose five stage
    // spans tile the measured end-to-end latency.
    let slow = on.obs_slow_log().unwrap();
    assert!(!slow.is_empty(), "traffic should populate the slow log");
    let mut last_total = u64::MAX;
    for rec in &slow {
        assert!(
            ENDPOINTS.contains(&rec.endpoint.as_str()),
            "unknown endpoint {:?}",
            rec.endpoint
        );
        assert!(
            rec.total_us <= last_total,
            "slow log must be sorted worst-first"
        );
        last_total = rec.total_us;
        let sum = rec.stages.stage_sum_us();
        assert!(
            sum <= rec.total_us + 16,
            "stage sum {sum}us exceeds end-to-end {}us on {:?}",
            rec.total_us,
            rec
        );
        let slack = rec.total_us - sum.min(rec.total_us);
        let budget = (rec.total_us / 10).max(200);
        assert!(
            slack <= budget,
            "stages account for too little: sum {sum}us vs total {}us (slack {slack}us > {budget}us)",
            rec.total_us
        );
    }

    // The tracing-off daemon serves an empty observability plane.
    let off_slow = off.obs_slow_log().unwrap();
    assert!(
        off_slow.is_empty(),
        "tracing off must not record slow queries"
    );

    on_handle.shutdown();
    off_handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sampler_fills_the_series_ring_and_metrics_expose_the_registry() {
    let dir = scratch("series");
    build_archive(&dir, 13);

    let mut cfg = ServeConfig::new(&dir);
    cfg.sample_interval = Duration::from_millis(25);
    cfg.series_capacity = 8;
    let handle = Server::start(cfg).unwrap();
    let mut client =
        ServeClient::connect_retry(&handle.local_addr().to_string(), Duration::from_secs(5))
            .unwrap();

    // Drive some traffic, then let several sample intervals elapse.
    for q in workload(&mut client).iter().take(8) {
        client.query(q).unwrap();
    }
    std::thread::sleep(Duration::from_millis(200));

    let ring = client.obs_series().unwrap();
    assert!(ring.len() >= 2, "sampler should have ticked at least twice");
    assert!(ring.len() <= ring.capacity());
    let ticks: Vec<u64> = ring.samples().map(|s| s.tick).collect();
    assert!(
        ticks.windows(2).all(|w| w[1] == w[0] + 1),
        "ticks must be consecutive: {ticks:?}"
    );
    let names = ring.series_names();
    for required in ["connections", "inflight", "shed_per_sec", "cache_hit_rate"] {
        assert!(names.iter().any(|n| n == required), "missing {required}");
    }
    // The per-endpoint percentile series appear once an endpoint saw
    // traffic; every sampled connection count is at least ours.
    assert!(
        names.iter().any(|n| n.starts_with("p99_us.")),
        "expected per-endpoint p99 series, got {names:?}"
    );
    assert!(ring
        .series("connections")
        .iter()
        .all(|&(_, v)| (0.0..=1024.0).contains(&v)));

    // The Prometheus exposition carries the stage histograms: every
    // non-comment line is `name value`, and the cumulative bucket lines
    // end with +Inf equal to the count.
    let text = client.metrics_text().unwrap();
    assert!(text.contains("# TYPE serve_stage_total histogram"));
    assert!(text.contains("serve_queries"));
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let name = parts.next().expect("metric name");
        let value = parts.next().expect("metric value");
        assert!(parts.next().is_none(), "unexpected third field in {line:?}");
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric()
                || c == '_'
                || c == ':'
                || c == '{'
                || c == '}'
                || c == '"'
                || c == '='
                || c == '+'
                || c == '.'
                || c == '-'),
            "bad metric name {name:?}"
        );
        assert!(
            value.parse::<f64>().is_ok(),
            "metric value must be numeric in {line:?}"
        );
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_log_stays_bounded_and_keeps_the_worst() {
    let dir = scratch("slowlog");
    build_archive(&dir, 17);

    let mut cfg = ServeConfig::new(&dir);
    cfg.slow_log = 4;
    let handle = Server::start(cfg).unwrap();
    let mut client =
        ServeClient::connect_retry(&handle.local_addr().to_string(), Duration::from_secs(5))
            .unwrap();

    let queries = workload(&mut client);
    for _ in 0..3 {
        for q in &queries {
            client.query(q).unwrap();
        }
    }

    let slow = client.obs_slow_log().unwrap();
    assert!(!slow.is_empty());
    assert!(slow.len() <= 4, "slow log must stay bounded at 4 entries");
    assert!(
        slow.windows(2).all(|w| w[0].total_us >= w[1].total_us),
        "slow log must be sorted worst-first"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
