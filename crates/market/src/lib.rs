//! # fork-market
//!
//! The market substrate replacing the paper's coinmarketcap.com data source:
//! jump-diffusion USD price processes calibrated to the 2016–17 narrative,
//! and the rational hashpower-allocation dynamic whose fixed point produces
//! Figure 3's near-identical hashes-per-USD curves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod process;
pub mod rational;

pub use calibration::{
    calibrated_pair, etc_usd, eth_usd, PriceSeries, CALIBRATED_DAYS, PAIR_CORRELATION,
};
pub use process::{correlated_pair, sample_series, standard_normal, Jump, JumpDiffusion};
pub use rational::{HashpowerAllocator, HashpowerSplit, TotalHashpowerPath};

#[cfg(test)]
mod proptests {
    use super::*;
    use fork_primitives::SimTime;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// Prices stay strictly positive under any parameters in range.
        #[test]
        fn prices_positive(
            mu in -0.05f64..0.05,
            sigma in 0.0f64..0.3,
            s0 in 0.01f64..1_000.0,
            seed in any::<u64>(),
        ) {
            let p = JumpDiffusion::new(mu, sigma);
            let mut rng = StdRng::seed_from_u64(seed);
            for (_, v) in p.series(s0, SimTime::from_unix(0), 100, &mut rng) {
                prop_assert!(v > 0.0);
                prop_assert!(v.is_finite());
            }
        }

        /// Allocation fractions always stay in [floor_eth, 1 - floor_etc].
        #[test]
        fn split_bounded(
            eth_usd in 0.0f64..10_000.0,
            etc_usd in 0.0f64..10_000.0,
            start in 0.0f64..1.0,
            rate in 0.0f64..1.0,
        ) {
            let a = HashpowerAllocator { adjustment_rate: rate, ..HashpowerAllocator::default() };
            let mut s = HashpowerSplit { eth_fraction: start };
            // The real invariant: every step stays within the hull of the
            // starting point and the (floor-clamped) target band.
            let lo = start.min(a.eth_loyalty_floor);
            let hi = start.max(1.0 - a.etc_loyalty_floor);
            for _ in 0..50 {
                s = a.step(s, eth_usd, etc_usd);
                prop_assert!(s.eth_fraction.is_finite());
                prop_assert!(s.eth_fraction >= lo - 1e-9);
                prop_assert!(s.eth_fraction <= hi + 1e-9);
            }
        }

        /// Interpolation output lies within the series' value envelope.
        #[test]
        fn interpolation_bounded(vals in proptest::collection::vec(0.1f64..100.0, 2..20), at in 0u64..100) {
            let series: Vec<(SimTime, f64)> = vals
                .iter()
                .enumerate()
                .map(|(i, v)| (SimTime::from_unix(i as u64 * 86_400), *v))
                .collect();
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(0.0, f64::max);
            let v = sample_series(&series, SimTime::from_unix(at * 40_000)).unwrap();
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }

        /// Standard-normal sampler produces finite values with plausible
        /// moments.
        #[test]
        fn normal_sampler_sane(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 2_000;
            let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            prop_assert!(samples.iter().all(|x| x.is_finite()));
            prop_assert!(mean.abs() < 0.12, "mean {mean}");
            prop_assert!((var - 1.0).abs() < 0.25, "var {var}");
        }
    }
}
