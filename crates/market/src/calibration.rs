//! Calibrated ETH/ETC→USD price series — the substitute for the paper's
//! coinmarketcap.com data source (see DESIGN.md substitution table).
//!
//! The series are jump-diffusions whose anchors follow the measured 2016–17
//! narrative the paper relies on:
//!
//! * ETH ≈ $12 at the fork, sagging through the autumn DoS attacks, ≈ $8
//!   around the Zcash launch and into winter, then the **March 2017 surge**
//!   to ~$50 (Enterprise Ethereum Alliance press coverage — the paper's
//!   hypothesis for the speculation influx).
//! * ETC lists days after the fork near ~$0.9, spikes on exchange listings,
//!   settles ≈ $1.1–1.5, and rises with the spring market to ~$2.5–5.

use fork_primitives::time::{DAO_FORK_TIMESTAMP, ZCASH_LAUNCH_TIMESTAMP};
use fork_primitives::SimTime;
use rand::Rng;

use crate::process::{sample_series, JumpDiffusion};

/// Days covered by the calibrated series (fork day .. fork + 280d ≈ end of
/// April 2017, just past the paper's measurement window).
pub const CALIBRATED_DAYS: usize = 280;

/// A daily USD price series for one asset.
#[derive(Debug, Clone)]
pub struct PriceSeries {
    /// Asset label ("ETH", "ETC").
    pub label: &'static str,
    points: Vec<(SimTime, f64)>,
}

impl PriceSeries {
    /// Builds from raw points (must be non-empty, time-ascending).
    pub fn from_points(label: &'static str, points: Vec<(SimTime, f64)>) -> Self {
        assert!(!points.is_empty(), "price series cannot be empty");
        debug_assert!(points.windows(2).all(|w| w[0].0 <= w[1].0));
        PriceSeries { label, points }
    }

    /// USD price at `t` (interpolated, clamped at the ends).
    pub fn usd_at(&self, t: SimTime) -> f64 {
        sample_series(&self.points, t).expect("non-empty by construction")
    }

    /// The raw daily points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// First covered instant.
    pub fn start(&self) -> SimTime {
        self.points[0].0
    }

    /// Last covered instant.
    pub fn end(&self) -> SimTime {
        self.points[self.points.len() - 1].0
    }
}

/// The correlation between daily ETH and ETC log-returns (crypto assets
/// co-move; part of why Figure 3's curves track so closely).
pub const PAIR_CORRELATION: f64 = 0.8;

/// The calibrated ETH and ETC USD series, generated **jointly** with a
/// common market factor at [`PAIR_CORRELATION`]. This is the generator the
/// scenario presets and figure pipeline use.
pub fn calibrated_pair<R: Rng>(rng: &mut R) -> (PriceSeries, PriceSeries) {
    let (eth_points, etc_points) = crate::process::correlated_pair(
        &eth_process(),
        &etc_process(),
        (12.0, 0.90),
        SimTime::from_unix(DAO_FORK_TIMESTAMP),
        CALIBRATED_DAYS,
        PAIR_CORRELATION,
        rng,
    );
    (
        PriceSeries::from_points("ETH", eth_points),
        PriceSeries::from_points("ETC", etc_points),
    )
}

fn eth_process() -> JumpDiffusion {
    let fork = SimTime::from_unix(DAO_FORK_TIMESTAMP);
    let zcash = SimTime::from_unix(ZCASH_LAUNCH_TIMESTAMP);
    let march = fork.plus_days(225);
    JumpDiffusion::new(-0.0013, 0.018)
        .with_jump(fork.plus_days(60), 0.92)
        .with_jump(zcash, 0.95)
        .with_jump(fork.plus_days(140), 1.08)
        .with_jump(march, 1.7)
        .with_jump(march.plus_days(8), 1.6)
        .with_jump(march.plus_days(16), 1.4)
}

fn etc_process() -> JumpDiffusion {
    let fork = SimTime::from_unix(DAO_FORK_TIMESTAMP);
    let zcash = SimTime::from_unix(ZCASH_LAUNCH_TIMESTAMP);
    let march = fork.plus_days(225);
    JumpDiffusion::new(-0.0008, 0.025)
        .with_jump(fork.plus_days(4), 1.9)
        .with_jump(fork.plus_days(12), 0.65)
        .with_jump(zcash, 0.95)
        .with_jump(fork.plus_days(140), 1.05)
        .with_jump(march, 1.5)
        .with_jump(march.plus_days(10), 1.45)
}

/// The calibrated ETH/USD series (independent draw; prefer
/// [`calibrated_pair`] when both series are needed).
pub fn eth_usd<R: Rng>(rng: &mut R) -> PriceSeries {
    let fork = SimTime::from_unix(DAO_FORK_TIMESTAMP);
    let zcash = SimTime::from_unix(ZCASH_LAUNCH_TIMESTAMP);
    // March 2017 surge: spread over several jumps starting early March.
    let march = fork.plus_days(225);
    let process = JumpDiffusion::new(-0.0013, 0.018)
        .with_jump(fork.plus_days(60), 0.92) // autumn DoS attack jitters
        .with_jump(zcash, 0.95)
        .with_jump(fork.plus_days(140), 1.08) // winter recovery
        .with_jump(march, 1.7)
        .with_jump(march.plus_days(8), 1.6)
        .with_jump(march.plus_days(16), 1.4);
    PriceSeries::from_points("ETH", process.series(12.0, fork, CALIBRATED_DAYS, rng))
}

/// The calibrated ETC/USD series.
pub fn etc_usd<R: Rng>(rng: &mut R) -> PriceSeries {
    let fork = SimTime::from_unix(DAO_FORK_TIMESTAMP);
    let zcash = SimTime::from_unix(ZCASH_LAUNCH_TIMESTAMP);
    let march = fork.plus_days(225);
    let process = JumpDiffusion::new(-0.0008, 0.025)
        .with_jump(fork.plus_days(4), 1.9) // Poloniex listing pop
        .with_jump(fork.plus_days(12), 0.65) // listing froth unwinds
        .with_jump(zcash, 0.95)
        .with_jump(fork.plus_days(140), 1.05)
        .with_jump(march, 1.5)
        .with_jump(march.plus_days(10), 1.45);
    PriceSeries::from_points("ETC", process.series(0.90, fork, CALIBRATED_DAYS, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn series() -> (PriceSeries, PriceSeries) {
        let mut rng = StdRng::seed_from_u64(2016);
        (eth_usd(&mut rng), etc_usd(&mut rng))
    }

    #[test]
    fn fork_day_anchors() {
        let (eth, etc) = series();
        let fork = SimTime::from_unix(DAO_FORK_TIMESTAMP);
        assert!((eth.usd_at(fork) - 12.0).abs() < 0.01);
        assert!((etc.usd_at(fork) - 0.90).abs() < 0.01);
    }

    #[test]
    fn eth_always_dominates_etc() {
        // The paper's premise: ETH holds the overwhelming share of value.
        let (eth, etc) = series();
        let fork = SimTime::from_unix(DAO_FORK_TIMESTAMP);
        for d in 0..CALIBRATED_DAYS as u64 {
            let t = fork.plus_days(d);
            assert!(
                eth.usd_at(t) > 2.0 * etc.usd_at(t),
                "day {d}: {} vs {}",
                eth.usd_at(t),
                etc.usd_at(t)
            );
        }
    }

    #[test]
    fn march_surge_present() {
        let (eth, _) = series();
        let fork = SimTime::from_unix(DAO_FORK_TIMESTAMP);
        let winter = eth.usd_at(fork.plus_days(180));
        let spring = eth.usd_at(fork.plus_days(260));
        assert!(
            spring > 2.5 * winter,
            "no March surge: winter {winter}, spring {spring}"
        );
        assert!(spring > 20.0, "spring ETH {spring} below narrative range");
    }

    #[test]
    fn etc_settles_around_a_dollar_then_rises() {
        let (_, etc) = series();
        let fork = SimTime::from_unix(DAO_FORK_TIMESTAMP);
        let autumn = etc.usd_at(fork.plus_days(100));
        assert!((0.4..4.0).contains(&autumn), "autumn ETC {autumn}");
        let spring = etc.usd_at(fork.plus_days(260));
        assert!(spring > autumn, "ETC should rise by spring");
    }

    #[test]
    fn series_cover_study_window() {
        let (eth, _) = series();
        // Figure 2 runs to late March / April 2017: day 250+.
        assert!(eth.end().secs_since(eth.start()) >= 250 * 86_400);
    }

    #[test]
    fn pair_is_strongly_correlated() {
        // Daily log-returns of the jointly generated pair must correlate
        // near PAIR_CORRELATION (the common market factor).
        let mut rng = StdRng::seed_from_u64(99);
        let (eth, etc) = calibrated_pair(&mut rng);
        let rets = |s: &PriceSeries| -> Vec<f64> {
            s.points()
                .windows(2)
                .map(|w| (w[1].1 / w[0].1).ln())
                .collect()
        };
        let (ra, rb) = (rets(&eth), rets(&etc));
        // Exclude scheduled jump days (one-sided outliers ≫ the diffusive
        // σ ≈ 0.02 would dominate the sample variance); the factor
        // correlation is a property of the diffusive component.
        let pairs: Vec<(f64, f64)> = ra
            .iter()
            .zip(&rb)
            .filter(|(x, y)| x.abs() < 0.12 && y.abs() < 0.12)
            .map(|(x, y)| (*x, *y))
            .collect();
        let a: Vec<f64> = pairs.iter().map(|(x, _)| *x).collect();
        let b: Vec<f64> = pairs.iter().map(|(_, y)| *y).collect();
        let n = a.len() as f64;
        let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (x, y) in a.iter().zip(&b) {
            cov += (x - ma) * (y - mb);
            va += (x - ma) * (x - ma);
            vb += (y - mb) * (y - mb);
        }
        let corr = cov / (va.sqrt() * vb.sqrt());
        assert!(
            (corr - PAIR_CORRELATION).abs() < 0.15,
            "return correlation {corr} vs target {PAIR_CORRELATION}"
        );
    }

    #[test]
    fn pair_keeps_the_anchors() {
        let mut rng = StdRng::seed_from_u64(2016);
        let (eth, etc) = calibrated_pair(&mut rng);
        let fork = SimTime::from_unix(DAO_FORK_TIMESTAMP);
        assert!((eth.usd_at(fork) - 12.0).abs() < 0.01);
        assert!((etc.usd_at(fork) - 0.90).abs() < 0.01);
        for d in 0..CALIBRATED_DAYS as u64 {
            let t = fork.plus_days(d);
            assert!(eth.usd_at(t) > 2.0 * etc.usd_at(t), "day {d}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = eth_usd(&mut StdRng::seed_from_u64(5)).points().to_vec();
        let b = eth_usd(&mut StdRng::seed_from_u64(5)).points().to_vec();
        assert_eq!(a, b);
    }
}
