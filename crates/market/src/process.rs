//! Price processes: geometric Brownian motion with scheduled jump shocks.

use fork_primitives::SimTime;
use rand::Rng;

/// A standard-normal sample via Box–Muller (keeps the dependency set to the
/// sanctioned list; `rand` 0.8 ships no Normal distribution itself).
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// A scheduled multiplicative shock (news event, listing, exploit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jump {
    /// When the shock lands.
    pub at: SimTime,
    /// Multiplicative factor applied to the price level (0.7 = −30%).
    pub factor: f64,
}

/// Daily-step GBM with jumps: `S_{t+1} = S_t · exp(μ − σ²/2 + σ·Z) · J_t`.
#[derive(Debug, Clone)]
pub struct JumpDiffusion {
    /// Daily drift μ.
    pub mu: f64,
    /// Daily volatility σ.
    pub sigma: f64,
    /// Scheduled shocks (applied on the day containing `at`).
    pub jumps: Vec<Jump>,
}

impl JumpDiffusion {
    /// A driftless process with the given daily volatility.
    pub fn new(mu: f64, sigma: f64) -> Self {
        JumpDiffusion {
            mu,
            sigma,
            jumps: Vec::new(),
        }
    }

    /// Adds a scheduled shock.
    pub fn with_jump(mut self, at: SimTime, factor: f64) -> Self {
        self.jumps.push(Jump { at, factor });
        self
    }

    /// Generates a daily price series of `days` points starting at `start`
    /// with initial price `s0`.
    pub fn series<R: Rng>(
        &self,
        s0: f64,
        start: SimTime,
        days: usize,
        rng: &mut R,
    ) -> Vec<(SimTime, f64)> {
        let mut out = Vec::with_capacity(days);
        let mut price = s0;
        for d in 0..days {
            let t = start.plus_days(d as u64);
            // Apply any jump scheduled within this day.
            for j in &self.jumps {
                if j.at.day_bucket() == t.day_bucket() {
                    price *= j.factor;
                }
            }
            out.push((t, price));
            let z: f64 = standard_normal(rng);
            price *= (self.mu - 0.5 * self.sigma * self.sigma + self.sigma * z).exp();
            price = price.max(1e-9);
        }
        out
    }
}

/// A daily price series: one `(time, price)` sample per simulated day.
pub type DailySeries = Vec<(SimTime, f64)>;

/// Generates two daily price series driven by a **common market factor**:
/// each day's log-return shock is `√ρ·z_market + √(1−ρ)·z_own`, giving the
/// pair correlation `ρ`. Crypto assets co-move strongly — this is part of
/// why the paper's Figure 3 curves track each other so tightly.
pub fn correlated_pair<R: Rng>(
    a: &JumpDiffusion,
    b: &JumpDiffusion,
    s0: (f64, f64),
    start: SimTime,
    days: usize,
    rho: f64,
    rng: &mut R,
) -> (DailySeries, DailySeries) {
    let rho = rho.clamp(0.0, 1.0);
    let (w_m, w_i) = (rho.sqrt(), (1.0 - rho).sqrt());
    let mut out_a = Vec::with_capacity(days);
    let mut out_b = Vec::with_capacity(days);
    let (mut pa, mut pb) = s0;
    for d in 0..days {
        let t = start.plus_days(d as u64);
        for j in &a.jumps {
            if j.at.day_bucket() == t.day_bucket() {
                pa *= j.factor;
            }
        }
        for j in &b.jumps {
            if j.at.day_bucket() == t.day_bucket() {
                pb *= j.factor;
            }
        }
        out_a.push((t, pa));
        out_b.push((t, pb));
        let z_market = standard_normal(rng);
        let za = w_m * z_market + w_i * standard_normal(rng);
        let zb = w_m * z_market + w_i * standard_normal(rng);
        pa *= (a.mu - 0.5 * a.sigma * a.sigma + a.sigma * za).exp();
        pb *= (b.mu - 0.5 * b.sigma * b.sigma + b.sigma * zb).exp();
        pa = pa.max(1e-9);
        pb = pb.max(1e-9);
    }
    (out_a, out_b)
}

/// Linearly interpolates a daily series at `t` (clamping at the ends).
/// Returns `None` for an empty series.
pub fn sample_series(series: &[(SimTime, f64)], t: SimTime) -> Option<f64> {
    if series.is_empty() {
        return None;
    }
    if t <= series[0].0 {
        return Some(series[0].1);
    }
    if t >= series[series.len() - 1].0 {
        return Some(series[series.len() - 1].1);
    }
    let idx = series.partition_point(|(ts, _)| *ts <= t);
    let (t0, v0) = series[idx - 1];
    let (t1, v1) = series[idx];
    let span = t1.secs_since(t0) as f64;
    if span == 0.0 {
        return Some(v0);
    }
    let frac = t.secs_since(t0) as f64 / span;
    Some(v0 + (v1 - v0) * frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn series_has_requested_shape() {
        let p = JumpDiffusion::new(0.0, 0.05);
        let mut rng = StdRng::seed_from_u64(1);
        let s = p.series(10.0, SimTime::from_unix(0), 100, &mut rng);
        assert_eq!(s.len(), 100);
        assert_eq!(s[0].1, 10.0);
        for w in s.windows(2) {
            assert_eq!(w[1].0.day_bucket(), w[0].0.day_bucket() + 1);
            assert!(w[1].1 > 0.0);
        }
    }

    #[test]
    fn zero_vol_zero_drift_is_constant() {
        let p = JumpDiffusion::new(0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let s = p.series(5.0, SimTime::from_unix(0), 10, &mut rng);
        for (_, v) in s {
            assert!((v - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn jumps_apply_on_their_day() {
        let shock_day = SimTime::from_unix(0).plus_days(5);
        let p = JumpDiffusion::new(0.0, 0.0).with_jump(shock_day, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let s = p.series(10.0, SimTime::from_unix(0), 10, &mut rng);
        assert!((s[4].1 - 10.0).abs() < 1e-12);
        assert!((s[5].1 - 5.0).abs() < 1e-12);
        assert!((s[9].1 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let p = JumpDiffusion::new(0.001, 0.08);
        let a = p.series(
            10.0,
            SimTime::from_unix(0),
            50,
            &mut StdRng::seed_from_u64(7),
        );
        let b = p.series(
            10.0,
            SimTime::from_unix(0),
            50,
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn interpolation_midpoint() {
        let series = vec![
            (SimTime::from_unix(0), 10.0),
            (SimTime::from_unix(86_400), 20.0),
        ];
        let mid = sample_series(&series, SimTime::from_unix(43_200)).unwrap();
        assert!((mid - 15.0).abs() < 1e-9);
        // Clamping.
        assert_eq!(sample_series(&series, SimTime::from_unix(0)), Some(10.0));
        assert_eq!(
            sample_series(&series, SimTime::from_unix(1_000_000)),
            Some(20.0)
        );
        assert_eq!(sample_series(&[], SimTime::from_unix(0)), None);
    }

    #[test]
    fn positive_drift_grows_on_average() {
        let p = JumpDiffusion::new(0.01, 0.02);
        let mut rng = StdRng::seed_from_u64(9);
        let mut final_sum = 0.0;
        for _ in 0..50 {
            let s = p.series(10.0, SimTime::from_unix(0), 200, &mut rng);
            final_sum += s.last().unwrap().1;
        }
        let mean_final = final_sum / 50.0;
        assert!(mean_final > 10.0 * 1.5, "mean final {mean_final}");
    }
}
