//! Rational hashpower allocation — the mechanism behind Figure 3.
//!
//! The paper finds the expected hashes-per-USD of ETH and ETC mining to be
//! "almost identical", concluding the market is efficient. That equilibrium
//! has a simple mechanism: GPU hashpower (no ASICs for Ethash, paper §3.3)
//! can switch chains freely, so miners flow toward the more profitable chain
//! until profitability equalizes. At the difficulty equilibrium
//! (`D ≈ H · target_time`), hashes/USD on chain *i* is
//! `D_i / (5 · P_i) ∝ H_i / P_i`, so the fixed point is **hashpower shares
//! proportional to price**.
//!
//! [`HashpowerAllocator`] implements a *partial-adjustment* dynamic toward
//! that fixed point with an ETC loyalty floor (the ideological "code is law"
//! miners who never left), plus an exogenous total-hashpower path that dips
//! at the Zcash launch — together these produce exactly the dips and rallies
//! the paper's Figure 3 narrates.

/// Allocation of total hashpower between the two chains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HashpowerSplit {
    /// Fraction on ETH, in `[0, 1]`.
    pub eth_fraction: f64,
}

impl HashpowerSplit {
    /// Fraction on ETC.
    pub fn etc_fraction(&self) -> f64 {
        1.0 - self.eth_fraction
    }
}

/// Partial-adjustment allocator.
#[derive(Debug, Clone, Copy)]
pub struct HashpowerAllocator {
    /// Per-step adjustment rate toward the rational target, in `(0, 1]`.
    /// Low values model switching frictions (reconfiguration, pool moves).
    pub adjustment_rate: f64,
    /// Minimum fraction that stays on ETC regardless of profitability
    /// (ideological miners; keeps ETC alive as observed).
    pub etc_loyalty_floor: f64,
    /// Minimum fraction that stays on ETH.
    pub eth_loyalty_floor: f64,
}

impl Default for HashpowerAllocator {
    fn default() -> Self {
        HashpowerAllocator {
            adjustment_rate: 0.25,
            etc_loyalty_floor: 0.02,
            eth_loyalty_floor: 0.50,
        }
    }
}

impl HashpowerAllocator {
    /// The profit-equalizing target split for the given USD prices.
    pub fn rational_target(&self, eth_usd: f64, etc_usd: f64) -> HashpowerSplit {
        let total = eth_usd.max(0.0) + etc_usd.max(0.0);
        let raw = if total <= 0.0 {
            0.5
        } else {
            eth_usd.max(0.0) / total
        };
        HashpowerSplit {
            eth_fraction: raw
                .max(self.eth_loyalty_floor)
                .min(1.0 - self.etc_loyalty_floor),
        }
    }

    /// One adjustment step from `current` toward the rational target.
    pub fn step(&self, current: HashpowerSplit, eth_usd: f64, etc_usd: f64) -> HashpowerSplit {
        let target = self.rational_target(eth_usd, etc_usd);
        let rate = self.adjustment_rate.clamp(0.0, 1.0);
        HashpowerSplit {
            eth_fraction: current.eth_fraction
                + rate * (target.eth_fraction - current.eth_fraction),
        }
    }
}

/// Exogenous total-hashpower path (hashes/second across both chains plus
/// external exits): a baseline with growth, a Zcash-launch exodus dip and a
/// winter return.
#[derive(Debug, Clone, Copy)]
pub struct TotalHashpowerPath {
    /// Hashrate on fork day, hashes/second.
    pub initial: f64,
    /// Daily growth rate (GPU supply growth through the study).
    pub daily_growth: f64,
    /// Day index (after fork) of the Zcash launch.
    pub zcash_day: u64,
    /// Fraction of hashpower that leaves at the Zcash launch.
    pub zcash_exodus: f64,
    /// Days until the exodus hashpower fully returns.
    pub zcash_return_days: u64,
}

impl Default for TotalHashpowerPath {
    fn default() -> Self {
        TotalHashpowerPath {
            // ~6.2e13 difficulty / 14 s target ≈ 4.4e12 H/s at the fork.
            initial: 4.4e12,
            daily_growth: 0.004,
            zcash_day: 100, // 2016-10-28 is 100 days after 07-20
            zcash_exodus: 0.30,
            zcash_return_days: 45,
        }
    }
}

impl TotalHashpowerPath {
    /// Total hashpower on `day` (days after the fork).
    pub fn at_day(&self, day: u64) -> f64 {
        let base = self.initial * (1.0 + self.daily_growth).powi(day as i32);
        if day < self.zcash_day {
            return base;
        }
        let since = day - self.zcash_day;
        if since >= self.zcash_return_days {
            return base;
        }
        let returned = since as f64 / self.zcash_return_days as f64;
        base * (1.0 - self.zcash_exodus * (1.0 - returned))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_tracks_price_ratio() {
        let a = HashpowerAllocator {
            eth_loyalty_floor: 0.0,
            etc_loyalty_floor: 0.0,
            ..HashpowerAllocator::default()
        };
        let t = a.rational_target(12.0, 1.2);
        assert!((t.eth_fraction - 12.0 / 13.2).abs() < 1e-12);
        assert!((t.etc_fraction() - 1.2 / 13.2).abs() < 1e-12);
    }

    #[test]
    fn loyalty_floors_bind() {
        let a = HashpowerAllocator::default();
        // Even with ETC worthless, 2% stays.
        let t = a.rational_target(10.0, 0.0);
        assert!((t.etc_fraction() - 0.02).abs() < 1e-12);
        // Even with ETH crashing, half stays.
        let t = a.rational_target(0.1, 100.0);
        assert!((t.eth_fraction - 0.50).abs() < 1e-12);
    }

    #[test]
    fn convergence_to_fixed_point() {
        let a = HashpowerAllocator::default();
        let mut split = HashpowerSplit { eth_fraction: 0.5 };
        for _ in 0..100 {
            split = a.step(split, 12.0, 1.2);
        }
        let target = a.rational_target(12.0, 1.2);
        assert!((split.eth_fraction - target.eth_fraction).abs() < 1e-9);
    }

    #[test]
    fn equilibrium_equalizes_hashes_per_usd() {
        // At the fixed point with no binding floors, D_i/(5 P_i) match
        // across chains (at difficulty equilibrium D = H * 14).
        let a = HashpowerAllocator {
            eth_loyalty_floor: 0.0,
            etc_loyalty_floor: 0.0,
            ..HashpowerAllocator::default()
        };
        let (p_eth, p_etc) = (12.0, 1.3);
        let split = a.rational_target(p_eth, p_etc);
        let total_h = 4.4e12;
        let d_eth = split.eth_fraction * total_h * 14.0;
        let d_etc = split.etc_fraction() * total_h * 14.0;
        let hpu_eth = d_eth / 5.0 / p_eth;
        let hpu_etc = d_etc / 5.0 / p_etc;
        assert!(
            (hpu_eth - hpu_etc).abs() / hpu_eth < 1e-9,
            "{hpu_eth} vs {hpu_etc}"
        );
    }

    #[test]
    fn partial_adjustment_is_gradual() {
        let a = HashpowerAllocator {
            adjustment_rate: 0.1,
            ..HashpowerAllocator::default()
        };
        let split = HashpowerSplit { eth_fraction: 0.5 };
        let next = a.step(split, 12.0, 1.2);
        let target = a.rational_target(12.0, 1.2);
        // Moved toward target but not all the way.
        assert!(next.eth_fraction > 0.5);
        assert!(next.eth_fraction < target.eth_fraction);
    }

    #[test]
    fn hashpower_path_zcash_dip_and_recovery() {
        let p = TotalHashpowerPath::default();
        let before = p.at_day(99);
        let at = p.at_day(100);
        let mid = p.at_day(120);
        let after = p.at_day(146);
        assert!(at < 0.82 * before, "exodus missing: {before} -> {at}");
        assert!(mid > at, "no gradual return");
        // Fully returned (and grown) after the window.
        assert!(after > before);
    }

    #[test]
    fn hashpower_growth_compounds() {
        let p = TotalHashpowerPath::default();
        assert!(
            p.at_day(250) > p.at_day(0) * 2.0,
            "ETH's mining power 'increased tremendously'"
        );
    }
}
