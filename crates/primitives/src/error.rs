//! Error types for primitive parsing and arithmetic.

use core::fmt;

/// Errors from parsing or converting primitive values.
///
/// Hand-rolled (no `thiserror`) to keep the dependency set to the sanctioned
/// list; each variant carries the offending datum for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing diagnostics
pub enum PrimitiveError {
    /// Hex string had an odd number of digits.
    OddHexLength { len: usize },
    /// A byte outside `[0-9a-fA-F]` appeared in a hex string.
    InvalidHexChar { byte: u8 },
    /// A byte outside `[0-9]` appeared in a decimal string.
    InvalidDigit { byte: u8 },
    /// Decimal literal does not fit in 256 bits.
    IntegerOverflow,
    /// Big-endian integer encoding longer than 32 bytes.
    IntegerTooLarge { len: usize },
    /// Empty string where an integer was expected.
    EmptyInteger,
    /// Hash literal was not exactly 32 bytes.
    BadHashLength { len: usize },
    /// Address literal was not exactly 20 bytes.
    BadAddressLength { len: usize },
}

impl fmt::Display for PrimitiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OddHexLength { len } => write!(f, "hex string has odd length {len}"),
            Self::InvalidHexChar { byte } => write!(f, "invalid hex character {byte:#04x}"),
            Self::InvalidDigit { byte } => write!(f, "invalid decimal digit {byte:#04x}"),
            Self::IntegerOverflow => write!(f, "integer does not fit in 256 bits"),
            Self::IntegerTooLarge { len } => {
                write!(f, "big-endian integer of {len} bytes exceeds 32")
            }
            Self::EmptyInteger => write!(f, "empty string is not an integer"),
            Self::BadHashLength { len } => write!(f, "hash must be 32 bytes, got {len}"),
            Self::BadAddressLength { len } => write!(f, "address must be 20 bytes, got {len}"),
        }
    }
}

impl std::error::Error for PrimitiveError {}

/// A chain identifier, as introduced by EIP-155 for replay protection.
///
/// During the study period ETH adopted chain id 1 and ETC chain id 61;
/// pre-EIP-155 ("legacy") transactions carry no chain id and are replayable
/// across any chains sharing a transaction format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChainId(pub u64);

impl ChainId {
    /// Ethereum mainnet (post-DAO-fork chain).
    pub const ETH: ChainId = ChainId(1);
    /// Ethereum Classic.
    pub const ETC: ChainId = ChainId(61);
}

impl fmt::Display for ChainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ChainId::ETH => write!(f, "ETH(1)"),
            ChainId::ETC => write!(f, "ETC(61)"),
            ChainId(other) => write!(f, "chain({other})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_datum() {
        let msg = PrimitiveError::OddHexLength { len: 5 }.to_string();
        assert!(msg.contains('5'));
        let msg = PrimitiveError::BadHashLength { len: 31 }.to_string();
        assert!(msg.contains("31"));
    }

    #[test]
    fn chain_id_constants() {
        assert_eq!(ChainId::ETH.0, 1);
        assert_eq!(ChainId::ETC.0, 61);
        assert_eq!(ChainId::ETH.to_string(), "ETH(1)");
        assert_eq!(ChainId(99).to_string(), "chain(99)");
    }
}
