//! Simulation time and civil-calendar mapping.
//!
//! The simulator runs on plain Unix timestamps (seconds). The paper's figures
//! are plotted against calendar dates (07/21, 08/04, …), so this module also
//! provides a dependency-free civil-calendar conversion (Hinnant's
//! `days_from_civil` algorithm) used by the analytics renderers.

use core::fmt;

/// Unix timestamp of ETH mainnet block 1,920,000 — the DAO hard-fork block,
/// mined 2016-07-20 13:20:39 UTC. All scenario presets anchor here.
pub const DAO_FORK_TIMESTAMP: u64 = 1_469_020_839;

/// Unix timestamp of the ETH "DoS" hard fork (EIP-150 gas repricing),
/// block 2,463,000, 2016-11-22.
pub const ETH_DOS_FORK_TIMESTAMP: u64 = 1_479_831_344;

/// Unix timestamp of the ETC replay-protection fork (ECIP-1015 / EIP-155
/// style chain id), block 3,000,000, 2017-01-13.
pub const ETC_REPLAY_FORK_TIMESTAMP: u64 = 1_484_350_000;

/// Approximate Unix timestamp of the Zcash launch (2016-10-28), used by the
/// market model's exodus shock.
pub const ZCASH_LAUNCH_TIMESTAMP: u64 = 1_477_648_800;

/// Ethereum's target inter-block time during the study period, in seconds.
pub const TARGET_BLOCK_TIME_SECS: u64 = 14;

/// Seconds in a day, for binning.
pub const SECS_PER_DAY: u64 = 86_400;
/// Seconds in an hour, for binning.
pub const SECS_PER_HOUR: u64 = 3_600;

/// A point in simulated time: seconds since the Unix epoch.
///
/// Stored as `u64`; the simulation never runs before 1970 or past year ~580
/// billion, so no signedness is needed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero (Unix epoch). Scenario presets normally start at
    /// [`DAO_FORK_TIMESTAMP`] minus a warm-up window.
    pub const EPOCH: SimTime = SimTime(0);

    /// Constructs from a raw Unix timestamp.
    pub const fn from_unix(secs: u64) -> Self {
        SimTime(secs)
    }

    /// The raw Unix timestamp.
    pub const fn as_unix(&self) -> u64 {
        self.0
    }

    /// Adds a number of seconds.
    pub const fn plus_secs(&self, secs: u64) -> SimTime {
        SimTime(self.0 + secs)
    }

    /// Adds whole days.
    pub const fn plus_days(&self, days: u64) -> SimTime {
        SimTime(self.0 + days * SECS_PER_DAY)
    }

    /// Saturating difference in seconds (`self - earlier`).
    pub fn secs_since(&self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Index of the UTC hour bucket containing this time.
    pub const fn hour_bucket(&self) -> u64 {
        self.0 / SECS_PER_HOUR
    }

    /// Index of the UTC day bucket containing this time.
    pub const fn day_bucket(&self) -> u64 {
        self.0 / SECS_PER_DAY
    }

    /// The civil calendar date (UTC) of this instant.
    pub fn date(&self) -> CivilDate {
        CivilDate::from_days((self.0 / SECS_PER_DAY) as i64)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.0, self.date())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.date())
    }
}

/// A UTC calendar date.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct CivilDate {
    /// Gregorian year (astronomical numbering).
    pub year: i32,
    /// Month, 1–12.
    pub month: u8,
    /// Day of month, 1–31.
    pub day: u8,
}

impl CivilDate {
    /// Builds a date; panics on out-of-range month/day (construction sites are
    /// all compile-time constants in this workspace).
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month out of range");
        assert!((1..=31).contains(&day), "day out of range");
        CivilDate { year, month, day }
    }

    /// Days since the Unix epoch for this date (Hinnant's civil_from_days
    /// inverse).
    pub fn to_days(&self) -> i64 {
        let y = self.year as i64 - if self.month <= 2 { 1 } else { 0 };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = (self.month as i64 + 9) % 12;
        let doy = (153 * mp + 2) / 5 + self.day as i64 - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    /// Converts days since the Unix epoch to a civil date (Hinnant's
    /// `civil_from_days`).
    pub fn from_days(days: i64) -> Self {
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8;
        CivilDate {
            year: (y + if m <= 2 { 1 } else { 0 }) as i32,
            month: m,
            day: d,
        }
    }

    /// Midnight UTC at the start of this date.
    pub fn to_sim_time(&self) -> SimTime {
        SimTime((self.to_days() as u64) * SECS_PER_DAY)
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(CivilDate::from_days(0), CivilDate::new(1970, 1, 1));
        assert_eq!(CivilDate::new(1970, 1, 1).to_days(), 0);
    }

    #[test]
    fn dao_fork_date() {
        let t = SimTime::from_unix(DAO_FORK_TIMESTAMP);
        assert_eq!(t.date(), CivilDate::new(2016, 7, 20));
    }

    #[test]
    fn eth_dos_fork_date() {
        let t = SimTime::from_unix(ETH_DOS_FORK_TIMESTAMP);
        assert_eq!(t.date(), CivilDate::new(2016, 11, 22));
    }

    #[test]
    fn etc_replay_fork_date() {
        let t = SimTime::from_unix(ETC_REPLAY_FORK_TIMESTAMP);
        assert_eq!(t.date(), CivilDate::new(2017, 1, 13));
    }

    #[test]
    fn zcash_launch_date() {
        let t = SimTime::from_unix(ZCASH_LAUNCH_TIMESTAMP);
        assert_eq!(t.date(), CivilDate::new(2016, 10, 28));
    }

    #[test]
    fn civil_roundtrip_over_leap_years() {
        // Sweep a window containing the 2016 leap day and a century boundary.
        for days in [16_000i64, 16_861, 17_000, 47_000, -1, -365] {
            let d = CivilDate::from_days(days);
            assert_eq!(d.to_days(), days, "date {d}");
        }
        assert_eq!(CivilDate::from_days(16_860), CivilDate::new(2016, 2, 29));
    }

    #[test]
    fn buckets_and_arithmetic() {
        let t = SimTime::from_unix(100 * SECS_PER_DAY + 5 * SECS_PER_HOUR + 7);
        assert_eq!(t.day_bucket(), 100);
        assert_eq!(t.hour_bucket(), 100 * 24 + 5);
        assert_eq!(t.plus_days(2).day_bucket(), 102);
        assert_eq!(t.plus_secs(10).secs_since(t), 10);
        assert_eq!(t.secs_since(t.plus_secs(10)), 0, "saturates");
    }

    #[test]
    fn date_to_sim_time_is_midnight() {
        let d = CivilDate::new(2016, 7, 21);
        let t = d.to_sim_time();
        assert_eq!(t.date(), d);
        assert_eq!(t.as_unix() % SECS_PER_DAY, 0);
    }
}
