//! # fork-primitives
//!
//! Foundation types for the *Stick a fork in it* reproduction: 256-bit
//! arithmetic, hashes, addresses, ether denominations, chain identifiers and
//! simulation time.
//!
//! Everything here is implemented from scratch (no external numeric or hex
//! crates) so the chain rules built on top are fully auditable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod hash;
pub mod hex;
pub mod time;
pub mod u256;
pub mod units;

pub use error::{ChainId, PrimitiveError};
pub use hash::{Address, H256};
pub use time::{CivilDate, SimTime};
pub use u256::U256;

#[cfg(test)]
mod proptests {
    use crate::u256::U256;
    use proptest::prelude::*;

    fn arb_u256() -> impl Strategy<Value = U256> {
        any::<[u64; 4]>().prop_map(U256)
    }

    proptest! {
        #[test]
        fn add_commutes(a in arb_u256(), b in arb_u256()) {
            prop_assert_eq!(a.overflowing_add(b), b.overflowing_add(a));
        }

        #[test]
        fn add_sub_roundtrip(a in arb_u256(), b in arb_u256()) {
            let (sum, _) = a.overflowing_add(b);
            let (back, _) = sum.overflowing_sub(b);
            prop_assert_eq!(back, a);
        }

        #[test]
        fn mul_commutes(a in arb_u256(), b in arb_u256()) {
            prop_assert_eq!(a.overflowing_mul(b), b.overflowing_mul(a));
        }

        #[test]
        fn div_rem_reconstructs(a in arb_u256(), b in arb_u256()) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(b);
            prop_assert!(r < b);
            let (qb, o1) = q.overflowing_mul(b);
            prop_assert!(!o1);
            let (back, o2) = qb.overflowing_add(r);
            prop_assert!(!o2);
            prop_assert_eq!(back, a);
        }

        #[test]
        fn be_bytes_roundtrip(a in arb_u256()) {
            prop_assert_eq!(U256::from_be_slice(&a.to_be_bytes()).unwrap(), a);
            prop_assert_eq!(U256::from_be_slice(&a.to_be_bytes_trimmed()).unwrap(), a);
        }

        #[test]
        fn dec_string_roundtrip(a in arb_u256()) {
            prop_assert_eq!(U256::from_dec_str(&a.to_dec_string()).unwrap(), a);
        }

        #[test]
        fn shift_left_then_right(a in arb_u256(), s in 0u32..256) {
            // After masking off the bits that fall off the top, shl/shr invert.
            let kept = (a << s) >> s;
            let mask = if s == 0 { U256::MAX } else { U256::MAX >> s };
            prop_assert_eq!(kept, a & mask);
        }

        #[test]
        fn xor_involution(a in arb_u256(), b in arb_u256()) {
            prop_assert_eq!((a ^ b) ^ b, a);
        }

        #[test]
        fn ordering_total(a in arb_u256(), b in arb_u256()) {
            use core::cmp::Ordering::*;
            match a.cmp(&b) {
                Less => prop_assert_eq!(b.cmp(&a), Greater),
                Greater => prop_assert_eq!(b.cmp(&a), Less),
                Equal => prop_assert_eq!(a, b),
            }
        }

        #[test]
        fn hex_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let enc = crate::hex::encode(&bytes);
            prop_assert_eq!(crate::hex::decode(&enc).unwrap(), bytes);
        }

        #[test]
        fn civil_date_roundtrip(days in -100_000i64..100_000) {
            let d = crate::time::CivilDate::from_days(days);
            prop_assert_eq!(d.to_days(), days);
        }
    }
}
