//! Fixed-size hash and address types.

use core::fmt;
use core::str::FromStr;

use crate::error::PrimitiveError;
use crate::u256::U256;

/// A 32-byte hash (block hashes, transaction hashes, state roots).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct H256(pub [u8; 32]);

impl H256 {
    /// The all-zero hash.
    pub const ZERO: H256 = H256([0u8; 32]);

    /// Constructs from raw bytes.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        H256(bytes)
    }

    /// Borrow the underlying bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// True if every byte is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }

    /// Interprets the hash as a big-endian 256-bit integer.
    ///
    /// Used by proof-of-work: a block is valid when `hash_as_u256 <= target`.
    pub fn into_u256(self) -> U256 {
        U256::from_be_slice(&self.0).expect("32 bytes always fit")
    }

    /// Builds a hash from a big-endian integer.
    pub fn from_u256(v: U256) -> Self {
        H256(v.to_be_bytes())
    }

    /// Lexicographic XOR distance to another hash (Kademlia metric).
    pub fn xor_distance(&self, other: &H256) -> U256 {
        self.into_u256() ^ other.into_u256()
    }

    /// First 4 bytes, handy for compact debugging labels.
    pub fn short(&self) -> String {
        crate::hex::encode(&self.0[..4])
    }
}

impl fmt::Debug for H256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", crate::hex::encode(&self.0))
    }
}

impl fmt::Display for H256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromStr for H256 {
    type Err = PrimitiveError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bytes = crate::hex::decode(s)?;
        if bytes.len() != 32 {
            return Err(PrimitiveError::BadHashLength { len: bytes.len() });
        }
        let mut out = [0u8; 32];
        out.copy_from_slice(&bytes);
        Ok(H256(out))
    }
}

impl AsRef<[u8]> for H256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A 20-byte account address, derived (as in Ethereum) from the trailing 20
/// bytes of the Keccak-256 hash of the public key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// The zero address (used for contract-creation transactions' `to` field
    /// being absent, and as a burn sink).
    pub const ZERO: Address = Address([0u8; 20]);

    /// Constructs from raw bytes.
    pub const fn from_bytes(bytes: [u8; 20]) -> Self {
        Address(bytes)
    }

    /// Borrow the underlying bytes.
    pub const fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// Derives an address from the trailing 20 bytes of a 32-byte hash,
    /// mirroring Ethereum's `address = keccak(pubkey)[12..]`.
    pub fn from_hash(h: H256) -> Self {
        let mut out = [0u8; 20];
        out.copy_from_slice(&h.0[12..]);
        Address(out)
    }

    /// True if every byte is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }

    /// First 4 bytes as hex, for logs and rendered tables.
    pub fn short(&self) -> String {
        crate::hex::encode(&self.0[..4])
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", crate::hex::encode(&self.0))
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromStr for Address {
    type Err = PrimitiveError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bytes = crate::hex::decode(s)?;
        if bytes.len() != 20 {
            return Err(PrimitiveError::BadAddressLength { len: bytes.len() });
        }
        let mut out = [0u8; 20];
        out.copy_from_slice(&bytes);
        Ok(Address(out))
    }
}

impl AsRef<[u8]> for Address {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h256_parse_roundtrip() {
        let s = "0x00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff";
        let h: H256 = s.parse().unwrap();
        assert_eq!(format!("{h}"), s);
    }

    #[test]
    fn h256_wrong_length_rejected() {
        assert!("0x1234".parse::<H256>().is_err());
    }

    #[test]
    fn h256_u256_roundtrip() {
        let v = U256::from_u128(0xDEAD_BEEF_CAFE);
        assert_eq!(H256::from_u256(v).into_u256(), v);
    }

    #[test]
    fn xor_distance_symmetry_and_identity() {
        let a = H256([1u8; 32]);
        let b = H256([9u8; 32]);
        assert_eq!(a.xor_distance(&b), b.xor_distance(&a));
        assert!(a.xor_distance(&a).is_zero());
    }

    #[test]
    fn address_from_hash_uses_trailing_bytes() {
        let mut raw = [0u8; 32];
        for (i, b) in raw.iter_mut().enumerate() {
            *b = i as u8;
        }
        let addr = Address::from_hash(H256(raw));
        assert_eq!(addr.0[0], 12);
        assert_eq!(addr.0[19], 31);
    }

    #[test]
    fn address_parse_roundtrip() {
        let s = "0x0011223344556677889900112233445566778899";
        let a: Address = s.parse().unwrap();
        assert_eq!(format!("{a}"), s);
        assert!("0x00".parse::<Address>().is_err());
    }
}
