//! Minimal hex encoding/decoding.
//!
//! Implemented locally rather than pulling a crate: the rest of the workspace
//! needs exactly two functions and strict error reporting.

use crate::error::PrimitiveError;

const ALPHABET: &[u8; 16] = b"0123456789abcdef";

/// Encodes bytes as lowercase hex without a prefix.
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(ALPHABET[(b >> 4) as usize] as char);
        out.push(ALPHABET[(b & 0x0F) as usize] as char);
    }
    out
}

/// Decodes a hex string (case-insensitive, optional `0x` prefix).
///
/// Odd-length input is rejected; callers that accept minimal integer hex
/// should left-pad before calling.
pub fn decode(s: &str) -> Result<Vec<u8>, PrimitiveError> {
    let s = s.strip_prefix("0x").unwrap_or(s);
    if !s.len().is_multiple_of(2) {
        return Err(PrimitiveError::OddHexLength { len: s.len() });
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push(nibble(pair[0])? << 4 | nibble(pair[1])?);
    }
    Ok(out)
}

fn nibble(c: u8) -> Result<u8, PrimitiveError> {
    match c {
        b'0'..=b'9' => Ok(c - b'0'),
        b'a'..=b'f' => Ok(c - b'a' + 10),
        b'A'..=b'F' => Ok(c - b'A' + 10),
        _ => Err(PrimitiveError::InvalidHexChar { byte: c }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = [0x00u8, 0x01, 0x7f, 0x80, 0xff];
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn prefix_and_case() {
        assert_eq!(decode("0xDEADbeef").unwrap(), [0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn empty_is_empty() {
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn odd_length_rejected() {
        assert!(matches!(
            decode("abc"),
            Err(PrimitiveError::OddHexLength { len: 3 })
        ));
    }

    #[test]
    fn invalid_char_rejected() {
        assert!(matches!(
            decode("zz"),
            Err(PrimitiveError::InvalidHexChar { byte: b'z' })
        ));
    }
}
