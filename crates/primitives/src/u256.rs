//! A 256-bit unsigned integer implemented from scratch.
//!
//! Ethereum's difficulty, balances and gas accounting all operate on 256-bit
//! unsigned values. This module provides the arithmetic subset those code paths
//! need: add/sub/mul/div/rem, shifts, bit operations, ordering, decimal and hex
//! parsing/formatting, plus checked/overflowing/saturating variants.
//!
//! Representation is four little-endian `u64` limbs (`limbs[0]` is least
//! significant). All arithmetic is constant-size (no heap allocation).

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{
    Add, AddAssign, BitAnd, BitOr, BitXor, Div, Mul, MulAssign, Not, Rem, Shl, Shr, Sub, SubAssign,
};
use core::str::FromStr;

use crate::error::PrimitiveError;

/// A 256-bit unsigned integer, stored as four little-endian 64-bit limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

impl U256 {
    /// The value `0`.
    pub const ZERO: U256 = U256([0, 0, 0, 0]);
    /// The value `1`.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The maximum representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Constructs from a `u64`.
    #[inline]
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Constructs from a `u128`.
    #[inline]
    pub const fn from_u128(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// Returns true if the value is zero.
    #[inline]
    pub const fn is_zero(&self) -> bool {
        self.0[0] == 0 && self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0
    }

    /// Returns the low 64 bits, discarding the rest.
    #[inline]
    pub const fn low_u64(&self) -> u64 {
        self.0[0]
    }

    /// Returns the low 128 bits, discarding the rest.
    #[inline]
    pub const fn low_u128(&self) -> u128 {
        (self.0[0] as u128) | ((self.0[1] as u128) << 64)
    }

    /// Converts to `u64` if the value fits, otherwise `None`.
    pub fn to_u64(&self) -> Option<u64> {
        if self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0 {
            Some(self.0[0])
        } else {
            None
        }
    }

    /// Converts to `u128` if the value fits, otherwise `None`.
    pub fn to_u128(&self) -> Option<u128> {
        if self.0[2] == 0 && self.0[3] == 0 {
            Some(self.low_u128())
        } else {
            None
        }
    }

    /// Lossy conversion to `f64` (used by analytics where exactness is not
    /// required, e.g. plotting difficulty in units of 10^13).
    pub fn to_f64_lossy(&self) -> f64 {
        let mut acc = 0.0f64;
        // Horner evaluation over limbs, most significant first.
        for limb in self.0.iter().rev() {
            acc = acc * 1.8446744073709552e19 + (*limb as f64);
        }
        acc
    }

    /// Number of significant bits (`0` for zero).
    pub fn bits(&self) -> u32 {
        for (i, limb) in self.0.iter().enumerate().rev() {
            if *limb != 0 {
                return (i as u32) * 64 + (64 - limb.leading_zeros());
            }
        }
        0
    }

    /// Value of bit `i` (little-endian bit order); bits ≥ 256 read as zero.
    pub fn bit(&self, i: u32) -> bool {
        if i >= 256 {
            return false;
        }
        (self.0[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Wrapping addition with a carry-out flag.
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for (i, limb) in out.iter_mut().enumerate() {
            let (a, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (b, c2) = a.overflowing_add(carry as u64);
            *limb = b;
            carry = c1 | c2;
        }
        (U256(out), carry)
    }

    /// Wrapping subtraction with a borrow-out flag.
    pub fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for (i, limb) in out.iter_mut().enumerate() {
            let (a, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (b, b2) = a.overflowing_sub(borrow as u64);
            *limb = b;
            borrow = b1 | b2;
        }
        (U256(out), borrow)
    }

    /// Wrapping multiplication with an overflow flag.
    pub fn overflowing_mul(self, rhs: U256) -> (U256, bool) {
        // Schoolbook multiply over 64-bit limbs into a 512-bit accumulator.
        let mut wide = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let idx = i + j;
                let cur = wide[idx] as u128;
                let prod = (self.0[i] as u128) * (rhs.0[j] as u128) + cur + carry;
                wide[idx] = prod as u64;
                carry = prod >> 64;
            }
            // Propagate the remaining carry above the partial product.
            let mut idx = i + 4;
            while carry != 0 && idx < 8 {
                let sum = wide[idx] as u128 + carry;
                wide[idx] = sum as u64;
                carry = sum >> 64;
                idx += 1;
            }
        }
        let overflow = wide[4] | wide[5] | wide[6] | wide[7] != 0;
        (U256([wide[0], wide[1], wide[2], wide[3]]), overflow)
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: U256) -> Option<U256> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, rhs: U256) -> Option<U256> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked multiplication; `None` on overflow.
    pub fn checked_mul(self, rhs: U256) -> Option<U256> {
        match self.overflowing_mul(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked division; `None` when `rhs` is zero.
    pub fn checked_div(self, rhs: U256) -> Option<U256> {
        if rhs.is_zero() {
            None
        } else {
            Some(self.div_rem(rhs).0)
        }
    }

    /// Checked remainder; `None` when `rhs` is zero.
    pub fn checked_rem(self, rhs: U256) -> Option<U256> {
        if rhs.is_zero() {
            None
        } else {
            Some(self.div_rem(rhs).1)
        }
    }

    /// Saturating addition (clamps at [`U256::MAX`]).
    pub fn saturating_add(self, rhs: U256) -> U256 {
        self.checked_add(rhs).unwrap_or(U256::MAX)
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: U256) -> U256 {
        self.checked_sub(rhs).unwrap_or(U256::ZERO)
    }

    /// Saturating multiplication (clamps at [`U256::MAX`]).
    pub fn saturating_mul(self, rhs: U256) -> U256 {
        self.checked_mul(rhs).unwrap_or(U256::MAX)
    }

    /// Simultaneous quotient and remainder.
    ///
    /// # Panics
    /// Panics if `divisor` is zero; use [`U256::checked_div`] on untrusted input.
    pub fn div_rem(self, divisor: U256) -> (U256, U256) {
        assert!(!divisor.is_zero(), "U256 division by zero");
        if self < divisor {
            return (U256::ZERO, self);
        }
        // Fast path: both fit in u128.
        if self.0[2] == 0 && self.0[3] == 0 && divisor.0[2] == 0 && divisor.0[3] == 0 {
            let a = self.low_u128();
            let b = divisor.low_u128();
            return (U256::from_u128(a / b), U256::from_u128(a % b));
        }
        // Fast path: divisor fits in one limb.
        if divisor.0[1] == 0 && divisor.0[2] == 0 && divisor.0[3] == 0 {
            let d = divisor.0[0];
            let mut rem: u128 = 0;
            let mut q = [0u64; 4];
            for i in (0..4).rev() {
                let cur = (rem << 64) | (self.0[i] as u128);
                q[i] = (cur / d as u128) as u64;
                rem = cur % d as u128;
            }
            return (U256(q), U256::from_u64(rem as u64));
        }
        // General case: binary long division.
        let mut quotient = U256::ZERO;
        let mut remainder = U256::ZERO;
        let n = self.bits();
        for i in (0..n).rev() {
            remainder = remainder << 1;
            if self.bit(i) {
                remainder.0[0] |= 1;
            }
            if remainder >= divisor {
                remainder -= divisor;
                quotient.0[(i / 64) as usize] |= 1 << (i % 64);
            }
        }
        (quotient, remainder)
    }

    /// `2^exp`, wrapping for `exp >= 256`.
    pub fn pow2(exp: u32) -> U256 {
        if exp >= 256 {
            return U256::ZERO;
        }
        U256::ONE << exp
    }

    /// Exponentiation by squaring (wrapping on overflow, as in the EVM's EXP).
    pub fn wrapping_pow(self, mut exp: u64) -> U256 {
        let mut base = self;
        let mut acc = U256::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.overflowing_mul(base).0;
            }
            base = base.overflowing_mul(base).0;
            exp >>= 1;
        }
        acc
    }

    /// Whether bit 255 is set — the sign bit under the EVM's two's-complement
    /// interpretation.
    pub fn is_negative_signed(&self) -> bool {
        self.bit(255)
    }

    /// Two's-complement negation (wrapping).
    pub fn wrapping_neg(self) -> U256 {
        (!self).overflowing_add(U256::ONE).0
    }

    /// EVM `SDIV`: signed division, truncating toward zero; `x / 0 = 0` and
    /// `MIN / −1 = MIN` (the yellow paper's overflow case).
    pub fn sdiv(self, rhs: U256) -> U256 {
        if rhs.is_zero() {
            return U256::ZERO;
        }
        let min = U256::pow2(255);
        if self == min && rhs == U256::MAX {
            return min; // -2^255 / -1 overflows back to -2^255
        }
        let (na, nb) = (self.is_negative_signed(), rhs.is_negative_signed());
        let a = if na { self.wrapping_neg() } else { self };
        let b = if nb { rhs.wrapping_neg() } else { rhs };
        let q = a / b;
        if na != nb {
            q.wrapping_neg()
        } else {
            q
        }
    }

    /// EVM `SMOD`: signed remainder; result takes the dividend's sign,
    /// `x % 0 = 0`.
    pub fn smod(self, rhs: U256) -> U256 {
        if rhs.is_zero() {
            return U256::ZERO;
        }
        let na = self.is_negative_signed();
        let a = if na { self.wrapping_neg() } else { self };
        let b = if rhs.is_negative_signed() {
            rhs.wrapping_neg()
        } else {
            rhs
        };
        let r = a % b;
        if na {
            r.wrapping_neg()
        } else {
            r
        }
    }

    /// Signed comparison under two's complement (EVM `SLT`).
    pub fn slt(&self, rhs: &U256) -> bool {
        match (self.is_negative_signed(), rhs.is_negative_signed()) {
            (true, false) => true,
            (false, true) => false,
            _ => self < rhs,
        }
    }

    /// `(a + b) % m` without intermediate overflow (EVM `ADDMOD`); 0 when
    /// `m` is zero.
    pub fn addmod(self, rhs: U256, m: U256) -> U256 {
        if m.is_zero() {
            return U256::ZERO;
        }
        // Work modulo m on 256-bit values: reduce first, then handle the
        // single possible carry.
        let a = self % m;
        let b = rhs % m;
        let (sum, carry) = a.overflowing_add(b);
        if carry {
            // a + b = 2^256 + sum; 2^256 mod m == (MAX mod m + 1) mod m.
            let wrap = (U256::MAX % m).overflowing_add(U256::ONE).0 % m;
            (sum % m).overflowing_add(wrap).0 % m
        } else {
            sum % m
        }
    }

    /// `(a × b) % m` without intermediate overflow (EVM `MULMOD`); 0 when
    /// `m` is zero. Schoolbook double-and-add — not a hot path.
    pub fn mulmod(self, rhs: U256, m: U256) -> U256 {
        if m.is_zero() {
            return U256::ZERO;
        }
        let mut acc = U256::ZERO;
        let mut a = self % m;
        let b = rhs % m;
        for i in 0..256 {
            if b.bit(i) {
                acc = acc.addmod(a, m);
            }
            a = a.addmod(a, m);
        }
        acc
    }

    /// EVM `SIGNEXTEND`: extend the sign of the value's low `(k+1)` bytes.
    pub fn sign_extend(self, k: U256) -> U256 {
        let Some(k) = k.to_u64() else { return self };
        if k >= 31 {
            return self;
        }
        let bit = (k as u32) * 8 + 7;
        let mask = (U256::ONE << (bit + 1)).overflowing_sub(U256::ONE).0;
        if self.bit(bit) {
            self | !mask
        } else {
            self & mask
        }
    }

    /// Big-endian 32-byte serialization.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[(3 - i) * 8..(4 - i) * 8].copy_from_slice(&self.0[i].to_be_bytes());
        }
        out
    }

    /// Parses from big-endian bytes (up to 32; shorter slices are
    /// left-padded with zeros, matching RLP's minimal integer encoding).
    pub fn from_be_slice(bytes: &[u8]) -> Result<U256, PrimitiveError> {
        if bytes.len() > 32 {
            return Err(PrimitiveError::IntegerTooLarge { len: bytes.len() });
        }
        let mut padded = [0u8; 32];
        padded[32 - bytes.len()..].copy_from_slice(bytes);
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&padded[(3 - i) * 8..(4 - i) * 8]);
            limbs[i] = u64::from_be_bytes(chunk);
        }
        Ok(U256(limbs))
    }

    /// Big-endian serialization with leading zero bytes stripped (the RLP
    /// canonical integer form). Zero encodes as the empty slice.
    pub fn to_be_bytes_trimmed(&self) -> Vec<u8> {
        let full = self.to_be_bytes();
        let start = full.iter().position(|&b| b != 0).unwrap_or(32);
        full[start..].to_vec()
    }

    /// Parses a decimal string.
    pub fn from_dec_str(s: &str) -> Result<U256, PrimitiveError> {
        if s.is_empty() {
            return Err(PrimitiveError::EmptyInteger);
        }
        let mut acc = U256::ZERO;
        let ten = U256::from_u64(10);
        for c in s.bytes() {
            let d = match c {
                b'0'..=b'9' => c - b'0',
                b'_' => continue,
                _ => return Err(PrimitiveError::InvalidDigit { byte: c }),
            };
            acc = acc
                .checked_mul(ten)
                .and_then(|v| v.checked_add(U256::from_u64(d as u64)))
                .ok_or(PrimitiveError::IntegerOverflow)?;
        }
        Ok(acc)
    }

    /// Formats as a decimal string.
    pub fn to_dec_string(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut digits = Vec::new();
        let mut cur = *self;
        let ten = U256::from_u64(10);
        while !cur.is_zero() {
            let (q, r) = cur.div_rem(ten);
            digits.push(b'0' + r.low_u64() as u8);
            cur = q;
        }
        digits.reverse();
        String::from_utf8(digits).expect("digits are ASCII")
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for U256 {
    type Output = U256;
    fn add(self, rhs: U256) -> U256 {
        let (v, overflow) = self.overflowing_add(rhs);
        debug_assert!(!overflow, "U256 add overflow");
        v
    }
}

impl AddAssign for U256 {
    fn add_assign(&mut self, rhs: U256) {
        *self = *self + rhs;
    }
}

impl Sub for U256 {
    type Output = U256;
    fn sub(self, rhs: U256) -> U256 {
        let (v, underflow) = self.overflowing_sub(rhs);
        debug_assert!(!underflow, "U256 sub underflow");
        v
    }
}

impl SubAssign for U256 {
    fn sub_assign(&mut self, rhs: U256) {
        *self = *self - rhs;
    }
}

impl Mul for U256 {
    type Output = U256;
    fn mul(self, rhs: U256) -> U256 {
        let (v, overflow) = self.overflowing_mul(rhs);
        debug_assert!(!overflow, "U256 mul overflow");
        v
    }
}

impl MulAssign for U256 {
    fn mul_assign(&mut self, rhs: U256) {
        *self = *self * rhs;
    }
}

impl Div for U256 {
    type Output = U256;
    fn div(self, rhs: U256) -> U256 {
        self.div_rem(rhs).0
    }
}

impl Rem for U256 {
    type Output = U256;
    fn rem(self, rhs: U256) -> U256 {
        self.div_rem(rhs).1
    }
}

impl Shl<u32> for U256 {
    type Output = U256;
    fn shl(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for i in (limb_shift..4).rev() {
            out[i] = self.0[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                out[i] |= self.0[i - limb_shift - 1] >> (64 - bit_shift);
            }
        }
        U256(out)
    }
}

impl Shr<u32> for U256 {
    type Output = U256;
    fn shr(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for (i, limb) in out.iter_mut().enumerate().take(4 - limb_shift) {
            *limb = self.0[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < 4 {
                *limb |= self.0[i + limb_shift + 1] << (64 - bit_shift);
            }
        }
        U256(out)
    }
}

impl BitAnd for U256 {
    type Output = U256;
    fn bitand(self, rhs: U256) -> U256 {
        U256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl BitOr for U256 {
    type Output = U256;
    fn bitor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl BitXor for U256 {
    type Output = U256;
    fn bitxor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] ^ rhs.0[0],
            self.0[1] ^ rhs.0[1],
            self.0[2] ^ rhs.0[2],
            self.0[3] ^ rhs.0[3],
        ])
    }
}

impl Not for U256 {
    type Output = U256;
    fn not(self) -> U256 {
        U256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl Sum for U256 {
    fn sum<I: Iterator<Item = U256>>(iter: I) -> U256 {
        iter.fold(U256::ZERO, |a, b| a + b)
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256::from_u128(v)
    }
}

impl From<u32> for U256 {
    fn from(v: u32) -> Self {
        U256::from_u64(v as u64)
    }
}

impl FromStr for U256 {
    type Err = PrimitiveError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x") {
            let bytes = crate::hex::decode(hex)?;
            U256::from_be_slice(&bytes)
        } else {
            U256::from_dec_str(s)
        }
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256({})", self.to_dec_string())
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_dec_string())
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if f.alternate() {
            f.write_str("0x")?;
        }
        let bytes = self.to_be_bytes_trimmed();
        if bytes.is_empty() {
            return f.write_str("0");
        }
        // Strip the leading nibble if it is zero (minimal hex form).
        let s = crate::hex::encode(&bytes);
        let s = s.strip_prefix('0').filter(|r| !r.is_empty()).unwrap_or(&s);
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = U256([u64::MAX, 0, 0, 0]);
        let b = u(1);
        assert_eq!(a + b, U256([0, 1, 0, 0]));
    }

    #[test]
    fn overflowing_add_wraps_at_max() {
        let (v, o) = U256::MAX.overflowing_add(U256::ONE);
        assert!(o);
        assert_eq!(v, U256::ZERO);
    }

    #[test]
    fn sub_with_borrow_across_limbs() {
        let a = U256([0, 1, 0, 0]);
        assert_eq!(a - u(1), U256([u64::MAX, 0, 0, 0]));
    }

    #[test]
    fn overflowing_sub_underflow_flag() {
        let (v, o) = U256::ZERO.overflowing_sub(U256::ONE);
        assert!(o);
        assert_eq!(v, U256::MAX);
    }

    #[test]
    fn mul_small_matches_u128() {
        let a = u(0xDEAD_BEEF);
        let b = u(0xCAFE_BABE);
        let expect = 0xDEAD_BEEFu128 * 0xCAFE_BABEu128;
        assert_eq!(a * b, U256::from_u128(expect));
    }

    #[test]
    fn mul_carry_propagation() {
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let a = U256([u64::MAX, 0, 0, 0]);
        let sq = a * a;
        let expect = U256::from_u128((u64::MAX as u128) * (u64::MAX as u128));
        assert_eq!(sq, expect);
    }

    #[test]
    fn mul_overflow_detected() {
        let big = U256::pow2(200);
        let (_, o) = big.overflowing_mul(big);
        assert!(o);
        assert_eq!(big.checked_mul(big), None);
    }

    #[test]
    fn div_rem_basic() {
        let (q, r) = u(100).div_rem(u(7));
        assert_eq!(q, u(14));
        assert_eq!(r, u(2));
    }

    #[test]
    fn div_rem_wide_values() {
        let a = U256::pow2(200) + u(12345);
        let b = U256::pow2(100) + u(7);
        let (q, r) = a.div_rem(b);
        assert_eq!(q * b + r, a);
        assert!(r < b);
    }

    #[test]
    fn div_by_single_limb() {
        let a = U256::pow2(250);
        let (q, r) = a.div_rem(u(1_000_000_007));
        assert_eq!(q * u(1_000_000_007) + r, a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = u(1).div_rem(U256::ZERO);
    }

    #[test]
    fn checked_div_by_zero_is_none() {
        assert_eq!(u(5).checked_div(U256::ZERO), None);
        assert_eq!(u(5).checked_rem(U256::ZERO), None);
    }

    #[test]
    fn shl_shr_roundtrip() {
        let v = U256::from_u128(0x1234_5678_9ABC_DEF0_1122_3344_5566_7788);
        for s in [0u32, 1, 7, 63, 64, 65, 127, 128, 200] {
            let shifted = v << s;
            // Shifting back loses high bits only if they overflowed 256.
            if v.bits() + s <= 256 {
                assert_eq!(shifted >> s, v, "shift {s}");
            }
        }
        assert_eq!(v << 256, U256::ZERO);
        assert_eq!(v >> 256, U256::ZERO);
    }

    #[test]
    fn ordering_across_limbs() {
        assert!(U256([0, 0, 0, 1]) > U256([u64::MAX, u64::MAX, u64::MAX, 0]));
        assert!(u(5) < u(6));
        assert_eq!(u(7).cmp(&u(7)), Ordering::Equal);
    }

    #[test]
    fn dec_string_roundtrip() {
        for s in [
            "0",
            "1",
            "14",
            "1000000000000000000",
            "115792089237316195423570985008687907853269984665640564039457584007913129639935",
        ] {
            let v = U256::from_dec_str(s).unwrap();
            assert_eq!(v.to_dec_string(), s);
        }
    }

    #[test]
    fn dec_parse_overflow_rejected() {
        // 2^256 exactly
        let s = "115792089237316195423570985008687907853269984665640564039457584007913129639936";
        assert!(matches!(
            U256::from_dec_str(s),
            Err(PrimitiveError::IntegerOverflow)
        ));
    }

    #[test]
    fn dec_parse_rejects_garbage() {
        assert!(U256::from_dec_str("12a4").is_err());
        assert!(U256::from_dec_str("").is_err());
    }

    #[test]
    fn be_bytes_roundtrip() {
        let v = U256::from_dec_str("123456789012345678901234567890").unwrap();
        let bytes = v.to_be_bytes();
        assert_eq!(U256::from_be_slice(&bytes).unwrap(), v);
        let trimmed = v.to_be_bytes_trimmed();
        assert!(trimmed[0] != 0);
        assert_eq!(U256::from_be_slice(&trimmed).unwrap(), v);
    }

    #[test]
    fn be_slice_too_long_rejected() {
        assert!(U256::from_be_slice(&[0u8; 33]).is_err());
    }

    #[test]
    fn zero_trimmed_is_empty() {
        assert!(U256::ZERO.to_be_bytes_trimmed().is_empty());
    }

    #[test]
    fn hex_parse() {
        let v: U256 = "0x0de0b6b3a7640000".parse().unwrap();
        assert_eq!(v, U256::from_u128(1_000_000_000_000_000_000));
    }

    #[test]
    fn lower_hex_format() {
        assert_eq!(format!("{:x}", U256::from_u64(0xABCDE)), "abcde");
        assert_eq!(format!("{:#x}", U256::from_u64(0)), "0x0");
    }

    #[test]
    fn wrapping_pow_matches_naive() {
        let b = u(3);
        let mut expect = U256::ONE;
        for e in 0..20u64 {
            assert_eq!(b.wrapping_pow(e), expect);
            expect *= b;
        }
    }

    #[test]
    fn pow2_values() {
        assert_eq!(U256::pow2(0), U256::ONE);
        assert_eq!(U256::pow2(64), U256([0, 1, 0, 0]));
        assert_eq!(U256::pow2(255).bits(), 256);
        assert_eq!(U256::pow2(256), U256::ZERO);
    }

    #[test]
    fn to_f64_lossy_scale() {
        let v = U256::from_u128(5_000_000_000_000_000_000); // 5e18
        let f = v.to_f64_lossy();
        assert!((f - 5e18).abs() / 5e18 < 1e-9);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(U256::MAX.saturating_add(U256::ONE), U256::MAX);
        assert_eq!(U256::ZERO.saturating_sub(U256::ONE), U256::ZERO);
        assert_eq!(U256::pow2(255).saturating_mul(u(4)), U256::MAX);
    }

    #[test]
    fn sum_iterator() {
        let total: U256 = (1..=10u64).map(U256::from_u64).sum();
        assert_eq!(total, u(55));
    }

    #[test]
    fn signed_negation_and_sign_bit() {
        let one = U256::ONE;
        let neg_one = one.wrapping_neg();
        assert_eq!(neg_one, U256::MAX);
        assert!(neg_one.is_negative_signed());
        assert!(!one.is_negative_signed());
        assert_eq!(neg_one.wrapping_neg(), one);
        assert_eq!(U256::ZERO.wrapping_neg(), U256::ZERO);
    }

    #[test]
    fn sdiv_evm_semantics() {
        let n = |v: u64| U256::from_u64(v).wrapping_neg();
        // 7 / 2 = 3, -7 / 2 = -3 (truncate toward zero).
        assert_eq!(u(7).sdiv(u(2)), u(3));
        assert_eq!(n(7).sdiv(u(2)), n(3));
        assert_eq!(u(7).sdiv(n(2)), n(3));
        assert_eq!(n(7).sdiv(n(2)), u(3));
        // Division by zero = 0.
        assert_eq!(u(7).sdiv(U256::ZERO), U256::ZERO);
        // MIN / -1 = MIN (the overflow case).
        let min = U256::pow2(255);
        assert_eq!(min.sdiv(U256::MAX), min);
    }

    #[test]
    fn smod_takes_dividend_sign() {
        let n = |v: u64| U256::from_u64(v).wrapping_neg();
        assert_eq!(u(7).smod(u(3)), u(1));
        assert_eq!(n(7).smod(u(3)), n(1));
        assert_eq!(u(7).smod(n(3)), u(1));
        assert_eq!(n(7).smod(n(3)), n(1));
        assert_eq!(u(7).smod(U256::ZERO), U256::ZERO);
    }

    #[test]
    fn slt_signed_ordering() {
        let neg_one = U256::MAX;
        assert!(neg_one.slt(&U256::ZERO));
        assert!(!U256::ZERO.slt(&neg_one));
        assert!(u(1).slt(&u(2)));
        assert!(U256::pow2(255).slt(&U256::ZERO), "MIN < 0");
    }

    #[test]
    fn addmod_handles_carry() {
        assert_eq!(u(10).addmod(u(10), u(8)), u(4));
        assert_eq!(u(5).addmod(u(3), U256::ZERO), U256::ZERO);
        // MAX + MAX mod MAX = 0; via 2^256 wrap handling.
        assert_eq!(U256::MAX.addmod(U256::MAX, U256::MAX), U256::ZERO);
        // (2^255 + 2^255) mod (2^255 + 1): 2^256 = 2*(2^255+1) - 2
        // => result = (2^255+1) - 2 + ... compute independently:
        let m = U256::pow2(255) + U256::ONE;
        let r = U256::pow2(255).addmod(U256::pow2(255), m);
        // 2^256 mod (2^255+1) = 2^256 - 2*(2^255+1) + ... = 2^256-2^256-2 -> wraps
        // Cross-check against mulmod: 2 * 2^255 mod m.
        assert_eq!(r, U256::from_u64(2).mulmod(U256::pow2(255), m));
    }

    #[test]
    fn mulmod_matches_naive_small() {
        for a in [0u64, 1, 7, 255, 1 << 20] {
            for b in [0u64, 3, 13, 1 << 30] {
                for m in [1u64, 2, 97, 1 << 16] {
                    let expect = ((a as u128 * b as u128) % m as u128) as u64;
                    assert_eq!(u(a).mulmod(u(b), u(m)), u(expect), "{a} * {b} mod {m}");
                }
            }
        }
        assert_eq!(u(5).mulmod(u(5), U256::ZERO), U256::ZERO);
    }

    #[test]
    fn mulmod_wide_values() {
        // (2^200)^2 mod (2^199 + 1): verify by reduction identities.
        let a = U256::pow2(200);
        let m = U256::pow2(199) + U256::ONE;
        let r = a.mulmod(a, m);
        assert!(r < m);
        // Sanity: (a mod m)^2 mod m computed stepwise must agree.
        let a_red = a % m;
        assert_eq!(a_red.mulmod(a_red, m), r);
    }

    #[test]
    fn sign_extend_semantics() {
        // Extend byte 0: 0xFF -> -1.
        assert_eq!(u(0xFF).sign_extend(U256::ZERO), U256::MAX);
        assert_eq!(u(0x7F).sign_extend(U256::ZERO), u(0x7F));
        // Extend byte 1: 0x80FF has sign bit set in byte 1.
        let v = u(0x80FF).sign_extend(U256::ONE);
        assert!(v.is_negative_signed());
        assert_eq!(v.low_u64() & 0xFFFF, 0x80FF);
        // k >= 31: identity.
        assert_eq!(u(0x1234).sign_extend(u(31)), u(0x1234));
        assert_eq!(u(0x1234).sign_extend(U256::MAX), u(0x1234));
    }

    #[test]
    fn bit_access() {
        let v = U256::pow2(100);
        assert!(v.bit(100));
        assert!(!v.bit(99));
        assert!(!v.bit(300));
    }
}
