//! Ether denominations and conversions.
//!
//! All balances and rewards in the workspace are carried in **wei**
//! (`1 ether = 10^18 wei`), matching the on-chain representation. Helpers here
//! convert between denominations and compute the paper's USD-facing metrics.

use crate::u256::U256;

/// Number of wei in one ether: `10^18`.
pub const WEI_PER_ETHER: u128 = 1_000_000_000_000_000_000;

/// Number of wei in one gwei: `10^9` (gas prices are quoted in gwei).
pub const WEI_PER_GWEI: u128 = 1_000_000_000;

/// The static block reward in the study period (pre-Byzantium): 5 ether.
pub const BLOCK_REWARD_ETHER: u64 = 5;

/// Converts whole ether to wei.
pub fn ether(n: u64) -> U256 {
    U256::from_u128(n as u128 * WEI_PER_ETHER)
}

/// Converts gwei to wei.
pub fn gwei(n: u64) -> U256 {
    U256::from_u128(n as u128 * WEI_PER_GWEI)
}

/// Converts a wei amount to fractional ether (lossy; analytics only).
pub fn wei_to_ether_f64(wei: U256) -> f64 {
    wei.to_f64_lossy() / WEI_PER_ETHER as f64
}

/// The 5-ether static block reward, in wei.
pub fn block_reward() -> U256 {
    ether(BLOCK_REWARD_ETHER)
}

/// Expected hashes a miner must compute to earn one USD.
///
/// This is the paper's Figure 3 metric: difficulty is the expected number of
/// hashes per block; each block pays [`BLOCK_REWARD_ETHER`] ether; dividing by
/// the USD exchange rate yields hashes per USD:
/// `hashes_per_usd = (difficulty / 5) / usd_per_ether`.
///
/// Returns `None` when the exchange rate is non-positive (market not yet
/// listed), which callers should render as a gap in the series.
pub fn hashes_per_usd(difficulty: U256, usd_per_ether: f64) -> Option<f64> {
    if usd_per_ether <= 0.0 || !usd_per_ether.is_finite() {
        return None;
    }
    Some(difficulty.to_f64_lossy() / BLOCK_REWARD_ETHER as f64 / usd_per_ether)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ether_to_wei() {
        assert_eq!(ether(1), U256::from_u128(WEI_PER_ETHER));
        assert_eq!(ether(5), U256::from_u128(5 * WEI_PER_ETHER));
    }

    #[test]
    fn gwei_to_wei() {
        assert_eq!(gwei(20), U256::from_u128(20 * WEI_PER_GWEI));
    }

    #[test]
    fn wei_to_ether_roundtrip() {
        let w = ether(123);
        assert!((wei_to_ether_f64(w) - 123.0).abs() < 1e-9);
    }

    #[test]
    fn block_reward_is_five_ether() {
        assert_eq!(block_reward(), ether(5));
    }

    #[test]
    fn hashes_per_usd_formula() {
        // difficulty 6e13, price 12 USD/ETH -> 6e13/5/12 = 1e12 hashes per USD,
        // which is the order of magnitude shown on Figure 3's y-axis.
        let d = U256::from_u128(60_000_000_000_000);
        let h = hashes_per_usd(d, 12.0).unwrap();
        assert!((h - 1.0e12).abs() / 1.0e12 < 1e-9);
    }

    #[test]
    fn hashes_per_usd_unlisted_market() {
        let d = U256::from_u64(1000);
        assert!(hashes_per_usd(d, 0.0).is_none());
        assert!(hashes_per_usd(d, -1.0).is_none());
        assert!(hashes_per_usd(d, f64::NAN).is_none());
    }
}
