//! Batch query execution over a worker pool.
//!
//! [`QueryExecutor`] fans a batch of queries out across OS threads — each
//! worker claims queries off a shared index and evaluates them over its own
//! [`PoolStream`](crate::PoolStream)s, so the only shared mutable state is
//! the frame cache (internally synchronized). Results land in
//! **input-order slots**: whatever order workers finish in, the returned
//! vector lines up with the submitted batch, and each individual result is
//! identical to a single-threaded evaluation of the same query.
//!
//! Every evaluation's wall time is recorded (in microseconds) into a
//! `query.latency` histogram; bind it to a registry with
//! [`QueryExecutor::with_telemetry`] to see it in snapshots.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use fork_archive::ArchiveReader;
use fork_telemetry::{Histogram, HistogramSnapshot, MetricsRegistry};

use crate::error::QueryError;
use crate::lookup::{evaluate_lookup, lookup_indexed, Lookup, LookupOutput};
use crate::pool::ReaderPool;
use crate::query::{evaluate, NaiveSource, PooledSource, Query, QueryOutput};

/// A fixed-width worker pool for query batches. See the [module
/// docs](self).
pub struct QueryExecutor {
    workers: usize,
    latency: Arc<Histogram>,
}

impl QueryExecutor {
    /// An executor running batches on up to `workers` threads (clamped to
    /// at least 1).
    pub fn new(workers: usize) -> QueryExecutor {
        QueryExecutor {
            workers: workers.max(1),
            latency: Arc::new(Histogram::new()),
        }
    }

    /// Records per-query latency into `registry`'s `query.latency`
    /// histogram (microseconds).
    pub fn with_telemetry(mut self, registry: &MetricsRegistry) -> Self {
        self.latency = registry.histogram("query.latency");
        self
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The `query.latency` histogram recorded so far (microseconds; empty
    /// when the build compiles telemetry out).
    pub fn latency_snapshot(&self) -> HistogramSnapshot {
        self.latency.snapshot()
    }

    fn timed(&self, pool: &ReaderPool, query: &Query) -> Result<QueryOutput, QueryError> {
        let started = Instant::now();
        let out = evaluate(&PooledSource(pool), query);
        self.latency.record(started.elapsed().as_micros() as u64);
        out
    }

    /// Evaluates one query on the calling thread (through the pool's cache,
    /// with latency recorded).
    pub fn run(&self, pool: &ReaderPool, query: &Query) -> Result<QueryOutput, QueryError> {
        self.timed(pool, query)
    }

    /// Evaluates a batch across the worker pool. `results[i]` is always the
    /// outcome of `queries[i]`, regardless of completion order.
    pub fn run_batch(
        &self,
        pool: &ReaderPool,
        queries: &[Query],
    ) -> Vec<Result<QueryOutput, QueryError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let threads = self.workers.min(queries.len());
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Result<QueryOutput, QueryError>>>> =
            Mutex::new((0..queries.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    let result = self.timed(pool, &queries[i]);
                    slots.lock().expect("result slots")[i] = Some(result);
                });
            }
        });
        slots
            .into_inner()
            .expect("result slots")
            .into_iter()
            .map(|slot| slot.expect("every index was claimed"))
            .collect()
    }

    /// Reference evaluation: the same query answered by a plain
    /// single-threaded full scan through `reader` — no pool, no cache, no
    /// seek. Tests diff [`QueryExecutor::run`] output against this.
    pub fn run_naive(reader: &ArchiveReader, query: &Query) -> Result<QueryOutput, QueryError> {
        evaluate(&NaiveSource(reader), query)
    }

    /// Evaluates one lookup on the calling thread through the sidecar fast
    /// path (hash lookups) or the pooled cached streams (the rest), with
    /// latency recorded into `query.latency`.
    pub fn run_lookup(
        &self,
        pool: &ReaderPool,
        lookup: &Lookup,
    ) -> Result<LookupOutput, QueryError> {
        let started = Instant::now();
        let out = lookup_indexed(pool, lookup);
        self.latency.record(started.elapsed().as_micros() as u64);
        out
    }

    /// Reference lookup evaluation: answered by plain full scans through
    /// `reader` — no pool, no cache, no hash index. Tests diff
    /// [`QueryExecutor::run_lookup`] output against this.
    pub fn run_lookup_naive(
        reader: &ArchiveReader,
        lookup: &Lookup,
    ) -> Result<LookupOutput, QueryError> {
        evaluate_lookup(&NaiveSource(reader), lookup)
    }
}

impl std::fmt::Debug for QueryExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryExecutor")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}
