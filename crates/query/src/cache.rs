//! Sharded LRU cache of decoded frames.
//!
//! Keys are `(side, segment, frame offset)` — stable for the lifetime of an
//! opened archive — and values are the decoded record plus the *next* frame
//! offset, so a cache hit advances a sequential scan without touching disk.
//! The cache is purely an I/O accelerator: hits and misses return the same
//! bytes, so query results are identical with the cache at any size,
//! including zero.
//!
//! Sharding keeps lock contention bounded under a many-reader executor:
//! each shard owns an independent `Mutex` around a hash map plus an LRU
//! ordering (a tick-keyed `BTreeMap`, oldest tick evicted first). Eviction
//! is byte-budgeted: every shard gets `budget / shards` bytes and evicts
//! least-recently-used entries once an insert would overflow it.

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fork_archive::ArchiveRecord;
use fork_replay::Side;
use fork_telemetry::{Counter, MetricsRegistry};

/// Cache key: one frame of one segment of one side.
pub(crate) type FrameKey = (Side, u32, u64);

/// A decoded frame plus the offset where the next frame starts.
#[derive(Debug, Clone)]
pub(crate) struct CachedFrame {
    /// Global sequence number stamped into the frame.
    pub seq: u64,
    /// The decoded record.
    pub record: ArchiveRecord,
    /// Byte offset of the following frame (the cursor position after this
    /// frame was read) — lets a hit advance the scan without a header read.
    pub next_offset: u64,
}

/// Rough resident size of one entry: the frame itself plus map/LRU
/// bookkeeping. Records are near-fixed-size (difficulty/value are inline
/// `U256`s), so a constant is accurate enough for budgeting.
const ENTRY_BYTES: u64 = (std::mem::size_of::<CachedFrame>() + 96) as u64;

#[derive(Default)]
struct Shard {
    map: HashMap<FrameKey, (u64, Arc<CachedFrame>)>,
    lru: BTreeMap<u64, FrameKey>,
    bytes: u64,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, key: &FrameKey) -> Option<Arc<CachedFrame>> {
        let (tick, frame) = self.map.get(key)?;
        let (old_tick, frame) = (*tick, Arc::clone(frame));
        self.lru.remove(&old_tick);
        self.tick += 1;
        let new_tick = self.tick;
        self.lru.insert(new_tick, *key);
        self.map.insert(*key, (new_tick, Arc::clone(&frame)));
        Some(frame)
    }

    fn insert(&mut self, key: FrameKey, frame: Arc<CachedFrame>, budget: u64) -> u64 {
        let mut evicted = 0;
        if let Some((old_tick, _)) = self.map.remove(&key) {
            self.lru.remove(&old_tick);
            self.bytes -= ENTRY_BYTES;
        }
        while self.bytes + ENTRY_BYTES > budget {
            let Some((&oldest, _)) = self.lru.iter().next() else {
                break;
            };
            let victim = self.lru.remove(&oldest).expect("oldest tick present");
            self.map.remove(&victim);
            self.bytes -= ENTRY_BYTES;
            evicted += 1;
        }
        self.tick += 1;
        self.lru.insert(self.tick, key);
        self.map.insert(key, (self.tick, frame));
        self.bytes += ENTRY_BYTES;
        evicted
    }
}

thread_local! {
    /// Per-thread (hits, misses) since the last
    /// [`take_thread_cache_delta`] — lets a caller that evaluates a query
    /// on its own thread attribute exactly that query's cache traffic,
    /// which the global atomics (shared across all threads) cannot.
    static THREAD_DELTA: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Returns and resets the calling thread's `(hits, misses)` accumulated by
/// every [`FrameCache`] lookup on this thread since the previous call.
/// Query evaluation runs on the calling thread, so bracketing a single
/// evaluation with this yields that request's exact cache attribution.
pub fn take_thread_cache_delta() -> (u64, u64) {
    THREAD_DELTA.with(|d| d.replace((0, 0)))
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that went to disk.
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Approximate resident bytes.
    pub resident_bytes: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sharded byte-budgeted LRU over decoded frames. See the [module
/// docs](self).
pub struct FrameCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    hit_counter: Arc<Counter>,
    miss_counter: Arc<Counter>,
}

impl std::fmt::Debug for FrameCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameCache")
            .field("shards", &self.shards.len())
            .field("shard_budget", &self.shard_budget)
            .field("stats", &self.stats())
            .finish()
    }
}

impl FrameCache {
    /// A cache holding at most ~`budget_bytes` across `shards` shards (both
    /// clamped to sane minimums: one entry per shard, one shard).
    pub fn new(budget_bytes: u64, shards: usize) -> FrameCache {
        let shards = shards.max(1);
        let shard_budget = (budget_bytes / shards as u64).max(ENTRY_BYTES);
        FrameCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            hit_counter: Arc::new(Counter::new()),
            miss_counter: Arc::new(Counter::new()),
        }
    }

    /// Mirrors hits and misses into `query.cache.hit` / `query.cache.miss`
    /// counters in `registry` (the [`CacheStats`] numbers are always live,
    /// telemetry or not).
    pub fn with_telemetry(mut self, registry: &MetricsRegistry) -> Self {
        self.hit_counter = registry.counter("query.cache.hit");
        self.miss_counter = registry.counter("query.cache.miss");
        self
    }

    fn shard_for(&self, key: &FrameKey) -> &Mutex<Shard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    pub(crate) fn get(&self, key: &FrameKey) -> Option<Arc<CachedFrame>> {
        let hit = self.shard_for(key).lock().expect("cache lock").touch(key);
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.hit_counter.incr();
            THREAD_DELTA.with(|d| {
                let (h, m) = d.get();
                d.set((h + 1, m));
            });
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.miss_counter.incr();
            THREAD_DELTA.with(|d| {
                let (h, m) = d.get();
                d.set((h, m + 1));
            });
        }
        hit
    }

    pub(crate) fn insert(&self, key: FrameKey, frame: CachedFrame) {
        let evicted = self.shard_for(&key).lock().expect("cache lock").insert(
            key,
            Arc::new(frame),
            self.shard_budget,
        );
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Just the lifetime `(hits, misses)` totals — two atomic loads, no
    /// shard locks, cheap enough for a 1 Hz sampler on the accept loop.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Live counters (aggregated across shards).
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0;
        let mut resident = 0;
        for shard in &self.shards {
            let s = shard.lock().expect("cache lock");
            entries += s.map.len() as u64;
            resident += s.bytes;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            resident_bytes: resident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fork_analytics::TxRecord;
    use fork_primitives::{H256, U256};

    fn frame(n: u64) -> CachedFrame {
        CachedFrame {
            seq: n,
            record: ArchiveRecord::Tx(TxRecord {
                network: Side::Eth,
                hash: H256([n as u8; 32]),
                timestamp: n,
                is_contract: false,
                has_chain_id: false,
                value: U256::from_u64(n),
            }),
            next_offset: n + 100,
        }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = FrameCache::new(1 << 20, 4);
        let key = (Side::Eth, 0, 32);
        assert!(cache.get(&key).is_none());
        cache.insert(key, frame(7));
        let got = cache.get(&key).expect("hit");
        assert_eq!(got.seq, 7);
        assert_eq!(got.next_offset, 107);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        // One shard, room for exactly 2 entries.
        let cache = FrameCache::new(ENTRY_BYTES * 2, 1);
        let (a, b, c) = ((Side::Eth, 0, 1), (Side::Eth, 0, 2), (Side::Eth, 0, 3));
        cache.insert(a, frame(1));
        cache.insert(b, frame(2));
        cache.get(&a); // a is now most-recently-used
        cache.insert(c, frame(3)); // must evict b
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&b).is_none(), "LRU entry should be evicted");
        assert!(cache.get(&c).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(stats.resident_bytes <= ENTRY_BYTES * 2);
    }

    #[test]
    fn thread_delta_attributes_only_this_threads_traffic() {
        let cache = FrameCache::new(1 << 20, 2);
        let key = (Side::Eth, 0, 8);
        let _ = take_thread_cache_delta(); // drain anything earlier tests left

        assert!(cache.get(&key).is_none()); // miss
        cache.insert(key, frame(1));
        assert!(cache.get(&key).is_some()); // hit
        assert!(cache.get(&key).is_some()); // hit
        assert_eq!(take_thread_cache_delta(), (2, 1));
        assert_eq!(take_thread_cache_delta(), (0, 0), "take resets");

        // Another thread's lookups never land in this thread's delta.
        std::thread::scope(|s| {
            s.spawn(|| {
                let _ = take_thread_cache_delta();
                assert!(cache.get(&key).is_some());
                assert!(cache.get(&(Side::Etc, 9, 9)).is_none());
                assert_eq!(take_thread_cache_delta(), (1, 1));
            });
        });
        assert_eq!(take_thread_cache_delta(), (0, 0));
        // The global atomics still see everything.
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (3, 2));
    }

    #[test]
    fn reinsert_same_key_does_not_leak_bytes() {
        let cache = FrameCache::new(ENTRY_BYTES * 4, 1);
        let key = (Side::Etc, 1, 64);
        for i in 0..10 {
            cache.insert(key, frame(i));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.resident_bytes, ENTRY_BYTES);
        assert_eq!(stats.evictions, 0);
    }
}
