//! # fork-query
//!
//! A concurrent, cached query engine over [`fork_archive`] archives.
//!
//! The paper's methodology is *archive then re-analyze*: every figure is a
//! query over the exported database, not over live simulator state. This
//! crate makes that re-analysis cheap for **many consumers at once**:
//!
//! - [`ReaderPool`] opens an archive once (the expensive header scan that
//!   builds sparse block-number/timestamp indexes) and hands out any number
//!   of independent cursors sharing the immutable index — no per-consumer
//!   re-scan, no cross-consumer positions.
//! - [`FrameCache`] is a sharded, byte-budgeted LRU of decoded frames.
//!   Concurrent scans over overlapping ranges hit memory instead of disk;
//!   hit/miss/eviction counts are visible via [`CacheStats`] and, when
//!   bound to a registry, the `query.cache.{hit,miss}` counters.
//! - [`Query`] is the typed surface: a side, a [`QueryRange`] (all /
//!   block-number / time window), and a [`Projection`] — raw blocks or txs,
//!   or one of the paper's aggregates (inter-arrival histogram, daily
//!   difficulty, ETH:ETC tx ratio, echo counts per window) computed from
//!   the archive without re-running the simulation.
//! - [`QueryExecutor`] runs batches across a worker pool with
//!   deterministic, input-ordered results and a `query.latency` histogram.
//!
//! ## Determinism
//!
//! Pooled, cached, multi-threaded evaluation returns **byte-identical**
//! results to a naive single-threaded scan ([`QueryExecutor::run_naive`]).
//! This holds by construction, not by tolerance: one evaluation function
//! runs over an abstract record source, sources yield the same per-side
//! record sequence in write order, the cache only short-circuits I/O
//! (hits return the same decoded frames a read would), and aggregate folds
//! reuse the live pipeline's own cells (`fork_analytics::aggregate`) and
//! the telemetry histogram's own bucketing (`fork_telemetry::bucket_index`)
//! in the same per-side order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod exec;
pub mod lookup;
pub mod pool;
pub mod query;

pub use cache::{take_thread_cache_delta, CacheStats, FrameCache};
pub use error::QueryError;
pub use exec::QueryExecutor;
pub use lookup::{
    FoundRecord, HeaderChain, Lookup, LookupOutput, ReorgEvent, SealedHeader, SideTip,
    TipHistoryOutput,
};
pub use pool::{PoolStream, ReaderPool, DEFAULT_CACHE_BYTES, DEFAULT_CACHE_SHARDS};
pub use query::{Projection, Query, QueryOutput, QueryRange};

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    use fork_analytics::{BlockRecord, Pipeline, TxRecord};
    use fork_archive::{ArchiveConfig, ArchiveReader, ArchiveWriter, Codec};
    use fork_primitives::{Address, H256, U256};
    use fork_replay::Side;
    use fork_sim::LedgerSink;

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("fork-query-test-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn block(side: Side, number: u64) -> BlockRecord {
        BlockRecord {
            network: side,
            number,
            hash: H256([(number % 251) as u8; 32]),
            timestamp: 1_469_000_000 + number * 900, // ~96 blocks/day
            difficulty: U256::from_u128(62_000_000_000_000 + number as u128 * 7),
            beneficiary: Address([(number % 31) as u8; 20]),
            gas_used: 21_000 + number,
            tx_count: (number % 5) as u32,
            ommer_count: (number % 3) as u32,
        }
    }

    fn tx(side: Side, n: u64, ts: u64) -> TxRecord {
        TxRecord {
            network: side,
            // Small hash space so cross-side echoes actually occur.
            hash: H256([(n % 61) as u8; 32]),
            timestamp: ts,
            is_contract: n.is_multiple_of(2),
            has_chain_id: n.is_multiple_of(3),
            value: U256::from_u64(n * 1_000_000_007),
        }
    }

    /// Small two-sided archive: 120 blocks per side across several
    /// segments, a few txs per block.
    fn fixture(tag: &str) -> PathBuf {
        let dir = scratch(tag);
        let mut writer = ArchiveWriter::create_with(
            &dir,
            ArchiveConfig {
                segment_max_bytes: 4 * 1024,
                codec: Codec::Delta,
            },
        )
        .unwrap();
        let mut tx_n = 0u64;
        for number in 0..120 {
            for side in [Side::Eth, Side::Etc] {
                let b = block(side, number);
                let ts = b.timestamp;
                writer.block(b.clone());
                for _ in 0..b.tx_count {
                    writer.tx(tx(side, tx_n, ts));
                    tx_n += 1;
                }
            }
        }
        writer.finish(None).unwrap();
        dir
    }

    fn all_queries() -> Vec<Query> {
        let time = QueryRange::Time {
            start: 1_469_000_000 + 20 * 900,
            end: 1_469_000_000 + 80 * 900,
        };
        let blocks = QueryRange::Blocks {
            first: 30,
            last: 90,
        };
        let mut queries = Vec::new();
        for side in [Side::Eth, Side::Etc] {
            for range in [QueryRange::All, blocks, time] {
                for projection in [
                    Projection::Blocks,
                    Projection::InterArrival,
                    Projection::Difficulty,
                ] {
                    queries.push(Query {
                        side: Some(side),
                        range,
                        projection,
                    });
                }
            }
            for range in [QueryRange::All, time] {
                queries.push(Query {
                    side: Some(side),
                    range,
                    projection: Projection::Txs,
                });
                queries.push(Query {
                    side: Some(side),
                    range,
                    projection: Projection::Echoes { window_days: 1 },
                });
                queries.push(Query {
                    side: Some(side),
                    range,
                    projection: Projection::Echoes { window_days: 7 },
                });
            }
        }
        for range in [QueryRange::All, time] {
            queries.push(Query {
                side: None,
                range,
                projection: Projection::TxRatioPerDay,
            });
        }
        queries
    }

    #[test]
    fn pooled_scan_equals_reader_scan() {
        let dir = fixture("pooled-scan");
        let pool = ReaderPool::open(&dir).unwrap();
        for side in [Side::Eth, Side::Etc] {
            let pooled: Vec<_> = pool.records(side).map(Result::unwrap).collect();
            let direct: Vec<_> = pool.reader().records(side).map(Result::unwrap).collect();
            assert_eq!(pooled, direct);
        }
    }

    #[test]
    fn executor_matches_naive_for_every_projection() {
        let dir = fixture("exec-vs-naive");
        let pool = ReaderPool::open(&dir).unwrap();
        let naive_reader = ArchiveReader::open(&dir).unwrap();
        let exec = QueryExecutor::new(8);
        let queries = all_queries();
        let pooled = exec.run_batch(&pool, &queries);
        assert_eq!(pooled.len(), queries.len());
        for (q, result) in queries.iter().zip(pooled) {
            let fast = result.unwrap_or_else(|e| panic!("pooled {q:?}: {e}"));
            let slow = QueryExecutor::run_naive(&naive_reader, q).unwrap();
            assert_eq!(fast, slow, "pooled != naive for {q:?}");
        }
    }

    #[test]
    fn full_range_aggregates_match_live_pipeline() {
        let dir = fixture("vs-pipeline");
        let pool = ReaderPool::open(&dir).unwrap();
        let mut pipeline = Pipeline::new();
        pool.reader().replay_into(&mut pipeline).unwrap();
        let exec = QueryExecutor::new(2);
        for side in [Side::Eth, Side::Etc] {
            let q = Query {
                side: Some(side),
                range: QueryRange::All,
                projection: Projection::Difficulty,
            };
            assert_eq!(
                exec.run(&pool, &q).unwrap(),
                QueryOutput::Series(pipeline.daily_difficulty(side)),
                "daily difficulty must be bit-identical to the live pipeline"
            );
            let q = Query {
                side: Some(side),
                range: QueryRange::All,
                projection: Projection::Echoes { window_days: 1 },
            };
            assert_eq!(
                exec.run(&pool, &q).unwrap(),
                QueryOutput::Series(pipeline.echoes_per_day(side)),
                "1-day echo windows must equal the pipeline's echoes_per_day"
            );
        }
    }

    #[test]
    fn repeated_batch_hits_the_cache() {
        let dir = fixture("cache-hits");
        let pool = ReaderPool::open(&dir).unwrap();
        let exec = QueryExecutor::new(4);
        let queries = all_queries();
        exec.run_batch(&pool, &queries);
        let cold = pool.cache().stats();
        exec.run_batch(&pool, &queries);
        let warm = pool.cache().stats();
        assert!(warm.hits > cold.hits, "second pass must hit the cache");
        assert!(
            warm.hit_rate() > 0.5,
            "repeated batch should be mostly cache hits, got {:.3}",
            warm.hit_rate()
        );
        // The fixture fits in the default budget, so the second pass should
        // add no misses at all.
        assert_eq!(warm.misses, cold.misses);
    }

    #[test]
    fn latency_histogram_records_when_telemetry_enabled() {
        let dir = fixture("latency");
        let registry = fork_telemetry::MetricsRegistry::new();
        let pool = ReaderPool::new(
            ArchiveReader::open(&dir).unwrap(),
            FrameCache::new(DEFAULT_CACHE_BYTES, 4).with_telemetry(&registry),
        );
        let exec = QueryExecutor::new(2).with_telemetry(&registry);
        let queries = all_queries();
        let n = queries.len() as u64;
        exec.run_batch(&pool, &queries);
        // Whether the graph compiled telemetry in depends on feature
        // unification (the workspace root enables it; a `-p fork-query`
        // build does not), so accept either the live count or the no-op
        // zero — never anything in between.
        let lat = exec.latency_snapshot();
        assert!(
            lat.count == n || lat.count == 0,
            "one latency sample per query (or none when compiled out), got {}",
            lat.count
        );
        // Cache stats are live regardless of the telemetry feature.
        assert!(pool.cache().stats().misses > 0);
    }

    #[test]
    fn invalid_queries_fail_without_touching_disk() {
        let dir = fixture("invalid");
        let pool = ReaderPool::open(&dir).unwrap();
        let exec = QueryExecutor::new(2);
        let bad = Query {
            side: Some(Side::Eth),
            range: QueryRange::Blocks { first: 0, last: 5 },
            projection: Projection::Txs,
        };
        assert!(matches!(
            exec.run(&pool, &bad),
            Err(QueryError::Unsupported { .. })
        ));
        assert_eq!(pool.cache().stats().misses, 0, "no I/O for invalid queries");
    }

    fn all_lookups() -> Vec<Lookup> {
        let mut lookups = vec![
            // Absent hashes: 255 is outside both fixture hash spaces.
            Lookup::BlockByHash {
                hash: H256([255u8; 32]),
            },
            Lookup::TxByHash {
                hash: H256([255u8; 32]),
            },
            Lookup::TipHistory,
        ];
        for n in [0u64, 7, 60, 119] {
            lookups.push(Lookup::BlockByHash {
                hash: H256([(n % 251) as u8; 32]),
            });
        }
        for n in [0u64, 5, 42, 60] {
            lookups.push(Lookup::TxByHash {
                hash: H256([(n % 61) as u8; 32]),
            });
        }
        for side in [Side::Eth, Side::Etc] {
            for number in [0u64, 63, 119, 500] {
                lookups.push(Lookup::BlockByNumber { side, number });
            }
            lookups.push(Lookup::Headers {
                side,
                first: 10,
                last: 30,
            });
            // Range running past the archived tip: served as far as it goes.
            lookups.push(Lookup::Headers {
                side,
                first: 115,
                last: 200,
            });
        }
        lookups
    }

    #[test]
    fn indexed_lookups_match_naive_scan() {
        let dir = fixture("lookup-naive");
        let reader = ArchiveReader::open(&dir).unwrap();
        let pool = ReaderPool::open(&dir).unwrap();
        let exec = QueryExecutor::new(2);
        // Two passes: the first builds and persists the sidecar and fills
        // the cache, the second is served from both.
        for pass in ["cold", "warm"] {
            for lookup in all_lookups() {
                let indexed = exec.run_lookup(&pool, &lookup).unwrap();
                let naive = QueryExecutor::run_lookup_naive(&reader, &lookup).unwrap();
                assert_eq!(indexed, naive, "{pass}: {lookup:?}");
            }
        }
    }

    #[test]
    fn duplicate_hashes_resolve_to_the_earliest_seq() {
        // Every block number's hash repeats on both sides; the fixture
        // writes ETH before ETC per number, so ETH holds the smaller seq
        // and must win the merged-order tie.
        let dir = fixture("lookup-dup");
        let pool = ReaderPool::open(&dir).unwrap();
        for n in [0u64, 50, 119] {
            let hash = H256([(n % 251) as u8; 32]);
            let out = pool.lookup(&Lookup::BlockByHash { hash }).unwrap();
            let LookupOutput::Found(Some(found)) = out else {
                panic!("block {n} should be found");
            };
            assert_eq!(found.side, Side::Eth);
            match found.record {
                fork_archive::ArchiveRecord::Block(b) => assert_eq!(b.number, n),
                other => panic!("expected a block, got {other:?}"),
            }
        }
    }

    #[test]
    fn header_chain_verifies_with_checksums_alone() {
        let dir = fixture("lookup-headers");
        let pool = ReaderPool::open(&dir).unwrap();
        let out = pool
            .lookup(&Lookup::Headers {
                side: Side::Etc,
                first: 10,
                last: 30,
            })
            .unwrap();
        let LookupOutput::Headers(chain) = out else {
            panic!("headers output expected");
        };
        let blocks = chain.verify().unwrap();
        assert_eq!(blocks.len(), 21);
        assert_eq!(blocks.first().unwrap().number, 10);
        assert_eq!(blocks.last().unwrap().number, 30);
        // A single flipped payload byte fails the frame checksum.
        let mut tampered = chain.clone();
        tampered.headers[5].payload[0] ^= 0x01;
        assert!(tampered.verify().is_err());
        // So does a checksum-consistent header smuggled in from the wrong
        // position (chain order check).
        let mut shuffled = chain.clone();
        shuffled.headers.swap(2, 3);
        assert!(shuffled.verify().is_err());
    }

    #[test]
    fn tip_history_reports_reorgs() {
        let dir = scratch("lookup-reorg");
        let mut writer = ArchiveWriter::create_with(
            &dir,
            ArchiveConfig {
                segment_max_bytes: 4 * 1024,
                codec: Codec::Raw,
            },
        )
        .unwrap();
        for number in 0..10 {
            writer.block(block(Side::Eth, number));
        }
        // ETH switches to a competing branch: a new block numbered 7
        // displaces 7..=9 (depth 3), then the branch extends to 12.
        for number in 7..13 {
            let mut b = block(Side::Eth, number);
            b.hash = H256([0xA0 ^ number as u8; 32]);
            writer.block(b);
        }
        for number in 0..5 {
            writer.block(block(Side::Etc, number));
        }
        writer.finish(None).unwrap();

        let pool = ReaderPool::open(&dir).unwrap();
        let out = pool.lookup(&Lookup::TipHistory).unwrap();
        let LookupOutput::Tips(tips) = out else {
            panic!("tips output expected");
        };
        assert_eq!(tips.eth.blocks, 16);
        assert_eq!(tips.eth.reorgs, 1);
        assert_eq!(tips.eth.tip.as_ref().unwrap().number, 12);
        assert_eq!(tips.etc.blocks, 5);
        assert_eq!(tips.etc.reorgs, 0);
        assert_eq!(tips.etc.tip.as_ref().unwrap().number, 4);
        assert_eq!(tips.reorgs.len(), 1);
        let ev = tips.reorgs[0];
        assert_eq!(ev.side, Side::Eth);
        assert_eq!(ev.number, 7);
        assert_eq!(ev.depth, 3);

        // The indexed path and the naive reference agree on reorgs too.
        let reader = ArchiveReader::open(&dir).unwrap();
        let naive = QueryExecutor::run_lookup_naive(&reader, &Lookup::TipHistory).unwrap();
        assert_eq!(LookupOutput::Tips(tips), naive);
    }
}
