//! Point lookups and explorer-facing reads: hash → record, number →
//! block, per-side tip/reorg history, and checksummed header chains.
//!
//! The naive path ([`evaluate_lookup`]) answers every [`Lookup`] by
//! streaming records through the same [`RecordSource`] abstraction the
//! aggregate queries use, so pooled and naive evaluation agree by
//! construction. The fast path ([`ReaderPool::lookup`]) resolves
//! `BlockByHash`/`TxByHash` through the persistent hash-index sidecar
//! instead of scanning, then reads the one frame it names through the
//! ordinary checksummed cursor — the returned record is byte-identical to
//! what a full scan would have found.
//!
//! Where a hash matches several records (nothing forbids duplicates), the
//! lookup returns the earliest match in the merged cross-side sequence
//! order — exactly the first record a seq-merged scan would encounter.
//!
//! [`Lookup::Headers`] seals each block into a [`SealedHeader`]: the
//! frame's canonical `Raw` payload plus its truncated-keccak checksum. A
//! client re-verifies the chain with [`HeaderChain::verify`] using the
//! checksum function alone — no archive access needed — which is the
//! light-client-style sync primitive.

use fork_analytics::BlockRecord;
use fork_archive::format::{checksum, CHECKSUM_LEN, KIND_BLOCK, KIND_TX};
use fork_archive::{ArchiveRecord, HashIndex, IndexEntry};
use fork_primitives::H256;
use fork_replay::Side;

use crate::error::QueryError;
use crate::pool::ReaderPool;
use crate::query::{peek_seq, QueryRange, RecordSource};

/// A typed point lookup or explorer read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The earliest block whose hash is `hash`, in cross-side seq order.
    BlockByHash {
        /// Block hash to find.
        hash: H256,
    },
    /// The earliest transaction whose hash is `hash`, in cross-side seq
    /// order.
    TxByHash {
        /// Transaction hash to find.
        hash: H256,
    },
    /// The first block numbered `number` on `side`.
    BlockByNumber {
        /// Which side's chain to search.
        side: Side,
        /// Block number to find.
        number: u64,
    },
    /// Per-side tips plus reorg events, reconstructed from the merged
    /// cross-side sequence stream.
    TipHistory,
    /// A checksummed header chain for blocks `first..=last` on `side`.
    Headers {
        /// Which side's chain to serve.
        side: Side,
        /// First block number (inclusive).
        first: u64,
        /// Last block number (inclusive).
        last: u64,
    },
}

impl Lookup {
    /// Rejects structurally invalid lookups before any I/O.
    pub fn validate(&self) -> Result<(), QueryError> {
        if let Lookup::Headers { first, last, .. } = self {
            if first > last {
                return Err(QueryError::unsupported(format!(
                    "header range {first}..={last} is empty"
                )));
            }
        }
        Ok(())
    }
}

/// A located record: its global sequence number, side, and decoded value.
#[derive(Debug, Clone, PartialEq)]
pub struct FoundRecord {
    /// Global sequence number stamped into the frame.
    pub seq: u64,
    /// Which side's stream holds it.
    pub side: Side,
    /// The decoded record.
    pub record: ArchiveRecord,
}

/// One reorg event on one side: a block arrived numbered at or below the
/// side's current tip, displacing `depth` blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReorgEvent {
    /// The side that reorged.
    pub side: Side,
    /// Sequence number of the displacing block.
    pub seq: u64,
    /// The displacing block's number (the new tip).
    pub number: u64,
    /// Blocks displaced: `old_tip - number + 1`.
    pub depth: u64,
    /// The displacing block's timestamp.
    pub timestamp: u64,
}

/// One side's summary in a [`TipHistoryOutput`].
#[derive(Debug, Clone, PartialEq)]
pub struct SideTip {
    /// The side.
    pub side: Side,
    /// The current tip block (`None` for a side with no blocks).
    pub tip: Option<BlockRecord>,
    /// Sequence number of the tip block.
    pub tip_seq: Option<u64>,
    /// Total blocks seen on this side.
    pub blocks: u64,
    /// Reorg events on this side.
    pub reorgs: u64,
}

/// Result of [`Lookup::TipHistory`].
#[derive(Debug, Clone, PartialEq)]
pub struct TipHistoryOutput {
    /// The ETH side's summary.
    pub eth: SideTip,
    /// The ETC side's summary.
    pub etc: SideTip,
    /// Every reorg event, in global sequence order across both sides.
    pub reorgs: Vec<ReorgEvent>,
}

/// One header-chain entry: the block frame's canonical `Raw` payload plus
/// its frame checksum. Self-verifying — see [`SealedHeader::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedHeader {
    /// Global sequence number (also encoded inside the payload).
    pub seq: u64,
    /// The canonical `Raw`-codec frame payload for this block.
    pub payload: Vec<u8>,
    /// Truncated-keccak checksum of `payload` — the same function sealing
    /// every on-disk frame.
    pub checksum: [u8; CHECKSUM_LEN],
}

impl SealedHeader {
    /// Recomputes the frame checksum over the payload. This is the entire
    /// client-side trust check: no archive needed.
    pub fn verify(&self) -> bool {
        checksum(&self.payload) == self.checksum
    }

    /// Decodes the payload into the block record it seals.
    pub fn decode(&self, side: Side) -> Result<BlockRecord, String> {
        match ArchiveRecord::decode_payload(side, &self.payload) {
            Ok((seq, ArchiveRecord::Block(b))) if seq == self.seq => Ok(b),
            Ok((seq, ArchiveRecord::Block(_))) => {
                Err(format!("payload seq {seq} != sealed seq {}", self.seq))
            }
            Ok(_) => Err("header payload is not a block".into()),
            Err(e) => Err(e),
        }
    }
}

/// Result of [`Lookup::Headers`]: a verifiable header chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderChain {
    /// The side served.
    pub side: Side,
    /// Requested first block number.
    pub first: u64,
    /// Requested last block number.
    pub last: u64,
    /// Headers in ascending block-number (= seq) order.
    pub headers: Vec<SealedHeader>,
}

impl HeaderChain {
    /// Client-side end-to-end verification using frame checksums alone:
    /// every header's checksum must match, decode as a block of this
    /// chain's side inside the requested range, and ascend in both number
    /// and seq. Returns the decoded blocks.
    pub fn verify(&self) -> Result<Vec<BlockRecord>, String> {
        let mut blocks = Vec::with_capacity(self.headers.len());
        let mut prev: Option<(u64, u64)> = None;
        for (i, h) in self.headers.iter().enumerate() {
            if !h.verify() {
                return Err(format!("header {i}: checksum mismatch"));
            }
            let b = h
                .decode(self.side)
                .map_err(|e| format!("header {i}: {e}"))?;
            if b.network != self.side {
                return Err(format!("header {i}: wrong side {:?}", b.network));
            }
            if !(self.first..=self.last).contains(&b.number) {
                return Err(format!("header {i}: block {} out of range", b.number));
            }
            if let Some((pn, ps)) = prev {
                if b.number <= pn || h.seq <= ps {
                    return Err(format!("header {i}: chain order broken at {}", b.number));
                }
            }
            prev = Some((b.number, h.seq));
            blocks.push(b);
        }
        Ok(blocks)
    }
}

/// Result of one [`Lookup`].
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // short-lived, one per answered lookup
pub enum LookupOutput {
    /// Point lookups: the record, or `None` when nothing matches.
    Found(Option<FoundRecord>),
    /// [`Lookup::TipHistory`].
    Tips(TipHistoryOutput),
    /// [`Lookup::Headers`].
    Headers(HeaderChain),
}

/// Reference evaluation over any [`RecordSource`] — scans, no index. The
/// sidecar fast path must agree with this on every input.
pub(crate) fn evaluate_lookup(
    source: &dyn RecordSource,
    lookup: &Lookup,
) -> Result<LookupOutput, QueryError> {
    lookup.validate()?;
    match *lookup {
        Lookup::BlockByHash { hash } => scan_for_hash(source, hash, KIND_BLOCK),
        Lookup::TxByHash { hash } => scan_for_hash(source, hash, KIND_TX),
        Lookup::BlockByNumber { side, number } => {
            let range = QueryRange::Blocks {
                first: number,
                last: number,
            };
            for item in source.stream(side, &range) {
                let (seq, record) = item?;
                if let ArchiveRecord::Block(b) = &record {
                    if b.number == number {
                        return Ok(LookupOutput::Found(Some(FoundRecord { seq, side, record })));
                    }
                }
            }
            Ok(LookupOutput::Found(None))
        }
        Lookup::TipHistory => tip_history(source),
        Lookup::Headers { side, first, last } => {
            let range = QueryRange::Blocks { first, last };
            let mut headers = Vec::new();
            for item in source.stream(side, &range) {
                let (seq, record) = item?;
                if let ArchiveRecord::Block(b) = &record {
                    if (first..=last).contains(&b.number) {
                        let payload = record.encode_payload(seq);
                        let sum = checksum(&payload);
                        headers.push(SealedHeader {
                            seq,
                            payload,
                            checksum: sum,
                        });
                    }
                }
            }
            Ok(LookupOutput::Headers(HeaderChain {
                side,
                first,
                last,
                headers,
            }))
        }
    }
}

/// Scans both sides for the matching record with the smallest seq. Within
/// one side seq ascends, so each side contributes its first match; the
/// smaller of the two is the merged-order winner.
fn scan_for_hash(
    source: &dyn RecordSource,
    hash: H256,
    kind: u8,
) -> Result<LookupOutput, QueryError> {
    let mut best: Option<FoundRecord> = None;
    for side in [Side::Eth, Side::Etc] {
        for item in source.stream(side, &QueryRange::All) {
            let (seq, record) = item?;
            let matches = match (&record, kind) {
                (ArchiveRecord::Block(b), KIND_BLOCK) => b.hash == hash,
                (ArchiveRecord::Tx(t), KIND_TX) => t.hash == hash,
                _ => false,
            };
            if matches {
                if best.as_ref().is_none_or(|b| seq < b.seq) {
                    best = Some(FoundRecord { seq, side, record });
                }
                break; // first per-side match is that side's minimum seq
            }
        }
    }
    Ok(LookupOutput::Found(best))
}

/// Walks the merged cross-side stream tracking each side's tip. A block
/// numbered at or below the current tip is a reorg event (the archive's
/// per-side streams normally ascend, so events mark genuine tip
/// displacement in hand-fed or adversarial archives).
fn tip_history(source: &dyn RecordSource) -> Result<LookupOutput, QueryError> {
    let mut eth = source.stream(Side::Eth, &QueryRange::All).peekable();
    let mut etc = source.stream(Side::Etc, &QueryRange::All).peekable();
    let mut sides = [
        SideTip {
            side: Side::Eth,
            tip: None,
            tip_seq: None,
            blocks: 0,
            reorgs: 0,
        },
        SideTip {
            side: Side::Etc,
            tip: None,
            tip_seq: None,
            blocks: 0,
            reorgs: 0,
        },
    ];
    let mut reorgs = Vec::new();
    loop {
        let take_eth = match (peek_seq(&mut eth)?, peek_seq(&mut etc)?) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(a), Some(b)) => a <= b,
        };
        let (stream, slot) = if take_eth {
            (&mut eth, &mut sides[0])
        } else {
            (&mut etc, &mut sides[1])
        };
        let (seq, record) = stream.next().expect("peeked Some")?;
        let ArchiveRecord::Block(b) = record else {
            continue;
        };
        slot.blocks += 1;
        if let Some(tip) = &slot.tip {
            if b.number <= tip.number {
                slot.reorgs += 1;
                reorgs.push(ReorgEvent {
                    side: slot.side,
                    seq,
                    number: b.number,
                    depth: tip.number - b.number + 1,
                    timestamp: b.timestamp,
                });
            }
        }
        slot.tip = Some(b);
        slot.tip_seq = Some(seq);
    }
    let [eth_tip, etc_tip] = sides;
    Ok(LookupOutput::Tips(TipHistoryOutput {
        eth: eth_tip,
        etc: etc_tip,
        reorgs,
    }))
}

/// The sidecar fast path for hash lookups; everything else falls through
/// to the shared scan evaluation over the pooled source.
pub(crate) fn lookup_indexed(
    pool: &ReaderPool,
    lookup: &Lookup,
) -> Result<LookupOutput, QueryError> {
    lookup.validate()?;
    match *lookup {
        Lookup::BlockByHash { hash } => indexed_point(pool, hash, KIND_BLOCK),
        Lookup::TxByHash { hash } => indexed_point(pool, hash, KIND_TX),
        ref other => evaluate_lookup(&crate::query::PooledSource(pool), other),
    }
}

fn indexed_point(pool: &ReaderPool, hash: H256, kind: u8) -> Result<LookupOutput, QueryError> {
    let index: &HashIndex = pool.hash_index();
    // Candidates ascend by seq; the first of the right kind is the merged
    // cross-side minimum — the record a naive seq-ordered scan finds first.
    let entry: Option<&IndexEntry> = index.candidates(&hash).iter().find(|e| e.kind == kind);
    let Some(entry) = entry else {
        return Ok(LookupOutput::Found(None));
    };
    let (seq, record) = pool.read_frame_at(entry.side, entry.segment, entry.offset)?;
    let ok = match (&record, kind) {
        (ArchiveRecord::Block(b), KIND_BLOCK) => b.hash == hash && seq == entry.seq,
        (ArchiveRecord::Tx(t), KIND_TX) => t.hash == hash && seq == entry.seq,
        _ => false,
    };
    if !ok {
        return Err(QueryError::unsupported(format!(
            "hash index entry at segment {} offset {} does not match the frame on disk",
            entry.segment, entry.offset
        )));
    }
    Ok(LookupOutput::Found(Some(FoundRecord {
        seq,
        side: entry.side,
        record,
    })))
}
