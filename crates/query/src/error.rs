//! Query failure modes.

use fork_archive::ArchiveError;

/// Why a query could not be answered.
#[derive(Debug)]
pub enum QueryError {
    /// The underlying archive read failed (I/O or corruption).
    Archive(ArchiveError),
    /// The query shape is not answerable from the archive — e.g. a
    /// block-number range over transaction frames, which carry no block
    /// number.
    Unsupported {
        /// What was asked and why it cannot be served.
        detail: String,
    },
}

impl QueryError {
    pub(crate) fn unsupported(detail: impl Into<String>) -> QueryError {
        QueryError::Unsupported {
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Archive(e) => write!(f, "archive: {e}"),
            QueryError::Unsupported { detail } => write!(f, "unsupported query: {detail}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Archive(e) => Some(e),
            QueryError::Unsupported { .. } => None,
        }
    }
}

impl From<ArchiveError> for QueryError {
    fn from(e: ArchiveError) -> Self {
        QueryError::Archive(e)
    }
}
