//! Reader pool: independent per-consumer cursors over one opened archive.
//!
//! [`ReaderPool`] opens the archive **once** — the expensive part of
//! `ArchiveReader::open` is the header scan that builds per-segment sparse
//! indexes — and then hands out any number of [`PoolStream`]s that share the
//! immutable index but own their file handles and read positions. Streams
//! are therefore safe to drive from different threads concurrently
//! (`ReaderPool: Sync`), and every frame read goes through the shared
//! [`FrameCache`](crate::FrameCache), so concurrent scans over overlapping
//! ranges hit memory instead of disk.
//!
//! A [`PoolStream`] reproduces `fork_archive::RecordStream`'s semantics
//! exactly — same sparse-index seek, same segment-skip, same stop rule, same
//! error behavior on corrupt frames — so a pooled scan and a direct reader
//! scan yield identical record sequences.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use fork_archive::format::{Superblock, FRAME_HEADER_LEN, SUPERBLOCK_LEN};
use fork_archive::{
    ArchiveError, ArchiveReader, ArchiveRecord, HashIndex, SegmentCursor, SegmentScan,
};
use fork_replay::Side;

use crate::cache::{CachedFrame, FrameCache, FrameKey};
use crate::lookup::{lookup_indexed, Lookup, LookupOutput};
use crate::QueryError;

/// Default cache budget for [`ReaderPool::open`]: 64 MiB.
pub const DEFAULT_CACHE_BYTES: u64 = 64 << 20;

/// Default shard count for [`ReaderPool::open`].
pub const DEFAULT_CACHE_SHARDS: usize = 16;

/// Where a range scan starts: mirrors the reader's private seek keys.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SeekKey {
    /// Seek to the largest indexed frame with block number `<= n`.
    Number(u64),
    /// Seek to the largest indexed frame with block timestamp `<= t`.
    Time(u64),
}

/// Where a range scan ends (inclusive bound; the first record past it stops
/// the stream).
#[derive(Debug, Clone, Copy)]
pub(crate) enum StopKey {
    Number(u64),
    Time(u64),
}

/// A shared, immutable view of one opened archive plus a frame cache. See
/// the [module docs](self).
#[derive(Debug)]
pub struct ReaderPool {
    reader: ArchiveReader,
    cache: FrameCache,
    /// Hash-index sidecar, loaded (or scan-built and persisted) on first
    /// point lookup. Immutable once built, like the sparse index.
    hash_index: OnceLock<HashIndex>,
}

impl ReaderPool {
    /// Opens `dir` once and wraps it with a default-sized cache
    /// ([`DEFAULT_CACHE_BYTES`] across [`DEFAULT_CACHE_SHARDS`] shards).
    pub fn open(dir: &Path) -> Result<ReaderPool, ArchiveError> {
        Ok(ReaderPool::new(
            ArchiveReader::open(dir)?,
            FrameCache::new(DEFAULT_CACHE_BYTES, DEFAULT_CACHE_SHARDS),
        ))
    }

    /// Wraps an already-opened reader with a caller-configured cache.
    pub fn new(reader: ArchiveReader, cache: FrameCache) -> ReaderPool {
        ReaderPool {
            reader,
            cache,
            hash_index: OnceLock::new(),
        }
    }

    /// The underlying reader (index, manifest, verify, replay).
    pub fn reader(&self) -> &ArchiveReader {
        &self.reader
    }

    /// The shared frame cache (for stats and telemetry).
    pub fn cache(&self) -> &FrameCache {
        &self.cache
    }

    /// The hash index, loading the persisted sidecar on first use (a
    /// missing, torn, or stale sidecar is rebuilt by a scan and re-written
    /// best-effort — see `fork_archive::sidecar`).
    pub fn hash_index(&self) -> &HashIndex {
        self.hash_index
            .get_or_init(|| HashIndex::load_or_build(&self.reader).0)
    }

    /// Evaluates one lookup through the sidecar fast path (hash lookups
    /// jump straight to their frame; the rest stream through the cache).
    /// Results are identical to `QueryExecutor::run_lookup_naive`.
    pub fn lookup(&self, lookup: &Lookup) -> Result<LookupOutput, QueryError> {
        lookup_indexed(self, lookup)
    }

    /// Reads the single frame at `(side, segment, offset)` through the
    /// cache, opening a checksum-verifying cursor on a miss.
    pub(crate) fn read_frame_at(
        &self,
        side: Side,
        segment: u32,
        offset: u64,
    ) -> Result<(u64, ArchiveRecord), ArchiveError> {
        if let Some(hit) = self.cache.get(&(side, segment, offset)) {
            return Ok((hit.seq, hit.record.clone()));
        }
        let (path, scan) = self
            .reader
            .segments(side)
            .iter()
            .find(|(_, s)| s.superblock.segment == segment)
            .ok_or_else(|| ArchiveError::Corrupt {
                path: self.reader.dir().to_path_buf(),
                offset,
                detail: format!("no {side:?} segment {segment} in the open index"),
            })?;
        let mut cursor = SegmentCursor::open(path, scan.superblock, offset, scan.valid_len)?;
        match cursor.next_frame() {
            Some(Ok((off, seq, record))) => {
                self.cache.insert(
                    (side, segment, off),
                    CachedFrame {
                        seq,
                        record: record.clone(),
                        next_offset: cursor.pos(),
                    },
                );
                Ok((seq, record))
            }
            Some(Err(e)) => Err(e),
            None => Err(ArchiveError::Corrupt {
                path: path.clone(),
                offset,
                detail: "frame offset past the segment's valid range".into(),
            }),
        }
    }

    /// A fresh stream over `side`, optionally seeked and bounded. Each call
    /// returns an independent cursor; any number may run concurrently.
    pub(crate) fn stream(
        &self,
        side: Side,
        seek: Option<SeekKey>,
        stop: Option<StopKey>,
    ) -> PoolStream<'_> {
        PoolStream {
            cache: &self.cache,
            side,
            segments: self.reader.segments(side).iter(),
            seek,
            stop,
            cursor: None,
            done: false,
        }
    }

    /// Full scan of one side in write (= seq) order, served through the
    /// cache.
    pub fn records(&self, side: Side) -> PoolStream<'_> {
        self.stream(side, None, None)
    }
}

/// One frame-granular cached cursor over a single segment. A cache hit
/// jumps straight to the next frame offset without touching the file; a
/// miss opens (or reuses) a real [`SegmentCursor`] positioned at the wanted
/// offset and back-fills the cache.
struct CachedCursor<'a> {
    cache: &'a FrameCache,
    side: Side,
    path: &'a Path,
    superblock: Superblock,
    /// Offset of the next frame to yield.
    offset: u64,
    /// The scan's `valid_len`: one past the last complete frame.
    end: u64,
    /// Lazily opened on a miss; reusable while its position tracks `offset`.
    cursor: Option<SegmentCursor>,
}

impl<'a> CachedCursor<'a> {
    fn open(
        cache: &'a FrameCache,
        side: Side,
        path: &'a Path,
        scan: &SegmentScan,
        start: u64,
    ) -> Self {
        CachedCursor {
            cache,
            side,
            path,
            superblock: scan.superblock,
            offset: start,
            end: scan.valid_len,
            cursor: None,
        }
    }

    fn key(&self) -> FrameKey {
        (self.side, self.superblock.segment, self.offset)
    }

    /// Same contract as [`SegmentCursor::next_frame`]: `(offset, seq,
    /// record)`, `None` at the end of the valid range, `Some(Err(..))` once
    /// for a corrupt frame (the cursor then reports end).
    #[allow(clippy::type_complexity)]
    fn next_frame(&mut self) -> Option<Result<(u64, u64, ArchiveRecord), ArchiveError>> {
        if self.offset + FRAME_HEADER_LEN as u64 > self.end {
            return None;
        }
        let at = self.offset;
        if let Some(hit) = self.cache.get(&self.key()) {
            self.offset = hit.next_offset;
            return Some(Ok((at, hit.seq, hit.record.clone())));
        }
        // Miss: make sure a real cursor sits exactly at `at`. A cursor left
        // over from a previous miss is reusable only if no cache hit has
        // jumped the offset past it since.
        if self.cursor.as_ref().is_none_or(|c| c.pos() != at) {
            match SegmentCursor::open(self.path, self.superblock, at, self.end) {
                Ok(c) => self.cursor = Some(c),
                Err(e) => {
                    self.offset = self.end;
                    return Some(Err(e));
                }
            }
        }
        let cursor = self.cursor.as_mut().expect("cursor opened above");
        match cursor.next_frame() {
            None => None,
            Some(Ok((off, seq, record))) => {
                let next_offset = cursor.pos();
                self.cache.insert(
                    (self.side, self.superblock.segment, off),
                    CachedFrame {
                        seq,
                        record: record.clone(),
                        next_offset,
                    },
                );
                self.offset = next_offset;
                Some(Ok((off, seq, record)))
            }
            Some(Err(e)) => {
                self.offset = self.end;
                Some(Err(e))
            }
        }
    }
}

/// Iterator over one side's records in write order, served through the
/// pool's cache. Yields `(seq, record)`; corrupt frames surface as `Err`
/// and end the affected segment's contribution (the stream continues with
/// the next segment) — exactly like `fork_archive::RecordStream`.
pub struct PoolStream<'a> {
    cache: &'a FrameCache,
    side: Side,
    segments: std::slice::Iter<'a, (PathBuf, SegmentScan)>,
    seek: Option<SeekKey>,
    stop: Option<StopKey>,
    cursor: Option<CachedCursor<'a>>,
    done: bool,
}

impl PoolStream<'_> {
    /// Opens the next segment's cursor, applying the seek key (and skipping
    /// segments that end before it).
    fn advance_segment(&mut self) -> Option<Result<(), ArchiveError>> {
        loop {
            let (path, scan) = self.segments.next()?;
            let start = match &self.seek {
                None => SUPERBLOCK_LEN as u64,
                Some(SeekKey::Number(n)) => {
                    if scan.block_range.is_some_and(|(_, hi)| hi < *n) {
                        continue; // whole segment precedes the range
                    }
                    scan.seek_for_number(*n)
                }
                Some(SeekKey::Time(t)) => {
                    if scan.time_range.is_some_and(|(_, hi)| hi < *t) {
                        continue;
                    }
                    scan.seek_for_time(*t)
                }
            };
            self.cursor = Some(CachedCursor::open(self.cache, self.side, path, scan, start));
            return Some(Ok(()));
        }
    }

    fn past_stop(&self, record: &ArchiveRecord) -> bool {
        match (&self.stop, record) {
            // Block numbers and timestamps ascend per side, so the first
            // block past the bound ends the scan. Tx frames tag along with
            // their block and are filtered by the caller.
            (Some(StopKey::Number(n)), ArchiveRecord::Block(b)) => b.number > *n,
            (Some(StopKey::Time(t)), rec) => rec.timestamp() > *t,
            _ => false,
        }
    }

    fn pull(&mut self) -> Result<Option<(u64, ArchiveRecord)>, ArchiveError> {
        loop {
            if self.done {
                return Ok(None);
            }
            if self.cursor.is_none() {
                match self.advance_segment() {
                    None => return Ok(None),
                    Some(Ok(())) => {}
                    Some(Err(e)) => return Err(e),
                }
            }
            let cursor = self.cursor.as_mut().expect("cursor opened above");
            match cursor.next_frame() {
                None => {
                    self.cursor = None; // segment exhausted, try the next
                }
                Some(Ok((_, seq, record))) => {
                    if self.past_stop(&record) {
                        self.done = true;
                        return Ok(None);
                    }
                    return Ok(Some((seq, record)));
                }
                Some(Err(e)) => {
                    self.cursor = None; // cursor already reported end
                    return Err(e);
                }
            }
        }
    }
}

impl Iterator for PoolStream<'_> {
    type Item = Result<(u64, ArchiveRecord), ArchiveError>;
    fn next(&mut self) -> Option<Self::Item> {
        self.pull().transpose()
    }
}
