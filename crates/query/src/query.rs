//! Typed queries over an archive and their evaluation.
//!
//! A [`Query`] names a side, a range, and a [`Projection`]; evaluation
//! turns the matching slice of the archive into raw records or one of the
//! paper's aggregates — **without re-running the simulation**. The same
//! evaluation code runs over any [`RecordSource`]: the pooled, cached
//! source used by the executor and the naive single-threaded full-scan
//! source used as the correctness reference. Because only the record
//! *iteration* differs (and both iterations yield the same per-side record
//! sequence in write order), pooled and naive results are identical by
//! construction — the concurrency tests assert this byte-for-byte.
//!
//! Aggregates reuse the exact fold code the live pipeline uses
//! (`fork_analytics::aggregate`) and the exact bucketing the telemetry
//! histograms use (`fork_telemetry::bucket_index`), so a full-range query
//! reproduces the live run's series and histograms bit-identically.

use std::collections::BTreeMap;

use fork_analytics::{
    count_series, mean_series, ratio, BlockRecord, MeanCell, TimeSeries, TxRecord,
};
use fork_archive::{ArchiveError, ArchiveReader, ArchiveRecord};
use fork_primitives::SimTime;
use fork_replay::{EchoDetector, Side};
use fork_telemetry::HistogramSnapshot;

use crate::error::QueryError;
use crate::pool::{PoolStream, ReaderPool, SeekKey, StopKey};

/// Which slice of the archive a query covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryRange {
    /// Everything.
    All,
    /// Blocks with numbers in `[first, last]` (inclusive). Only valid for
    /// block-shaped projections: transaction frames carry no block number.
    Blocks {
        /// First block number, inclusive.
        first: u64,
        /// Last block number, inclusive.
        last: u64,
    },
    /// Records with timestamps in `[start, end]` (inclusive unix seconds).
    /// Transactions carry their including block's timestamp.
    Time {
        /// Window start, inclusive.
        start: u64,
        /// Window end, inclusive.
        end: u64,
    },
}

/// What to compute over the covered records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Projection {
    /// The raw block records, in write order.
    Blocks,
    /// The raw transaction records, in write order.
    Txs,
    /// Histogram of inter-block arrival times (seconds), bucketed exactly
    /// like the live `meso.interarrival.{eth,etc}` telemetry histograms.
    InterArrival,
    /// Mean difficulty per day — the live pipeline's `daily_difficulty`.
    Difficulty,
    /// Pointwise ETH:ETC transactions-per-day ratio (cross-side; leave
    /// `side` as `None`).
    TxRatioPerDay,
    /// Echo (cross-chain rebroadcast) counts into `side`, summed over
    /// consecutive `window_days`-day windows.
    Echoes {
        /// Window width in days (`1` = the pipeline's `echoes_per_day`).
        window_days: u64,
    },
}

/// One typed query. Construct directly; shape errors surface from
/// [`Query::validate`] (and from evaluation) as
/// [`QueryError::Unsupported`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// The network side, for per-side projections. Cross-side projections
    /// ([`Projection::TxRatioPerDay`]) take `None`.
    pub side: Option<Side>,
    /// The archive slice to cover.
    pub range: QueryRange,
    /// What to compute.
    pub projection: Projection,
}

/// What a query evaluates to.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// Raw block records ([`Projection::Blocks`]).
    Blocks(Vec<BlockRecord>),
    /// Raw transaction records ([`Projection::Txs`]).
    Txs(Vec<TxRecord>),
    /// A histogram ([`Projection::InterArrival`]). Boxed: the snapshot's
    /// fixed bucket array dwarfs the other variants.
    Histogram(Box<HistogramSnapshot>),
    /// A time series (all remaining projections).
    Series(TimeSeries),
}

impl Query {
    /// Checks that the query's shape is answerable. Evaluation calls this
    /// first, so callers only need it for early feedback.
    pub fn validate(&self) -> Result<(), QueryError> {
        let needs_side = !matches!(self.projection, Projection::TxRatioPerDay);
        if needs_side && self.side.is_none() {
            return Err(QueryError::unsupported(format!(
                "{:?} is a per-side projection; set `side`",
                self.projection
            )));
        }
        if !needs_side && self.side.is_some() {
            return Err(QueryError::unsupported(
                "TxRatioPerDay is cross-side; leave `side` as None",
            ));
        }
        let tx_based = matches!(
            self.projection,
            Projection::Txs | Projection::TxRatioPerDay | Projection::Echoes { .. }
        );
        if tx_based && matches!(self.range, QueryRange::Blocks { .. }) {
            return Err(QueryError::unsupported(
                "transaction frames carry no block number; use a time range",
            ));
        }
        if let Projection::Echoes { window_days: 0 } = self.projection {
            return Err(QueryError::unsupported("echo window must be >= 1 day"));
        }
        Ok(())
    }
}

/// Anything that can stream one side's records in write (= seq) order.
/// Implementations may over-approximate the range (evaluation re-filters),
/// but must never drop or reorder in-range records.
pub(crate) trait RecordSource {
    /// Records of `side` covering at least `range`, as `(seq, record)`.
    fn stream<'a>(
        &'a self,
        side: Side,
        range: &QueryRange,
    ) -> Box<dyn Iterator<Item = Result<(u64, ArchiveRecord), ArchiveError>> + 'a>;
}

/// The production source: pooled, cached, seek-optimized streams.
pub(crate) struct PooledSource<'a>(pub &'a ReaderPool);

impl RecordSource for PooledSource<'_> {
    fn stream<'a>(
        &'a self,
        side: Side,
        range: &QueryRange,
    ) -> Box<dyn Iterator<Item = Result<(u64, ArchiveRecord), ArchiveError>> + 'a> {
        let (seek, stop) = match *range {
            QueryRange::All => (None, None),
            QueryRange::Blocks { first, last } => {
                (Some(SeekKey::Number(first)), Some(StopKey::Number(last)))
            }
            QueryRange::Time { start, end } => {
                (Some(SeekKey::Time(start)), Some(StopKey::Time(end)))
            }
        };
        let stream: PoolStream<'a> = self.0.stream(side, seek, stop);
        Box::new(stream)
    }
}

/// The reference source: a plain single-threaded full scan through the
/// reader, no seek, no cache. Deliberately the dumbest correct thing.
pub(crate) struct NaiveSource<'a>(pub &'a ArchiveReader);

impl RecordSource for NaiveSource<'_> {
    fn stream<'a>(
        &'a self,
        side: Side,
        _range: &QueryRange,
    ) -> Box<dyn Iterator<Item = Result<(u64, ArchiveRecord), ArchiveError>> + 'a> {
        Box::new(self.0.records(side))
    }
}

fn block_in_range(range: &QueryRange, b: &BlockRecord) -> bool {
    match *range {
        QueryRange::All => true,
        QueryRange::Blocks { first, last } => (first..=last).contains(&b.number),
        QueryRange::Time { start, end } => (start..=end).contains(&b.timestamp),
    }
}

fn ts_in_range(range: &QueryRange, ts: u64) -> bool {
    match *range {
        QueryRange::All => true,
        QueryRange::Blocks { .. } => false, // rejected by validate()
        QueryRange::Time { start, end } => (start..=end).contains(&ts),
    }
}

fn day_in_range(range: &QueryRange, day: u64) -> bool {
    match *range {
        QueryRange::All => true,
        QueryRange::Blocks { .. } => false, // rejected by validate()
        // A day qualifies when any of its seconds fall inside the window.
        QueryRange::Time { start, end } => day * 86_400 <= end && (day + 1) * 86_400 > start,
    }
}

/// Evaluates `query` against `source`. This is the single evaluation path:
/// the executor and the naive reference differ only in the `source` they
/// pass in.
pub(crate) fn evaluate(
    source: &dyn RecordSource,
    query: &Query,
) -> Result<QueryOutput, QueryError> {
    query.validate()?;
    match query.projection {
        Projection::Blocks => {
            let side = query.side.expect("validated");
            let mut out = Vec::new();
            for item in source.stream(side, &query.range) {
                if let (_, ArchiveRecord::Block(b)) = item? {
                    if block_in_range(&query.range, &b) {
                        out.push(b);
                    }
                }
            }
            Ok(QueryOutput::Blocks(out))
        }
        Projection::Txs => {
            let side = query.side.expect("validated");
            let mut out = Vec::new();
            for item in source.stream(side, &query.range) {
                if let (_, ArchiveRecord::Tx(t)) = item? {
                    if ts_in_range(&query.range, t.timestamp) {
                        out.push(t);
                    }
                }
            }
            Ok(QueryOutput::Txs(out))
        }
        Projection::InterArrival => {
            let side = query.side.expect("validated");
            // `HistogramSnapshot::record` mirrors the live histogram's
            // bucketing without the live type, so results are identical
            // whether or not the build enables the `enabled` feature.
            let mut h = HistogramSnapshot::default();
            let mut prev: Option<u64> = None;
            for item in source.stream(side, &query.range) {
                if let (_, ArchiveRecord::Block(b)) = item? {
                    if !block_in_range(&query.range, &b) {
                        continue;
                    }
                    if let Some(p) = prev {
                        h.record(b.timestamp.saturating_sub(p));
                    }
                    prev = Some(b.timestamp);
                }
            }
            Ok(QueryOutput::Histogram(Box::new(h)))
        }
        Projection::Difficulty => {
            let side = query.side.expect("validated");
            let mut cells: BTreeMap<u64, MeanCell> = BTreeMap::new();
            for item in source.stream(side, &query.range) {
                if let (_, ArchiveRecord::Block(b)) = item? {
                    if block_in_range(&query.range, &b) {
                        cells
                            .entry(b.timestamp / 86_400)
                            .or_default()
                            .push(b.difficulty.to_f64_lossy());
                    }
                }
            }
            Ok(QueryOutput::Series(mean_series(
                side.label(),
                &cells,
                86_400,
            )))
        }
        Projection::TxRatioPerDay => {
            let mut daily = [BTreeMap::<u64, u64>::new(), BTreeMap::new()];
            for (i, side) in [Side::Eth, Side::Etc].into_iter().enumerate() {
                for item in source.stream(side, &query.range) {
                    if let (_, ArchiveRecord::Tx(t)) = item? {
                        if ts_in_range(&query.range, t.timestamp) {
                            *daily[i].entry(t.timestamp / 86_400).or_default() += 1;
                        }
                    }
                }
            }
            let eth = count_series(Side::Eth.label(), &daily[0], 86_400);
            let etc = count_series(Side::Etc.label(), &daily[1], 86_400);
            Ok(QueryOutput::Series(ratio(&eth, &etc, "ETH:ETC")))
        }
        Projection::Echoes { window_days } => {
            let side = query.side.expect("validated");
            // Echo-ness depends on which side saw a hash *first*, so the
            // detector must see the whole cross-side stream in the original
            // global order regardless of the query range; the range only
            // restricts which days are emitted.
            let detector = run_echo_detector(source)?;
            let mut windows: BTreeMap<u64, u64> = BTreeMap::new();
            for (day, stats) in detector.daily(side) {
                if day_in_range(&query.range, day) {
                    *windows.entry(day / window_days).or_default() += stats.echoes;
                }
            }
            let mut s = TimeSeries::new(side.label());
            for (w, echoes) in windows {
                s.push(SimTime::from_unix(w * window_days * 86_400), echoes as f64);
            }
            Ok(QueryOutput::Series(s))
        }
    }
}

/// Replays every transaction on both sides through an [`EchoDetector`] in
/// the original global ingestion order (merge by sequence number — the same
/// merge `ArchiveReader::replay_into` performs).
fn run_echo_detector(source: &dyn RecordSource) -> Result<EchoDetector, QueryError> {
    let mut eth = source.stream(Side::Eth, &QueryRange::All).peekable();
    let mut etc = source.stream(Side::Etc, &QueryRange::All).peekable();
    let mut detector = EchoDetector::new();
    loop {
        let take_eth = match (peek_seq(&mut eth)?, peek_seq(&mut etc)?) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(a), Some(b)) => a <= b,
        };
        let stream = if take_eth { &mut eth } else { &mut etc };
        let (_, record) = stream.next().expect("peeked Some")?;
        if let ArchiveRecord::Tx(t) = record {
            detector.observe(t.network, t.hash, t.timestamp / 86_400);
        }
    }
    Ok(detector)
}

pub(crate) type RecordIter<'a> =
    Box<dyn Iterator<Item = Result<(u64, ArchiveRecord), ArchiveError>> + 'a>;

pub(crate) fn peek_seq(
    it: &mut std::iter::Peekable<RecordIter<'_>>,
) -> Result<Option<u64>, QueryError> {
    match it.peek() {
        None => Ok(None),
        Some(Ok((seq, _))) => Ok(Some(*seq)),
        Some(Err(_)) => {
            let err = it.next().expect("peeked Some").expect_err("peeked Err");
            Err(err.into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(side: Option<Side>, range: QueryRange, projection: Projection) -> Query {
        Query {
            side,
            range,
            projection,
        }
    }

    #[test]
    fn per_side_projections_require_a_side() {
        for p in [
            Projection::Blocks,
            Projection::InterArrival,
            Projection::Difficulty,
        ] {
            assert!(q(None, QueryRange::All, p).validate().is_err());
            assert!(q(Some(Side::Eth), QueryRange::All, p).validate().is_ok());
        }
    }

    #[test]
    fn tx_projections_reject_block_ranges() {
        let blocks = QueryRange::Blocks { first: 0, last: 10 };
        assert!(q(Some(Side::Eth), blocks, Projection::Txs)
            .validate()
            .is_err());
        assert!(q(None, blocks, Projection::TxRatioPerDay)
            .validate()
            .is_err());
        assert!(q(
            Some(Side::Etc),
            blocks,
            Projection::Echoes { window_days: 7 }
        )
        .validate()
        .is_err());
        let time = QueryRange::Time { start: 0, end: 10 };
        assert!(q(Some(Side::Eth), time, Projection::Txs).validate().is_ok());
    }

    #[test]
    fn ratio_is_cross_side_only() {
        assert!(
            q(Some(Side::Eth), QueryRange::All, Projection::TxRatioPerDay)
                .validate()
                .is_err()
        );
        assert!(q(None, QueryRange::All, Projection::TxRatioPerDay)
            .validate()
            .is_ok());
    }

    #[test]
    fn zero_day_echo_window_rejected() {
        assert!(q(
            Some(Side::Eth),
            QueryRange::All,
            Projection::Echoes { window_days: 0 }
        )
        .validate()
        .is_err());
    }

    #[test]
    fn day_in_range_uses_overlap() {
        let r = QueryRange::Time {
            start: 86_400 + 10,
            end: 3 * 86_400 - 1,
        };
        assert!(!day_in_range(&r, 0));
        assert!(day_in_range(&r, 1), "partial overlap at the start counts");
        assert!(day_in_range(&r, 2));
        assert!(!day_in_range(&r, 3));
    }
}
