//! The streaming aggregation pipeline.
//!
//! Blocks and transactions are ingested as they finalize (the simulator
//! never holds a full nine-month ledger in memory); per-hour and per-day
//! aggregates accumulate here, and each figure's series are extracted at the
//! end. One [`Pipeline`] covers both networks so cross-chain metrics (echo
//! detection, ratios) see a single consistent stream.

use std::collections::BTreeMap;

use fork_pools::DailyWinners;
use fork_primitives::SimTime;
use fork_replay::{EchoDetector, Side};

use crate::aggregate::{count_series, mean_series, MeanCell};
use crate::record::{BlockRecord, TxRecord};
use crate::series::TimeSeries;

/// Aggregates for one network.
#[derive(Debug, Clone, Default)]
struct NetworkAggregates {
    hourly_blocks: BTreeMap<u64, u64>,
    hourly_difficulty: BTreeMap<u64, MeanCell>,
    hourly_delta: BTreeMap<u64, MeanCell>,
    daily_difficulty: BTreeMap<u64, MeanCell>,
    daily_txs: BTreeMap<u64, u64>,
    daily_contract_txs: BTreeMap<u64, u64>,
    daily_winners: BTreeMap<u64, DailyWinners>,
    last_timestamp: Option<u64>,
    total_blocks: u64,
    total_txs: u64,
    total_ommers: u64,
}

impl NetworkAggregates {
    fn ingest_block(&mut self, b: &BlockRecord) {
        let hour = b.hour();
        let day = b.day();
        *self.hourly_blocks.entry(hour).or_default() += 1;
        let d = b.difficulty.to_f64_lossy();
        self.hourly_difficulty.entry(hour).or_default().push(d);
        self.daily_difficulty.entry(day).or_default().push(d);
        if let Some(prev) = self.last_timestamp {
            let delta = b.timestamp.saturating_sub(prev) as f64;
            self.hourly_delta.entry(hour).or_default().push(delta);
        }
        self.last_timestamp = Some(b.timestamp);
        self.daily_winners
            .entry(day)
            .or_default()
            .record(b.beneficiary);
        self.total_blocks += 1;
        self.total_ommers += b.ommer_count as u64;
    }

    fn ingest_tx(&mut self, t: &TxRecord) {
        let day = t.day();
        *self.daily_txs.entry(day).or_default() += 1;
        if t.is_contract {
            *self.daily_contract_txs.entry(day).or_default() += 1;
        }
        self.total_txs += 1;
    }
}

/// Cached ingest span handles (no-ops unless the build enables telemetry).
#[derive(Debug, Clone)]
struct IngestSpans {
    block: std::sync::Arc<fork_telemetry::SpanStats>,
    tx: std::sync::Arc<fork_telemetry::SpanStats>,
}

/// The two-network aggregation pipeline.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    eth: NetworkAggregates,
    etc: NetworkAggregates,
    echo: EchoDetector,
    /// Optional `analytics.ingest.*` spans — attached by study runs and
    /// archive replays so ingestion cost is measurable either way.
    spans: Option<IngestSpans>,
}

impl Pipeline {
    /// Fresh pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times every `ingest_block` / `ingest_tx` under
    /// `analytics.ingest.block` / `analytics.ingest.tx` in `registry`.
    /// Spans never influence the aggregates, so an instrumented pipeline
    /// produces byte-identical figures to a bare one.
    pub fn attach_telemetry(&mut self, registry: &fork_telemetry::MetricsRegistry) {
        self.spans = Some(IngestSpans {
            block: registry.span("analytics.ingest.block"),
            tx: registry.span("analytics.ingest.tx"),
        });
    }

    fn side(&self, side: Side) -> &NetworkAggregates {
        match side {
            Side::Eth => &self.eth,
            Side::Etc => &self.etc,
        }
    }

    fn side_mut(&mut self, side: Side) -> &mut NetworkAggregates {
        match side {
            Side::Eth => &mut self.eth,
            Side::Etc => &mut self.etc,
        }
    }

    /// Ingests one finalized block.
    pub fn ingest_block(&mut self, b: &BlockRecord) {
        let _guard = self.spans.as_ref().map(|s| s.block.enter());
        self.side_mut(b.network).ingest_block(b);
    }

    /// Ingests one included transaction (feeds the echo detector too).
    pub fn ingest_tx(&mut self, t: &TxRecord) {
        let _guard = self.spans.as_ref().map(|s| s.tx.enter());
        self.side_mut(t.network).ingest_tx(t);
        self.echo.observe(t.network, t.hash, t.day());
    }

    /// Blocks per hour — Figure 1 top panel.
    pub fn blocks_per_hour(&self, side: Side) -> TimeSeries {
        count_series(side.label(), &self.side(side).hourly_blocks, 3_600)
    }

    /// Mean block difficulty per hour — Figure 1 middle panel.
    pub fn hourly_difficulty(&self, side: Side) -> TimeSeries {
        mean_series(side.label(), &self.side(side).hourly_difficulty, 3_600)
    }

    /// Mean inter-block delta (seconds) per hour — Figure 1 bottom panel.
    pub fn block_delta(&self, side: Side) -> TimeSeries {
        mean_series(side.label(), &self.side(side).hourly_delta, 3_600)
    }

    /// Mean difficulty per day — Figure 2 top panel.
    pub fn daily_difficulty(&self, side: Side) -> TimeSeries {
        mean_series(side.label(), &self.side(side).daily_difficulty, 86_400)
    }

    /// Transactions per day — Figure 2 middle panel.
    pub fn txs_per_day(&self, side: Side) -> TimeSeries {
        count_series(side.label(), &self.side(side).daily_txs, 86_400)
    }

    /// Percentage of transactions that are contract interactions —
    /// Figure 2 bottom panel.
    pub fn contract_tx_percent(&self, side: Side) -> TimeSeries {
        let agg = self.side(side);
        let mut s = TimeSeries::new(side.label());
        for (day, n) in &agg.daily_txs {
            let c = agg.daily_contract_txs.get(day).copied().unwrap_or(0);
            if *n > 0 {
                s.push(
                    SimTime::from_unix(day * 86_400),
                    100.0 * c as f64 / *n as f64,
                );
            }
        }
        s
    }

    /// Expected hashes per USD — Figure 3: `difficulty / 5 / usd`, sampled
    /// daily against the provided exchange-rate lookup.
    pub fn hashes_per_usd(&self, side: Side, usd_at: impl Fn(SimTime) -> f64) -> TimeSeries {
        let mut s = TimeSeries::new(side.label());
        for (day, cell) in &self.side(side).daily_difficulty {
            let t = SimTime::from_unix(day * 86_400);
            if let Some(v) = fork_primitives::units::hashes_per_usd(
                fork_primitives::U256::from_u128(cell.mean().max(0.0) as u128),
                usd_at(t),
            ) {
                s.push(t, v);
            }
        }
        s
    }

    /// Rebroadcast (echo) transactions per day — Figure 4 bottom panel.
    pub fn echoes_per_day(&self, side: Side) -> TimeSeries {
        let mut s = TimeSeries::new(side.label());
        for (day, stats) in self.echo.daily(side) {
            s.push(SimTime::from_unix(day * 86_400), stats.echoes as f64);
        }
        s
    }

    /// Echoes as % of all transactions — Figure 4 top panel.
    pub fn echo_percent(&self, side: Side) -> TimeSeries {
        let mut s = TimeSeries::new(side.label());
        for (day, stats) in self.echo.daily(side) {
            s.push(SimTime::from_unix(day * 86_400), stats.echo_percent());
        }
        s
    }

    /// % of each day's blocks mined by the day's top-`n` beneficiaries —
    /// Figure 5.
    pub fn pool_top_n(&self, side: Side, n: usize) -> TimeSeries {
        let mut s = TimeSeries::new(format!("{} top {}", side.label(), n));
        for (day, winners) in &self.side(side).daily_winners {
            if let Some(f) = winners.top_n_fraction(n) {
                s.push(SimTime::from_unix(day * 86_400), 100.0 * f);
            }
        }
        s
    }

    /// Totals for the summary report.
    pub fn totals(&self, side: Side) -> (u64, u64, u64) {
        let a = self.side(side);
        (a.total_blocks, a.total_txs, a.total_ommers)
    }

    /// Total echoes observed into `side`.
    pub fn total_echoes(&self, side: Side) -> u64 {
        self.echo.total_echoes(side)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fork_primitives::{Address, H256, U256};

    fn block(network: Side, number: u64, ts: u64, diff: u64, who: u8) -> BlockRecord {
        BlockRecord {
            network,
            number,
            hash: H256([number as u8; 32]),
            timestamp: ts,
            difficulty: U256::from_u64(diff),
            beneficiary: Address([who; 20]),
            gas_used: 21_000,
            tx_count: 1,
            ommer_count: 0,
        }
    }

    fn tx(network: Side, id: u8, ts: u64, contract: bool) -> TxRecord {
        TxRecord {
            network,
            hash: H256([id; 32]),
            timestamp: ts,
            is_contract: contract,
            has_chain_id: false,
            value: U256::ONE,
        }
    }

    #[test]
    fn blocks_per_hour_counts() {
        let mut p = Pipeline::new();
        for i in 0..5 {
            p.ingest_block(&block(Side::Eth, i, 100 + i * 14, 1000, 1));
        }
        p.ingest_block(&block(Side::Eth, 5, 3_700, 1000, 1));
        let s = p.blocks_per_hour(Side::Eth);
        assert_eq!(s.points, vec![(0, 5.0), (3_600, 1.0)]);
    }

    #[test]
    fn delta_needs_two_blocks() {
        let mut p = Pipeline::new();
        p.ingest_block(&block(Side::Etc, 0, 100, 1000, 1));
        assert!(p.block_delta(Side::Etc).is_empty());
        p.ingest_block(&block(Side::Etc, 1, 1_300, 1000, 1));
        let s = p.block_delta(Side::Etc);
        assert_eq!(s.points, vec![(0, 1_200.0)]);
    }

    #[test]
    fn networks_do_not_mix() {
        let mut p = Pipeline::new();
        p.ingest_block(&block(Side::Eth, 0, 100, 5_000, 1));
        p.ingest_block(&block(Side::Etc, 0, 100, 7_000, 2));
        assert_eq!(p.hourly_difficulty(Side::Eth).points[0].1, 5_000.0);
        assert_eq!(p.hourly_difficulty(Side::Etc).points[0].1, 7_000.0);
        assert_eq!(p.totals(Side::Eth).0, 1);
    }

    #[test]
    fn contract_percent() {
        let mut p = Pipeline::new();
        p.ingest_tx(&tx(Side::Eth, 1, 100, true));
        p.ingest_tx(&tx(Side::Eth, 2, 100, false));
        p.ingest_tx(&tx(Side::Eth, 3, 100, false));
        p.ingest_tx(&tx(Side::Eth, 4, 100, true));
        let s = p.contract_tx_percent(Side::Eth);
        assert_eq!(s.points, vec![(0, 50.0)]);
    }

    #[test]
    fn echo_series_from_cross_chain_txs() {
        let mut p = Pipeline::new();
        p.ingest_tx(&tx(Side::Eth, 1, 100, false));
        p.ingest_tx(&tx(Side::Etc, 1, 200, false)); // echo into ETC
        p.ingest_tx(&tx(Side::Etc, 2, 200, false)); // native
        let echoes = p.echoes_per_day(Side::Etc);
        assert_eq!(echoes.points, vec![(0, 1.0)]);
        let pct = p.echo_percent(Side::Etc);
        assert_eq!(pct.points, vec![(0, 50.0)]);
        assert_eq!(p.total_echoes(Side::Etc), 1);
        assert_eq!(p.total_echoes(Side::Eth), 0);
    }

    #[test]
    fn pool_top_n_series() {
        let mut p = Pipeline::new();
        // Day 0: pool 1 wins 3 of 4.
        for i in 0..3 {
            p.ingest_block(&block(Side::Eth, i, 100 + i, 1000, 1));
        }
        p.ingest_block(&block(Side::Eth, 3, 104, 1000, 2));
        let s = p.pool_top_n(Side::Eth, 1);
        assert_eq!(s.points, vec![(0, 75.0)]);
        assert_eq!(p.pool_top_n(Side::Eth, 2).points, vec![(0, 100.0)]);
    }

    #[test]
    fn hashes_per_usd_uses_price_lookup() {
        let mut p = Pipeline::new();
        p.ingest_block(&block(Side::Eth, 0, 100, 60_000, 1));
        let s = p.hashes_per_usd(Side::Eth, |_| 12.0);
        assert_eq!(s.points.len(), 1);
        assert!((s.points[0].1 - 1_000.0).abs() < 1e-9); // 60000/5/12
                                                         // Unlisted market yields an empty series.
        let empty = p.hashes_per_usd(Side::Eth, |_| 0.0);
        assert!(empty.is_empty());
    }
}
