//! CSV and JSON export of figure series.

use std::io::Write;
use std::path::Path;

use crate::series::TimeSeries;

/// Writes series as CSV: `unix_time,<label1>,<label2>,...` with one row per
/// timestamp in the union of all series (empty cells where a series has no
/// point at that time).
pub fn to_csv(series: &[&TimeSeries]) -> String {
    let mut out = String::from("unix_time");
    for s in series {
        out.push(',');
        out.push_str(&s.label.replace(',', ";"));
    }
    out.push('\n');

    let mut times: Vec<u64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(t, _)| *t))
        .collect();
    times.sort_unstable();
    times.dedup();

    let mut cursors = vec![0usize; series.len()];
    for t in times {
        out.push_str(&t.to_string());
        for (si, s) in series.iter().enumerate() {
            out.push(',');
            while cursors[si] < s.points.len() && s.points[cursors[si]].0 < t {
                cursors[si] += 1;
            }
            if cursors[si] < s.points.len() && s.points[cursors[si]].0 == t {
                out.push_str(&format!("{}", s.points[cursors[si]].1));
            }
        }
        out.push('\n');
    }
    out
}

/// Writes CSV to a file.
pub fn write_csv(path: impl AsRef<Path>, series: &[&TimeSeries]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_csv(series).as_bytes())
}

/// Serializes series as JSON (used to snapshot figure data into
/// EXPERIMENTS.md regeneration runs).
pub fn to_json(series: &[&TimeSeries]) -> String {
    let arr = fork_telemetry::json::Value::Arr(series.iter().map(|s| s.to_json_value()).collect());
    arr.to_json_pretty()
}

/// Writes JSON to a file.
pub fn write_json(path: impl AsRef<Path>, series: &[&TimeSeries]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json(series).as_bytes())
}

/// Converts a telemetry histogram (log2 buckets) into a [`TimeSeries`]-shaped
/// export: x is each occupied bucket's lower bound, y its sample count. The
/// same CSV/JSON writers that handle figure series then handle histogram
/// exports (block inter-arrival distributions, frame sizes, …).
pub fn histogram_series(
    label: impl Into<String>,
    h: &fork_telemetry::HistogramSnapshot,
) -> TimeSeries {
    let mut s = TimeSeries::new(label);
    for (i, &n) in h.buckets.iter().enumerate() {
        if n > 0 {
            let (lo, _) = fork_telemetry::bucket_range(i);
            s.points.push((lo, n as f64));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use fork_primitives::SimTime;

    fn s(label: &str, pts: &[(u64, f64)]) -> TimeSeries {
        let mut ts = TimeSeries::new(label);
        for (t, v) in pts {
            ts.push(SimTime::from_unix(*t), *v);
        }
        ts
    }

    #[test]
    fn csv_aligns_on_time_union() {
        let a = s("ETH", &[(10, 1.0), (20, 2.0)]);
        let b = s("ETC", &[(20, 5.0), (30, 6.0)]);
        let csv = to_csv(&[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "unix_time,ETH,ETC");
        assert_eq!(lines[1], "10,1,");
        assert_eq!(lines[2], "20,2,5");
        assert_eq!(lines[3], "30,,6");
    }

    #[test]
    fn csv_escapes_commas_in_labels() {
        let a = s("a,b", &[(1, 1.0)]);
        let csv = to_csv(&[&a]);
        assert!(csv.starts_with("unix_time,a;b\n"));
    }

    #[test]
    fn json_roundtrips_structure() {
        let a = s("ETH", &[(10, 1.5)]);
        let j = to_json(&[&a]);
        let v = fork_telemetry::json::Value::parse(&j).unwrap();
        assert_eq!(v[0]["label"].as_str(), Some("ETH"));
        assert_eq!(v[0]["points"][0][0].as_u64(), Some(10));
        assert_eq!(v[0]["points"][0][1].as_f64(), Some(1.5));
    }

    #[test]
    fn file_writers_produce_files() {
        let dir = std::env::temp_dir().join("fork-analytics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = s("x", &[(1, 2.0)]);
        let csv_path = dir.join("t.csv");
        let json_path = dir.join("t.json");
        write_csv(&csv_path, &[&a]).unwrap();
        write_json(&json_path, &[&a]).unwrap();
        assert!(std::fs::read_to_string(&csv_path).unwrap().contains("x"));
        assert!(std::fs::read_to_string(&json_path).unwrap().contains("x"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
