//! Time series containers used by every figure.

use fork_primitives::SimTime;

/// A named series of `(time, value)` points, time-ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Legend label ("ETH", "ETC top 5", …).
    pub label: String,
    /// Points as `(unix_seconds, value)`.
    pub points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new(label: impl Into<String>) -> Self {
        TimeSeries {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point (must be time-ascending; debug-asserted).
    pub fn push(&mut self, t: SimTime, value: f64) {
        debug_assert!(
            self.points
                .last()
                .map(|(lt, _)| *lt <= t.as_unix())
                .unwrap_or(true),
            "series must be time-ascending"
        );
        self.points.push((t.as_unix(), value));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Minimum and maximum values; `None` when empty or all-NaN.
    pub fn value_range(&self) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (_, v) in &self.points {
            if v.is_finite() {
                lo = lo.min(*v);
                hi = hi.max(*v);
            }
        }
        if lo.is_finite() {
            Some((lo, hi))
        } else {
            None
        }
    }

    /// Mean value over the series (ignoring non-finite points).
    pub fn mean(&self) -> f64 {
        let vals: Vec<f64> = self
            .points
            .iter()
            .map(|(_, v)| *v)
            .filter(|v| v.is_finite())
            .collect();
        if vals.is_empty() {
            return f64::NAN;
        }
        vals.iter().sum::<f64>() / vals.len() as f64
    }

    /// The value at the point nearest to `t`.
    pub fn nearest(&self, t: SimTime) -> Option<f64> {
        self.points
            .iter()
            .min_by_key(|(pt, _)| pt.abs_diff(t.as_unix()))
            .map(|(_, v)| *v)
    }

    /// This series as a JSON value: `{"label": ..., "points": [[t, v], ...]}`.
    pub fn to_json_value(&self) -> fork_telemetry::json::Value {
        use fork_telemetry::json::Value;
        Value::Obj(vec![
            ("label".into(), Value::Str(self.label.clone())),
            (
                "points".into(),
                Value::Arr(
                    self.points
                        .iter()
                        .map(|(t, v)| Value::Arr(vec![Value::Num(*t as f64), Value::Num(*v)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Restricts to points within `[from, to]`.
    pub fn window(&self, from: SimTime, to: SimTime) -> TimeSeries {
        TimeSeries {
            label: self.label.clone(),
            points: self
                .points
                .iter()
                .filter(|(t, _)| *t >= from.as_unix() && *t <= to.as_unix())
                .copied()
                .collect(),
        }
    }
}

/// Pearson correlation between two series sampled on matching timestamps
/// (inner join on time). `None` if fewer than 3 common points or zero
/// variance. Figure 3's "strong correlation" claim is checked with this.
pub fn correlation(a: &TimeSeries, b: &TimeSeries) -> Option<f64> {
    let mut pairs = Vec::new();
    let mut j = 0;
    for (t, va) in &a.points {
        while j < b.points.len() && b.points[j].0 < *t {
            j += 1;
        }
        if j < b.points.len() && b.points[j].0 == *t && va.is_finite() && b.points[j].1.is_finite()
        {
            pairs.push((*va, b.points[j].1));
        }
    }
    if pairs.len() < 3 {
        return None;
    }
    let n = pairs.len() as f64;
    let (ma, mb) = (
        pairs.iter().map(|(x, _)| x).sum::<f64>() / n,
        pairs.iter().map(|(_, y)| y).sum::<f64>() / n,
    );
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in &pairs {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some(cov / (va.sqrt() * vb.sqrt()))
}

/// Pointwise ratio `a / b` on matching timestamps (skipping zero/absent
/// denominators) — used for the ETH:ETC transaction ratio observation.
pub fn ratio(a: &TimeSeries, b: &TimeSeries, label: impl Into<String>) -> TimeSeries {
    let mut out = TimeSeries::new(label);
    let mut j = 0;
    for (t, va) in &a.points {
        while j < b.points.len() && b.points[j].0 < *t {
            j += 1;
        }
        if j < b.points.len() && b.points[j].0 == *t && b.points[j].1 != 0.0 {
            out.points.push((*t, va / b.points[j].1));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(label: &str, vals: &[(u64, f64)]) -> TimeSeries {
        TimeSeries {
            label: label.into(),
            points: vals.to_vec(),
        }
    }

    #[test]
    fn push_and_range() {
        let mut ts = TimeSeries::new("x");
        ts.push(SimTime::from_unix(10), 5.0);
        ts.push(SimTime::from_unix(20), 1.0);
        ts.push(SimTime::from_unix(30), 9.0);
        assert_eq!(ts.value_range(), Some((1.0, 9.0)));
        assert_eq!(ts.len(), 3);
        assert!((ts.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_correlation() {
        let a = s("a", &[(1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)]);
        let b = s("b", &[(1, 10.0), (2, 20.0), (3, 30.0), (4, 40.0)]);
        let r = correlation(&a, &b).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anti_correlation() {
        let a = s("a", &[(1, 1.0), (2, 2.0), (3, 3.0)]);
        let b = s("b", &[(1, 3.0), (2, 2.0), (3, 1.0)]);
        assert!((correlation(&a, &b).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_requires_overlap_and_variance() {
        let a = s("a", &[(1, 1.0), (2, 2.0), (3, 3.0)]);
        let disjoint = s("b", &[(10, 1.0), (20, 2.0), (30, 3.0)]);
        assert_eq!(correlation(&a, &disjoint), None);
        let flat = s("b", &[(1, 5.0), (2, 5.0), (3, 5.0)]);
        assert_eq!(correlation(&a, &flat), None);
    }

    #[test]
    fn ratio_skips_zero_denominators() {
        let a = s("a", &[(1, 10.0), (2, 10.0), (3, 10.0)]);
        let b = s("b", &[(1, 4.0), (2, 0.0), (3, 2.0)]);
        let r = ratio(&a, &b, "a:b");
        assert_eq!(r.points, vec![(1, 2.5), (3, 5.0)]);
    }

    #[test]
    fn window_and_nearest() {
        let a = s("a", &[(10, 1.0), (20, 2.0), (30, 3.0)]);
        let w = a.window(SimTime::from_unix(15), SimTime::from_unix(30));
        assert_eq!(w.points, vec![(20, 2.0), (30, 3.0)]);
        assert_eq!(a.nearest(SimTime::from_unix(21)), Some(2.0));
        assert_eq!(a.nearest(SimTime::from_unix(26)), Some(3.0));
    }

    #[test]
    fn empty_series_edge_cases() {
        let e = TimeSeries::new("e");
        assert!(e.is_empty());
        assert_eq!(e.value_range(), None);
        assert!(e.mean().is_nan());
        assert_eq!(e.nearest(SimTime::from_unix(0)), None);
    }
}
