//! Shared aggregation cells and series builders.
//!
//! Both the live [`crate::Pipeline`] and fork-query's archive-backed
//! projections fold per-bucket means over `f64` values. Floating-point
//! addition is not associative, so "the same numbers in the same order"
//! is the *only* way two independent consumers produce bit-identical
//! series. Keeping the cell and the series construction here — and feeding
//! both consumers in per-side ingestion order — makes that equality hold by
//! construction instead of by tolerance.

use std::collections::BTreeMap;

use fork_primitives::SimTime;

use crate::series::TimeSeries;

/// Mean-accumulator cell: a running `sum / n` fold in insertion order.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeanCell {
    sum: f64,
    n: u64,
}

impl MeanCell {
    /// Folds one value into the mean.
    pub fn push(&mut self, v: f64) {
        self.sum += v;
        self.n += 1;
    }

    /// The mean so far (`NaN` when no values were pushed).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.sum / self.n as f64
        }
    }

    /// Number of values folded in.
    pub fn count(&self) -> u64 {
        self.n
    }
}

/// Builds a time series of per-bucket means. Bucket keys are multiples of
/// `bucket_secs` (hours → `3_600`, days → `86_400`).
pub fn mean_series(
    label: impl Into<String>,
    cells: &BTreeMap<u64, MeanCell>,
    bucket_secs: u64,
) -> TimeSeries {
    let mut s = TimeSeries::new(label);
    for (bucket, cell) in cells {
        s.push(SimTime::from_unix(bucket * bucket_secs), cell.mean());
    }
    s
}

/// Builds a time series of per-bucket counts.
pub fn count_series(
    label: impl Into<String>,
    counts: &BTreeMap<u64, u64>,
    bucket_secs: u64,
) -> TimeSeries {
    let mut s = TimeSeries::new(label);
    for (bucket, n) in counts {
        s.push(SimTime::from_unix(bucket * bucket_secs), *n as f64);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_cell_folds_in_order() {
        let mut cell = MeanCell::default();
        assert!(cell.mean().is_nan());
        cell.push(1.0);
        cell.push(2.0);
        cell.push(4.0);
        assert_eq!(cell.mean(), (1.0 + 2.0 + 4.0) / 3.0);
        assert_eq!(cell.count(), 3);
    }

    #[test]
    fn series_builders_scale_buckets() {
        let mut cells = BTreeMap::new();
        cells
            .entry(2u64)
            .or_insert_with(MeanCell::default)
            .push(10.0);
        let s = mean_series("m", &cells, 86_400);
        assert_eq!(s.points, vec![(2 * 86_400, 10.0)]);

        let mut counts = BTreeMap::new();
        counts.insert(3u64, 7u64);
        let c = count_series("c", &counts, 3_600);
        assert_eq!(c.points, vec![(3 * 3_600, 7.0)]);
    }
}
