//! Terminal rendering: ASCII line charts and markdown tables for the
//! `make-figures` binary and EXPERIMENTS.md regeneration.

use crate::series::TimeSeries;

/// Glyphs assigned to successive series in a chart.
const GLYPHS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];

/// Renders one or more series as an ASCII chart of `width`×`height` cells
/// with a value axis, time extent line and legend.
pub fn ascii_chart(title: &str, series: &[&TimeSeries], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');

    // Global ranges.
    let mut t_min = u64::MAX;
    let mut t_max = 0u64;
    let mut v_min = f64::INFINITY;
    let mut v_max = f64::NEG_INFINITY;
    for s in series {
        for (t, v) in &s.points {
            if v.is_finite() {
                t_min = t_min.min(*t);
                t_max = t_max.max(*t);
                v_min = v_min.min(*v);
                v_max = v_max.max(*v);
            }
        }
    }
    if t_min > t_max || !v_min.is_finite() {
        out.push_str("  (no data)\n");
        return out;
    }
    if v_max == v_min {
        v_max = v_min + 1.0;
    }
    let t_span = (t_max - t_min).max(1) as f64;
    let v_span = v_max - v_min;

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (t, v) in &s.points {
            if !v.is_finite() {
                continue;
            }
            let x = (((t - t_min) as f64 / t_span) * (width - 1) as f64).round() as usize;
            let y = (((v - v_min) / v_span) * (height - 1) as f64).round() as usize;
            let row = height - 1 - y.min(height - 1);
            grid[row][x.min(width - 1)] = glyph;
        }
    }

    for (i, row) in grid.iter().enumerate() {
        let axis_value = v_max - v_span * i as f64 / (height - 1) as f64;
        out.push_str(&format!("{:>12.4e} |", axis_value));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>12} +{}\n", "", "-".repeat(width)));
    let from = fork_primitives::SimTime::from_unix(t_min);
    let to = fork_primitives::SimTime::from_unix(t_max);
    out.push_str(&format!("{:>13} {}  ..  {}\n", "", from, to));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "{:>13} {} = {}\n",
            "",
            GLYPHS[si % GLYPHS.len()],
            s.label
        ));
    }
    out
}

/// Renders a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fork_primitives::SimTime;

    fn series(label: &str, vals: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new(label);
        for (i, v) in vals.iter().enumerate() {
            s.push(SimTime::from_unix(i as u64 * 3600), *v);
        }
        s
    }

    #[test]
    fn chart_contains_title_legend_and_glyphs() {
        let a = series("ETH", &[1.0, 2.0, 3.0, 4.0]);
        let b = series("ETC", &[4.0, 3.0, 2.0, 1.0]);
        let chart = ascii_chart("Blocks per hour", &[&a, &b], 40, 10);
        assert!(chart.contains("Blocks per hour"));
        assert!(chart.contains("* = ETH"));
        assert!(chart.contains("+ = ETC"));
        assert!(chart.contains('*'));
        assert!(chart.contains('+'));
    }

    #[test]
    fn chart_handles_empty_input() {
        let e = TimeSeries::new("empty");
        let chart = ascii_chart("Nothing", &[&e], 40, 10);
        assert!(chart.contains("(no data)"));
    }

    #[test]
    fn chart_handles_constant_series() {
        let c = series("flat", &[5.0, 5.0, 5.0]);
        let chart = ascii_chart("Flat", &[&c], 30, 6);
        assert!(chart.contains('*'));
    }

    #[test]
    fn chart_line_count_matches_height() {
        let a = series("x", &[1.0, 9.0]);
        let chart = ascii_chart("T", &[&a], 30, 8);
        // title + 8 rows + axis + extent + 1 legend line
        assert_eq!(chart.lines().count(), 1 + 8 + 1 + 1 + 1);
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(
            &["metric", "paper", "measured"],
            &[
                vec!["a".into(), "1".into(), "2".into()],
                vec!["b".into(), "3".into(), "4".into()],
            ],
        );
        assert!(t.starts_with("| metric | paper | measured |\n|---|---|---|\n"));
        assert!(t.contains("| a | 1 | 2 |"));
        assert_eq!(t.lines().count(), 4);
    }
}
