//! Export records — the rows of the paper's "separate database".
//!
//! The authors ran full nodes and "exported all block and transaction
//! information from the nodes and processed it in a separate database"
//! (§3.1). These records are that export format: flat, chain-agnostic rows
//! the metrics pipeline consumes. The simulator streams them as blocks
//! finalize; they could equally be produced from real chain data.

use fork_primitives::{Address, H256, U256};
use fork_replay::Side;

/// One exported block row.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockRecord {
    /// Which network the block belongs to.
    pub network: Side,
    /// Block number.
    pub number: u64,
    /// Block hash.
    pub hash: H256,
    /// Unix timestamp.
    pub timestamp: u64,
    /// Difficulty field.
    pub difficulty: U256,
    /// Reward recipient (pool address for pooled blocks — Figure 5's key).
    pub beneficiary: Address,
    /// Gas consumed.
    pub gas_used: u64,
    /// Number of transactions.
    pub tx_count: u32,
    /// Number of ommers included.
    pub ommer_count: u32,
}

/// One exported transaction row.
#[derive(Debug, Clone, PartialEq)]
pub struct TxRecord {
    /// Which network included it.
    pub network: Side,
    /// Transaction hash (the cross-chain identity for echo detection).
    pub hash: H256,
    /// Unix timestamp of the including block.
    pub timestamp: u64,
    /// Whether this is a contract interaction (creation, or a call to an
    /// address with code, or data-bearing) — Figure 2's bottom panel
    /// classification.
    pub is_contract: bool,
    /// Whether it carries an EIP-155 chain id.
    pub has_chain_id: bool,
    /// Transferred value in wei.
    pub value: U256,
}

impl BlockRecord {
    /// The hour bucket of this block.
    pub fn hour(&self) -> u64 {
        self.timestamp / 3_600
    }

    /// The day bucket of this block.
    pub fn day(&self) -> u64 {
        self.timestamp / 86_400
    }
}

impl TxRecord {
    /// The day bucket of this transaction.
    pub fn day(&self) -> u64 {
        self.timestamp / 86_400
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_helpers() {
        let b = BlockRecord {
            network: Side::Eth,
            number: 1,
            hash: H256::ZERO,
            timestamp: 86_400 * 3 + 3_600 * 5 + 10,
            difficulty: U256::ONE,
            beneficiary: Address::ZERO,
            gas_used: 0,
            tx_count: 0,
            ommer_count: 0,
        };
        assert_eq!(b.day(), 3);
        assert_eq!(b.hour(), 3 * 24 + 5);
        let t = TxRecord {
            network: Side::Etc,
            hash: H256::ZERO,
            timestamp: 86_400 * 7,
            is_contract: false,
            has_chain_id: false,
            value: U256::ZERO,
        };
        assert_eq!(t.day(), 7);
    }
}
