//! # fork-analytics
//!
//! The measurement pipeline of the study: export records (the paper's
//! "separate database" rows), streaming per-hour/per-day aggregation for both
//! networks, every figure's metric (blocks/hour, difficulty, inter-block
//! delta, transactions/day, contract-call %, hashes/USD, echo counts and
//! percentages, top-N pool concentration), series utilities (correlation,
//! ratios), ASCII chart rendering and CSV/JSON export.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod export;
pub mod pipeline;
pub mod record;
pub mod render;
pub mod series;

pub use aggregate::{count_series, mean_series, MeanCell};
pub use export::{histogram_series, to_csv, to_json, write_csv, write_json};
pub use pipeline::Pipeline;
pub use record::{BlockRecord, TxRecord};
pub use render::{ascii_chart, markdown_table};
pub use series::{correlation, ratio, TimeSeries};

#[cfg(test)]
mod proptests {
    use super::*;
    use fork_primitives::{Address, H256, U256};
    use fork_replay::Side;
    use proptest::prelude::*;

    proptest! {
        /// The pipeline's hourly block counts always sum to the number of
        /// ingested blocks, for any timestamp pattern.
        #[test]
        fn block_counts_conserved(timestamps in proptest::collection::vec(0u64..10_000_000, 1..200)) {
            let mut p = Pipeline::new();
            let mut ts_sorted = timestamps.clone();
            ts_sorted.sort_unstable();
            for (i, ts) in ts_sorted.iter().enumerate() {
                p.ingest_block(&BlockRecord {
                    network: Side::Eth,
                    number: i as u64,
                    hash: H256([(i % 251) as u8; 32]),
                    timestamp: *ts,
                    difficulty: U256::from_u64(1_000),
                    beneficiary: Address([1; 20]),
                    gas_used: 0,
                    tx_count: 0,
                    ommer_count: 0,
                });
            }
            let total: f64 = p.blocks_per_hour(Side::Eth).points.iter().map(|(_, v)| v).sum();
            prop_assert_eq!(total as usize, ts_sorted.len());
        }

        /// Contract percentage is always within [0, 100].
        #[test]
        fn contract_percent_bounded(
            flags in proptest::collection::vec(any::<bool>(), 1..100),
        ) {
            let mut p = Pipeline::new();
            for (i, c) in flags.iter().enumerate() {
                p.ingest_tx(&TxRecord {
                    network: Side::Etc,
                    hash: H256([i as u8; 32]),
                    timestamp: 100,
                    is_contract: *c,
                    has_chain_id: false,
                    value: U256::ONE,
                });
            }
            for (_, v) in p.contract_tx_percent(Side::Etc).points {
                prop_assert!((0.0..=100.0).contains(&v));
            }
        }

        /// CSV export parses back to the same number of data cells.
        #[test]
        fn csv_cell_conservation(pts in proptest::collection::vec((0u64..1_000, -100.0f64..100.0), 1..50)) {
            let mut sorted = pts.clone();
            sorted.sort_by_key(|(t, _)| *t);
            sorted.dedup_by_key(|(t, _)| *t);
            let mut ts = TimeSeries::new("s");
            for (t, v) in &sorted {
                ts.push(fork_primitives::SimTime::from_unix(*t), *v);
            }
            let csv = to_csv(&[&ts]);
            let data_rows = csv.lines().count() - 1;
            prop_assert_eq!(data_rows, sorted.len());
        }

        /// Echo percentage series bounded in [0, 100] under arbitrary
        /// cross-chain hash streams.
        #[test]
        fn echo_percent_bounded(events in proptest::collection::vec((any::<bool>(), 0u8..32, 0u64..5), 1..200)) {
            let mut p = Pipeline::new();
            for (eth, id, day) in events {
                p.ingest_tx(&TxRecord {
                    network: if eth { Side::Eth } else { Side::Etc },
                    hash: H256([id; 32]),
                    timestamp: day * 86_400,
                    is_contract: false,
                    has_chain_id: false,
                    value: U256::ONE,
                });
            }
            for side in [Side::Eth, Side::Etc] {
                for (_, v) in p.echo_percent(side).points {
                    prop_assert!((0.0..=100.0).contains(&v));
                }
            }
        }
    }
}
