//! Structured block-lifecycle tracing (`fork-trace`).
//!
//! Aggregates (counters, histograms, spans) answer "how many" and "how
//! long"; they cannot answer "where did block N spend its time between
//! being mined on one side and imported on every node?". A [`TraceSink`]
//! collects timestamped, causally-linked lifecycle events keyed by
//! *(block, node)* — [`TraceEventKind::Mined`] through
//! [`TraceEventKind::ReorgedOut`] — emitted by the chain store, the gossip
//! layer, and the simulators. Causality is carried by the `peer` field:
//! a `GossipSent` from node *i* to *j* and the matching `GossipRecv` at *j*
//! from *i* link one hop of a block's propagation tree.
//!
//! Timestamps are **simulated** milliseconds (the event loop calls
//! [`TraceSink::set_now`]), so a trace is exactly as deterministic as the
//! simulation that produced it: same seed, byte-identical
//! [`chrome_trace_json`] output.
//!
//! With the `enabled` feature off, [`TraceSink`] is a zero-sized type and
//! every method is an empty inline no-op; the plain-data types in this
//! module ([`TraceEvent`], [`chrome_trace_json`], [`propagation_rows`])
//! stay available so exports compile either way.

use crate::recorder::FlightDump;

/// A 32-byte block identifier (the block hash). A local alias rather than a
/// hash type import: this crate has no dependencies by design.
pub type BlockTag = [u8; 32];

/// The all-zero tag used by node-scoped events that concern no particular
/// block (crashes, restarts, fault markers).
pub const NO_BLOCK: BlockTag = [0; 32];

/// What happened to a block (or node) at one point of its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceEventKind {
    /// A miner sealed this block (`node` is the miner).
    Mined,
    /// A gossip frame carrying this block left `node` toward `peer`.
    GossipSent,
    /// A gossip frame carrying this block was dropped by the link (or by
    /// the receiver's seen-filter; see `detail`).
    GossipDropped,
    /// This block arrived at `node` from `peer` and passed the seen-filter.
    GossipRecv,
    /// The block passed header/ommer/body validation at `node`.
    Validated,
    /// The block entered `node`'s store (extended the head, joined a side
    /// branch, or won a reorg; see `detail`).
    Imported,
    /// The block's parent is unknown at `node`; it was orphan-buffered.
    Orphaned,
    /// A reorg evicted this block from `node`'s canonical chain.
    ReorgedOut,
    /// The node went dark (scripted crash).
    NodeCrashed,
    /// The node came back online.
    NodeRestarted,
    /// A chaos fault fired at `node` (see `detail` for the behavior).
    FaultInjected,
    /// A safety invariant was violated (emitted just before a dump).
    InvariantViolated,
}

impl TraceEventKind {
    /// Stable name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceEventKind::Mined => "Mined",
            TraceEventKind::GossipSent => "GossipSent",
            TraceEventKind::GossipDropped => "GossipDropped",
            TraceEventKind::GossipRecv => "GossipRecv",
            TraceEventKind::Validated => "Validated",
            TraceEventKind::Imported => "Imported",
            TraceEventKind::Orphaned => "Orphaned",
            TraceEventKind::ReorgedOut => "ReorgedOut",
            TraceEventKind::NodeCrashed => "NodeCrashed",
            TraceEventKind::NodeRestarted => "NodeRestarted",
            TraceEventKind::FaultInjected => "FaultInjected",
            TraceEventKind::InvariantViolated => "InvariantViolated",
        }
    }
}

/// One timestamped lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time, milliseconds (the sink's clock at emission).
    pub at_ms: u64,
    /// Emission order, 1-based — a total order within one sink, breaking
    /// `at_ms` ties deterministically.
    pub seq: u64,
    /// The node this event happened at.
    pub node: u32,
    /// The block concerned ([`NO_BLOCK`] for node-scoped events).
    pub block: BlockTag,
    /// The block's height (0 for node-scoped events).
    pub number: u64,
    /// What happened.
    pub kind: TraceEventKind,
    /// The causal counterpart: the receiver of a `GossipSent`, the sender
    /// of a `GossipRecv`.
    pub peer: Option<u32>,
    /// Free-form qualifier (`"reorged"`, `"duplicate"`, a fault label…).
    pub detail: &'static str,
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{BlockTag, TraceEvent, TraceEventKind};
    use crate::recorder::{FlightDump, FlightRecorder};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    use std::sync::Mutex;

    #[derive(Debug)]
    struct Inner {
        events: Vec<TraceEvent>,
        recorder: Option<FlightRecorder>,
        keep_all: bool,
        seq: u64,
    }

    /// Collects [`TraceEvent`]s. Event time comes from an internal clock the
    /// event loop advances via [`TraceSink::set_now`] — never from the wall
    /// clock, so traces are deterministic per seed.
    ///
    /// An *inactive* sink ([`TraceSink::disabled`]) records nothing at the
    /// cost of one branch per call; with the crate's `enabled` feature off
    /// the whole type is a zero-sized no-op.
    #[derive(Debug)]
    pub struct TraceSink {
        inner: Option<Mutex<Inner>>,
        now_ms: AtomicU64,
    }

    impl TraceSink {
        fn active(keep_all: bool, recorder: Option<FlightRecorder>) -> Self {
            TraceSink {
                inner: Some(Mutex::new(Inner {
                    events: Vec::new(),
                    recorder,
                    keep_all,
                    seq: 0,
                })),
                now_ms: AtomicU64::new(0),
            }
        }

        /// An active sink retaining every event.
        pub fn new() -> Self {
            Self::active(true, None)
        }

        /// An active sink retaining every event **and** feeding a bounded
        /// per-node flight recorder of the given capacity.
        pub fn with_recorder(capacity_per_node: usize) -> Self {
            Self::active(true, Some(FlightRecorder::new(capacity_per_node)))
        }

        /// An active sink that keeps **only** the flight recorder's bounded
        /// ring buffers — constant memory on arbitrarily long runs.
        pub fn recorder_only(capacity_per_node: usize) -> Self {
            Self::active(false, Some(FlightRecorder::new(capacity_per_node)))
        }

        /// An inactive sink: every record call returns after one branch.
        pub fn disabled() -> Self {
            TraceSink {
                inner: None,
                now_ms: AtomicU64::new(0),
            }
        }

        /// Whether this sink records anything at all.
        #[inline]
        pub fn is_active(&self) -> bool {
            self.inner.is_some()
        }

        /// Advances the sink's clock (simulated milliseconds).
        #[inline]
        pub fn set_now(&self, ms: u64) {
            self.now_ms.store(ms, Relaxed);
        }

        /// Records an event with no peer and no detail.
        #[inline]
        pub fn record(&self, node: u32, block: BlockTag, number: u64, kind: TraceEventKind) {
            self.record_full(node, block, number, kind, None, "");
        }

        /// Records an event with full causal context.
        pub fn record_full(
            &self,
            node: u32,
            block: BlockTag,
            number: u64,
            kind: TraceEventKind,
            peer: Option<u32>,
            detail: &'static str,
        ) {
            let Some(m) = &self.inner else { return };
            let mut inner = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            inner.seq += 1;
            let ev = TraceEvent {
                at_ms: self.now_ms.load(Relaxed),
                seq: inner.seq,
                node,
                block,
                number,
                kind,
                peer,
                detail,
            };
            if let Some(r) = inner.recorder.as_mut() {
                r.record(&ev);
            }
            if inner.keep_all {
                inner.events.push(ev);
            }
        }

        /// A copy of every retained event, in emission order.
        pub fn events(&self) -> Vec<TraceEvent> {
            match &self.inner {
                Some(m) => m
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .events
                    .clone(),
                None => Vec::new(),
            }
        }

        /// Number of retained events.
        pub fn len(&self) -> usize {
            match &self.inner {
                Some(m) => m
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .events
                    .len(),
                None => 0,
            }
        }

        /// True when no event is retained.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The flight recorder's bounded last-N-per-node view, if this sink
        /// carries one. The dump's telemetry snapshot slot is left empty for
        /// the caller to fill.
        pub fn flight_dump(&self) -> Option<FlightDump> {
            let m = self.inner.as_ref()?;
            m.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .recorder
                .as_ref()
                .map(FlightRecorder::dump)
        }
    }

    impl Default for TraceSink {
        fn default() -> Self {
            Self::new()
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::{BlockTag, TraceEvent, TraceEventKind};
    use crate::recorder::FlightDump;

    /// No-op trace sink (tracing compiled out). Zero-sized; every method is
    /// an empty inline stub.
    #[derive(Debug, Default)]
    pub struct TraceSink;

    impl TraceSink {
        /// An "active" sink — inert with the feature off.
        pub fn new() -> Self {
            TraceSink
        }

        /// No recorder is kept with the feature off.
        pub fn with_recorder(_capacity_per_node: usize) -> Self {
            TraceSink
        }

        /// No recorder is kept with the feature off.
        pub fn recorder_only(_capacity_per_node: usize) -> Self {
            TraceSink
        }

        /// An inactive sink.
        pub fn disabled() -> Self {
            TraceSink
        }

        /// Always `false` with the feature off.
        #[inline(always)]
        pub fn is_active(&self) -> bool {
            false
        }

        /// No-op.
        #[inline(always)]
        pub fn set_now(&self, _ms: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn record(&self, _node: u32, _block: BlockTag, _number: u64, _kind: TraceEventKind) {}

        /// No-op.
        #[inline(always)]
        pub fn record_full(
            &self,
            _node: u32,
            _block: BlockTag,
            _number: u64,
            _kind: TraceEventKind,
            _peer: Option<u32>,
            _detail: &'static str,
        ) {
        }

        /// Always empty.
        pub fn events(&self) -> Vec<TraceEvent> {
            Vec::new()
        }

        /// Always zero.
        pub fn len(&self) -> usize {
            0
        }

        /// Always true.
        pub fn is_empty(&self) -> bool {
            true
        }

        /// Always `None`.
        pub fn flight_dump(&self) -> Option<FlightDump> {
            None
        }
    }
}

pub use imp::TraceSink;

/// Lower-case hex of a block tag, `0x`-prefixed.
pub fn hex_tag(tag: &BlockTag) -> String {
    let mut s = String::with_capacity(66);
    s.push_str("0x");
    for b in tag {
        let _ = std::fmt::Write::write_fmt(&mut s, format_args!("{b:02x}"));
    }
    s
}

/// Renders events as Chrome trace-event JSON (the `chrome://tracing` /
/// Perfetto "JSON Array" flavor): one instant event per [`TraceEvent`] with
/// `pid` = node, `ts` in microseconds of simulated time, plus a
/// `process_name` metadata record per entry of `node_labels`. Output is a
/// pure function of the input slice — byte-identical for identical traces.
pub fn chrome_trace_json(events: &[TraceEvent], node_labels: &[String]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (i, label) in node_labels.iter().enumerate() {
        let sep = if first { "\n" } else { ",\n" };
        first = false;
        let _ = write!(
            out,
            "{sep}{{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{i},\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            crate::json::quote(label),
        );
    }
    for ev in events {
        let sep = if first { "\n" } else { ",\n" };
        first = false;
        let _ = write!(
            out,
            "{sep}{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":0,\
             \"args\":{{\"seq\":{}",
            ev.kind.as_str(),
            ev.at_ms * 1_000,
            ev.node,
            ev.seq,
        );
        if ev.block != NO_BLOCK {
            let _ = write!(
                out,
                ",\"block\":\"{}\",\"number\":{}",
                hex_tag(&ev.block),
                ev.number
            );
        }
        if let Some(p) = ev.peer {
            let _ = write!(out, ",\"peer\":{p}");
        }
        if !ev.detail.is_empty() {
            let _ = write!(out, ",\"detail\":{}", crate::json::quote(ev.detail));
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

/// One row of the per-side propagation-delay table: how long blocks of one
/// side and fork phase took to reach *every* same-side node that eventually
/// imported them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropagationRow {
    /// The side's display name.
    pub side: String,
    /// `"pre-fork"` (block number below the fork height) or `"post-fork"`.
    pub phase: &'static str,
    /// Blocks measured (mined on this side, imported by ≥ 1 node of it).
    pub blocks: u64,
    /// Median time-to-full-coverage, milliseconds.
    pub p50_ms: u64,
    /// 90th-percentile time-to-full-coverage, milliseconds.
    pub p90_ms: u64,
    /// Worst time-to-full-coverage, milliseconds.
    pub max_ms: u64,
}

/// Computes per-side, per-fork-phase propagation statistics from a trace.
///
/// `side_of[node]` indexes into `side_names`; a block belongs to its
/// *miner's* side, and its coverage time is the delay from its `Mined`
/// event to the **last** `Imported` event among that side's nodes. Blocks
/// numbered below `fork_height` count as pre-fork (they propagate across
/// the whole network), the rest as post-fork (each side on its own).
/// Returns one row per `(side, phase)` in `side_names` order, pre-fork
/// first; rows with zero blocks are kept so tables stay rectangular.
pub fn propagation_rows(
    events: &[TraceEvent],
    side_of: &[usize],
    side_names: &[&str],
    fork_height: u64,
) -> Vec<PropagationRow> {
    use std::collections::HashMap;
    // block tag → (miner side, number, mined at, last same-side import at).
    let mut blocks: HashMap<BlockTag, (usize, u64, u64, Option<u64>)> = HashMap::new();
    for ev in events {
        match ev.kind {
            TraceEventKind::Mined => {
                let side = side_of.get(ev.node as usize).copied().unwrap_or(0);
                blocks
                    .entry(ev.block)
                    .or_insert((side, ev.number, ev.at_ms, None));
            }
            TraceEventKind::Imported => {
                if let Some((side, _, _, last)) = blocks.get_mut(&ev.block) {
                    if side_of.get(ev.node as usize).copied().unwrap_or(0) == *side {
                        *last = Some(last.map_or(ev.at_ms, |t| t.max(ev.at_ms)));
                    }
                }
            }
            _ => {}
        }
    }
    let percentile = |sorted: &[u64], p: u64| -> u64 {
        if sorted.is_empty() {
            0
        } else {
            sorted[((sorted.len() - 1) as u64 * p / 100) as usize]
        }
    };
    let mut rows = Vec::new();
    for (side_idx, side) in side_names.iter().enumerate() {
        for phase in ["pre-fork", "post-fork"] {
            let mut delays: Vec<u64> = blocks
                .values()
                .filter(|(s, number, _, last)| {
                    *s == side_idx
                        && last.is_some()
                        && (*number < fork_height) == (phase == "pre-fork")
                })
                .map(|(_, _, mined, last)| last.unwrap_or(*mined).saturating_sub(*mined))
                .collect();
            delays.sort_unstable();
            rows.push(PropagationRow {
                side: (*side).to_string(),
                phase,
                blocks: delays.len() as u64,
                p50_ms: percentile(&delays, 50),
                p90_ms: percentile(&delays, 90),
                max_ms: percentile(&delays, 100),
            });
        }
    }
    rows
}

/// Attaches a telemetry snapshot to a sink's flight dump, when the sink has
/// a recorder. Convenience for dump-on-violation call sites.
pub fn flight_dump_with_snapshot(
    sink: &TraceSink,
    snapshot: crate::Snapshot,
) -> Option<FlightDump> {
    sink.flight_dump().map(|mut d| {
        d.snapshot = Some(snapshot);
        d
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(b: u8) -> BlockTag {
        let mut t = [0u8; 32];
        t[0] = b;
        t
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn sink_records_in_order_with_sim_time() {
        let sink = TraceSink::new();
        assert!(sink.is_active() && sink.is_empty());
        sink.set_now(10);
        sink.record(0, tag(1), 1, TraceEventKind::Mined);
        sink.set_now(25);
        sink.record_full(1, tag(1), 1, TraceEventKind::GossipRecv, Some(0), "");
        sink.record(1, tag(1), 1, TraceEventKind::Imported);
        let evs = sink.events();
        assert_eq!(sink.len(), 3);
        assert_eq!(evs[0].at_ms, 10);
        assert_eq!(evs[1].at_ms, 25);
        assert_eq!(evs[1].peer, Some(0));
        assert_eq!(
            evs.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "seq is a total emission order"
        );
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn disabled_sink_is_inert() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_active());
        sink.set_now(5);
        sink.record(0, tag(1), 1, TraceEventKind::Mined);
        assert!(sink.is_empty());
        assert!(sink.flight_dump().is_none());
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn feature_off_sink_is_zero_sized_and_inert() {
        assert_eq!(std::mem::size_of::<TraceSink>(), 0);
        let sink = TraceSink::with_recorder(64);
        assert!(!sink.is_active());
        sink.set_now(5);
        sink.record(0, tag(1), 1, TraceEventKind::Mined);
        sink.record_full(1, tag(1), 1, TraceEventKind::Imported, Some(0), "x");
        assert!(sink.is_empty());
        assert_eq!(sink.len(), 0);
        assert!(sink.events().is_empty());
        assert!(sink.flight_dump().is_none());
    }

    #[test]
    fn chrome_export_is_wellformed_and_pure() {
        let events = vec![
            TraceEvent {
                at_ms: 10,
                seq: 1,
                node: 0,
                block: tag(1),
                number: 1,
                kind: TraceEventKind::Mined,
                peer: None,
                detail: "",
            },
            TraceEvent {
                at_ms: 12,
                seq: 2,
                node: 1,
                block: NO_BLOCK,
                number: 0,
                kind: TraceEventKind::NodeCrashed,
                peer: None,
                detail: "scripted",
            },
        ];
        let labels = vec!["node 0 (eth)".to_string()];
        let a = chrome_trace_json(&events, &labels);
        let b = chrome_trace_json(&events, &labels);
        assert_eq!(a, b, "pure function of its input");
        let parsed = crate::json::Value::parse(&a).expect("valid JSON");
        let list = parsed["traceEvents"].as_array().expect("traceEvents array");
        assert_eq!(list.len(), 3, "1 metadata + 2 events");
        for ev in list {
            assert!(ev["name"].as_str().is_some());
            assert!(ev["ph"].as_str().is_some());
            assert!(ev["ts"].as_u64().is_some());
            assert!(ev["pid"].as_u64().is_some());
            assert!(ev["tid"].as_u64().is_some());
        }
        assert_eq!(
            list[1]["args"]["block"].as_str(),
            Some(hex_tag(&tag(1)).as_str())
        );
        assert_eq!(list[2]["args"]["detail"].as_str(), Some("scripted"));
    }

    #[test]
    fn propagation_rows_split_by_side_and_phase() {
        let mk = |seq, node, block, number, at_ms, kind| TraceEvent {
            at_ms,
            seq,
            node,
            block,
            number,
            kind,
            peer: None,
            detail: "",
        };
        // Nodes 0,1 on side 0; node 2 on side 1. Fork at height 2.
        let side_of = [0usize, 0, 1];
        let events = vec![
            // Pre-fork block on side 0, covered after 30 ms.
            mk(1, 0, tag(1), 1, 100, TraceEventKind::Mined),
            mk(2, 0, tag(1), 1, 100, TraceEventKind::Imported),
            mk(3, 1, tag(1), 1, 130, TraceEventKind::Imported),
            mk(4, 2, tag(1), 1, 999, TraceEventKind::Imported), // other side: ignored
            // Post-fork block on side 1, covered instantly (miner only).
            mk(5, 2, tag(2), 2, 500, TraceEventKind::Mined),
            mk(6, 2, tag(2), 2, 500, TraceEventKind::Imported),
        ];
        let rows = propagation_rows(&events, &side_of, &["eth", "etc"], 2);
        assert_eq!(rows.len(), 4);
        let find = |side: &str, phase: &str| {
            rows.iter()
                .find(|r| r.side == side && r.phase == phase)
                .unwrap()
        };
        let r = find("eth", "pre-fork");
        assert_eq!((r.blocks, r.p50_ms, r.max_ms), (1, 30, 30));
        let r = find("etc", "post-fork");
        assert_eq!((r.blocks, r.max_ms), (1, 0));
        assert_eq!(find("eth", "post-fork").blocks, 0);
        assert_eq!(find("etc", "pre-fork").blocks, 0);
    }

    #[test]
    fn hex_tag_formats() {
        let mut t = [0u8; 32];
        t[0] = 0xab;
        t[31] = 0x01;
        let h = hex_tag(&t);
        assert_eq!(h.len(), 66);
        assert!(h.starts_with("0xab00"));
        assert!(h.ends_with("01"));
    }
}
