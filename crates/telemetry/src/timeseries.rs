//! A fixed-capacity, 1 s-resolution time-series ring of sampled gauges,
//! plus a Prometheus text-exposition rendering of a registry [`Snapshot`].
//!
//! Like the snapshot types, everything here is **plain data** and compiles
//! with or without the `enabled` feature: a daemon samples whatever numbers
//! it has (live metrics or zeros) into a [`SeriesRing`], and the ring itself
//! never touches atomics or clocks. Ticks are assigned by the producer
//! (`push` hands out consecutive tick numbers), so a ring decoded from the
//! wire re-renders byte-identically to the producer's own.

use std::collections::{BTreeMap, VecDeque};

use crate::snapshot::Snapshot;
use crate::{bucket_range, BUCKETS};

/// One sampling instant: a tick number plus named gauge values.
///
/// Value names are free-form (`"connections"`, `"p99_us.blocks"`); a sample
/// carries only the series that had data at that tick, so consumers must
/// treat a missing name as "no observation", not zero.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SeriesSample {
    /// Monotonic tick number assigned by [`SeriesRing::push`].
    pub tick: u64,
    /// Sampled values, keyed by series name (sorted, deterministic).
    pub values: BTreeMap<String, f64>,
}

/// A bounded ring of [`SeriesSample`]s: pushing past capacity drops the
/// oldest sample. Tick numbers keep increasing, so consumers can tell "ring
/// wrapped" from "daemon restarted".
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesRing {
    capacity: usize,
    next_tick: u64,
    samples: VecDeque<SeriesSample>,
}

impl SeriesRing {
    /// New empty ring holding at most `capacity` samples (minimum 1).
    pub fn new(capacity: usize) -> Self {
        SeriesRing {
            capacity: capacity.max(1),
            next_tick: 0,
            samples: VecDeque::new(),
        }
    }

    /// Reassembles a ring from decoded parts (the wire path). Rejects
    /// inconsistent parts instead of constructing an impossible ring.
    pub fn from_parts(
        capacity: usize,
        next_tick: u64,
        samples: Vec<SeriesSample>,
    ) -> Result<Self, String> {
        if capacity == 0 {
            return Err("ring capacity must be non-zero".into());
        }
        if samples.len() > capacity {
            return Err(format!(
                "ring holds {} samples but claims capacity {capacity}",
                samples.len()
            ));
        }
        if samples.iter().any(|s| s.tick >= next_tick) {
            return Err("sample tick at or past next_tick".into());
        }
        Ok(SeriesRing {
            capacity,
            next_tick,
            samples: samples.into(),
        })
    }

    /// Appends one sample, assigning and returning its tick number. Drops
    /// the oldest sample when full.
    pub fn push(&mut self, values: BTreeMap<String, f64>) -> u64 {
        let tick = self.next_tick;
        self.next_tick += 1;
        self.samples.push_back(SeriesSample { tick, values });
        while self.samples.len() > self.capacity {
            self.samples.pop_front();
        }
        tick
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples have been pushed (or all have been dropped).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Maximum number of samples the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The tick the next [`push`](Self::push) will be assigned (equals the
    /// total number of samples ever pushed).
    pub fn next_tick(&self) -> u64 {
        self.next_tick
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &SeriesSample> {
        self.samples.iter()
    }

    /// Every series name appearing in any retained sample, sorted.
    pub fn series_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .samples
            .iter()
            .flat_map(|s| s.values.keys().cloned())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// The `(tick, value)` points of one named series, oldest first. Ticks
    /// where the series had no observation are skipped.
    pub fn series(&self, name: &str) -> Vec<(u64, f64)> {
        self.samples
            .iter()
            .filter_map(|s| s.values.get(name).map(|&v| (s.tick, v)))
            .collect()
    }
}

/// Sanitizes a metric name into the Prometheus charset: `[a-zA-Z0-9_:]`,
/// everything else becomes `_` (so `serve.latency.blocks` exposes as
/// `serve_latency_blocks`).
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders a registry [`Snapshot`] in the Prometheus text exposition format
/// (version 0.0.4): counters and gauges as single samples, histograms as
/// cumulative `_bucket{le="..."}` samples plus `_sum`/`_count`, spans as a
/// `_count` counter and a `_ns_total` counter.
///
/// Log2 buckets map to `le` bounds of `2^i − 1` (bucket `i` holds values in
/// `[2^(i-1), 2^i)`, i.e. `≤ 2^i − 1`); the top bucket folds into `+Inf`.
/// Rendering is deterministic: `BTreeMap` order, integer-exact values.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cumulative = 0u64;
        for (i, &count) in h.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            cumulative += count;
            if i + 1 == BUCKETS {
                // The top bucket's upper bound is u64::MAX: fold into +Inf.
                continue;
            }
            let le = bucket_range(i).1 - 1;
            out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!(
            "{n}_bucket{{le=\"+Inf\"}} {count}\n{n}_sum {sum}\n{n}_count {count}\n",
            count = h.count,
            sum = h.sum,
        ));
    }
    for (name, s) in &snap.spans {
        let n = prom_name(name);
        out.push_str(&format!(
            "# TYPE {n}_count counter\n{n}_count {}\n# TYPE {n}_ns_total counter\n{n}_ns_total {}\n",
            s.count, s.total_ns,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::HistogramSnapshot;

    fn sample(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn ring_drops_oldest_and_keeps_ticks_monotonic() {
        let mut ring = SeriesRing::new(3);
        assert!(ring.is_empty());
        for i in 0..5u64 {
            let tick = ring.push(sample(&[("x", i as f64)]));
            assert_eq!(tick, i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.next_tick(), 5);
        assert_eq!(
            ring.series("x"),
            vec![(2, 2.0), (3, 3.0), (4, 4.0)],
            "the two oldest samples must be gone"
        );
    }

    #[test]
    fn series_extraction_skips_missing_observations() {
        let mut ring = SeriesRing::new(8);
        ring.push(sample(&[("a", 1.0), ("b", 10.0)]));
        ring.push(sample(&[("a", 2.0)]));
        ring.push(sample(&[("b", 30.0)]));
        assert_eq!(ring.series_names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(ring.series("a"), vec![(0, 1.0), (1, 2.0)]);
        assert_eq!(ring.series("b"), vec![(0, 10.0), (2, 30.0)]);
        assert!(ring.series("c").is_empty());
    }

    #[test]
    fn from_parts_validates_and_roundtrips() {
        let mut ring = SeriesRing::new(4);
        for i in 0..6u64 {
            ring.push(sample(&[("x", i as f64)]));
        }
        let rebuilt = SeriesRing::from_parts(
            ring.capacity(),
            ring.next_tick(),
            ring.samples().cloned().collect(),
        )
        .unwrap();
        assert_eq!(rebuilt, ring);

        assert!(SeriesRing::from_parts(0, 0, vec![]).is_err(), "zero cap");
        assert!(
            SeriesRing::from_parts(
                1,
                2,
                vec![sample(&[]), sample(&[])]
                    .into_iter()
                    .enumerate()
                    .map(|(i, values)| SeriesSample {
                        tick: i as u64,
                        values
                    })
                    .collect()
            )
            .is_err(),
            "more samples than capacity"
        );
        assert!(
            SeriesRing::from_parts(
                4,
                1,
                vec![SeriesSample {
                    tick: 3,
                    values: sample(&[])
                }]
            )
            .is_err(),
            "tick past next_tick"
        );
    }

    #[test]
    fn prometheus_text_is_valid_and_cumulative() {
        let mut snap = Snapshot::default();
        snap.counters.insert("serve.queries".into(), 42);
        snap.gauges.insert("serve.connections".into(), -3);
        let mut h = HistogramSnapshot::default();
        for v in [1u64, 1, 3, 3, 3, 900] {
            h.record(v);
        }
        snap.histograms.insert("serve.latency.blocks".into(), h);

        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE serve_queries counter\nserve_queries 42\n"));
        assert!(text.contains("# TYPE serve_connections gauge\nserve_connections -3\n"));
        assert!(text.contains("# TYPE serve_latency_blocks histogram\n"));
        // 1,1 → bucket [1,2) le=1; 3,3,3 → bucket [2,4) le=3; 900 → [512,1024) le=1023.
        assert!(text.contains("serve_latency_blocks_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("serve_latency_blocks_bucket{le=\"3\"} 5\n"));
        assert!(text.contains("serve_latency_blocks_bucket{le=\"1023\"} 6\n"));
        assert!(text.contains("serve_latency_blocks_bucket{le=\"+Inf\"} 6\n"));
        assert!(text.contains("serve_latency_blocks_sum 911\n"));
        assert!(text.contains("serve_latency_blocks_count 6\n"));
        // Every non-comment line is `name{labels}? value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "{line}");
            let bare = name.split('{').next().unwrap();
            assert!(
                bare.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "unsanitized name {bare}"
            );
        }
    }

    #[test]
    fn top_bucket_folds_into_inf() {
        let mut h = HistogramSnapshot::default();
        h.record(u64::MAX);
        let mut snap = Snapshot::default();
        snap.histograms.insert("big".into(), h);
        let text = prometheus_text(&snap);
        assert!(text.contains("big_bucket{le=\"+Inf\"} 1\n"));
        assert!(!text.contains("le=\"18446744073709551614\""));
    }
}
