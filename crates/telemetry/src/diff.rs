//! Snapshot diffing for A/B ablation runs.
//!
//! `make-figures telemetry-diff a.json b.json` loads two `--telemetry-out`
//! snapshots and prints per-metric deltas — which counters moved, by how
//! much, and in which direction. Metrics present in only one snapshot are
//! marked added/removed rather than silently dropped.

use crate::snapshot::Snapshot;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One changed metric in a [`SnapshotDiff`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// Value in the first snapshot (`None` when added in the second).
    pub a: Option<f64>,
    /// Value in the second snapshot (`None` when removed).
    pub b: Option<f64>,
}

impl MetricDelta {
    /// `b - a`, treating a missing side as zero.
    pub fn delta(&self) -> f64 {
        self.b.unwrap_or(0.0) - self.a.unwrap_or(0.0)
    }
}

/// Structured diff of two snapshots; only changed metrics appear.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotDiff {
    /// Changed counters.
    pub counters: Vec<MetricDelta>,
    /// Changed gauges.
    pub gauges: Vec<MetricDelta>,
    /// Span *count* changes (timings are nondeterministic run-to-run, so the
    /// diff compares how often each phase ran, not how long it took).
    pub span_counts: Vec<MetricDelta>,
    /// Histogram changes as `(name, count delta, mean a, mean b)`.
    pub histograms: Vec<(String, f64, f64, f64)>,
}

impl SnapshotDiff {
    /// True when the two snapshots agree on everything compared.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.span_counts.is_empty()
            && self.histograms.is_empty()
    }
}

fn diff_maps<V: Copy, F: Fn(V) -> f64>(
    a: &std::collections::BTreeMap<String, V>,
    b: &std::collections::BTreeMap<String, V>,
    to_f64: F,
) -> Vec<MetricDelta> {
    let names: BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    let mut out = Vec::new();
    for name in names {
        let av = a.get(name).map(|v| to_f64(*v));
        let bv = b.get(name).map(|v| to_f64(*v));
        if av != bv {
            out.push(MetricDelta {
                name: name.clone(),
                a: av,
                b: bv,
            });
        }
    }
    out
}

/// Compares two snapshots metric-by-metric.
pub fn diff_snapshots(a: &Snapshot, b: &Snapshot) -> SnapshotDiff {
    let span_a: std::collections::BTreeMap<String, u64> =
        a.spans.iter().map(|(k, s)| (k.clone(), s.count)).collect();
    let span_b: std::collections::BTreeMap<String, u64> =
        b.spans.iter().map(|(k, s)| (k.clone(), s.count)).collect();
    let mut histograms = Vec::new();
    let names: BTreeSet<&String> = a.histograms.keys().chain(b.histograms.keys()).collect();
    for name in names {
        let (ca, ma) = a
            .histograms
            .get(name)
            .map_or((0u64, 0.0), |h| (h.count, h.mean()));
        let (cb, mb) = b
            .histograms
            .get(name)
            .map_or((0u64, 0.0), |h| (h.count, h.mean()));
        if ca != cb || ma != mb {
            histograms.push((name.clone(), cb as f64 - ca as f64, ma, mb));
        }
    }
    let mut diff = SnapshotDiff {
        counters: diff_maps(&a.counters, &b.counters, |v: u64| v as f64),
        gauges: diff_maps(&a.gauges, &b.gauges, |v: i64| v as f64),
        span_counts: diff_maps(&span_a, &span_b, |v: u64| v as f64),
        histograms,
    };
    // The sections above are already name-ordered (BTreeSet iteration), but
    // `render_diff` stability across runs is a contract, not an accident of
    // the construction path — sort defensively so hand-built or merged
    // diffs render identically too.
    diff.counters.sort_by(|x, y| x.name.cmp(&y.name));
    diff.gauges.sort_by(|x, y| x.name.cmp(&y.name));
    diff.span_counts.sort_by(|x, y| x.name.cmp(&y.name));
    diff.histograms.sort_by(|x, y| x.0.cmp(&y.0));
    diff
}

fn fmt_value(v: Option<f64>) -> String {
    match v {
        None => "—".to_string(),
        Some(v) => format!("{v}"),
    }
}

/// Renders a diff as the table `telemetry-diff` prints.
pub fn render_diff(diff: &SnapshotDiff) -> String {
    if diff.is_empty() {
        return "(snapshots agree on every compared metric)\n".to_string();
    }
    let mut out = String::new();
    let sections: [(&str, &[MetricDelta]); 3] = [
        ("COUNTERS", &diff.counters),
        ("GAUGES", &diff.gauges),
        ("SPAN COUNTS", &diff.span_counts),
    ];
    for (title, rows) in sections {
        if rows.is_empty() {
            continue;
        }
        let _ = writeln!(out, "{title:<30}{:>15} {:>15} {:>12}", "a", "b", "delta");
        for row in rows {
            let _ = writeln!(
                out,
                "  {:<28}{:>15} {:>15} {:>+12}",
                row.name,
                fmt_value(row.a),
                fmt_value(row.b),
                row.delta(),
            );
        }
    }
    if !diff.histograms.is_empty() {
        let _ = writeln!(
            out,
            "{:<30}{:>15} {:>15} {:>12}",
            "HISTOGRAMS", "mean a", "mean b", "count Δ"
        );
        for (name, dcount, ma, mb) in &diff.histograms {
            let _ = writeln!(out, "  {name:<28}{ma:>15.2} {mb:>15.2} {dcount:>+12}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{HistogramSnapshot, SpanSnapshot};

    #[test]
    fn identical_snapshots_diff_empty() {
        let mut a = Snapshot::default();
        a.counters.insert("x".into(), 5);
        a.spans.insert(
            "s".into(),
            SpanSnapshot {
                count: 2,
                total_ns: 100,
                child_ns: 0,
                max_ns: 60,
            },
        );
        let mut b = a.clone();
        // Same span count, different timing: timings are ignored.
        b.spans.get_mut("s").unwrap().total_ns = 999;
        let d = diff_snapshots(&a, &b);
        assert!(d.is_empty(), "{d:?}");
        assert!(render_diff(&d).contains("agree"));
    }

    #[test]
    fn deltas_and_missing_sides() {
        let mut a = Snapshot::default();
        a.counters.insert("hits".into(), 10);
        a.counters.insert("gone".into(), 1);
        let mut b = Snapshot::default();
        b.counters.insert("hits".into(), 25);
        b.counters.insert("new".into(), 7);
        let h = HistogramSnapshot {
            count: 3,
            sum: 30,
            ..Default::default()
        };
        b.histograms.insert("lat".into(), h);

        let d = diff_snapshots(&a, &b);
        assert_eq!(d.counters.len(), 3);
        let hits = d.counters.iter().find(|m| m.name == "hits").unwrap();
        assert_eq!(hits.delta(), 15.0);
        let gone = d.counters.iter().find(|m| m.name == "gone").unwrap();
        assert_eq!((gone.a, gone.b), (Some(1.0), None));
        assert_eq!(d.histograms.len(), 1);

        let rendered = render_diff(&d);
        assert!(rendered.contains("hits"));
        assert!(rendered.contains("+15"));
        assert!(rendered.contains("—"), "missing side is marked");
    }

    #[test]
    fn render_diff_is_deterministically_sorted() {
        // Build the two snapshots with interleaved, unordered inserts; the
        // rendered diff must come out name-ordered and byte-stable.
        let mut a = Snapshot::default();
        let mut b = Snapshot::default();
        for name in ["zeta", "alpha", "mid"] {
            a.counters.insert(name.into(), 1);
            b.counters.insert(name.into(), 2);
            b.gauges.insert(name.into(), 3);
            b.spans.insert(
                name.into(),
                SpanSnapshot {
                    count: 4,
                    ..Default::default()
                },
            );
            b.histograms.insert(
                name.into(),
                HistogramSnapshot {
                    count: 1,
                    sum: 9,
                    ..Default::default()
                },
            );
        }
        let d = diff_snapshots(&a, &b);
        for rows in [&d.counters, &d.gauges, &d.span_counts] {
            let names: Vec<&str> = rows.iter().map(|m| m.name.as_str()).collect();
            assert_eq!(names, vec!["alpha", "mid", "zeta"], "rows sorted by name");
        }
        let hist_names: Vec<&str> = d.histograms.iter().map(|h| h.0.as_str()).collect();
        assert_eq!(hist_names, vec!["alpha", "mid", "zeta"]);
        assert_eq!(
            render_diff(&d),
            render_diff(&diff_snapshots(&a, &b)),
            "two diffs of the same snapshots render byte-identically"
        );

        // A hand-shuffled diff renders sorted once re-sorted through
        // diff_snapshots' contract — simulate by reversing and re-sorting.
        let mut shuffled = d.clone();
        shuffled.counters.reverse();
        assert_ne!(render_diff(&shuffled), render_diff(&d));
    }
}
