//! Minimal JSON value, parser, and writer.
//!
//! The workspace builds offline (no serde), so every JSON export and the few
//! tests that parse JSON go through this module. Objects preserve insertion
//! order; numbers are `f64` (integers round-trip exactly up to 2^53, which
//! covers everything the figure and telemetry exports emit).
//!
//! This module is always compiled — it carries no instrumentation and is
//! independent of the `enabled` feature.

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Parses a JSON document (rejects trailing garbage).
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError::at(pos, "trailing characters"));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn at(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Indented multi-line rendering.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out.push('\n');
        out
    }
}

/// `value["key"]` — returns `Null` for missing keys / non-objects.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

/// `value[0]` — returns `Null` for out-of-range / non-arrays.
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        self.at(index).unwrap_or(&NULL)
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl ParseError {
    fn at(offset: usize, message: &'static str) -> Self {
        ParseError { offset, message }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Quotes and escapes a string for JSON output (includes the quotes).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn write_num(out: &mut String, n: f64) {
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        out.push_str("null");
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => out.push_str(&quote(s)),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                out.push_str(&quote(key));
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError::at(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &'static str,
    value: Value,
) -> Result<Value, ParseError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(ParseError::at(*pos, "invalid literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ParseError::at(start, "invalid number"))?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| ParseError::at(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| ParseError::at(*pos, "invalid utf-8"));
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| ParseError::at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| ParseError::at(*pos, "invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| ParseError::at(*pos, "invalid \\u escape"))?;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement character.
                        let c = char::from_u32(code).unwrap_or('\u{FFFD}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(ParseError::at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(ParseError::at(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(ParseError::at(*pos, "expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(ParseError::at(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(ParseError::at(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let value = Value::Obj(vec![
            ("id".into(), Value::Str("fig1".into())),
            ("n".into(), Value::Num(42.0)),
            ("ratio".into(), Value::Num(0.5)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "points".into(),
                Value::Arr(vec![
                    Value::Arr(vec![Value::Num(10.0), Value::Num(1.5)]),
                    Value::Arr(vec![Value::Num(20.0), Value::Num(-3.0)]),
                ]),
            ),
        ]);
        let compact = value.to_json();
        assert!(compact.contains("\"id\":\"fig1\""));
        assert!(compact.contains("\"n\":42"));
        assert_eq!(Value::parse(&compact).unwrap(), value);
        let pretty = value.to_json_pretty();
        assert!(pretty.contains("\"id\": \"fig1\""));
        assert_eq!(Value::parse(&pretty).unwrap(), value);
    }

    #[test]
    fn indexing_and_accessors() {
        let v = Value::parse(r#"[{"label":"ETH","points":[[10,0.5]]}]"#).unwrap();
        assert_eq!(v[0]["label"].as_str(), Some("ETH"));
        assert_eq!(v[0]["points"][0][0].as_u64(), Some(10));
        assert_eq!(v[0]["points"][0][1].as_f64(), Some(0.5));
        assert_eq!(v[0]["missing"], Value::Null);
        assert_eq!(v[9], Value::Null);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\slash\u{1}";
        let json = quote(original);
        let parsed = Value::parse(&json).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn parse_errors_carry_position() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{\"a\":}").is_err());
        assert!(Value::parse("[1,2,]").is_err());
        assert!(Value::parse("123 456").is_err());
        let err = Value::parse("nope").unwrap_err();
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn numbers_parse_exactly() {
        let v = Value::parse("[0, -7, 3.25, 1e3, 9007199254740991]").unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(0));
        assert_eq!(items[1].as_f64(), Some(-7.0));
        assert_eq!(items[2].as_f64(), Some(3.25));
        assert_eq!(items[3].as_f64(), Some(1000.0));
        assert_eq!(items[4].as_u64(), Some((1u64 << 53) - 1));
    }
}
