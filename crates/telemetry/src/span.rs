//! Scoped span timers with parent/child attribution.
//!
//! A [`SpanStats`] accumulates timings for one named phase; entering it
//! returns a [`Span`] guard that records on drop. Guards nest through a
//! thread-local stack: when an inner span closes, its wall time is also
//! added to the enclosing span's `child_ns`, so a snapshot can report *self*
//! time (`total - child`) per phase without the phases knowing about each
//! other.

use std::sync::Arc;

#[cfg(feature = "enabled")]
mod imp {
    use crate::snapshot::SpanSnapshot;
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    use std::sync::Arc;
    use std::time::Instant;

    thread_local! {
        static SPAN_STACK: RefCell<Vec<Arc<SpanStats>>> = const { RefCell::new(Vec::new()) };
    }

    /// Accumulated timings for one named phase.
    #[derive(Debug, Default)]
    pub struct SpanStats {
        count: AtomicU64,
        total_ns: AtomicU64,
        child_ns: AtomicU64,
        max_ns: AtomicU64,
    }

    impl SpanStats {
        /// New empty stats (usable in `static` initialisers).
        pub const fn new() -> Self {
            SpanStats {
                count: AtomicU64::new(0),
                total_ns: AtomicU64::new(0),
                child_ns: AtomicU64::new(0),
                max_ns: AtomicU64::new(0),
            }
        }

        /// Starts a timed span; the returned guard records on drop.
        pub fn enter(self: &Arc<Self>) -> Span {
            SPAN_STACK.with(|stack| stack.borrow_mut().push(Arc::clone(self)));
            Span {
                start: Instant::now(),
            }
        }

        /// Plain-data copy of the current state.
        pub fn snapshot(&self) -> SpanSnapshot {
            SpanSnapshot {
                count: self.count.load(Relaxed),
                total_ns: self.total_ns.load(Relaxed),
                child_ns: self.child_ns.load(Relaxed),
                max_ns: self.max_ns.load(Relaxed),
            }
        }

        /// Back to empty.
        pub fn reset(&self) {
            self.count.store(0, Relaxed);
            self.total_ns.store(0, Relaxed);
            self.child_ns.store(0, Relaxed);
            self.max_ns.store(0, Relaxed);
        }
    }

    /// Guard for an in-flight span; records its elapsed time when dropped.
    #[derive(Debug)]
    pub struct Span {
        start: Instant,
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let elapsed = self.start.elapsed().as_nanos() as u64;
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                if let Some(stats) = stack.pop() {
                    stats.count.fetch_add(1, Relaxed);
                    stats.total_ns.fetch_add(elapsed, Relaxed);
                    stats.max_ns.fetch_max(elapsed, Relaxed);
                }
                if let Some(parent) = stack.last() {
                    parent.child_ns.fetch_add(elapsed, Relaxed);
                }
            });
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use crate::snapshot::SpanSnapshot;
    use std::sync::Arc;

    /// No-op span stats (telemetry compiled out).
    #[derive(Debug, Default)]
    pub struct SpanStats;

    impl SpanStats {
        /// New stats (no state).
        pub const fn new() -> Self {
            SpanStats
        }

        /// Returns an inert guard without reading the clock.
        #[inline(always)]
        pub fn enter(self: &Arc<Self>) -> Span {
            Span
        }

        /// Always empty.
        pub fn snapshot(&self) -> SpanSnapshot {
            SpanSnapshot::default()
        }

        /// No-op.
        pub fn reset(&self) {}
    }

    /// Inert span guard (telemetry compiled out).
    #[derive(Debug)]
    pub struct Span;
}

pub use imp::{Span, SpanStats};

/// Times `f` under `stats` and returns its result.
pub fn timed<T>(stats: &Arc<SpanStats>, f: impl FnOnce() -> T) -> T {
    let _span = stats.enter();
    f()
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn span_records_count_and_time() {
        let stats = Arc::new(SpanStats::new());
        for _ in 0..3 {
            let _span = stats.enter();
        }
        let snap = stats.snapshot();
        assert_eq!(snap.count, 3);
        assert!(snap.max_ns <= snap.total_ns || snap.total_ns == 0);
        stats.reset();
        assert_eq!(stats.snapshot().count, 0);
    }

    #[test]
    fn nested_spans_attribute_child_time() {
        let outer = Arc::new(SpanStats::new());
        let inner = Arc::new(SpanStats::new());
        {
            let _o = outer.enter();
            for _ in 0..2 {
                let _i = inner.enter();
                std::hint::black_box((0..1000).sum::<u64>());
            }
        }
        let o = outer.snapshot();
        let i = inner.snapshot();
        assert_eq!(o.count, 1);
        assert_eq!(i.count, 2);
        assert_eq!(o.child_ns, i.total_ns, "outer child time is inner total");
        assert!(o.total_ns >= o.child_ns, "self time never negative");
        assert_eq!(i.child_ns, 0);
    }

    #[test]
    fn timed_returns_value() {
        let stats = Arc::new(SpanStats::new());
        let v = timed(&stats, || 7u32);
        assert_eq!(v, 7);
        assert_eq!(stats.snapshot().count, 1);
    }
}
