//! `fork-telemetry`: a dependency-light metrics and span-timing subsystem.
//!
//! The paper this workspace reproduces is a measurement study; this crate is
//! the instrument the reproduction points at itself. It provides:
//!
//! - [`Counter`] / [`Gauge`] — relaxed atomics, monotonic and signed;
//! - [`Histogram`] — 65 fixed log2 buckets with a deterministic
//!   [`HistogramSnapshot::merge`];
//! - [`SpanStats`] / [`Span`] — scoped timers whose thread-local nesting
//!   attributes child time to parents, yielding per-phase self/total
//!   breakdowns;
//! - [`MetricsRegistry`] — a name → metric map producing a plain-data
//!   [`Snapshot`] that renders as a human table or machine-readable JSON;
//! - [`json`] — a tiny JSON value/parser/writer module used for all exports
//!   (always compiled, independent of the feature flag);
//! - [`SeriesRing`] — a plain-data, fixed-capacity time-series ring of
//!   sampled gauges (always compiled), plus [`prometheus_text`] rendering a
//!   [`Snapshot`] in the Prometheus text exposition format;
//! - [`TraceSink`] / [`FlightRecorder`] — structured block-lifecycle
//!   tracing on simulated time (Chrome-trace exportable, deterministic per
//!   seed) with a bounded last-N-per-node flight recorder for chaos
//!   post-mortems.
//!
//! # Feature flag
//!
//! Everything except [`json`] and the plain-data snapshot types sits behind
//! the `enabled` feature (on by default). With the feature off, the same API
//! compiles to zero-sized no-ops: counters don't touch memory, spans don't
//! read the clock, and registries return empty snapshots. Downstream crates
//! expose their own `telemetry` feature forwarding to
//! `fork-telemetry/enabled` so `--no-default-features` builds prove the off
//! path costs nothing.
//!
//! # Ownership model
//!
//! Engine-scoped metrics (simulation phases, chain stores) live in an
//! `Arc<MetricsRegistry>` owned by the engine, which keeps runs isolated and
//! makes determinism testable. Stateless hot paths (EVM dispatch, net
//! framing) use crate-level `static` metrics — [`Counter::new`] and friends
//! are `const fn` — and export via a `snapshot_into` helper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod json;
mod metrics;
pub mod recorder;
mod registry;
mod snapshot;
mod span;
pub mod timeseries;
pub mod trace;

pub use diff::{diff_snapshots, render_diff, SnapshotDiff};
pub use metrics::{bucket_index, bucket_range, Counter, Gauge, Histogram, BUCKETS};
pub use recorder::{FlightDump, FlightRecorder};
pub use registry::MetricsRegistry;
pub use snapshot::{HistogramSnapshot, Snapshot, SpanSnapshot, TimingMode};
pub use span::{timed, Span, SpanStats};
pub use timeseries::{prometheus_text, SeriesRing, SeriesSample};
pub use trace::{
    chrome_trace_json, propagation_rows, BlockTag, PropagationRow, TraceEvent, TraceEventKind,
    TraceSink, NO_BLOCK,
};

/// `true` when the `enabled` feature is compiled in (instrumentation live).
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}
