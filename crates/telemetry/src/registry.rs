//! Name → metric registry.
//!
//! Hot paths call `registry.counter("name")` once and cache the returned
//! `Arc`; the registry itself is only locked at registration and snapshot
//! time, never per event.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::Snapshot;
use crate::span::SpanStats;
use std::sync::Arc;

#[cfg(feature = "enabled")]
mod imp {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    /// A set of named metrics with snapshot/reset over the whole set.
    #[derive(Debug, Default)]
    pub struct MetricsRegistry {
        inner: Mutex<Inner>,
    }

    #[derive(Debug, Default)]
    struct Inner {
        counters: BTreeMap<String, Arc<Counter>>,
        gauges: BTreeMap<String, Arc<Gauge>>,
        histograms: BTreeMap<String, Arc<Histogram>>,
        spans: BTreeMap<String, Arc<SpanStats>>,
    }

    impl MetricsRegistry {
        /// New empty registry.
        pub fn new() -> Self {
            Self::default()
        }

        /// Gets or creates the counter `name`. Cache the `Arc` on hot paths.
        pub fn counter(&self, name: &str) -> Arc<Counter> {
            let mut inner = self.inner.lock().unwrap();
            Arc::clone(
                inner
                    .counters
                    .entry(name.to_owned())
                    .or_insert_with(|| Arc::new(Counter::new())),
            )
        }

        /// Gets or creates the gauge `name`.
        pub fn gauge(&self, name: &str) -> Arc<Gauge> {
            let mut inner = self.inner.lock().unwrap();
            Arc::clone(
                inner
                    .gauges
                    .entry(name.to_owned())
                    .or_insert_with(|| Arc::new(Gauge::new())),
            )
        }

        /// Gets or creates the histogram `name`.
        pub fn histogram(&self, name: &str) -> Arc<Histogram> {
            let mut inner = self.inner.lock().unwrap();
            Arc::clone(
                inner
                    .histograms
                    .entry(name.to_owned())
                    .or_insert_with(|| Arc::new(Histogram::new())),
            )
        }

        /// Gets or creates the span stats `name`.
        pub fn span(&self, name: &str) -> Arc<SpanStats> {
            let mut inner = self.inner.lock().unwrap();
            Arc::clone(
                inner
                    .spans
                    .entry(name.to_owned())
                    .or_insert_with(|| Arc::new(SpanStats::new())),
            )
        }

        /// Freezes the current state of every registered metric.
        pub fn snapshot(&self) -> Snapshot {
            let inner = self.inner.lock().unwrap();
            let mut snap = Snapshot::default();
            for (name, c) in &inner.counters {
                snap.counters.insert(name.clone(), c.get());
            }
            for (name, g) in &inner.gauges {
                snap.gauges.insert(name.clone(), g.get());
            }
            for (name, h) in &inner.histograms {
                snap.histograms.insert(name.clone(), h.snapshot());
            }
            for (name, s) in &inner.spans {
                snap.spans.insert(name.clone(), s.snapshot());
            }
            snap
        }

        /// Zeroes every registered metric (registrations survive).
        pub fn reset(&self) {
            let inner = self.inner.lock().unwrap();
            inner.counters.values().for_each(|c| c.reset());
            inner.gauges.values().for_each(|g| g.reset());
            inner.histograms.values().for_each(|h| h.reset());
            inner.spans.values().for_each(|s| s.reset());
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::*;

    /// No-op registry (telemetry compiled out).
    #[derive(Debug, Default)]
    pub struct MetricsRegistry;

    impl MetricsRegistry {
        /// New registry (no state).
        pub fn new() -> Self {
            MetricsRegistry
        }

        /// Returns a fresh no-op counter.
        pub fn counter(&self, _name: &str) -> Arc<Counter> {
            Arc::new(Counter::new())
        }

        /// Returns a fresh no-op gauge.
        pub fn gauge(&self, _name: &str) -> Arc<Gauge> {
            Arc::new(Gauge::new())
        }

        /// Returns a fresh no-op histogram.
        pub fn histogram(&self, _name: &str) -> Arc<Histogram> {
            Arc::new(Histogram::new())
        }

        /// Returns fresh no-op span stats.
        pub fn span(&self, _name: &str) -> Arc<SpanStats> {
            Arc::new(SpanStats::new())
        }

        /// Always empty.
        pub fn snapshot(&self) -> Snapshot {
            Snapshot::default()
        }

        /// No-op.
        pub fn reset(&self) {}
    }
}

pub use imp::MetricsRegistry;

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn registry_deduplicates_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.incr();
        b.incr();
        assert_eq!(reg.snapshot().counters["hits"], 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_covers_all_kinds_and_reset_zeroes() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(3);
        reg.gauge("g").set(-2);
        reg.histogram("h").record(100);
        {
            let span = reg.span("s");
            let _guard = span.enter();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counters["c"], 3);
        assert_eq!(snap.gauges["g"], -2);
        assert_eq!(snap.histograms["h"].count, 1);
        assert_eq!(snap.spans["s"].count, 1);

        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.counters["c"], 0);
        assert_eq!(snap.histograms["h"].count, 0);
        assert_eq!(snap.spans["s"].count, 0);
    }
}
