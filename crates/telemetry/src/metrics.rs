//! Counters, gauges, and log-scale histograms.
//!
//! All types are `const`-constructible (usable as crate-level `static`s) and
//! use relaxed atomics: readers only ever see totals via [`Histogram::snapshot`]
//! and friends, so no ordering stronger than `Relaxed` is needed.

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i` (1..=64)
/// holds values in `[2^(i-1), 2^i)`.
pub const BUCKETS: usize = 65;

#[cfg(feature = "enabled")]
mod imp {
    use super::BUCKETS;
    use crate::snapshot::HistogramSnapshot;
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};

    /// A monotonically increasing event count.
    #[derive(Debug, Default)]
    pub struct Counter(AtomicU64);

    impl Counter {
        /// New counter at zero (usable in `static` initialisers).
        pub const fn new() -> Self {
            Counter(AtomicU64::new(0))
        }

        /// Adds one.
        #[inline]
        pub fn incr(&self) {
            self.0.fetch_add(1, Relaxed);
        }

        /// Adds `n`.
        #[inline]
        pub fn add(&self, n: u64) {
            self.0.fetch_add(n, Relaxed);
        }

        /// Current total.
        #[inline]
        pub fn get(&self) -> u64 {
            self.0.load(Relaxed)
        }

        /// Back to zero.
        pub fn reset(&self) {
            self.0.store(0, Relaxed);
        }
    }

    /// A signed instantaneous value (queue depths, balances).
    #[derive(Debug, Default)]
    pub struct Gauge(AtomicI64);

    impl Gauge {
        /// New gauge at zero (usable in `static` initialisers).
        pub const fn new() -> Self {
            Gauge(AtomicI64::new(0))
        }

        /// Overwrites the value.
        #[inline]
        pub fn set(&self, v: i64) {
            self.0.store(v, Relaxed);
        }

        /// Adds `delta` (may be negative).
        #[inline]
        pub fn add(&self, delta: i64) {
            self.0.fetch_add(delta, Relaxed);
        }

        /// Current value.
        #[inline]
        pub fn get(&self) -> i64 {
            self.0.load(Relaxed)
        }

        /// Back to zero.
        pub fn reset(&self) {
            self.0.store(0, Relaxed);
        }
    }

    /// Fixed-bucket log2 histogram of `u64` samples.
    ///
    /// 65 buckets cover the full `u64` domain, so recording never saturates
    /// or clips; merges of snapshots are exact (bucket-wise sums).
    #[derive(Debug)]
    pub struct Histogram {
        count: AtomicU64,
        sum: AtomicU64,
        min: AtomicU64,
        max: AtomicU64,
        buckets: [AtomicU64; BUCKETS],
    }

    impl Default for Histogram {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Histogram {
        /// New empty histogram (usable in `static` initialisers).
        pub const fn new() -> Self {
            Histogram {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
                buckets: [const { AtomicU64::new(0) }; BUCKETS],
            }
        }

        /// Records one sample.
        #[inline]
        pub fn record(&self, v: u64) {
            self.count.fetch_add(1, Relaxed);
            self.sum.fetch_add(v, Relaxed);
            self.min.fetch_min(v, Relaxed);
            self.max.fetch_max(v, Relaxed);
            self.buckets[super::bucket_index(v)].fetch_add(1, Relaxed);
        }

        /// Plain-data copy of the current state.
        pub fn snapshot(&self) -> HistogramSnapshot {
            let count = self.count.load(Relaxed);
            let mut buckets = [0u64; BUCKETS];
            for (out, b) in buckets.iter_mut().zip(&self.buckets) {
                *out = b.load(Relaxed);
            }
            HistogramSnapshot {
                count,
                sum: self.sum.load(Relaxed),
                min: if count == 0 {
                    0
                } else {
                    self.min.load(Relaxed)
                },
                max: self.max.load(Relaxed),
                buckets,
            }
        }

        /// Back to empty.
        pub fn reset(&self) {
            self.count.store(0, Relaxed);
            self.sum.store(0, Relaxed);
            self.min.store(u64::MAX, Relaxed);
            self.max.store(0, Relaxed);
            for b in &self.buckets {
                b.store(0, Relaxed);
            }
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use crate::snapshot::HistogramSnapshot;

    /// No-op counter (telemetry compiled out).
    #[derive(Debug, Default)]
    pub struct Counter;

    impl Counter {
        /// New counter (no state).
        pub const fn new() -> Self {
            Counter
        }

        /// No-op.
        #[inline(always)]
        pub fn incr(&self) {}

        /// No-op.
        #[inline(always)]
        pub fn add(&self, _n: u64) {}

        /// Always zero.
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }

        /// No-op.
        pub fn reset(&self) {}
    }

    /// No-op gauge (telemetry compiled out).
    #[derive(Debug, Default)]
    pub struct Gauge;

    impl Gauge {
        /// New gauge (no state).
        pub const fn new() -> Self {
            Gauge
        }

        /// No-op.
        #[inline(always)]
        pub fn set(&self, _v: i64) {}

        /// No-op.
        #[inline(always)]
        pub fn add(&self, _delta: i64) {}

        /// Always zero.
        #[inline(always)]
        pub fn get(&self) -> i64 {
            0
        }

        /// No-op.
        pub fn reset(&self) {}
    }

    /// No-op histogram (telemetry compiled out).
    #[derive(Debug, Default)]
    pub struct Histogram;

    impl Histogram {
        /// New histogram (no state).
        pub const fn new() -> Self {
            Histogram
        }

        /// No-op.
        #[inline(always)]
        pub fn record(&self, _v: u64) {}

        /// Always empty.
        pub fn snapshot(&self) -> HistogramSnapshot {
            HistogramSnapshot::default()
        }

        /// No-op.
        pub fn reset(&self) {}
    }
}

pub use imp::{Counter, Gauge, Histogram};

/// Bucket for a sample: 0 for zero, else `64 - leading_zeros` (so bucket `i`
/// spans `[2^(i-1), 2^i)`). Public so downstream consumers (fork-query's
/// archive-derived histograms) can bucket identically to [`Histogram`]
/// without depending on the `enabled` feature.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive-exclusive value range `[lo, hi)` covered by a bucket index.
/// Downstream exporters use this to turn bucket counts back into value-axis
/// series (e.g. inter-arrival histograms → figure data).
pub fn bucket_range(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 1)
    } else {
        (1u64 << (i - 1), if i == 64 { u64::MAX } else { 1u64 << i })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[cfg(feature = "enabled")]
    mod enabled {
        use crate::{Counter, Gauge, Histogram};

        #[test]
        fn counter_semantics() {
            let c = Counter::new();
            assert_eq!(c.get(), 0);
            c.incr();
            c.add(41);
            assert_eq!(c.get(), 42);
            c.reset();
            assert_eq!(c.get(), 0);
        }

        #[test]
        fn gauge_semantics() {
            let g = Gauge::new();
            g.set(10);
            g.add(-25);
            assert_eq!(g.get(), -15);
            g.reset();
            assert_eq!(g.get(), 0);
        }

        #[test]
        fn histogram_records_and_snapshots() {
            let h = Histogram::new();
            assert_eq!(h.snapshot().min, 0, "empty histogram reports min 0");
            for v in [0u64, 1, 3, 1000, u64::MAX] {
                h.record(v);
            }
            let s = h.snapshot();
            assert_eq!(s.count, 5);
            assert_eq!(s.min, 0);
            assert_eq!(s.max, u64::MAX);
            assert_eq!(
                s.sum,
                0u64.wrapping_add(1 + 3 + 1000).wrapping_add(u64::MAX)
            );
            assert_eq!(s.buckets.iter().sum::<u64>(), 5);
            h.reset();
            assert_eq!(h.snapshot().count, 0);
        }
    }
}
