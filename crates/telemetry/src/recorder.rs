//! The flight recorder: bounded last-N-events-per-node ring buffers.
//!
//! A full trace of a long chaos run is unbounded; what a failure
//! post-mortem actually needs is *the recent history of every node* at the
//! moment an invariant tripped. A [`FlightRecorder`] rides along a
//! [`crate::TraceSink`] (see [`crate::TraceSink::with_recorder`] /
//! [`crate::TraceSink::recorder_only`]) keeping at most N events per node;
//! [`FlightRecorder::dump`] freezes that view into a [`FlightDump`], which
//! call sites annotate with the run's telemetry [`Snapshot`] and render
//! next to the violation message.
//!
//! These are plain-data types — always compiled, no feature gate — so dump
//! handling code works identically whether tracing is live or not.

use crate::snapshot::Snapshot;
use crate::trace::{hex_tag, TraceEvent, NO_BLOCK};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Bounded per-node ring buffers of the most recent [`TraceEvent`]s.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    per_node: BTreeMap<u32, VecDeque<TraceEvent>>,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity_per_node` events per node
    /// (clamped to ≥ 1).
    pub fn new(capacity_per_node: usize) -> Self {
        FlightRecorder {
            capacity: capacity_per_node.max(1),
            per_node: BTreeMap::new(),
        }
    }

    /// The per-node ring size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an event to its node's ring, evicting the oldest entry once
    /// the ring is full.
    pub fn record(&mut self, ev: &TraceEvent) {
        let ring = self.per_node.entry(ev.node).or_default();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(*ev);
    }

    /// The retained events for one node, oldest first.
    pub fn node_events(&self, node: u32) -> Vec<TraceEvent> {
        self.per_node
            .get(&node)
            .map(|r| r.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Freezes the recorder into a plain [`FlightDump`] (telemetry snapshot
    /// slot left empty for the caller).
    pub fn dump(&self) -> FlightDump {
        FlightDump {
            capacity: self.capacity,
            events: self
                .per_node
                .iter()
                .map(|(n, r)| (*n, r.iter().copied().collect()))
                .collect(),
            snapshot: None,
        }
    }
}

/// A frozen flight-recorder view: the last N events per node, optionally
/// annotated with the run's telemetry snapshot. This is what gets written
/// to disk when a chaos invariant fails.
#[derive(Debug, Clone, Default)]
pub struct FlightDump {
    /// The ring size the recorder ran with.
    pub capacity: usize,
    /// Per-node events, oldest first (key order = node id).
    pub events: BTreeMap<u32, Vec<TraceEvent>>,
    /// The run's aggregate telemetry at dump time, when the caller attached
    /// one.
    pub snapshot: Option<Snapshot>,
}

impl FlightDump {
    /// Total events across all nodes.
    pub fn len(&self) -> usize {
        self.events.values().map(Vec::len).sum()
    }

    /// True when no node retained any event.
    pub fn is_empty(&self) -> bool {
        self.events.values().all(Vec::is_empty)
    }

    /// Human-readable post-mortem text: a per-node event log followed by
    /// the telemetry table (when attached). Deterministic for identical
    /// dumps.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "FLIGHT RECORDER DUMP (last {} events per node, {} events total)",
            self.capacity,
            self.len(),
        );
        for (node, events) in &self.events {
            let _ = writeln!(out, "node {node}:");
            for ev in events {
                let _ = write!(
                    out,
                    "  t={:>8}ms #{:<6} {:<17}",
                    ev.at_ms,
                    ev.seq,
                    ev.kind.as_str(),
                );
                if ev.block != NO_BLOCK {
                    let hex = hex_tag(&ev.block);
                    let _ = write!(out, " block={}.. n={}", &hex[..18], ev.number);
                }
                if let Some(p) = ev.peer {
                    let _ = write!(out, " peer={p}");
                }
                if !ev.detail.is_empty() {
                    let _ = write!(out, " [{}]", ev.detail);
                }
                out.push('\n');
            }
        }
        if let Some(snap) = &self.snapshot {
            out.push_str("\nTELEMETRY AT DUMP TIME\n");
            out.push_str(&snap.render_table());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{BlockTag, TraceEventKind};

    fn ev(seq: u64, node: u32, kind: TraceEventKind) -> TraceEvent {
        let mut block: BlockTag = [0; 32];
        block[0] = seq as u8;
        TraceEvent {
            at_ms: seq * 10,
            seq,
            node,
            block,
            number: seq,
            kind,
            peer: None,
            detail: "",
        }
    }

    #[test]
    fn ring_buffer_is_bounded_and_keeps_the_tail() {
        let mut rec = FlightRecorder::new(3);
        for seq in 1..=10 {
            rec.record(&ev(seq, 0, TraceEventKind::Imported));
            rec.record(&ev(seq + 100, 1, TraceEventKind::GossipRecv));
        }
        assert_eq!(rec.capacity(), 3);
        let n0 = rec.node_events(0);
        assert_eq!(n0.len(), 3, "ring never exceeds capacity");
        assert_eq!(
            n0.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![8, 9, 10],
            "the last N survive, oldest evicted first"
        );
        assert_eq!(rec.node_events(1).len(), 3);
        assert!(rec.node_events(7).is_empty());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut rec = FlightRecorder::new(0);
        rec.record(&ev(1, 0, TraceEventKind::Mined));
        rec.record(&ev(2, 0, TraceEventKind::Imported));
        assert_eq!(rec.node_events(0).len(), 1);
        assert_eq!(rec.node_events(0)[0].seq, 2);
    }

    #[test]
    fn dump_renders_events_and_snapshot() {
        let mut rec = FlightRecorder::new(4);
        rec.record(&ev(1, 2, TraceEventKind::Mined));
        rec.record(&{
            let mut e = ev(2, 2, TraceEventKind::GossipSent);
            e.peer = Some(5);
            e.detail = "corrupt_frames";
            e
        });
        let mut dump = rec.dump();
        assert_eq!(dump.len(), 2);
        assert!(!dump.is_empty());
        let mut snap = Snapshot::default();
        snap.counters.insert("micro.mined".into(), 11);
        dump.snapshot = Some(snap);

        let text = dump.render();
        assert!(text.contains("last 4 events per node"));
        assert!(text.contains("node 2:"));
        assert!(text.contains("Mined"));
        assert!(text.contains("peer=5"));
        assert!(text.contains("[corrupt_frames]"));
        assert!(text.contains("micro.mined"));
        assert_eq!(text, dump.render(), "render is deterministic");
    }

    #[test]
    fn empty_dump() {
        let dump = FlightRecorder::new(8).dump();
        assert!(dump.is_empty());
        assert_eq!(dump.len(), 0);
        assert!(dump.render().contains("0 events total"));
    }
}
