//! Plain-data snapshots of metrics, with merge, table, and JSON export.
//!
//! These types are always compiled (no feature gate): they carry no atomics
//! and exist so results can flow through APIs (`StudyResult`, figure tools)
//! regardless of whether live instrumentation is on.

use crate::metrics::{bucket_index, bucket_range, BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Frozen state of a [`crate::Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Wrapping sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts; bucket 0 holds zeros, bucket `i` holds
    /// values in `[2^(i-1), 2^i)`.
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Folds `other` into `self`. Bucket-wise addition: associative,
    /// commutative, and total-count preserving.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.min = match (self.count, other.count) {
            (0, _) => other.min,
            (_, 0) => self.min,
            _ => self.min.min(other.min),
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Mean sample value (0.0 when empty). Approximate once `sum` wraps.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Records one sample into this plain-data snapshot, with the same
    /// bucketing as the live `Histogram::record`. Unlike the live type this
    /// works in every build (no `enabled` feature), so client-side latency
    /// collection and archive-derived histograms share one code path with
    /// server-side metrics.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
        } else {
            self.min = self.min.min(v);
        }
        self.max = self.max.max(v);
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Estimated value at percentile `p` (clamped to `0..=100`): walks the
    /// log2 buckets to the one covering the target rank and interpolates at
    /// the rank's midpoint — over the bucket's span *intersected with* the
    /// observed `[min, max]` envelope, so estimates never leave the range of
    /// values actually recorded. Pinned exact cases: an empty histogram is
    /// 0 at every percentile; a constant stream (including a single sample)
    /// is that constant; `p <= 0` is `min` and `p >= 100` is `max`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if self.min == self.max {
            // Single sample or a constant stream: the answer is exact.
            return self.min;
        }
        let p = p.clamp(0.0, 100.0);
        if p <= 0.0 {
            return self.min;
        }
        if p >= 100.0 {
            return self.max;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (blo, bhi) = bucket_range(i);
                // Interpolate only over the part of the bucket the observed
                // envelope allows; a fully clamped bucket is a point. `hi`
                // is exclusive, so the envelope's top is `max + 1`.
                let lo = blo.max(self.min);
                let hi = bhi.min(self.max.saturating_add(1));
                if lo >= hi {
                    return lo.clamp(self.min, self.max);
                }
                // Midpoint of the rank's slot: (0, 1), never the bucket
                // edges — a lone sample estimates the bucket middle, not
                // its top.
                let into = ((rank - seen) as f64 - 0.5) / n as f64;
                let est = lo as f64 + into * (hi - lo) as f64;
                return (est as u64).clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Median estimate; see [`HistogramSnapshot::percentile`].
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th-percentile estimate; see [`HistogramSnapshot::percentile`].
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th-percentile estimate; see [`HistogramSnapshot::percentile`].
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }
}

/// Frozen state of a [`crate::SpanStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanSnapshot {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall time, including children.
    pub total_ns: u64,
    /// Wall time attributed to nested child spans.
    pub child_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
}

impl SpanSnapshot {
    /// Wall time excluding nested children.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }

    /// Folds `other` into `self` (counts and times add, max takes max).
    pub fn merge(&mut self, other: &SpanSnapshot) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.child_ns += other.child_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// How span timings appear in JSON export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingMode {
    /// Real wall-clock nanoseconds.
    Wall,
    /// All nanosecond fields written as zero; span *counts* remain. Used by
    /// determinism tests, where timings are the only nondeterministic data.
    Zeroed,
}

/// A frozen, mergeable view of a whole registry (plus any crate-static
/// metrics folded in via `snapshot_into` helpers).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span timings by name.
    pub spans: BTreeMap<String, SpanSnapshot>,
}

impl Snapshot {
    /// Folds `other` into `self`: counters/gauges add, histograms and spans
    /// merge element-wise.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
        for (name, s) in &other.spans {
            self.spans.entry(name.clone()).or_default().merge(s);
        }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Human-readable table of every metric.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str(
                "SPANS                                    count     total      self       max\n",
            );
            for (name, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {:<38} {:>7} {:>9} {:>9} {:>9}",
                    name,
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.self_ns()),
                    fmt_ns(s.max_ns),
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("COUNTERS\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<38} {v:>15}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("GAUGES\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<38} {v:>15}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(
                "HISTOGRAMS                                 count       min      mean       max\n",
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<38} {:>7} {:>9} {:>9.1} {:>9}",
                    name,
                    h.count,
                    h.min,
                    h.mean(),
                    h.max,
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Machine-readable JSON. Integer-exact, key-ordered (`BTreeMap`), and —
    /// with [`TimingMode::Zeroed`] — byte-identical across identical seeded
    /// runs.
    pub fn to_json(&self, timing: TimingMode) -> String {
        let mut out = String::from("{\n  \"schema\": \"fork-telemetry/v1\",\n");

        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    {}: {v}", crate::json::quote(name));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    {}: {v}", crate::json::quote(name));
        }
        out.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"spans\": {");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let (total, child, self_ns, max) = match timing {
                TimingMode::Wall => (s.total_ns, s.child_ns, s.self_ns(), s.max_ns),
                TimingMode::Zeroed => (0, 0, 0, 0),
            };
            let _ = write!(
                out,
                "{sep}    {}: {{\"count\": {}, \"total_ns\": {total}, \"self_ns\": {self_ns}, \"child_ns\": {child}, \"max_ns\": {max}}}",
                crate::json::quote(name),
                s.count,
            );
        }
        out.push_str(if self.spans.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                crate::json::quote(name),
                h.count,
                h.sum,
                h.min,
                h.max,
            );
            let mut first = true;
            for (idx, &n) in h.buckets.iter().enumerate() {
                if n > 0 {
                    let (lo, _) = bucket_range(idx);
                    let _ = write!(out, "{}[{lo}, {n}]", if first { "" } else { ", " });
                    first = false;
                }
            }
            out.push_str("]}");
        }
        out.push_str(if self.histograms.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });

        out.push_str("}\n");
        out
    }

    /// Parses a snapshot previously written by [`Snapshot::to_json`] (a
    /// `--telemetry-out` file). The inverse up to histogram `min`/`max`
    /// fields, which round-trip exactly, and bucket placement, which is
    /// reconstructed from each bucket's lower bound.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let value = crate::json::Value::parse(text).map_err(|e| e.to_string())?;
        if value["schema"].as_str() != Some("fork-telemetry/v1") {
            return Err("not a fork-telemetry/v1 snapshot".into());
        }
        let mut snap = Snapshot::default();
        if let Some(crate::json::Value::Obj(fields)) = value.get("counters") {
            for (name, v) in fields {
                let v = v.as_u64().ok_or_else(|| format!("counter {name}"))?;
                snap.counters.insert(name.clone(), v);
            }
        }
        if let Some(crate::json::Value::Obj(fields)) = value.get("gauges") {
            for (name, v) in fields {
                let v = v.as_f64().ok_or_else(|| format!("gauge {name}"))?;
                snap.gauges.insert(name.clone(), v as i64);
            }
        }
        if let Some(crate::json::Value::Obj(fields)) = value.get("spans") {
            for (name, s) in fields {
                let field = |k: &str| s[k].as_u64().ok_or_else(|| format!("span {name}.{k}"));
                snap.spans.insert(
                    name.clone(),
                    SpanSnapshot {
                        count: field("count")?,
                        total_ns: field("total_ns")?,
                        child_ns: field("child_ns")?,
                        max_ns: field("max_ns")?,
                    },
                );
            }
        }
        if let Some(crate::json::Value::Obj(fields)) = value.get("histograms") {
            for (name, h) in fields {
                let field = |k: &str| h[k].as_u64().ok_or_else(|| format!("histogram {name}.{k}"));
                let mut hs = HistogramSnapshot {
                    count: field("count")?,
                    sum: field("sum")?,
                    min: field("min")?,
                    max: field("max")?,
                    buckets: [0; BUCKETS],
                };
                let buckets = h["buckets"]
                    .as_array()
                    .ok_or_else(|| format!("histogram {name}.buckets"))?;
                for pair in buckets {
                    let (lo, n) = match (pair[0].as_u64(), pair[1].as_u64()) {
                        (Some(lo), Some(n)) => (lo, n),
                        _ => return Err(format!("histogram {name}: bad bucket entry")),
                    };
                    hs.buckets[bucket_index(lo)] += n;
                }
                snap.histograms.insert(name.clone(), hs);
            }
        }
        Ok(snap)
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{}us", ns / 1_000)
    } else if ns < 10_000_000_000 {
        format!("{}ms", ns / 1_000_000)
    } else {
        format!("{:.1}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "enabled")]
    fn hist(samples: &[u64]) -> HistogramSnapshot {
        let h = crate::Histogram::new();
        for &s in samples {
            h.record(s);
        }
        h.snapshot()
    }

    #[test]
    fn snapshot_merge_adds_and_maxes() {
        let mut a = Snapshot::default();
        a.counters.insert("x".into(), 2);
        a.spans.insert(
            "s".into(),
            SpanSnapshot {
                count: 1,
                total_ns: 10,
                child_ns: 4,
                max_ns: 10,
            },
        );
        let mut b = Snapshot::default();
        b.counters.insert("x".into(), 3);
        b.counters.insert("y".into(), 1);
        b.spans.insert(
            "s".into(),
            SpanSnapshot {
                count: 2,
                total_ns: 30,
                child_ns: 0,
                max_ns: 25,
            },
        );
        a.merge(&b);
        assert_eq!(a.counters["x"], 5);
        assert_eq!(a.counters["y"], 1);
        let s = &a.spans["s"];
        assert_eq!((s.count, s.total_ns, s.max_ns), (3, 40, 25));
        assert_eq!(s.self_ns(), 36);
    }

    #[test]
    fn json_shape_and_zeroed_timing() {
        let mut snap = Snapshot::default();
        snap.counters.insert("net.frames_sealed".into(), 7);
        snap.spans.insert(
            "meso.mine".into(),
            SpanSnapshot {
                count: 5,
                total_ns: 123,
                child_ns: 23,
                max_ns: 99,
            },
        );
        let wall = snap.to_json(TimingMode::Wall);
        assert!(wall.contains("\"net.frames_sealed\": 7"));
        assert!(wall.contains("\"total_ns\": 123"));
        let zeroed = snap.to_json(TimingMode::Zeroed);
        assert!(zeroed.contains("\"total_ns\": 0"));
        assert!(
            zeroed.contains("\"count\": 5"),
            "span counts survive zeroing"
        );
        let parsed = crate::json::Value::parse(&wall).expect("export parses");
        assert_eq!(parsed["counters"]["net.frames_sealed"].as_u64(), Some(7));
        assert_eq!(parsed["schema"].as_str(), Some("fork-telemetry/v1"));
    }

    #[test]
    fn json_round_trips_through_from_json() {
        let mut snap = Snapshot::default();
        snap.counters.insert("a.b".into(), 42);
        snap.gauges.insert("depth".into(), -3);
        snap.spans.insert(
            "phase".into(),
            SpanSnapshot {
                count: 9,
                total_ns: 1_234,
                child_ns: 200,
                max_ns: 500,
            },
        );
        let mut h = HistogramSnapshot::default();
        for v in [0u64, 1, 3, 3, 1000] {
            h.buckets[bucket_index(v)] += 1;
            h.count += 1;
            h.sum += v;
            h.max = h.max.max(v);
        }
        snap.histograms.insert("sizes".into(), h);

        let parsed = Snapshot::from_json(&snap.to_json(TimingMode::Wall)).unwrap();
        assert_eq!(parsed, snap);

        assert!(Snapshot::from_json("{}").is_err(), "schema required");
        assert!(Snapshot::from_json("not json").is_err());
    }

    #[test]
    fn record_matches_manual_bucketing_and_merge() {
        let mut h = HistogramSnapshot::default();
        for v in [0u64, 1, 3, 3, 1000, 7] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1014);
        assert_eq!((h.min, h.max), (0, 1000));
        assert_eq!(h.buckets.iter().sum::<u64>(), 6);
        assert_eq!(h.buckets[bucket_index(3)], 2);

        // record() agrees with what the live histogram would have produced.
        #[cfg(feature = "enabled")]
        assert_eq!(h, hist(&[0, 1, 3, 3, 1000, 7]));
    }

    #[test]
    fn percentiles_interpolate_within_log2_buckets() {
        assert_eq!(HistogramSnapshot::default().percentile(99.0), 0);

        // Constant stream: every percentile is that constant (the clamp to
        // [min, max] makes bucket interpolation exact here).
        let mut constant = HistogramSnapshot::default();
        for _ in 0..100 {
            constant.record(42);
        }
        for p in [0.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(constant.percentile(p), 42);
        }

        // Uniform 1..=1000: estimates land within the covering power-of-two
        // bucket and stay monotone in p.
        let mut uniform = HistogramSnapshot::default();
        for v in 1..=1000u64 {
            uniform.record(v);
        }
        let (p50, p90, p99) = (uniform.p50(), uniform.p90(), uniform.p99());
        assert!((256..=1024).contains(&p50), "p50 estimate {p50}");
        assert!((512..=1024).contains(&p90), "p90 estimate {p90}");
        assert!((900..=1000).contains(&p99), "p99 estimate {p99}");
        assert!(p50 <= p90 && p90 <= p99, "{p50} <= {p90} <= {p99}");
        assert_eq!(uniform.percentile(100.0), uniform.max);
        assert_eq!(uniform.percentile(-3.0), uniform.percentile(0.0));

        // Tail-heavy: p99 must sit in the tail, p50 in the body.
        let mut tail = HistogramSnapshot::default();
        for _ in 0..980 {
            tail.record(10);
        }
        for _ in 0..20 {
            tail.record(1_000_000);
        }
        assert!(
            tail.p50() < 16,
            "p50 {} should be in the body bucket",
            tail.p50()
        );
        assert!(
            tail.p99() >= 524_288,
            "p99 {} should be in the tail",
            tail.p99()
        );
    }

    #[test]
    fn percentile_edge_cases_pin_clamped_interpolation() {
        // Empty: every percentile is 0 (no data, no envelope).
        let empty = HistogramSnapshot::default();
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(empty.percentile(p), 0);
        }

        // Single sample: exact at every percentile, including p = 0.
        let mut one = HistogramSnapshot::default();
        one.record(777);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(one.percentile(p), 777, "single sample is exact at {p}");
        }
        let mut zero = HistogramSnapshot::default();
        zero.record(0);
        assert_eq!(zero.percentile(50.0), 0);

        // Single-bucket saturation: all samples in [512, 1024) but the
        // observed envelope is [600, 700] — interpolation must stay inside
        // the envelope, not the full power-of-two bucket.
        let mut narrow = HistogramSnapshot::default();
        for v in [600u64, 640, 660, 700] {
            narrow.record(v);
        }
        let mut last = 0;
        for p in [0.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let est = narrow.percentile(p);
            assert!(
                (600..=700).contains(&est),
                "p{p} estimate {est} escaped the observed [600, 700] envelope"
            );
            assert!(est >= last, "estimates must be monotone in p");
            last = est;
        }
        assert_eq!(narrow.percentile(100.0), narrow.max);

        // Two far-apart samples: each percentile half resolves to the
        // nearer observed value's bucket, clamped into [min, max].
        let mut pair = HistogramSnapshot::default();
        pair.record(3);
        pair.record(1_000_000);
        assert_eq!(pair.percentile(0.0), 3);
        assert_eq!(pair.percentile(50.0), 3);
        assert!(pair.percentile(51.0) >= 524_288);
        assert_eq!(pair.percentile(100.0), 1_000_000);
    }

    #[test]
    fn empty_snapshot_exports() {
        let snap = Snapshot::default();
        assert!(snap.is_empty());
        let json = snap.to_json(TimingMode::Wall);
        assert!(crate::json::Value::parse(&json).is_ok());
        assert_eq!(snap.render_table(), "(no metrics recorded)\n");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn histogram_merge_preserves_shape() {
        let mut a = hist(&[1, 5, 5, 1000]);
        let b = hist(&[0, 2, u64::MAX]);
        let mut ba = b.clone();
        ba.merge(&a);
        a.merge(&b);
        assert_eq!(a, ba, "merge is commutative");
        assert_eq!(a.count, 7);
        assert_eq!(a.min, 0);
        assert_eq!(a.max, u64::MAX);
        assert_eq!(a.buckets.iter().sum::<u64>(), 7);
    }

    #[cfg(feature = "enabled")]
    mod proptests {
        use super::super::HistogramSnapshot;
        use proptest::prelude::*;

        fn hist(samples: &[u64]) -> HistogramSnapshot {
            let h = crate::Histogram::new();
            for &s in samples {
                h.record(s);
            }
            h.snapshot()
        }

        proptest! {
            #[test]
            fn merge_is_associative_commutative_count_preserving(
                xs in proptest::collection::vec(any::<u64>(), 0..20),
                ys in proptest::collection::vec(any::<u64>(), 0..20),
                zs in proptest::collection::vec(any::<u64>(), 0..20),
            ) {
                let (a, b, c) = (hist(&xs), hist(&ys), hist(&zs));

                // Commutative: a+b == b+a.
                let mut ab = a.clone();
                ab.merge(&b);
                let mut ba = b.clone();
                ba.merge(&a);
                prop_assert_eq!(&ab, &ba);

                // Associative: (a+b)+c == a+(b+c).
                let mut ab_c = ab.clone();
                ab_c.merge(&c);
                let mut bc = b.clone();
                bc.merge(&c);
                let mut a_bc = a.clone();
                a_bc.merge(&bc);
                prop_assert_eq!(&ab_c, &a_bc);

                // Count-preserving, in total and per bucket.
                prop_assert_eq!(ab_c.count, (xs.len() + ys.len() + zs.len()) as u64);
                prop_assert_eq!(ab_c.buckets.iter().sum::<u64>(), ab_c.count);

                // Merging matches recording everything into one histogram.
                let mut all = Vec::new();
                all.extend_from_slice(&xs);
                all.extend_from_slice(&ys);
                all.extend_from_slice(&zs);
                prop_assert_eq!(&ab_c, &hist(&all));
            }
        }
    }
}
