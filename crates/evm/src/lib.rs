//! # fork-evm
//!
//! A gas-metered stack virtual machine implementing the Homestead-era EVM —
//! arithmetic (incl. signed and modular), Keccak, environment access,
//! storage, control flow, logs, CREATE and the full call family (CALL,
//! CALLCODE, DELEGATECALL) — plus the journaled world state the whole
//! workspace shares.
//!
//! Includes both gas schedules relevant to the paper's timeline (Frontier and
//! the EIP-150 repricing rolled out by the resolved forks of Nov 2016 / Jan
//! 2017) and a contract library with a faithful DAO-style reentrancy pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contracts;
pub mod error;
pub mod execute;
pub mod gas;
pub mod interpreter;
pub mod memory;
pub mod opcode;
pub mod stack;
pub mod telemetry;
pub mod world;

pub use error::VmError;
pub use execute::{transact, TransactOutcome, TxError};
pub use gas::GasSchedule;
pub use interpreter::{
    address_to_u256, contract_address, u256_to_address, BlockContext, CallParams, Evm, FrameResult,
    Log, TxContext,
};
pub use world::{Account, Checkpoint, WorldState};

#[cfg(test)]
mod proptests {
    use super::*;
    use fork_primitives::{Address, U256};
    use proptest::prelude::*;

    proptest! {
        /// Random bytecode must never panic the interpreter, and gas used
        /// must never exceed the supplied limit.
        #[test]
        fn interpreter_total_on_random_code(
            code in proptest::collection::vec(any::<u8>(), 0..256),
            gas in 0u64..200_000,
        ) {
            let mut world = WorldState::new();
            let target = Address([7u8; 20]);
            world.set_code(target, code);
            let mut evm = Evm::new(
                &mut world,
                GasSchedule::frontier(),
                BlockContext::default(),
                TxContext { origin: Address([1u8; 20]), gas_price: U256::ONE },
            );
            let r = evm.call(CallParams {
                caller: Address([1u8; 20]),
                address: target,
                value: U256::ZERO,
                input: Vec::new(),
                gas,
            });
            prop_assert!(r.gas_left <= gas);
        }

        /// Failed frames must leave no trace in the world state.
        #[test]
        fn failed_frames_revert_cleanly(
            code in proptest::collection::vec(any::<u8>(), 1..128),
            gas in 0u64..50_000,
        ) {
            let mut world = WorldState::new();
            let target = Address([7u8; 20]);
            world.set_code(target, code);
            world.commit();
            let root_before = world.state_root();
            let mut evm = Evm::new(
                &mut world,
                GasSchedule::frontier(),
                BlockContext::default(),
                TxContext { origin: Address([1u8; 20]), gas_price: U256::ONE },
            );
            let r = evm.call(CallParams {
                caller: Address([1u8; 20]),
                address: target,
                value: U256::ZERO,
                input: Vec::new(),
                gas,
            });
            if !r.success {
                prop_assert_eq!(world.state_root(), root_before);
            }
        }

        /// Total ether is conserved by arbitrary vault/attacker interactions.
        #[test]
        fn ether_conserved_across_contract_calls(
            deposit in 1u64..10_000,
            budget in 0u64..6,
        ) {
            let mut world = WorldState::new();
            let vault = Address([0xDA; 20]);
            let attacker = Address([0xBA; 20]);
            let eoa = Address([0x66; 20]);
            world.set_code(vault, contracts::vulnerable_vault());
            world.set_code(attacker, contracts::reentrancy_attacker());
            world.set_balance(eoa, U256::from_u64(1_000_000));
            let total_before: U256 = [vault, attacker, eoa]
                .iter()
                .map(|a| world.balance(*a))
                .sum();
            let mut evm = Evm::new(
                &mut world,
                GasSchedule::frontier(),
                BlockContext::default(),
                TxContext { origin: eoa, gas_price: U256::ONE },
            );
            let _ = evm.call(CallParams {
                caller: eoa,
                address: attacker,
                value: U256::from_u64(deposit),
                input: contracts::attacker_setup_calldata(budget, vault),
                gas: 8_000_000,
            });
            let total_after: U256 = [vault, attacker, eoa]
                .iter()
                .map(|a| world.balance(*a))
                .sum();
            prop_assert_eq!(total_before, total_after);
        }
    }
}
