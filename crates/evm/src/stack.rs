//! The 1024-slot EVM operand stack.

use fork_primitives::U256;

use crate::error::VmError;

/// Maximum stack depth mandated by the yellow paper.
pub const STACK_LIMIT: usize = 1024;

/// The operand stack of one call frame.
#[derive(Debug, Default, Clone)]
pub struct Stack {
    items: Vec<U256>,
}

impl Stack {
    /// Empty stack.
    pub fn new() -> Self {
        Stack {
            items: Vec::with_capacity(32),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Pushes a value, enforcing the 1024-slot limit.
    pub fn push(&mut self, v: U256) -> Result<(), VmError> {
        if self.items.len() >= STACK_LIMIT {
            return Err(VmError::StackOverflow);
        }
        self.items.push(v);
        Ok(())
    }

    /// Pops the top value.
    pub fn pop(&mut self) -> Result<U256, VmError> {
        self.items.pop().ok_or(VmError::StackUnderflow)
    }

    /// Pops the top value and narrows it to `usize`, saturating (memory
    /// offsets beyond the cap will fail the memory bound check instead).
    pub fn pop_usize(&mut self) -> Result<usize, VmError> {
        let v = self.pop()?;
        Ok(v.to_u64().map(|x| x as usize).unwrap_or(usize::MAX))
    }

    /// Peeks `depth` items below the top (0 = top).
    pub fn peek(&self, depth: usize) -> Result<U256, VmError> {
        let len = self.items.len();
        if depth >= len {
            return Err(VmError::StackUnderflow);
        }
        Ok(self.items[len - 1 - depth])
    }

    /// DUPn: duplicates the n-th item from the top (1-indexed).
    pub fn dup(&mut self, n: usize) -> Result<(), VmError> {
        let v = self.peek(n - 1)?;
        self.push(v)
    }

    /// SWAPn: swaps the top with the (n+1)-th item (1-indexed n).
    pub fn swap(&mut self, n: usize) -> Result<(), VmError> {
        let len = self.items.len();
        if n >= len {
            return Err(VmError::StackUnderflow);
        }
        self.items.swap(len - 1, len - 1 - n);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    #[test]
    fn push_pop_lifo() {
        let mut s = Stack::new();
        s.push(u(1)).unwrap();
        s.push(u(2)).unwrap();
        assert_eq!(s.pop().unwrap(), u(2));
        assert_eq!(s.pop().unwrap(), u(1));
        assert_eq!(s.pop(), Err(VmError::StackUnderflow));
    }

    #[test]
    fn overflow_at_limit() {
        let mut s = Stack::new();
        for i in 0..STACK_LIMIT {
            s.push(u(i as u64)).unwrap();
        }
        assert_eq!(s.push(u(0)), Err(VmError::StackOverflow));
    }

    #[test]
    fn dup_and_swap() {
        let mut s = Stack::new();
        s.push(u(10)).unwrap();
        s.push(u(20)).unwrap();
        s.dup(2).unwrap(); // stack: 10 20 10
        assert_eq!(s.peek(0).unwrap(), u(10));
        s.swap(2).unwrap(); // stack: 10 10 20 -> swap top with 3rd: 10 20 ... wait
        assert_eq!(s.peek(0).unwrap(), u(10));
        assert_eq!(s.peek(2).unwrap(), u(10));
        assert_eq!(s.peek(1).unwrap(), u(20));
    }

    #[test]
    fn dup_underflow() {
        let mut s = Stack::new();
        s.push(u(1)).unwrap();
        assert_eq!(s.dup(2), Err(VmError::StackUnderflow));
        assert_eq!(s.swap(1), Err(VmError::StackUnderflow));
    }

    #[test]
    fn pop_usize_saturates() {
        let mut s = Stack::new();
        s.push(U256::MAX).unwrap();
        assert_eq!(s.pop_usize().unwrap(), usize::MAX);
        s.push(u(42)).unwrap();
        assert_eq!(s.pop_usize().unwrap(), 42);
    }
}
