//! The bytecode interpreter and transaction-level execution entry point.
//!
//! Semantics target the Homestead EVM (the study period), switchable to the
//! EIP-150 gas schedule: exceptional halts consume the frame's remaining gas
//! and roll its state changes back; value-bearing `CALL`s may recurse
//! arbitrarily up to depth 1024 — which is precisely the behavior the DAO
//! drain exploited and the `dao_drain` integration test reproduces.

use fork_crypto::keccak256;
use fork_primitives::{Address, H256, U256};

use crate::error::VmError;
use crate::gas::GasSchedule;
use crate::memory::Memory;
use crate::opcode::Opcode;
use crate::stack::Stack;
use crate::world::WorldState;

/// Maximum call depth (yellow paper).
pub const CALL_DEPTH_LIMIT: usize = 1024;

/// Block-level execution environment.
#[derive(Debug, Clone, Copy)]
pub struct BlockContext {
    /// Address receiving block rewards and fees.
    pub coinbase: Address,
    /// Block number.
    pub number: u64,
    /// Block timestamp (Unix seconds).
    pub timestamp: u64,
    /// Block difficulty.
    pub difficulty: U256,
    /// Block gas limit.
    pub gas_limit: u64,
}

impl Default for BlockContext {
    fn default() -> Self {
        BlockContext {
            coinbase: Address::ZERO,
            number: 0,
            timestamp: 0,
            difficulty: U256::ZERO,
            gas_limit: 4_700_000,
        }
    }
}

/// Transaction-level environment.
#[derive(Debug, Clone, Copy)]
pub struct TxContext {
    /// The externally-owned account that signed the transaction.
    pub origin: Address,
    /// Gas price in wei.
    pub gas_price: U256,
}

/// A log record emitted by `LOG0..LOG2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log {
    /// Emitting contract.
    pub address: Address,
    /// Indexed topics.
    pub topics: Vec<H256>,
    /// Raw payload.
    pub data: Vec<u8>,
}

/// Parameters of one message call.
#[derive(Debug, Clone)]
pub struct CallParams {
    /// Immediate caller (may be a contract).
    pub caller: Address,
    /// Callee: code owner and storage/balance context.
    pub address: Address,
    /// Wei transferred with the call.
    pub value: U256,
    /// Call data.
    pub input: Vec<u8>,
    /// Gas made available to the frame.
    pub gas: u64,
}

/// Result of one call frame.
#[derive(Debug, Clone)]
pub struct FrameResult {
    /// Whether the frame completed without an exceptional halt.
    pub success: bool,
    /// Gas remaining (zero on failure — pre-Byzantium all-gas-consumed rule).
    pub gas_left: u64,
    /// RETURN data.
    pub output: Vec<u8>,
    /// The halt reason on failure.
    pub error: Option<VmError>,
}

impl FrameResult {
    fn failed(error: VmError) -> Self {
        FrameResult {
            success: false,
            gas_left: 0,
            output: Vec::new(),
            error: Some(error),
        }
    }
}

/// The virtual machine: a world-state reference plus execution context.
pub struct Evm<'w> {
    /// Journaled account state.
    pub world: &'w mut WorldState,
    /// Gas prices in force for this block.
    pub schedule: GasSchedule,
    /// Block environment.
    pub block: BlockContext,
    /// Transaction environment.
    pub tx: TxContext,
    /// Logs accumulated by the current transaction.
    pub logs: Vec<Log>,
    /// SSTORE-clear refund counter.
    pub refund: u64,
    depth: usize,
}

impl<'w> Evm<'w> {
    /// Creates a VM over `world` for one transaction.
    pub fn new(
        world: &'w mut WorldState,
        schedule: GasSchedule,
        block: BlockContext,
        tx: TxContext,
    ) -> Self {
        Evm {
            world,
            schedule,
            block,
            tx,
            logs: Vec::new(),
            refund: 0,
            depth: 0,
        }
    }

    /// Executes a message call: transfers value, runs the callee's code (if
    /// any), and rolls back on failure.
    pub fn call(&mut self, params: CallParams) -> FrameResult {
        if self.depth >= CALL_DEPTH_LIMIT {
            return FrameResult::failed(VmError::CallDepthExceeded);
        }
        let checkpoint = self.world.checkpoint();
        let logs_mark = self.logs.len();

        if !params.value.is_zero()
            && !self
                .world
                .transfer(params.caller, params.address, params.value)
        {
            return FrameResult::failed(VmError::InsufficientBalance);
        }

        let code = self.world.code(params.address).to_vec();
        if code.is_empty() {
            return FrameResult {
                success: true,
                gas_left: params.gas,
                output: Vec::new(),
                error: None,
            };
        }

        self.depth += 1;
        let result = self.run_frame(&params, &code);
        self.depth -= 1;

        if !result.success {
            self.world.rollback_to(checkpoint);
            self.logs.truncate(logs_mark);
        }
        result
    }

    /// Executes `code_owner`'s code in `params`' storage/balance context with
    /// no value transfer — the shared machinery of `CALLCODE` (Frontier) and
    /// `DELEGATECALL` (Homestead, EIP-7). The caller controls which caller /
    /// apparent-value the frame observes via `params`.
    pub fn call_with_code(&mut self, params: CallParams, code_owner: Address) -> FrameResult {
        if self.depth >= CALL_DEPTH_LIMIT {
            return FrameResult::failed(VmError::CallDepthExceeded);
        }
        let checkpoint = self.world.checkpoint();
        let logs_mark = self.logs.len();
        let code = self.world.code(code_owner).to_vec();
        if code.is_empty() {
            return FrameResult {
                success: true,
                gas_left: params.gas,
                output: Vec::new(),
                error: None,
            };
        }
        self.depth += 1;
        let result = self.run_frame(&params, &code);
        self.depth -= 1;
        if !result.success {
            self.world.rollback_to(checkpoint);
            self.logs.truncate(logs_mark);
        }
        result
    }

    /// Executes contract-creation init code and installs the returned
    /// bytecode at a fresh address derived from `(creator, creator_nonce)`.
    pub fn create(
        &mut self,
        creator: Address,
        value: U256,
        init_code: Vec<u8>,
        gas: u64,
    ) -> (FrameResult, Option<Address>) {
        if self.depth >= CALL_DEPTH_LIMIT {
            return (FrameResult::failed(VmError::CallDepthExceeded), None);
        }
        let nonce = self.world.nonce(creator);
        let address = contract_address(creator, nonce);
        let checkpoint = self.world.checkpoint();
        let logs_mark = self.logs.len();

        if !value.is_zero() && !self.world.transfer(creator, address, value) {
            return (FrameResult::failed(VmError::InsufficientBalance), None);
        }
        self.world.bump_nonce(address);

        let params = CallParams {
            caller: creator,
            address,
            value,
            input: Vec::new(),
            gas,
        };
        self.depth += 1;
        let mut result = self.run_frame(&params, &init_code);
        self.depth -= 1;

        if result.success {
            // Charge code-deposit gas: 200 per byte (all schedules).
            let deposit = 200u64.saturating_mul(result.output.len() as u64);
            if deposit > result.gas_left {
                self.world.rollback_to(checkpoint);
                self.logs.truncate(logs_mark);
                return (FrameResult::failed(VmError::OutOfGas), None);
            }
            result.gas_left -= deposit;
            self.world.set_code(address, result.output.clone());
            (result, Some(address))
        } else {
            self.world.rollback_to(checkpoint);
            self.logs.truncate(logs_mark);
            (result, None)
        }
    }

    /// The main dispatch loop for one frame.
    #[allow(clippy::too_many_lines)] // a flat dispatch table reads best
    fn run_frame(&mut self, params: &CallParams, code: &[u8]) -> FrameResult {
        let valid_jumps = jump_destinations(code);
        let mut stack = Stack::new();
        let mut memory = Memory::new();
        let mut gas = params.gas;
        let mut pc = 0usize;

        macro_rules! fail {
            ($e:expr) => {
                return FrameResult::failed($e)
            };
        }
        macro_rules! charge {
            ($amount:expr) => {{
                let amount: u64 = $amount;
                if amount > gas {
                    fail!(VmError::OutOfGas);
                }
                gas -= amount;
            }};
        }
        macro_rules! pop {
            () => {
                match stack.pop() {
                    Ok(v) => v,
                    Err(e) => fail!(e),
                }
            };
        }
        macro_rules! pop_usize {
            () => {
                match stack.pop_usize() {
                    Ok(v) => v,
                    Err(e) => fail!(e),
                }
            };
        }
        macro_rules! push {
            ($v:expr) => {
                if let Err(e) = stack.push($v) {
                    fail!(e);
                }
            };
        }
        macro_rules! expand_memory {
            ($off:expr, $len:expr) => {{
                let words = match Memory::words_for($off, $len) {
                    Ok(w) => w,
                    Err(e) => fail!(e),
                };
                charge!(self.schedule.memory_expansion_gas(memory.words(), words));
                if let Err(e) = memory.expand($off, $len) {
                    fail!(e);
                }
            }};
        }

        let s = self.schedule;
        loop {
            let byte = match code.get(pc) {
                Some(b) => *b,
                None => {
                    // Running off the end of code is an implicit STOP.
                    return FrameResult {
                        success: true,
                        gas_left: gas,
                        output: Vec::new(),
                        error: None,
                    };
                }
            };
            pc += 1;
            crate::telemetry::record_dispatch(byte);

            // PUSH / DUP / SWAP ranges first.
            if (0x60..=0x7F).contains(&byte) {
                charge!(s.very_low);
                let n = (byte - 0x5F) as usize;
                let end = (pc + n).min(code.len());
                let mut buf = [0u8; 32];
                let got = end - pc;
                buf[32 - n..32 - n + got].copy_from_slice(&code[pc..end]);
                // Missing trailing bytes read as zero (yellow paper).
                push!(U256::from_be_slice(&buf).expect("32 bytes"));
                pc += n;
                continue;
            }
            if (0x80..=0x8F).contains(&byte) {
                charge!(s.very_low);
                if let Err(e) = stack.dup((byte - 0x7F) as usize) {
                    fail!(e);
                }
                continue;
            }
            if (0x90..=0x9F).contains(&byte) {
                charge!(s.very_low);
                if let Err(e) = stack.swap((byte - 0x8F) as usize) {
                    fail!(e);
                }
                continue;
            }

            let op = match Opcode::from_byte(byte) {
                Some(op) => op,
                None => fail!(VmError::InvalidOpcode { opcode: byte }),
            };

            match op {
                Opcode::Stop => {
                    return FrameResult {
                        success: true,
                        gas_left: gas,
                        output: Vec::new(),
                        error: None,
                    }
                }
                Opcode::Add => {
                    charge!(s.very_low);
                    let (a, b) = (pop!(), pop!());
                    push!(a.overflowing_add(b).0);
                }
                Opcode::Mul => {
                    charge!(s.low);
                    let (a, b) = (pop!(), pop!());
                    push!(a.overflowing_mul(b).0);
                }
                Opcode::Sub => {
                    charge!(s.very_low);
                    let (a, b) = (pop!(), pop!());
                    push!(a.overflowing_sub(b).0);
                }
                Opcode::Div => {
                    charge!(s.low);
                    let (a, b) = (pop!(), pop!());
                    push!(if b.is_zero() { U256::ZERO } else { a / b });
                }
                Opcode::SDiv => {
                    charge!(s.low);
                    let (a, b) = (pop!(), pop!());
                    push!(a.sdiv(b));
                }
                Opcode::Mod => {
                    charge!(s.low);
                    let (a, b) = (pop!(), pop!());
                    push!(if b.is_zero() { U256::ZERO } else { a % b });
                }
                Opcode::SMod => {
                    charge!(s.low);
                    let (a, b) = (pop!(), pop!());
                    push!(a.smod(b));
                }
                Opcode::AddMod => {
                    charge!(s.mid);
                    let (a, b, m) = (pop!(), pop!(), pop!());
                    push!(a.addmod(b, m));
                }
                Opcode::MulMod => {
                    charge!(s.mid);
                    let (a, b, m) = (pop!(), pop!(), pop!());
                    push!(a.mulmod(b, m));
                }
                Opcode::SignExtend => {
                    charge!(s.low);
                    let (k, x) = (pop!(), pop!());
                    push!(x.sign_extend(k));
                }
                Opcode::Exp => {
                    let (a, b) = (pop!(), pop!());
                    let exp_bytes = (b.bits() as u64).div_ceil(8);
                    charge!(s.exp + s.exp_byte * exp_bytes);
                    let e = b.to_u64().unwrap_or(u64::MAX);
                    push!(a.wrapping_pow(e));
                }
                Opcode::Lt => {
                    charge!(s.very_low);
                    let (a, b) = (pop!(), pop!());
                    push!(U256::from_u64((a < b) as u64));
                }
                Opcode::Gt => {
                    charge!(s.very_low);
                    let (a, b) = (pop!(), pop!());
                    push!(U256::from_u64((a > b) as u64));
                }
                Opcode::Slt => {
                    charge!(s.very_low);
                    let (a, b) = (pop!(), pop!());
                    push!(U256::from_u64(a.slt(&b) as u64));
                }
                Opcode::Sgt => {
                    charge!(s.very_low);
                    let (a, b) = (pop!(), pop!());
                    push!(U256::from_u64(b.slt(&a) as u64));
                }
                Opcode::Eq => {
                    charge!(s.very_low);
                    let (a, b) = (pop!(), pop!());
                    push!(U256::from_u64((a == b) as u64));
                }
                Opcode::IsZero => {
                    charge!(s.very_low);
                    let a = pop!();
                    push!(U256::from_u64(a.is_zero() as u64));
                }
                Opcode::And => {
                    charge!(s.very_low);
                    let (a, b) = (pop!(), pop!());
                    push!(a & b);
                }
                Opcode::Or => {
                    charge!(s.very_low);
                    let (a, b) = (pop!(), pop!());
                    push!(a | b);
                }
                Opcode::Xor => {
                    charge!(s.very_low);
                    let (a, b) = (pop!(), pop!());
                    push!(a ^ b);
                }
                Opcode::Not => {
                    charge!(s.very_low);
                    let a = pop!();
                    push!(!a);
                }
                Opcode::Byte => {
                    charge!(s.very_low);
                    let (i, x) = (pop!(), pop!());
                    let v = match i.to_u64() {
                        Some(idx) if idx < 32 => x.to_be_bytes()[idx as usize] as u64,
                        _ => 0,
                    };
                    push!(U256::from_u64(v));
                }
                Opcode::Sha3 => {
                    let off = pop_usize!();
                    let len = pop_usize!();
                    let words = (len as u64).div_ceil(32);
                    charge!(s.sha3.saturating_add(s.sha3_word.saturating_mul(words)));
                    expand_memory!(off, len);
                    let digest = keccak256(memory.slice(off, len));
                    push!(digest.into_u256());
                }
                Opcode::Address => {
                    charge!(s.base);
                    push!(address_to_u256(params.address));
                }
                Opcode::Balance => {
                    charge!(s.balance);
                    let a = u256_to_address(pop!());
                    push!(self.world.balance(a));
                }
                Opcode::Origin => {
                    charge!(s.base);
                    push!(address_to_u256(self.tx.origin));
                }
                Opcode::Caller => {
                    charge!(s.base);
                    push!(address_to_u256(params.caller));
                }
                Opcode::CallValue => {
                    charge!(s.base);
                    push!(params.value);
                }
                Opcode::CallDataLoad => {
                    charge!(s.very_low);
                    let off = pop_usize!();
                    let mut buf = [0u8; 32];
                    for (i, b) in buf.iter_mut().enumerate() {
                        *b = params
                            .input
                            .get(off.saturating_add(i))
                            .copied()
                            .unwrap_or(0);
                    }
                    push!(U256::from_be_slice(&buf).expect("32 bytes"));
                }
                Opcode::CallDataSize => {
                    charge!(s.base);
                    push!(U256::from_u64(params.input.len() as u64));
                }
                Opcode::CallDataCopy => {
                    let dst = pop_usize!();
                    let src = pop_usize!();
                    let len = pop_usize!();
                    let words = (len as u64).div_ceil(32);
                    charge!(s.very_low.saturating_add(s.copy_word.saturating_mul(words)));
                    expand_memory!(dst, len);
                    let data: Vec<u8> = (0..len)
                        .map(|i| {
                            params
                                .input
                                .get(src.saturating_add(i))
                                .copied()
                                .unwrap_or(0)
                        })
                        .collect();
                    memory.copy_padded(dst, &data, len);
                }
                Opcode::CodeSize => {
                    charge!(s.base);
                    push!(U256::from_u64(code.len() as u64));
                }
                Opcode::GasPrice => {
                    charge!(s.base);
                    push!(self.tx.gas_price);
                }
                Opcode::ExtCodeSize => {
                    charge!(s.extcode);
                    let a = u256_to_address(pop!());
                    push!(U256::from_u64(self.world.code(a).len() as u64));
                }
                Opcode::ExtCodeCopy => {
                    let a = u256_to_address(pop!());
                    let dst = pop_usize!();
                    let src = pop_usize!();
                    let len = pop_usize!();
                    let words = (len as u64).div_ceil(32);
                    charge!(s.extcode.saturating_add(s.copy_word.saturating_mul(words)));
                    expand_memory!(dst, len);
                    let ext = self.world.code(a);
                    let data: Vec<u8> = (0..len)
                        .map(|i| ext.get(src.saturating_add(i)).copied().unwrap_or(0))
                        .collect();
                    memory.copy_padded(dst, &data, len);
                }
                Opcode::Coinbase => {
                    charge!(s.base);
                    push!(address_to_u256(self.block.coinbase));
                }
                Opcode::Timestamp => {
                    charge!(s.base);
                    push!(U256::from_u64(self.block.timestamp));
                }
                Opcode::Number => {
                    charge!(s.base);
                    push!(U256::from_u64(self.block.number));
                }
                Opcode::Difficulty => {
                    charge!(s.base);
                    push!(self.block.difficulty);
                }
                Opcode::GasLimit => {
                    charge!(s.base);
                    push!(U256::from_u64(self.block.gas_limit));
                }
                Opcode::Pop => {
                    charge!(s.base);
                    pop!();
                }
                Opcode::MLoad => {
                    charge!(s.very_low);
                    let off = pop_usize!();
                    expand_memory!(off, 32);
                    push!(memory.load_word(off));
                }
                Opcode::MStore => {
                    charge!(s.very_low);
                    let off = pop_usize!();
                    let v = pop!();
                    expand_memory!(off, 32);
                    memory.store_word(off, v);
                }
                Opcode::MStore8 => {
                    charge!(s.very_low);
                    let off = pop_usize!();
                    let v = pop!();
                    expand_memory!(off, 1);
                    memory.store_byte(off, v.low_u64() as u8);
                }
                Opcode::SLoad => {
                    charge!(s.sload);
                    let key = pop!();
                    push!(self.world.storage(params.address, key));
                }
                Opcode::SStore => {
                    let key = pop!();
                    let value = pop!();
                    let old = self.world.storage(params.address, key);
                    let cost = if old.is_zero() && !value.is_zero() {
                        s.sstore_set
                    } else {
                        s.sstore_reset
                    };
                    charge!(cost);
                    if !old.is_zero() && value.is_zero() {
                        self.refund += s.sstore_clear_refund;
                    }
                    self.world.set_storage(params.address, key, value);
                }
                Opcode::Jump => {
                    charge!(s.high);
                    let dest = pop_usize!();
                    if !valid_jumps.get(dest).copied().unwrap_or(false) {
                        fail!(VmError::BadJumpDestination { dest });
                    }
                    pc = dest;
                }
                Opcode::JumpI => {
                    charge!(s.mid);
                    let dest = pop_usize!();
                    let cond = pop!();
                    if !cond.is_zero() {
                        if !valid_jumps.get(dest).copied().unwrap_or(false) {
                            fail!(VmError::BadJumpDestination { dest });
                        }
                        pc = dest;
                    }
                }
                Opcode::Pc => {
                    charge!(s.base);
                    push!(U256::from_u64((pc - 1) as u64));
                }
                Opcode::MSize => {
                    charge!(s.base);
                    push!(U256::from_u64(memory.len() as u64));
                }
                Opcode::Gas => {
                    charge!(s.base);
                    push!(U256::from_u64(gas));
                }
                Opcode::JumpDest => {
                    charge!(1);
                }
                Opcode::Log0 | Opcode::Log1 | Opcode::Log2 | Opcode::Log3 | Opcode::Log4 => {
                    let topic_count = (byte - 0xA0) as usize;
                    let off = pop_usize!();
                    let len = pop_usize!();
                    let mut topics = Vec::with_capacity(topic_count);
                    for _ in 0..topic_count {
                        topics.push(H256::from_u256(pop!()));
                    }
                    charge!(s
                        .log
                        .saturating_add(s.log_topic.saturating_mul(topic_count as u64))
                        .saturating_add(s.log_data.saturating_mul(len as u64)));
                    expand_memory!(off, len);
                    self.logs.push(Log {
                        address: params.address,
                        topics,
                        data: memory.slice(off, len).to_vec(),
                    });
                }
                Opcode::Create => {
                    charge!(s.create);
                    let value = pop!();
                    let off = pop_usize!();
                    let len = pop_usize!();
                    expand_memory!(off, len);
                    let init = memory.slice(off, len).to_vec();
                    let forwarded = s.callable_gas(gas, gas);
                    let (result, addr) = self.create(params.address, value, init, forwarded);
                    gas -= forwarded - result.gas_left;
                    match addr {
                        Some(a) => push!(address_to_u256(a)),
                        None => push!(U256::ZERO),
                    }
                }
                Opcode::Call => {
                    let requested = pop!();
                    let to = u256_to_address(pop!());
                    let value = pop!();
                    let in_off = pop_usize!();
                    let in_len = pop_usize!();
                    let out_off = pop_usize!();
                    let out_len = pop_usize!();

                    let mut upfront = s.call;
                    if !value.is_zero() {
                        upfront += s.call_value;
                    }
                    charge!(upfront);
                    expand_memory!(in_off, in_len);
                    expand_memory!(out_off, out_len);

                    let requested = requested.to_u64().unwrap_or(u64::MAX);
                    let mut forwarded = s.callable_gas(gas, requested.min(gas));
                    charge!(forwarded);
                    if !value.is_zero() {
                        // The stipend is free extra gas for the callee.
                        forwarded += s.call_stipend;
                    }

                    let input = memory.slice(in_off, in_len).to_vec();
                    let result = self.call(CallParams {
                        caller: params.address,
                        address: to,
                        value,
                        input,
                        gas: forwarded,
                    });
                    // The callee's leftover gas (including any unused stipend)
                    // returns to this frame — matching geth's accounting.
                    gas += result.gas_left;
                    let n = result.output.len().min(out_len);
                    if n > 0 {
                        memory.copy_padded(out_off, &result.output[..n], n);
                    }
                    push!(U256::from_u64(result.success as u64));
                }
                Opcode::CallCode => {
                    // Like CALL, but the callee's code runs with THIS
                    // contract's storage and balance.
                    let requested = pop!();
                    let to = u256_to_address(pop!());
                    let value = pop!();
                    let in_off = pop_usize!();
                    let in_len = pop_usize!();
                    let out_off = pop_usize!();
                    let out_len = pop_usize!();
                    let mut upfront = s.call;
                    if !value.is_zero() {
                        upfront += s.call_value;
                    }
                    charge!(upfront);
                    expand_memory!(in_off, in_len);
                    expand_memory!(out_off, out_len);
                    let requested = requested.to_u64().unwrap_or(u64::MAX);
                    let mut forwarded = s.callable_gas(gas, requested.min(gas));
                    charge!(forwarded);
                    if !value.is_zero() {
                        forwarded += s.call_stipend;
                    }
                    let input = memory.slice(in_off, in_len).to_vec();
                    let result = self.call_with_code(
                        CallParams {
                            caller: params.address,
                            address: params.address,
                            value,
                            input,
                            gas: forwarded,
                        },
                        to,
                    );
                    gas += result.gas_left;
                    let n = result.output.len().min(out_len);
                    if n > 0 {
                        memory.copy_padded(out_off, &result.output[..n], n);
                    }
                    push!(U256::from_u64(result.success as u64));
                }
                Opcode::DelegateCall => {
                    // Homestead's EIP-7: callee code, this context, AND the
                    // parent frame's caller/value pass through unchanged.
                    let requested = pop!();
                    let to = u256_to_address(pop!());
                    let in_off = pop_usize!();
                    let in_len = pop_usize!();
                    let out_off = pop_usize!();
                    let out_len = pop_usize!();
                    charge!(s.call);
                    expand_memory!(in_off, in_len);
                    expand_memory!(out_off, out_len);
                    let requested = requested.to_u64().unwrap_or(u64::MAX);
                    let forwarded = s.callable_gas(gas, requested.min(gas));
                    charge!(forwarded);
                    let input = memory.slice(in_off, in_len).to_vec();
                    let result = self.call_with_code(
                        CallParams {
                            caller: params.caller,
                            address: params.address,
                            value: params.value,
                            input,
                            gas: forwarded,
                        },
                        to,
                    );
                    gas += result.gas_left;
                    let n = result.output.len().min(out_len);
                    if n > 0 {
                        memory.copy_padded(out_off, &result.output[..n], n);
                    }
                    push!(U256::from_u64(result.success as u64));
                }
                Opcode::Return => {
                    charge!(s.base);
                    let off = pop_usize!();
                    let len = pop_usize!();
                    expand_memory!(off, len);
                    return FrameResult {
                        success: true,
                        gas_left: gas,
                        output: memory.slice(off, len).to_vec(),
                        error: None,
                    };
                }
                Opcode::SelfDestruct => {
                    charge!(s.base);
                    let heir = u256_to_address(pop!());
                    let balance = self.world.balance(params.address);
                    self.world.destroy(params.address);
                    self.world.credit(heir, balance);
                    return FrameResult {
                        success: true,
                        gas_left: gas,
                        output: Vec::new(),
                        error: None,
                    };
                }
            }
        }
    }
}

/// Computes the set of valid JUMPDEST positions, skipping PUSH payloads.
fn jump_destinations(code: &[u8]) -> Vec<bool> {
    let mut valid = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        let b = code[i];
        if b == Opcode::JumpDest as u8 {
            valid[i] = true;
        }
        if (0x60..=0x7F).contains(&b) {
            i += (b - 0x5F) as usize;
        }
        i += 1;
    }
    valid
}

/// Widens an address into the low 20 bytes of a word.
pub fn address_to_u256(a: Address) -> U256 {
    U256::from_be_slice(a.as_bytes()).expect("20 bytes fit")
}

/// Truncates a word to its low 20 bytes as an address.
pub fn u256_to_address(v: U256) -> Address {
    let bytes = v.to_be_bytes();
    let mut out = [0u8; 20];
    out.copy_from_slice(&bytes[12..]);
    Address(out)
}

/// The CREATE address scheme: `keccak(rlp([sender, nonce]))[12..]`.
pub fn contract_address(creator: Address, nonce: u64) -> Address {
    let rlp = fork_rlp::encode_list(|s| {
        s.append_bytes(creator.as_bytes());
        s.append_u64(nonce);
    });
    Address::from_hash(keccak256(&rlp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Assembler;

    fn addr(n: u8) -> Address {
        Address([n; 20])
    }

    fn run(code: Vec<u8>, gas: u64) -> (FrameResult, WorldState) {
        run_with(code, gas, |_| {})
    }

    fn run_with(
        code: Vec<u8>,
        gas: u64,
        setup: impl FnOnce(&mut WorldState),
    ) -> (FrameResult, WorldState) {
        let mut world = WorldState::new();
        world.set_code(addr(0xCC), code);
        setup(&mut world);
        let mut evm = Evm::new(
            &mut world,
            GasSchedule::frontier(),
            BlockContext::default(),
            TxContext {
                origin: addr(0xEE),
                gas_price: U256::ONE,
            },
        );
        let r = evm.call(CallParams {
            caller: addr(0xEE),
            address: addr(0xCC),
            value: U256::ZERO,
            input: Vec::new(),
            gas,
        });
        (r, world)
    }

    /// RETURN the top-of-stack word: MSTORE at 0, RETURN 32 bytes.
    fn return_top(asm: Assembler) -> Vec<u8> {
        asm.push(0)
            .op(Opcode::MStore)
            .push(32)
            .push(0)
            .op(Opcode::Return)
            .build()
    }

    fn returned_word(r: &FrameResult) -> U256 {
        assert!(r.success, "frame failed: {:?}", r.error);
        U256::from_be_slice(&r.output).unwrap()
    }

    #[test]
    fn arithmetic_add() {
        let code = return_top(Assembler::new().push(2).push(40).op(Opcode::Add));
        let (r, _) = run(code, 100_000);
        assert_eq!(returned_word(&r), U256::from_u64(42));
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let code = return_top(Assembler::new().push(0).push(7).op(Opcode::Div));
        let (r, _) = run(code, 100_000);
        assert_eq!(returned_word(&r), U256::ZERO);
    }

    #[test]
    fn exp_and_comparison() {
        // 2^10 = 1024; 1024 > 1000 -> 1
        let code = return_top(
            Assembler::new()
                .push(10)
                .push(2)
                .op(Opcode::Exp)
                .push(1000)
                .swap(1)
                .op(Opcode::Gt),
        );
        let (r, _) = run(code, 100_000);
        assert_eq!(returned_word(&r), U256::ONE);
    }

    #[test]
    fn storage_roundtrip() {
        let code = Assembler::new()
            .push(0xAB) // value
            .push(0x01) // key
            .op(Opcode::SStore)
            .build();
        let (r, w) = run(code, 100_000);
        assert!(r.success);
        assert_eq!(w.storage(addr(0xCC), U256::ONE), U256::from_u64(0xAB));
    }

    #[test]
    fn sload_reads_back() {
        let store_then_load = return_top(
            Assembler::new()
                .push(0xAB)
                .push(0x01)
                .op(Opcode::SStore)
                .push(0x01)
                .op(Opcode::SLoad),
        );
        let (r, _) = run(store_then_load, 100_000);
        assert_eq!(returned_word(&r), U256::from_u64(0xAB));
    }

    #[test]
    fn out_of_gas_consumes_everything_and_reverts() {
        let code = Assembler::new()
            .push(0xAB)
            .push(0x01)
            .op(Opcode::SStore) // needs 20k; we give less
            .build();
        let (r, w) = run(code, 1_000);
        assert!(!r.success);
        assert_eq!(r.error, Some(VmError::OutOfGas));
        assert_eq!(r.gas_left, 0);
        assert_eq!(w.storage(addr(0xCC), U256::ONE), U256::ZERO);
    }

    #[test]
    fn bad_jump_fails() {
        let code = Assembler::new().push(3).op(Opcode::Jump).build();
        let (r, _) = run(code, 100_000);
        assert_eq!(r.error, Some(VmError::BadJumpDestination { dest: 3 }));
    }

    #[test]
    fn jump_into_push_data_rejected() {
        // PUSH2 0x5B5B; JUMPDEST bytes inside push data are not valid targets.
        let code = Assembler::new()
            .raw(0x61) // PUSH2
            .raw(0x5B)
            .raw(0x5B)
            .push(1) // destination: offset 1 is inside the push payload
            .op(Opcode::Jump)
            .build();
        let (r, _) = run(code, 100_000);
        assert!(matches!(r.error, Some(VmError::BadJumpDestination { .. })));
    }

    #[test]
    fn valid_jump_loops() {
        // Count down from 3: [JUMPDEST] push 1 sub dup iszero-not -> jumpi
        // Simpler: jump forward over an invalid opcode.
        let mut asm = Assembler::new().push(4).op(Opcode::Jump); // jump to offset 4
        assert_eq!(asm.len(), 3);
        asm = asm.raw(0xFE); // invalid, skipped
        asm = asm.op(Opcode::JumpDest); // offset 4
        let code = return_top(asm.push(7));
        let (r, _) = run(code, 100_000);
        assert_eq!(returned_word(&r), U256::from_u64(7));
    }

    #[test]
    fn environment_opcodes() {
        let code = return_top(Assembler::new().op(Opcode::Number));
        let mut world = WorldState::new();
        world.set_code(addr(0xCC), code);
        let mut evm = Evm::new(
            &mut world,
            GasSchedule::frontier(),
            BlockContext {
                number: 1_920_000,
                ..BlockContext::default()
            },
            TxContext {
                origin: addr(0xEE),
                gas_price: U256::ONE,
            },
        );
        let r = evm.call(CallParams {
            caller: addr(0xEE),
            address: addr(0xCC),
            value: U256::ZERO,
            input: Vec::new(),
            gas: 100_000,
        });
        assert_eq!(returned_word(&r), U256::from_u64(1_920_000));
    }

    #[test]
    fn calldata_load() {
        let code = return_top(Assembler::new().push(0).op(Opcode::CallDataLoad));
        let mut world = WorldState::new();
        world.set_code(addr(0xCC), code);
        let mut evm = Evm::new(
            &mut world,
            GasSchedule::frontier(),
            BlockContext::default(),
            TxContext {
                origin: addr(0xEE),
                gas_price: U256::ONE,
            },
        );
        let mut input = vec![0u8; 32];
        input[31] = 99;
        let r = evm.call(CallParams {
            caller: addr(0xEE),
            address: addr(0xCC),
            value: U256::ZERO,
            input,
            gas: 100_000,
        });
        assert_eq!(returned_word(&r), U256::from_u64(99));
    }

    #[test]
    fn value_transfer_to_eoa() {
        let mut world = WorldState::new();
        world.set_balance(addr(1), U256::from_u64(100));
        let mut evm = Evm::new(
            &mut world,
            GasSchedule::frontier(),
            BlockContext::default(),
            TxContext {
                origin: addr(1),
                gas_price: U256::ONE,
            },
        );
        let r = evm.call(CallParams {
            caller: addr(1),
            address: addr(2),
            value: U256::from_u64(40),
            input: Vec::new(),
            gas: 0,
        });
        assert!(r.success);
        assert_eq!(world.balance(addr(2)), U256::from_u64(40));
    }

    #[test]
    fn nested_call_and_revert_on_failure() {
        // Callee: SSTORE then run an invalid opcode -> fails, state reverts.
        let callee = Assembler::new()
            .push(1)
            .push(1)
            .op(Opcode::SStore)
            .raw(0xFE) // invalid opcode
            .build();
        // Caller: CALL(gas=50000, to=0xDD, value=0, ...) then store the
        // success flag at slot 0.
        let caller = Assembler::new()
            .push(0) // out len
            .push(0) // out off
            .push(0) // in len
            .push(0) // in off
            .push(0) // value
            .push_address(addr(0xDD))
            .push(50_000) // gas
            .op(Opcode::Call)
            .push(0)
            .op(Opcode::SStore)
            .build();
        let (r, w) = run_with(caller, 200_000, |w| {
            w.set_code(addr(0xDD), callee);
        });
        assert!(r.success);
        // Callee failed -> its storage write rolled back, flag is 0.
        assert_eq!(w.storage(addr(0xDD), U256::ONE), U256::ZERO);
        assert_eq!(w.storage(addr(0xCC), U256::ZERO), U256::ZERO);
    }

    #[test]
    fn nested_call_success_persists() {
        let callee = Assembler::new().push(7).push(1).op(Opcode::SStore).build();
        let caller = Assembler::new()
            .push(0)
            .push(0)
            .push(0)
            .push(0)
            .push(0)
            .push_address(addr(0xDD))
            .push(50_000)
            .op(Opcode::Call)
            .push(0)
            .op(Opcode::SStore)
            .build();
        let (r, w) = run_with(caller, 200_000, |w| {
            w.set_code(addr(0xDD), callee);
        });
        assert!(r.success);
        assert_eq!(w.storage(addr(0xDD), U256::ONE), U256::from_u64(7));
        assert_eq!(w.storage(addr(0xCC), U256::ZERO), U256::ONE);
    }

    #[test]
    fn logs_emitted_and_rolled_back_with_frame() {
        let logger = Assembler::new().push(0).push(0).op(Opcode::Log0).build();
        let (r, _) = run(logger, 100_000);
        assert!(r.success);

        // Failing frame: log then invalid opcode -> log must vanish.
        let failing = Assembler::new()
            .push(0)
            .push(0)
            .op(Opcode::Log0)
            .raw(0xFE)
            .build();
        let mut world = WorldState::new();
        world.set_code(addr(0xCC), failing);
        let mut evm = Evm::new(
            &mut world,
            GasSchedule::frontier(),
            BlockContext::default(),
            TxContext {
                origin: addr(0xEE),
                gas_price: U256::ONE,
            },
        );
        let r = evm.call(CallParams {
            caller: addr(0xEE),
            address: addr(0xCC),
            value: U256::ZERO,
            input: Vec::new(),
            gas: 100_000,
        });
        assert!(!r.success);
        assert!(evm.logs.is_empty());
    }

    #[test]
    fn sha3_opcode_matches_keccak() {
        // keccak of 32 zero bytes.
        let code = return_top(Assembler::new().push(32).push(0).op(Opcode::Sha3));
        let (r, _) = run(code, 100_000);
        let expect = keccak256(&[0u8; 32]).into_u256();
        assert_eq!(returned_word(&r), expect);
    }

    #[test]
    fn create_deploys_code() {
        // Init code returns 2 bytes of runtime code [0x60, 0x00] (PUSH1 0).
        let init = Assembler::new()
            .push(0x6000) // the two bytes
            .push(0)
            .op(Opcode::MStore) // at mem[0..32], bytes are at offset 30..32
            .push(2)
            .push(30)
            .op(Opcode::Return)
            .build();
        let mut world = WorldState::new();
        world.set_balance(addr(1), U256::from_u64(0));
        let mut evm = Evm::new(
            &mut world,
            GasSchedule::frontier(),
            BlockContext::default(),
            TxContext {
                origin: addr(1),
                gas_price: U256::ONE,
            },
        );
        let (r, created) = evm.create(addr(1), U256::ZERO, init, 200_000);
        assert!(r.success, "{:?}", r.error);
        let created = created.unwrap();
        assert_eq!(world.code(created), &[0x60, 0x00]);
        assert_eq!(created, contract_address(addr(1), 0));
    }

    #[test]
    fn selfdestruct_moves_balance() {
        let code = Assembler::new()
            .push_address(addr(0x99))
            .op(Opcode::SelfDestruct)
            .build();
        let (r, w) = run_with(code, 100_000, |w| {
            w.set_balance(addr(0xCC), U256::from_u64(500));
        });
        assert!(r.success);
        assert!(!w.exists(addr(0xCC)));
        assert_eq!(w.balance(addr(0x99)), U256::from_u64(500));
    }

    #[test]
    fn call_depth_limit_enforced() {
        let mut world = WorldState::new();
        let mut evm = Evm::new(
            &mut world,
            GasSchedule::frontier(),
            BlockContext::default(),
            TxContext {
                origin: addr(1),
                gas_price: U256::ONE,
            },
        );
        evm.depth = CALL_DEPTH_LIMIT;
        let r = evm.call(CallParams {
            caller: addr(1),
            address: addr(2),
            value: U256::ZERO,
            input: Vec::new(),
            gas: 1000,
        });
        assert_eq!(r.error, Some(VmError::CallDepthExceeded));
    }

    #[test]
    fn push_truncated_at_code_end_reads_zero() {
        // PUSH32 with only 1 byte of payload available.
        let code = vec![0x7F, 0xAA];
        let (r, _) = run(code, 100_000);
        // Implicit stop after push; success with empty output.
        assert!(r.success);
    }

    #[test]
    fn signed_arithmetic_opcodes() {
        // -8 / 2 = -4 via SDIV: push -8 as NOT(7).
        let code = return_top(
            Assembler::new()
                .push(2)
                .push(7)
                .op(Opcode::Not) // -8
                .op(Opcode::SDiv),
        );
        let (r, _) = run(code, 100_000);
        assert_eq!(returned_word(&r), U256::from_u64(4).wrapping_neg());

        // SLT: -1 < 1 -> 1.
        let code = return_top(
            Assembler::new()
                .push(1)
                .push(0)
                .op(Opcode::Not) // -1
                .op(Opcode::Slt),
        );
        let (r, _) = run(code, 100_000);
        assert_eq!(returned_word(&r), U256::ONE);

        // ADDMOD(10, 10, 8) = 4. Stack: pops a, b, m.
        let code = return_top(
            Assembler::new()
                .push(8)
                .push(10)
                .push(10)
                .op(Opcode::AddMod),
        );
        let (r, _) = run(code, 100_000);
        assert_eq!(returned_word(&r), U256::from_u64(4));

        // MULMOD(7, 5, 4) = 3.
        let code = return_top(Assembler::new().push(4).push(5).push(7).op(Opcode::MulMod));
        let (r, _) = run(code, 100_000);
        assert_eq!(returned_word(&r), U256::from_u64(3));

        // SIGNEXTEND(0, 0xFF) = -1.
        let code = return_top(Assembler::new().push(0xFF).push(0).op(Opcode::SignExtend));
        let (r, _) = run(code, 100_000);
        assert_eq!(returned_word(&r), U256::MAX);
    }

    #[test]
    fn extcode_opcodes() {
        // EXTCODESIZE of a contract with 3 bytes of code.
        let code = return_top(
            Assembler::new()
                .push_address(addr(0xDD))
                .op(Opcode::ExtCodeSize),
        );
        let (r, _) = run_with(code, 100_000, |w| {
            w.set_code(addr(0xDD), vec![1, 2, 3]);
        });
        assert_eq!(returned_word(&r), U256::from_u64(3));

        // EXTCODECOPY: copy the 3 bytes to memory and return the word.
        let code = Assembler::new()
            .push(32) // len (zero-padded past the code end)
            .push(0) // src
            .push(0) // dst
            .push_address(addr(0xDD))
            .op(Opcode::ExtCodeCopy)
            .push(32)
            .push(0)
            .op(Opcode::Return)
            .build();
        let (r, _) = run_with(code, 100_000, |w| {
            w.set_code(addr(0xDD), vec![0xAA, 0xBB, 0xCC]);
        });
        assert!(r.success);
        assert_eq!(r.output[..3], [0xAA, 0xBB, 0xCC]);
        assert!(r.output[3..].iter().all(|&b| b == 0));
    }

    #[test]
    fn delegatecall_runs_callee_code_in_caller_context() {
        // Library at 0xDD writes 7 into slot 1 (of whoever runs it).
        let library = Assembler::new().push(7).push(1).op(Opcode::SStore).build();
        // Caller delegate-calls the library.
        let caller = Assembler::new()
            .push(0) // out len
            .push(0) // out off
            .push(0) // in len
            .push(0) // in off
            .push_address(addr(0xDD))
            .push(60_000) // gas
            .op(Opcode::DelegateCall)
            .push(0)
            .op(Opcode::SStore) // store success flag at slot 0
            .build();
        let (r, w) = run_with(caller, 200_000, |w| {
            w.set_code(addr(0xDD), library);
        });
        assert!(r.success);
        // The write landed in the CALLER's storage, not the library's.
        assert_eq!(w.storage(addr(0xCC), U256::ONE), U256::from_u64(7));
        assert_eq!(w.storage(addr(0xDD), U256::ONE), U256::ZERO);
        assert_eq!(w.storage(addr(0xCC), U256::ZERO), U256::ONE);
    }

    #[test]
    fn delegatecall_preserves_caller_identity() {
        // Library stores CALLER into slot 2; under DELEGATECALL the observed
        // caller is the ORIGINAL caller (0xEE), not the delegating contract.
        let library = Assembler::new()
            .op(Opcode::Caller)
            .push(2)
            .op(Opcode::SStore)
            .build();
        let caller = Assembler::new()
            .push(0)
            .push(0)
            .push(0)
            .push(0)
            .push_address(addr(0xDD))
            .push(60_000)
            .op(Opcode::DelegateCall)
            .op(Opcode::Pop)
            .build();
        let (r, w) = run_with(caller, 200_000, |w| {
            w.set_code(addr(0xDD), library);
        });
        assert!(r.success);
        let stored = w.storage(addr(0xCC), U256::from_u64(2));
        assert_eq!(u256_to_address(stored), addr(0xEE));
    }

    #[test]
    fn callcode_uses_own_storage_but_self_as_caller() {
        // Library stores CALLER into slot 3. Under CALLCODE the caller is
        // the invoking contract itself.
        let library = Assembler::new()
            .op(Opcode::Caller)
            .push(3)
            .op(Opcode::SStore)
            .build();
        let caller = Assembler::new()
            .push(0)
            .push(0)
            .push(0)
            .push(0)
            .push(0) // value
            .push_address(addr(0xDD))
            .push(60_000)
            .op(Opcode::CallCode)
            .op(Opcode::Pop)
            .build();
        let (r, w) = run_with(caller, 200_000, |w| {
            w.set_code(addr(0xDD), library);
        });
        assert!(r.success);
        let stored = w.storage(addr(0xCC), U256::from_u64(3));
        assert_eq!(u256_to_address(stored), addr(0xCC));
        assert_eq!(w.storage(addr(0xDD), U256::from_u64(3)), U256::ZERO);
    }

    #[test]
    fn log3_log4_topics() {
        let code = Assembler::new()
            .push(4)
            .push(3)
            .push(2)
            .push(1)
            .push(0) // len
            .push(0) // off
            .op(Opcode::Log4)
            .build();
        let mut world = WorldState::new();
        world.set_code(addr(0xCC), code);
        let mut evm = Evm::new(
            &mut world,
            GasSchedule::frontier(),
            BlockContext::default(),
            TxContext {
                origin: addr(0xEE),
                gas_price: U256::ONE,
            },
        );
        let r = evm.call(CallParams {
            caller: addr(0xEE),
            address: addr(0xCC),
            value: U256::ZERO,
            input: Vec::new(),
            gas: 100_000,
        });
        assert!(r.success, "{:?}", r.error);
        assert_eq!(evm.logs.len(), 1);
        let topics: Vec<u64> = evm.logs[0]
            .topics
            .iter()
            .map(|t| t.into_u256().low_u64())
            .collect();
        assert_eq!(topics, vec![1, 2, 3, 4]);
    }

    #[test]
    fn address_word_roundtrip() {
        let a = addr(0x42);
        assert_eq!(u256_to_address(address_to_u256(a)), a);
    }

    #[test]
    fn eip150_makes_sload_dearer() {
        let code = Assembler::new()
            .push(1)
            .op(Opcode::SLoad)
            .op(Opcode::Pop)
            .build();
        let run_with_schedule = |schedule: GasSchedule| {
            let mut world = WorldState::new();
            world.set_code(addr(0xCC), code.clone());
            let mut evm = Evm::new(
                &mut world,
                schedule,
                BlockContext::default(),
                TxContext {
                    origin: addr(0xEE),
                    gas_price: U256::ONE,
                },
            );
            let r = evm.call(CallParams {
                caller: addr(0xEE),
                address: addr(0xCC),
                value: U256::ZERO,
                input: Vec::new(),
                gas: 10_000,
            });
            10_000 - r.gas_left
        };
        let frontier = run_with_schedule(GasSchedule::frontier());
        let tangerine = run_with_schedule(GasSchedule::eip150());
        assert_eq!(tangerine - frontier, 150); // SLOAD 50 -> 200
    }
}
