//! Opcode definitions for the simulated EVM.
//!
//! The subset covers everything the study's workloads execute: arithmetic,
//! comparison, Keccak, environment access, storage, memory, control flow,
//! logging, calls (including value-bearing reentrant calls — the DAO drain),
//! and contract self-balance movement.

/// EVM opcodes (byte values match the real instruction set so disassembly of
/// real fragments lines up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs)] // names match the yellow paper mnemonics
pub enum Opcode {
    Stop = 0x00,
    Add = 0x01,
    Mul = 0x02,
    Sub = 0x03,
    Div = 0x04,
    SDiv = 0x05,
    Mod = 0x06,
    SMod = 0x07,
    AddMod = 0x08,
    MulMod = 0x09,
    Exp = 0x0A,
    SignExtend = 0x0B,
    Lt = 0x10,
    Gt = 0x11,
    Slt = 0x12,
    Sgt = 0x13,
    Eq = 0x14,
    IsZero = 0x15,
    And = 0x16,
    Or = 0x17,
    Xor = 0x18,
    Not = 0x19,
    Byte = 0x1A,
    Sha3 = 0x20,
    Address = 0x30,
    Balance = 0x31,
    Origin = 0x32,
    Caller = 0x33,
    CallValue = 0x34,
    CallDataLoad = 0x35,
    CallDataSize = 0x36,
    CallDataCopy = 0x37,
    CodeSize = 0x38,
    GasPrice = 0x3A,
    ExtCodeSize = 0x3B,
    ExtCodeCopy = 0x3C,
    Coinbase = 0x41,
    Timestamp = 0x42,
    Number = 0x43,
    Difficulty = 0x44,
    GasLimit = 0x45,
    Pop = 0x50,
    MLoad = 0x51,
    MStore = 0x52,
    MStore8 = 0x53,
    SLoad = 0x54,
    SStore = 0x55,
    Jump = 0x56,
    JumpI = 0x57,
    Pc = 0x58,
    MSize = 0x59,
    Gas = 0x5A,
    JumpDest = 0x5B,
    // PUSH1..PUSH32 are 0x60..=0x7F, DUP1..DUP16 are 0x80..=0x8F,
    // SWAP1..SWAP16 are 0x90..=0x9F; handled numerically by the interpreter.
    Log0 = 0xA0,
    Log1 = 0xA1,
    Log2 = 0xA2,
    Log3 = 0xA3,
    Log4 = 0xA4,
    Create = 0xF0,
    Call = 0xF1,
    CallCode = 0xF2,
    Return = 0xF3,
    DelegateCall = 0xF4,
    SelfDestruct = 0xFF,
}

impl Opcode {
    /// Decodes a byte into a structured opcode, if it is one of the
    /// non-parameterized instructions (PUSH/DUP/SWAP are ranges and decoded
    /// inline by the interpreter).
    pub fn from_byte(b: u8) -> Option<Opcode> {
        use Opcode::*;
        Some(match b {
            0x00 => Stop,
            0x01 => Add,
            0x02 => Mul,
            0x03 => Sub,
            0x04 => Div,
            0x05 => SDiv,
            0x06 => Mod,
            0x07 => SMod,
            0x08 => AddMod,
            0x09 => MulMod,
            0x0A => Exp,
            0x0B => SignExtend,
            0x10 => Lt,
            0x11 => Gt,
            0x12 => Slt,
            0x13 => Sgt,
            0x14 => Eq,
            0x15 => IsZero,
            0x16 => And,
            0x17 => Or,
            0x18 => Xor,
            0x19 => Not,
            0x1A => Byte,
            0x20 => Sha3,
            0x30 => Address,
            0x31 => Balance,
            0x32 => Origin,
            0x33 => Caller,
            0x34 => CallValue,
            0x35 => CallDataLoad,
            0x36 => CallDataSize,
            0x37 => CallDataCopy,
            0x38 => CodeSize,
            0x3A => GasPrice,
            0x3B => ExtCodeSize,
            0x3C => ExtCodeCopy,
            0x41 => Coinbase,
            0x42 => Timestamp,
            0x43 => Number,
            0x44 => Difficulty,
            0x45 => GasLimit,
            0x50 => Pop,
            0x51 => MLoad,
            0x52 => MStore,
            0x53 => MStore8,
            0x54 => SLoad,
            0x55 => SStore,
            0x56 => Jump,
            0x57 => JumpI,
            0x58 => Pc,
            0x59 => MSize,
            0x5A => Gas,
            0x5B => JumpDest,
            0xA0 => Log0,
            0xA1 => Log1,
            0xA2 => Log2,
            0xA3 => Log3,
            0xA4 => Log4,
            0xF0 => Create,
            0xF1 => Call,
            0xF2 => CallCode,
            0xF3 => Return,
            0xF4 => DelegateCall,
            0xFF => SelfDestruct,
            _ => return None,
        })
    }
}

/// Coarse instruction families used by the telemetry dispatch counters.
///
/// Classification works on the *raw byte* (not [`Opcode`]) so the PUSH /
/// DUP / SWAP ranges — which the interpreter handles numerically and which
/// have no enum variant — are still attributed, and undefined bytes land in
/// [`OpClass::Other`] rather than being dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// ADD..SIGNEXTEND (0x01–0x0B).
    Arithmetic,
    /// LT..SAR comparisons and bitwise ops (0x10–0x1A).
    Compare,
    /// KECCAK256 (0x20).
    Keccak,
    /// Caller/call-data/code/balance environment reads (0x30–0x3C).
    Environment,
    /// Block header accessors (0x41–0x45).
    Block,
    /// Stack and memory shuffling: POP/MLOAD/MSTORE(8), PC/MSIZE/GAS/
    /// JUMPDEST, and the PUSH/DUP/SWAP ranges (0x50–0x53, 0x58–0x5B,
    /// 0x60–0x9F).
    StackMem,
    /// SLOAD/SSTORE (0x54–0x55).
    Storage,
    /// STOP, JUMP/JUMPI, RETURN (0x00, 0x56–0x57, 0xF3).
    ControlFlow,
    /// LOG0..LOG4 (0xA0–0xA4).
    Logging,
    /// CREATE and the call family plus SELFDESTRUCT (0xF0–0xF2, 0xF4, 0xFF).
    CallCreate,
    /// Anything not covered above (undefined / invalid bytes).
    Other,
}

impl OpClass {
    /// Every class, in the order used for counters and reports.
    pub const ALL: [OpClass; 11] = [
        OpClass::Arithmetic,
        OpClass::Compare,
        OpClass::Keccak,
        OpClass::Environment,
        OpClass::Block,
        OpClass::StackMem,
        OpClass::Storage,
        OpClass::ControlFlow,
        OpClass::Logging,
        OpClass::CallCreate,
        OpClass::Other,
    ];

    /// Stable lowercase name (used as the metric-name suffix).
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Arithmetic => "arithmetic",
            OpClass::Compare => "compare",
            OpClass::Keccak => "keccak",
            OpClass::Environment => "environment",
            OpClass::Block => "block",
            OpClass::StackMem => "stack_mem",
            OpClass::Storage => "storage",
            OpClass::ControlFlow => "control_flow",
            OpClass::Logging => "logging",
            OpClass::CallCreate => "call_create",
            OpClass::Other => "other",
        }
    }

    /// Index into [`OpClass::ALL`] (and the telemetry counter table).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Classifies a raw code byte.
    #[inline]
    pub fn classify(byte: u8) -> OpClass {
        match byte {
            0x00 | 0x56 | 0x57 | 0xF3 => OpClass::ControlFlow,
            0x01..=0x0B => OpClass::Arithmetic,
            0x10..=0x1A => OpClass::Compare,
            0x20 => OpClass::Keccak,
            0x30..=0x3C => OpClass::Environment,
            0x41..=0x45 => OpClass::Block,
            0x50..=0x53 | 0x58..=0x5B | 0x60..=0x9F => OpClass::StackMem,
            0x54 | 0x55 => OpClass::Storage,
            0xA0..=0xA4 => OpClass::Logging,
            0xF0..=0xF2 | 0xF4 | 0xFF => OpClass::CallCreate,
            _ => OpClass::Other,
        }
    }
}

/// A tiny bytecode assembler used by tests, examples and the scenario
/// generators to author contracts (the DAO-style splitter, ping-pong callers,
/// storage churners) without hand-writing hex.
#[derive(Default, Debug, Clone)]
pub struct Assembler {
    code: Vec<u8>,
}

impl Assembler {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a non-parameterized opcode.
    pub fn op(mut self, op: Opcode) -> Self {
        self.code.push(op as u8);
        self
    }

    /// Appends a raw byte (escape hatch).
    pub fn raw(mut self, b: u8) -> Self {
        self.code.push(b);
        self
    }

    /// Appends the smallest PUSH that fits `value`.
    pub fn push(mut self, value: u64) -> Self {
        let be = value.to_be_bytes();
        let start = be.iter().position(|&b| b != 0).unwrap_or(7);
        let bytes = &be[start..];
        self.code.push(0x60 + (bytes.len() as u8 - 1));
        self.code.extend_from_slice(bytes);
        self
    }

    /// Appends PUSH20 of an address.
    pub fn push_address(mut self, addr: fork_primitives::Address) -> Self {
        self.code.push(0x60 + 19); // PUSH20
        self.code.extend_from_slice(addr.as_bytes());
        self
    }

    /// Appends PUSH32 of a 256-bit constant.
    pub fn push_u256(mut self, v: fork_primitives::U256) -> Self {
        self.code.push(0x7F); // PUSH32
        self.code.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends DUPn (1-indexed, n ≤ 16).
    pub fn dup(mut self, n: u8) -> Self {
        assert!((1..=16).contains(&n));
        self.code.push(0x80 + n - 1);
        self
    }

    /// Appends SWAPn (1-indexed, n ≤ 16).
    pub fn swap(mut self, n: u8) -> Self {
        assert!((1..=16).contains(&n));
        self.code.push(0x90 + n - 1);
        self
    }

    /// Current length (for computing jump destinations).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when no bytes have been emitted.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Finishes and returns the bytecode.
    pub fn build(self) -> Vec<u8> {
        self.code
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip_for_defined_opcodes() {
        for b in 0u8..=255 {
            if let Some(op) = Opcode::from_byte(b) {
                assert_eq!(op as u8, b);
            }
        }
    }

    #[test]
    fn push_dup_swap_ranges_not_structured() {
        assert!(Opcode::from_byte(0x60).is_none()); // PUSH1
        assert!(Opcode::from_byte(0x7F).is_none()); // PUSH32
        assert!(Opcode::from_byte(0x80).is_none()); // DUP1
        assert!(Opcode::from_byte(0x9F).is_none()); // SWAP16
    }

    #[test]
    fn assembler_minimal_push() {
        let code = Assembler::new().push(0x01).push(0x1234).build();
        assert_eq!(code, vec![0x60, 0x01, 0x61, 0x12, 0x34]);
    }

    #[test]
    fn assembler_push_zero() {
        // Zero still needs one byte (PUSH1 0x00).
        assert_eq!(Assembler::new().push(0).build(), vec![0x60, 0x00]);
    }

    #[test]
    fn assembler_dup_swap_encoding() {
        let code = Assembler::new().dup(1).dup(16).swap(1).swap(16).build();
        assert_eq!(code, vec![0x80, 0x8F, 0x90, 0x9F]);
    }

    #[test]
    fn assembler_address_push() {
        let addr = fork_primitives::Address([9u8; 20]);
        let code = Assembler::new().push_address(addr).build();
        assert_eq!(code[0], 0x73); // PUSH20
        assert_eq!(&code[1..], addr.as_bytes());
    }

    #[test]
    fn classify_covers_defined_opcodes_sensibly() {
        // Every structured opcode must land somewhere other than Other.
        for b in 0u8..=255 {
            if Opcode::from_byte(b).is_some() {
                assert_ne!(
                    OpClass::classify(b),
                    OpClass::Other,
                    "defined opcode {b:#04x} classified as Other"
                );
            }
        }
        // Spot checks across the partition.
        assert_eq!(OpClass::classify(Opcode::Add as u8), OpClass::Arithmetic);
        assert_eq!(OpClass::classify(Opcode::Lt as u8), OpClass::Compare);
        assert_eq!(OpClass::classify(Opcode::Sha3 as u8), OpClass::Keccak);
        assert_eq!(
            OpClass::classify(Opcode::Caller as u8),
            OpClass::Environment
        );
        assert_eq!(OpClass::classify(Opcode::Number as u8), OpClass::Block);
        assert_eq!(OpClass::classify(0x60), OpClass::StackMem); // PUSH1
        assert_eq!(OpClass::classify(0x8F), OpClass::StackMem); // DUP16
        assert_eq!(OpClass::classify(Opcode::SStore as u8), OpClass::Storage);
        assert_eq!(OpClass::classify(Opcode::Jump as u8), OpClass::ControlFlow);
        assert_eq!(
            OpClass::classify(Opcode::Return as u8),
            OpClass::ControlFlow
        );
        assert_eq!(OpClass::classify(Opcode::Log0 as u8), OpClass::Logging);
        assert_eq!(OpClass::classify(Opcode::Call as u8), OpClass::CallCreate);
        assert_eq!(OpClass::classify(0xFE), OpClass::Other); // INVALID
    }

    #[test]
    fn opclass_index_matches_all_order() {
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.name().is_empty());
        }
    }
}
