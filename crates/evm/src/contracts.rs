//! Canned contracts used by tests, examples and workload generators.
//!
//! The centerpiece is a faithful-in-shape reproduction of the DAO
//! vulnerability: a deposit/withdraw vault whose `withdraw` **sends ether to
//! the caller before zeroing the caller's balance slot**, paired with an
//! attacker contract whose receive path re-enters `withdraw`. Running the
//! pair drains the vault of other depositors' funds — the June 2016 event
//! that precipitated the hard fork this paper studies.
//!
//! All contracts dispatch on the first 32-byte word of calldata:
//! `0 = deposit`, `1 = withdraw` for the vault; the attacker uses empty
//! calldata as its reentrant receive path.

use fork_primitives::U256;

use crate::opcode::{Assembler, Opcode};

/// Selector word for vault deposits.
pub const SEL_DEPOSIT: u64 = 0;
/// Selector word for vault withdrawals.
pub const SEL_WITHDRAW: u64 = 1;

/// Gas forwarded on the vault's payout call — generous, exactly the mistake
/// the DAO made (a bounded `send` would have prevented reentrancy).
const PAYOUT_GAS: u64 = 1_000_000;

fn push2(asm: Assembler, v: u16) -> Assembler {
    // Fixed-width PUSH2 so jump targets stay stable across assembly passes.
    asm.raw(0x61).raw((v >> 8) as u8).raw(v as u8)
}

/// The vulnerable vault ("the DAO"): per-caller balances in storage keyed by
/// caller address; `withdraw` pays before zeroing.
pub fn vulnerable_vault() -> Vec<u8> {
    // Two-pass assembly: first with dummy targets to learn offsets.
    let build = |withdraw_at: u16, end_at: u16| -> Assembler {
        let mut a = Assembler::new();
        // if calldataload(0) != 0 -> withdraw
        a = a.push(0).op(Opcode::CallDataLoad);
        a = push2(a, withdraw_at);
        a = a.op(Opcode::JumpI);
        // deposit: slot[caller] += callvalue
        a = a
            .op(Opcode::Caller)
            .op(Opcode::SLoad)
            .op(Opcode::CallValue)
            .op(Opcode::Add)
            .op(Opcode::Caller)
            .op(Opcode::SStore)
            .op(Opcode::Stop);
        let withdraw = a.len() as u16;
        a = a.op(Opcode::JumpDest);
        // amount = slot[caller]; if amount == 0 -> end
        a = a.op(Opcode::Caller).op(Opcode::SLoad);
        a = a.dup(1).op(Opcode::IsZero);
        a = push2(a, end_at);
        a = a.op(Opcode::JumpI);
        // CALL(gas=PAYOUT_GAS, to=caller, value=amount, no data)
        // push order: out_len, out_off, in_len, in_off, value, to, gas
        a = a.push(0).push(0).push(0).push(0);
        a = a.dup(5); // amount (beneath the four zeros)
        a = a.op(Opcode::Caller);
        a = a.push(PAYOUT_GAS);
        a = a.op(Opcode::Call).op(Opcode::Pop);
        // THE BUG: zeroing happens only now, after the reentrant call window.
        a = a.push(0).op(Opcode::Caller).op(Opcode::SStore);
        let end = a.len() as u16;
        a = a.op(Opcode::JumpDest).op(Opcode::Pop).op(Opcode::Stop);
        debug_assert!(withdraw_at == 0 || withdraw == withdraw_at);
        debug_assert!(end_at == 0 || end == end_at);
        a
    };
    // Pass 1: discover offsets with zero targets.
    let pass1 = build(0, 0);
    let _ = pass1.len();
    // Recompute actual label offsets by replaying the construction.
    let (withdraw_at, end_at) = vault_offsets();
    build(withdraw_at, end_at).build()
}

/// Replays the vault layout to find its two jump-target offsets. Kept in
/// lockstep with [`vulnerable_vault`]'s construction (fixed-width pushes make
/// the layout independent of the target values).
fn vault_offsets() -> (u16, u16) {
    // Header: PUSH1 0, CALLDATALOAD, PUSH2 t, JUMPI = 2+1+3+1 = 7
    // deposit: CALLER SLOAD CALLVALUE ADD CALLER SSTORE STOP = 7
    let withdraw = 7 + 7; // 14
                          // withdraw body:
                          // JUMPDEST(1) CALLER(1) SLOAD(1) DUP1(1) ISZERO(1) PUSH2(3) JUMPI(1) = 9
                          // four PUSH1 0 (8), DUP5(1), CALLER(1), PUSH3 gas(4), CALL(1), POP(1) = 16
                          // PUSH1 0(2) CALLER(1) SSTORE(1) = 4
    let end = withdraw + 9 + 16 + 4; // 43
    (withdraw as u16, end as u16)
}

/// The reentrancy attacker.
///
/// * Non-empty calldata (setup): word0 = reentry budget, word1 = vault
///   address; deposits `callvalue` into the vault, then calls `withdraw`.
/// * Empty calldata (receive): if budget > 0, decrement and re-enter
///   `withdraw` — the classic drain loop.
pub fn reentrancy_attacker() -> Vec<u8> {
    let build = |fallback_at: u16, end_at: u16| -> Assembler {
        let mut a = Assembler::new();
        // if calldatasize == 0 -> fallback
        a = a.op(Opcode::CallDataSize).op(Opcode::IsZero);
        a = push2(a, fallback_at);
        a = a.op(Opcode::JumpI);
        // setup: slot0 = budget, slot1 = vault
        a = a
            .push(0)
            .op(Opcode::CallDataLoad)
            .push(0)
            .op(Opcode::SStore);
        a = a
            .push(32)
            .op(Opcode::CallDataLoad)
            .push(1)
            .op(Opcode::SStore);
        // deposit: CALL(gas, vault, callvalue, empty input)
        a = a.push(0).push(0).push(0).push(0);
        a = a.op(Opcode::CallValue);
        a = a.push(1).op(Opcode::SLoad);
        a = a.push(PAYOUT_GAS);
        a = a.op(Opcode::Call).op(Opcode::Pop);
        // withdraw: mstore(0, 1); CALL(gas, vault, 0, input[0..32])
        a = a.push(1).push(0).op(Opcode::MStore);
        a = a.push(0).push(0).push(32).push(0).push(0);
        a = a.push(1).op(Opcode::SLoad);
        a = a.push(PAYOUT_GAS);
        a = a.op(Opcode::Call).op(Opcode::Pop);
        a = a.op(Opcode::Stop);
        let fallback = a.len() as u16;
        a = a.op(Opcode::JumpDest);
        // if slot0 == 0 -> end
        a = a.push(0).op(Opcode::SLoad);
        a = a.dup(1).op(Opcode::IsZero);
        a = push2(a, end_at);
        a = a.op(Opcode::JumpI);
        // slot0 -= 1  (stack: [budget])
        a = a.push(1).swap(1).op(Opcode::Sub).push(0).op(Opcode::SStore);
        // re-enter withdraw: mstore(0,1); CALL(gas, vault, 0, in 0..32)
        a = a.push(1).push(0).op(Opcode::MStore);
        a = a.push(0).push(0).push(32).push(0).push(0);
        a = a.push(1).op(Opcode::SLoad);
        a = a.push(PAYOUT_GAS);
        a = a.op(Opcode::Call).op(Opcode::Pop);
        a = a.op(Opcode::Stop);
        let end = a.len() as u16;
        a = a.op(Opcode::JumpDest).op(Opcode::Pop).op(Opcode::Stop);
        debug_assert!(fallback_at == 0 || fallback == fallback_at);
        debug_assert!(end_at == 0 || end == end_at);
        a
    };
    // Compute offsets via a discovery pass.
    let probe_fallback;
    let probe_end;
    {
        // Replay the exact shape to measure offsets.
        let a = build(0, 0);
        let code = a.build();
        // fallback JUMPDEST is the first 0x5B *after* the setup STOP; end is
        // the second. Scan for them robustly (fixed-width pushes guarantee
        // positions are stable).
        let mut found = Vec::new();
        let mut i = 0;
        while i < code.len() {
            let b = code[i];
            if b == Opcode::JumpDest as u8 {
                found.push(i as u16);
            }
            if (0x60..=0x7F).contains(&b) {
                i += (b - 0x5F) as usize;
            }
            i += 1;
        }
        probe_fallback = found[0];
        probe_end = found[1];
    }
    build(probe_fallback, probe_end).build()
}

/// A benign "storage churner": every call writes `calldataword(0)` into a
/// rotating slot. Generates contract-call transactions for the Figure 2
/// workload mix.
pub fn storage_churner() -> Vec<u8> {
    Assembler::new()
        // slot = sload(0) ; sstore(slot+1, calldataload(0)) ; sstore(0, slot+1)
        .push(0)
        .op(Opcode::SLoad)
        .push(1)
        .op(Opcode::Add) // slot+1
        .dup(1)
        .push(0)
        .op(Opcode::CallDataLoad)
        .swap(1)
        .op(Opcode::SStore) // sstore(slot+1, word)
        .push(0)
        .op(Opcode::SStore) // sstore(0, slot+1)
        .op(Opcode::Stop)
        .build()
}

/// A forwarding wallet: any value sent is immediately forwarded to the
/// address stored in slot 0. Exercises nested value-bearing calls.
pub fn forwarder() -> Vec<u8> {
    Assembler::new()
        .push(0)
        .push(0)
        .push(0)
        .push(0)
        .op(Opcode::CallValue)
        .push(0)
        .op(Opcode::SLoad) // forward-to address
        .push(PAYOUT_GAS)
        .op(Opcode::Call)
        .op(Opcode::Pop)
        .op(Opcode::Stop)
        .build()
}

/// Calldata for the vault's deposit path (any empty word).
pub fn vault_deposit_calldata() -> Vec<u8> {
    U256::from_u64(SEL_DEPOSIT).to_be_bytes().to_vec()
}

/// Calldata for the vault's withdraw path.
pub fn vault_withdraw_calldata() -> Vec<u8> {
    U256::from_u64(SEL_WITHDRAW).to_be_bytes().to_vec()
}

/// Calldata that primes the attacker: `budget` reentries against `vault`.
pub fn attacker_setup_calldata(budget: u64, vault: fork_primitives::Address) -> Vec<u8> {
    let mut data = Vec::with_capacity(64);
    data.extend_from_slice(&U256::from_u64(budget).to_be_bytes());
    data.extend_from_slice(&crate::interpreter::address_to_u256(vault).to_be_bytes());
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gas::GasSchedule;
    use crate::interpreter::{BlockContext, CallParams, Evm, TxContext};
    use crate::world::WorldState;
    use fork_primitives::Address;

    fn addr(n: u8) -> Address {
        Address([n; 20])
    }

    fn call(
        world: &mut WorldState,
        caller: Address,
        to: Address,
        value: u64,
        input: Vec<u8>,
    ) -> bool {
        let mut evm = Evm::new(
            world,
            GasSchedule::frontier(),
            BlockContext::default(),
            TxContext {
                origin: caller,
                gas_price: U256::ONE,
            },
        );
        let r = evm.call(CallParams {
            caller,
            address: to,
            value: U256::from_u64(value),
            input,
            gas: 8_000_000,
        });
        r.success
    }

    #[test]
    fn vault_deposit_and_honest_withdraw() {
        let mut w = WorldState::new();
        let vault = addr(0xDA);
        let user = addr(0x01);
        w.set_code(vault, vulnerable_vault());
        w.set_balance(user, U256::from_u64(1_000));

        assert!(call(&mut w, user, vault, 400, vault_deposit_calldata()));
        assert_eq!(w.balance(vault), U256::from_u64(400));

        assert!(call(&mut w, user, vault, 0, vault_withdraw_calldata()));
        assert_eq!(w.balance(vault), U256::ZERO);
        assert_eq!(w.balance(user), U256::from_u64(1_000));
    }

    #[test]
    fn double_withdraw_yields_nothing_extra() {
        let mut w = WorldState::new();
        let vault = addr(0xDA);
        let user = addr(0x01);
        w.set_code(vault, vulnerable_vault());
        w.set_balance(user, U256::from_u64(1_000));
        call(&mut w, user, vault, 400, vault_deposit_calldata());
        call(&mut w, user, vault, 0, vault_withdraw_calldata());
        // Second withdraw: slot is zero, pays nothing.
        assert!(call(&mut w, user, vault, 0, vault_withdraw_calldata()));
        assert_eq!(w.balance(user), U256::from_u64(1_000));
    }

    #[test]
    fn dao_drain_via_reentrancy() {
        let mut w = WorldState::new();
        let vault = addr(0xDA);
        let attacker_contract = addr(0xBA);
        let attacker_eoa = addr(0x66);
        let victim = addr(0x01);

        w.set_code(vault, vulnerable_vault());
        w.set_code(attacker_contract, reentrancy_attacker());
        w.set_balance(victim, U256::from_u64(10_000));
        w.set_balance(attacker_eoa, U256::from_u64(1_000));

        // Victims fill the vault with 10,000 wei.
        assert!(call(
            &mut w,
            victim,
            vault,
            10_000,
            vault_deposit_calldata()
        ));
        assert_eq!(w.balance(vault), U256::from_u64(10_000));

        // Attacker primes: deposit 1,000, reenter 4 more times.
        assert!(call(
            &mut w,
            attacker_eoa,
            attacker_contract,
            1_000,
            attacker_setup_calldata(4, vault),
        ));

        // Deposited once (1,000) but withdrew 5 times (5,000):
        // profit = 4,000 of the victims' money.
        let loot = w.balance(attacker_contract);
        assert_eq!(loot, U256::from_u64(5_000));
        assert_eq!(w.balance(vault), U256::from_u64(6_000));

        // Shape check against the real event: the attacker extracted other
        // depositors' funds without any invalid transaction — "the contract
        // calls were all perfectly valid" (paper §2.1).
    }

    #[test]
    fn storage_churner_rotates_slots() {
        let mut w = WorldState::new();
        let c = addr(0x05);
        w.set_code(c, storage_churner());
        let word = |v: u64| U256::from_u64(v).to_be_bytes().to_vec();
        assert!(call(&mut w, addr(1), c, 0, word(111)));
        assert!(call(&mut w, addr(1), c, 0, word(222)));
        assert_eq!(w.storage(c, U256::from_u64(1)), U256::from_u64(111));
        assert_eq!(w.storage(c, U256::from_u64(2)), U256::from_u64(222));
        assert_eq!(w.storage(c, U256::ZERO), U256::from_u64(2));
    }

    #[test]
    fn forwarder_passes_value_through() {
        let mut w = WorldState::new();
        let f = addr(0x0F);
        let sink = addr(0x55);
        w.set_code(f, forwarder());
        w.set_storage(f, U256::ZERO, crate::interpreter::address_to_u256(sink));
        w.set_balance(addr(1), U256::from_u64(500));
        assert!(call(&mut w, addr(1), f, 500, Vec::new()));
        assert_eq!(w.balance(sink), U256::from_u64(500));
        assert_eq!(w.balance(f), U256::ZERO);
    }
}
