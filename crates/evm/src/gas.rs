//! Gas schedules.
//!
//! Two schedules matter to the study period:
//!
//! * **Frontier/Homestead** — in force at the DAO fork (July 2016). Its cheap
//!   `CALL`/`SLOAD`/`BALANCE` prices are what enabled the autumn-2016
//!   denial-of-service attacks the paper mentions.
//! * **EIP-150** ("Tangerine Whistle") — the repricing rolled out by the ETH
//!   hard fork of Nov 22, 2016 and by ETC's fork of Jan 13, 2017. The paper
//!   uses these two *resolved* forks as its minority-branch-length case study
//!   (86 vs 3,583 blocks), so both schedules are implemented and switchable
//!   per block height.

/// Per-opcode and intrinsic gas costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GasSchedule {
    /// Cost of the cheapest arithmetic/stack ops (ADD, POP, PUSH, DUP, SWAP…).
    pub very_low: u64,
    /// Cost of MUL/DIV/MOD and friends.
    pub low: u64,
    /// Cost of ADDMOD-class and JUMPI.
    pub mid: u64,
    /// Cost of JUMP.
    pub high: u64,
    /// Base cost of trivial ops (ADDRESS, CALLER, PC, GAS…).
    pub base: u64,
    /// SLOAD cost (50 pre-EIP-150, 200 after).
    pub sload: u64,
    /// BALANCE cost (20 pre-EIP-150, 400 after).
    pub balance: u64,
    /// EXTCODESIZE/EXTCODECOPY base cost (20 pre-EIP-150, 700 after).
    pub extcode: u64,
    /// Base CALL cost (40 pre-EIP-150, 700 after).
    pub call: u64,
    /// Extra cost when a CALL transfers value.
    pub call_value: u64,
    /// Stipend forwarded to the callee on value-bearing calls.
    pub call_stipend: u64,
    /// SSTORE cost when setting a zero slot to non-zero.
    pub sstore_set: u64,
    /// SSTORE cost when modifying a non-zero slot.
    pub sstore_reset: u64,
    /// Refund when clearing a slot to zero.
    pub sstore_clear_refund: u64,
    /// Cost per 32-byte word of SHA3 input.
    pub sha3_word: u64,
    /// Base SHA3 cost.
    pub sha3: u64,
    /// Cost per byte of LOG data.
    pub log_data: u64,
    /// Base LOG cost plus per-topic cost.
    pub log: u64,
    /// Per-topic LOG cost.
    pub log_topic: u64,
    /// Cost per 32-byte word of memory expansion (linear term).
    pub memory: u64,
    /// Cost per byte of calldata copied (COPY ops, per word).
    pub copy_word: u64,
    /// EXP base cost.
    pub exp: u64,
    /// EXP cost per byte of exponent.
    pub exp_byte: u64,
    /// Intrinsic cost of any transaction.
    pub tx: u64,
    /// Intrinsic cost per zero byte of transaction data.
    pub tx_data_zero: u64,
    /// Intrinsic cost per non-zero byte of transaction data.
    pub tx_data_nonzero: u64,
    /// CREATE base cost.
    pub create: u64,
    /// Whether the 63/64 gas-forwarding rule of EIP-150 is active.
    pub eip150_gas_cap: bool,
}

impl GasSchedule {
    /// The Frontier/Homestead schedule (in force at the DAO fork).
    pub const fn frontier() -> Self {
        GasSchedule {
            very_low: 3,
            low: 5,
            mid: 8,
            high: 10,
            base: 2,
            sload: 50,
            balance: 20,
            extcode: 20,
            call: 40,
            call_value: 9_000,
            call_stipend: 2_300,
            sstore_set: 20_000,
            sstore_reset: 5_000,
            sstore_clear_refund: 15_000,
            sha3_word: 6,
            sha3: 30,
            log_data: 8,
            log: 375,
            log_topic: 375,
            memory: 3,
            copy_word: 3,
            exp: 10,
            exp_byte: 10,
            tx: 21_000,
            tx_data_zero: 4,
            tx_data_nonzero: 68,
            create: 32_000,
            eip150_gas_cap: false,
        }
    }

    /// The EIP-150 repriced schedule (ETH from 2016-11-22, ETC from
    /// 2017-01-13). Raises the IO-heavy opcodes the DoS attacks abused.
    pub const fn eip150() -> Self {
        GasSchedule {
            sload: 200,
            balance: 400,
            extcode: 700,
            call: 700,
            eip150_gas_cap: true,
            ..Self::frontier()
        }
    }

    /// Intrinsic gas of a transaction with `data` (charged before execution).
    pub fn intrinsic_gas(&self, data: &[u8], is_create: bool) -> u64 {
        let mut g = self.tx;
        if is_create {
            g += self.create;
        }
        for &b in data {
            g += if b == 0 {
                self.tx_data_zero
            } else {
                self.tx_data_nonzero
            };
        }
        g
    }

    /// Gas for expanding memory to `new_words` 32-byte words, given current
    /// size `old_words`: linear + quadratic term, as in the yellow paper.
    pub fn memory_expansion_gas(&self, old_words: u64, new_words: u64) -> u64 {
        if new_words <= old_words {
            return 0;
        }
        let cost = |w: u64| self.memory * w + w * w / 512;
        cost(new_words) - cost(old_words)
    }

    /// The amount of gas a CALL may forward under this schedule: all of it
    /// pre-EIP-150, or at most 63/64 of the remainder after.
    pub fn callable_gas(&self, remaining: u64, requested: u64) -> u64 {
        if self.eip150_gas_cap {
            let cap = remaining - remaining / 64;
            requested.min(cap)
        } else {
            requested
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eip150_repricing_only_touches_io_ops() {
        let f = GasSchedule::frontier();
        let t = GasSchedule::eip150();
        assert_eq!(f.sload, 50);
        assert_eq!(t.sload, 200);
        assert_eq!(f.call, 40);
        assert_eq!(t.call, 700);
        assert_eq!(f.balance, 20);
        assert_eq!(t.balance, 400);
        assert_eq!(f.extcode, 20);
        assert_eq!(t.extcode, 700);
        // Unrelated prices unchanged.
        assert_eq!(f.very_low, t.very_low);
        assert_eq!(f.sstore_set, t.sstore_set);
        assert_eq!(f.tx, t.tx);
    }

    #[test]
    fn intrinsic_gas_counts_bytes() {
        let g = GasSchedule::frontier();
        assert_eq!(g.intrinsic_gas(&[], false), 21_000);
        assert_eq!(g.intrinsic_gas(&[0, 0, 1], false), 21_000 + 4 + 4 + 68);
        assert_eq!(g.intrinsic_gas(&[], true), 21_000 + 32_000);
    }

    #[test]
    fn memory_gas_quadratic() {
        let g = GasSchedule::frontier();
        assert_eq!(g.memory_expansion_gas(0, 0), 0);
        assert_eq!(g.memory_expansion_gas(0, 1), 3);
        assert_eq!(g.memory_expansion_gas(1, 1), 0);
        // Large expansion includes the quadratic term.
        let big = g.memory_expansion_gas(0, 1024);
        assert_eq!(big, 3 * 1024 + 1024 * 1024 / 512);
        // Expansion gas is the difference, not the total.
        assert_eq!(
            g.memory_expansion_gas(512, 1024),
            big - g.memory_expansion_gas(0, 512)
        );
    }

    #[test]
    fn gas_forwarding_rule() {
        let f = GasSchedule::frontier();
        let t = GasSchedule::eip150();
        // Pre-fork: a call may forward everything (the DAO drain pattern).
        assert_eq!(f.callable_gas(64_000, 64_000), 64_000);
        // Post-fork: capped at 63/64.
        assert_eq!(t.callable_gas(64_000, 64_000), 64_000 - 1_000);
        assert_eq!(t.callable_gas(64_000, 1_000), 1_000);
    }
}
