//! Crate-global EVM telemetry: per-[`OpClass`] dispatch counters and a
//! gas-used histogram.
//!
//! The interpreter's inner loop is the hottest code in the workspace, so the
//! counters are crate-level `static`s (one relaxed atomic increment per
//! dispatched instruction when the `telemetry` feature is on, nothing at all
//! when it is off — the no-op [`Counter`] methods are `#[inline(always)]`
//! empty bodies). No signature in the interpreter changes either way.
//!
//! Consumers pull the totals with [`snapshot_into`] (names are prefixed
//! `evm.`) and may [`reset`] between runs.

use crate::opcode::OpClass;
use fork_telemetry::{Counter, Histogram, Snapshot};

/// One dispatch counter per [`OpClass`], indexed by [`OpClass::index`].
static OP_DISPATCH: [Counter; OpClass::ALL.len()] = [
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
];

/// Executed transactions (successful or reverted — anything included).
static TXS_EXECUTED: Counter = Counter::new();

/// Gas used per executed transaction.
static GAS_USED: Histogram = Histogram::new();

/// Counts one dispatched instruction byte (called from the interpreter's
/// fetch loop, before decode, so PUSH/DUP/SWAP and invalid bytes count too).
#[inline]
pub(crate) fn record_dispatch(byte: u8) {
    OP_DISPATCH[OpClass::classify(byte).index()].incr();
}

/// Records the gas consumed by one executed transaction.
#[inline]
pub(crate) fn record_tx_gas(gas_used: u64) {
    TXS_EXECUTED.incr();
    GAS_USED.record(gas_used);
}

/// Copies the crate-global totals into `snap` under `evm.*` names
/// (`evm.ops.<class>` counters and the `evm.gas_used` histogram). Zero-valued
/// counters are skipped so a run that never touched the EVM contributes
/// nothing.
pub fn snapshot_into(snap: &mut Snapshot) {
    for class in OpClass::ALL {
        let n = OP_DISPATCH[class.index()].get();
        if n > 0 {
            snap.counters.insert(format!("evm.ops.{}", class.name()), n);
        }
    }
    let txs = TXS_EXECUTED.get();
    if txs > 0 {
        snap.counters.insert("evm.txs_executed".into(), txs);
    }
    let gas = GAS_USED.snapshot();
    if gas.count > 0 {
        snap.histograms.insert("evm.gas_used".into(), gas);
    }
}

/// Resets every crate-global EVM metric to zero.
pub fn reset() {
    for c in &OP_DISPATCH {
        c.reset();
    }
    TXS_EXECUTED.reset();
    GAS_USED.reset();
}

#[cfg(test)]
#[cfg(feature = "telemetry")]
mod tests {
    use super::*;

    // The statics are process-global, so this single test exercises the whole
    // record → snapshot → reset cycle to avoid ordering hazards with other
    // tests that execute EVM code.
    #[test]
    fn dispatch_and_gas_flow_into_snapshot() {
        reset();
        record_dispatch(0x01); // ADD
        record_dispatch(0x60); // PUSH1
        record_dispatch(0x60);
        record_tx_gas(21_000);
        let mut snap = Snapshot::default();
        snapshot_into(&mut snap);
        assert!(snap.counters["evm.ops.arithmetic"] >= 1);
        assert!(snap.counters["evm.ops.stack_mem"] >= 2);
        assert!(snap.counters["evm.txs_executed"] >= 1);
        assert!(snap.histograms["evm.gas_used"].count >= 1);
        reset();
        let mut snap = Snapshot::default();
        snapshot_into(&mut snap);
        assert!(snap.is_empty(), "reset must clear all evm metrics");
    }
}
