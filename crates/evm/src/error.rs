//! EVM execution errors.

use core::fmt;

/// Reasons a frame of execution halts exceptionally.
///
/// Exceptional halts consume all gas supplied to the frame (pre-Byzantium
/// semantics, which is the study period) and revert the frame's state changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing diagnostics
pub enum VmError {
    /// Ran out of gas.
    OutOfGas,
    /// Popped an empty stack.
    StackUnderflow,
    /// Pushed past the 1024-item stack limit.
    StackOverflow,
    /// Jumped to a destination that is not a `JUMPDEST`.
    BadJumpDestination { dest: usize },
    /// Executed an undefined opcode.
    InvalidOpcode { opcode: u8 },
    /// Call depth exceeded 1024.
    CallDepthExceeded,
    /// Value transfer failed: sender balance too low.
    InsufficientBalance,
    /// Memory expansion beyond the configured hard cap (simulation guard).
    MemoryLimitExceeded { requested: usize },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OutOfGas => write!(f, "out of gas"),
            Self::StackUnderflow => write!(f, "stack underflow"),
            Self::StackOverflow => write!(f, "stack overflow"),
            Self::BadJumpDestination { dest } => write!(f, "invalid jump destination {dest}"),
            Self::InvalidOpcode { opcode } => write!(f, "invalid opcode {opcode:#04x}"),
            Self::CallDepthExceeded => write!(f, "call depth exceeded 1024"),
            Self::InsufficientBalance => write!(f, "insufficient balance for transfer"),
            Self::MemoryLimitExceeded { requested } => {
                write!(f, "memory expansion to {requested} bytes exceeds limit")
            }
        }
    }
}

impl std::error::Error for VmError {}
