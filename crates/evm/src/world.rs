//! Journaled world state: accounts, balances, code and storage.
//!
//! This is the single canonical account store of the workspace — the chain
//! crate wraps it for block execution, and the interpreter mutates it through
//! a journal so failed call frames can roll back precisely (the semantics the
//! DAO reentrancy depends on).

use std::collections::{HashMap, VecDeque};

use fork_primitives::{Address, H256, U256};

/// One account's state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Account {
    /// Transaction count for externally-owned accounts; creation count for
    /// contracts.
    pub nonce: u64,
    /// Balance in wei.
    pub balance: U256,
    /// Contract bytecode (empty for externally-owned accounts).
    pub code: Vec<u8>,
    /// Contract storage.
    pub storage: HashMap<U256, U256>,
}

/// Undo-log entries. Every mutation pushes its inverse.
#[derive(Debug, Clone)]
enum Undo {
    Balance(Address, U256),
    Nonce(Address, u64),
    Storage(Address, U256, U256),
    Code(Address, Vec<u8>),
    Created(Address),
    Destroyed(Address, Box<Account>),
}

/// A checkpoint into the journal; roll back to it to undo everything since.
///
/// Checkpoints are absolute positions: they stay valid when older history is
/// finalized away with [`WorldState::discard_until`], enabling the chain
/// store to keep a sliding window of per-block checkpoints for reorgs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Checkpoint(usize);

/// The full account state with a journal for frame-precise rollback.
///
/// # State-root commitment (substitution note, DESIGN.md)
///
/// Real Ethereum commits to state with a Merkle-Patricia trie. This study
/// only needs "equal states ⇔ equal roots" — and needs it *fast*, because
/// the simulator validates roots twice per block over month-long ledgers. We
/// therefore maintain an **incremental XOR set-hash**: each account has a
/// Keccak digest over `(address, nonce, balance, code hash, storage
/// set-hash)`, and the root accumulator is the XOR of all account digests.
/// Every mutation updates the accumulator in O(1); `state_root()` is O(1).
/// XOR set-hashes are not collision-resistant against adversarial *state
/// construction*, which is outside this simulation's threat model.
#[derive(Debug, Default, Clone)]
pub struct WorldState {
    accounts: HashMap<Address, Account>,
    journal: VecDeque<Undo>,
    /// Absolute position of `journal[0]` — grows as history is discarded.
    journal_base: usize,
    /// Per-account XOR accumulator over occupied storage-slot digests
    /// (updated incrementally at mutation time).
    storage_acc: HashMap<Address, [u8; 32]>,
    /// Lazily maintained root cache: account digests are only recomputed
    /// for `dirty` accounts when `state_root()` is called, so a transaction
    /// touching an account several times costs one digest, not several.
    cache: std::cell::RefCell<RootCache>,
}

#[derive(Debug, Default, Clone)]
struct RootCache {
    /// Current digest of each existing account (up to date unless dirty).
    digests: HashMap<Address, [u8; 32]>,
    /// XOR of all digests in `digests`.
    root_acc: [u8; 32],
    /// Accounts mutated since the last flush.
    dirty: std::collections::HashSet<Address>,
}

/// Keccak of the empty byte string, cached — the code hash of every
/// externally-owned account.
fn empty_code_hash() -> &'static [u8; 32] {
    static EMPTY: std::sync::OnceLock<[u8; 32]> = std::sync::OnceLock::new();
    EMPTY.get_or_init(|| fork_crypto::keccak256(&[]).0)
}

fn xor_into(acc: &mut [u8; 32], d: &[u8; 32]) {
    for (a, b) in acc.iter_mut().zip(d) {
        *a ^= b;
    }
}

/// Digest of one occupied storage slot.
fn slot_digest(key: U256, value: U256) -> [u8; 32] {
    let mut h = fork_crypto::Keccak256::new();
    h.update(b"slot/v1");
    h.update(&key.to_be_bytes());
    h.update(&value.to_be_bytes());
    h.finalize().0
}

impl WorldState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether an account exists (has ever been touched with state).
    pub fn exists(&self, addr: Address) -> bool {
        self.accounts.contains_key(&addr)
    }

    /// Read-only view of an account, if present.
    pub fn account(&self, addr: Address) -> Option<&Account> {
        self.accounts.get(&addr)
    }

    /// Iterates accounts in unspecified order (analytics/state-root use).
    pub fn iter_accounts(&self) -> impl Iterator<Item = (&Address, &Account)> {
        self.accounts.iter()
    }

    /// Number of accounts.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// True when no accounts exist.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Balance of `addr` (zero for absent accounts).
    pub fn balance(&self, addr: Address) -> U256 {
        self.accounts
            .get(&addr)
            .map(|a| a.balance)
            .unwrap_or(U256::ZERO)
    }

    /// Nonce of `addr` (zero for absent accounts).
    pub fn nonce(&self, addr: Address) -> u64 {
        self.accounts.get(&addr).map(|a| a.nonce).unwrap_or(0)
    }

    /// Code of `addr` (empty for absent accounts / EOAs).
    pub fn code(&self, addr: Address) -> &[u8] {
        self.accounts
            .get(&addr)
            .map(|a| a.code.as_slice())
            .unwrap_or(&[])
    }

    /// Storage slot `key` of `addr` (zero when unset).
    pub fn storage(&self, addr: Address, key: U256) -> U256 {
        self.accounts
            .get(&addr)
            .and_then(|a| a.storage.get(&key).copied())
            .unwrap_or(U256::ZERO)
    }

    fn touch(&mut self, addr: Address) -> &mut Account {
        let journal = &mut self.journal;
        self.accounts.entry(addr).or_insert_with(|| {
            journal.push_back(Undo::Created(addr));
            Account::default()
        })
    }

    /// Sets the balance of `addr`, journaling the old value.
    pub fn set_balance(&mut self, addr: Address, value: U256) {
        let old = self.balance(addr);
        if old == value && self.exists(addr) {
            return;
        }
        self.journal.push_back(Undo::Balance(addr, old));
        self.touch(addr).balance = value;
        // `touch` may have pushed Created after Balance; ordering still works
        // because rollback replays in reverse: Balance restores the value,
        // then Created removes the account entirely.
        self.refresh_digest(addr);
    }

    /// Credits `addr` by `value`, saturating at the 256-bit maximum.
    pub fn credit(&mut self, addr: Address, value: U256) {
        let new = self.balance(addr).saturating_add(value);
        self.set_balance(addr, new);
    }

    /// Debits `addr` by `value`; `false` (and no change) when underfunded.
    pub fn debit(&mut self, addr: Address, value: U256) -> bool {
        match self.balance(addr).checked_sub(value) {
            Some(new) => {
                self.set_balance(addr, new);
                true
            }
            None => false,
        }
    }

    /// Moves `value` from `from` to `to`; `false` (no change) if underfunded.
    pub fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool {
        if !self.debit(from, value) {
            return false;
        }
        self.credit(to, value);
        true
    }

    /// Sets the nonce of `addr`.
    pub fn set_nonce(&mut self, addr: Address, value: u64) {
        let old = self.nonce(addr);
        self.journal.push_back(Undo::Nonce(addr, old));
        self.touch(addr).nonce = value;
        self.refresh_digest(addr);
    }

    /// Increments the nonce of `addr`.
    pub fn bump_nonce(&mut self, addr: Address) {
        let n = self.nonce(addr);
        self.set_nonce(addr, n + 1);
    }

    /// Installs contract code at `addr`.
    pub fn set_code(&mut self, addr: Address, code: Vec<u8>) {
        let old = self.code(addr).to_vec();
        self.journal.push_back(Undo::Code(addr, old));
        self.touch(addr).code = code;
        self.refresh_digest(addr);
    }

    /// Writes a storage slot.
    pub fn set_storage(&mut self, addr: Address, key: U256, value: U256) {
        let old = self.storage(addr, key);
        if old == value {
            return;
        }
        self.journal.push_back(Undo::Storage(addr, key, old));
        let account = self.touch(addr);
        if value.is_zero() {
            account.storage.remove(&key);
        } else {
            account.storage.insert(key, value);
        }
        self.apply_slot_delta(addr, key, old, value);
        self.refresh_digest(addr);
    }

    /// Removes an account entirely (SELFDESTRUCT), journaling its old state.
    pub fn destroy(&mut self, addr: Address) {
        if let Some(old) = self.accounts.remove(&addr) {
            self.journal.push_back(Undo::Destroyed(addr, Box::new(old)));
            self.refresh_digest(addr);
        }
    }

    /// Updates the per-account storage set-hash for a slot change.
    fn apply_slot_delta(&mut self, addr: Address, key: U256, old: U256, new: U256) {
        let acc = self.storage_acc.entry(addr).or_default();
        if !old.is_zero() {
            xor_into(acc, &slot_digest(key, old));
        }
        if !new.is_zero() {
            xor_into(acc, &slot_digest(key, new));
        }
    }

    /// Rebuilds one account's storage set-hash from scratch (only needed
    /// when resurrecting a destroyed account during rollback).
    fn rebuild_storage_acc(&mut self, addr: Address) {
        let mut acc = [0u8; 32];
        if let Some(a) = self.accounts.get(&addr) {
            for (k, v) in &a.storage {
                xor_into(&mut acc, &slot_digest(*k, *v));
            }
        }
        self.storage_acc.insert(addr, acc);
    }

    /// Marks `addr`'s cached digest stale. Called after every mutation; the
    /// recompute happens in bulk at the next [`WorldState::state_root`].
    fn refresh_digest(&mut self, addr: Address) {
        if !self.accounts.contains_key(&addr) {
            self.storage_acc.remove(&addr);
        }
        self.cache.get_mut().dirty.insert(addr);
    }

    /// Recomputes digests for all dirty accounts.
    fn flush_dirty(&self) {
        let mut cache = self.cache.borrow_mut();
        let cache = &mut *cache;
        if cache.dirty.is_empty() {
            return;
        }
        for addr in cache.dirty.drain() {
            if let Some(old) = cache.digests.remove(&addr) {
                xor_into(&mut cache.root_acc, &old);
            }
            if let Some(a) = self.accounts.get(&addr) {
                let mut h = fork_crypto::Keccak256::new();
                h.update(b"acct/v1");
                h.update(addr.as_bytes());
                h.update(&a.nonce.to_be_bytes());
                h.update(&a.balance.to_be_bytes());
                if a.code.is_empty() {
                    h.update(empty_code_hash());
                } else {
                    h.update(&fork_crypto::keccak256(&a.code).0);
                }
                if let Some(sacc) = self.storage_acc.get(&addr) {
                    h.update(sacc);
                } else {
                    h.update(&[0u8; 32]);
                }
                let d = h.finalize().0;
                xor_into(&mut cache.root_acc, &d);
                cache.digests.insert(addr, d);
            }
        }
    }

    /// Marks the current journal position.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint(self.journal_base + self.journal.len())
    }

    /// Rolls every change since `cp` back, in reverse order.
    ///
    /// # Panics
    /// Panics if `cp` points into history already discarded with
    /// [`WorldState::discard_until`].
    pub fn rollback_to(&mut self, cp: Checkpoint) {
        assert!(
            cp.0 >= self.journal_base,
            "checkpoint {} already finalized (base {})",
            cp.0,
            self.journal_base
        );
        while self.journal_base + self.journal.len() > cp.0 {
            match self.journal.pop_back().expect("length checked") {
                Undo::Balance(addr, old) => {
                    if let Some(a) = self.accounts.get_mut(&addr) {
                        a.balance = old;
                        self.refresh_digest(addr);
                    }
                }
                Undo::Nonce(addr, old) => {
                    if let Some(a) = self.accounts.get_mut(&addr) {
                        a.nonce = old;
                        self.refresh_digest(addr);
                    }
                }
                Undo::Storage(addr, key, old) => {
                    let cur = self.storage(addr, key);
                    if let Some(a) = self.accounts.get_mut(&addr) {
                        if old.is_zero() {
                            a.storage.remove(&key);
                        } else {
                            a.storage.insert(key, old);
                        }
                        self.apply_slot_delta(addr, key, cur, old);
                        self.refresh_digest(addr);
                    }
                }
                Undo::Code(addr, old) => {
                    if let Some(a) = self.accounts.get_mut(&addr) {
                        a.code = old;
                        self.refresh_digest(addr);
                    }
                }
                Undo::Created(addr) => {
                    self.accounts.remove(&addr);
                    self.refresh_digest(addr);
                }
                Undo::Destroyed(addr, old) => {
                    self.accounts.insert(addr, *old);
                    self.rebuild_storage_acc(addr);
                    self.refresh_digest(addr);
                }
            }
        }
    }

    /// Discards undo history up to the present (changes become permanent).
    pub fn commit(&mut self) {
        self.journal_base += self.journal.len();
        self.journal.clear();
    }

    /// Discards undo history *older* than `cp` (those changes become
    /// permanent) while keeping the ability to roll back to `cp` or later.
    /// Used by the chain store when a block falls out of the reorg window.
    pub fn discard_until(&mut self, cp: Checkpoint) {
        while self.journal_base < cp.0 && !self.journal.is_empty() {
            self.journal.pop_front();
            self.journal_base += 1;
        }
    }

    /// Number of undo entries currently retained (diagnostics).
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// A deterministic O(1) commitment to the full state (see the type-level
    /// substitution note on [`WorldState`]).
    pub fn state_root(&self) -> H256 {
        self.flush_dirty();
        let mut h = fork_crypto::Keccak256::new();
        h.update(b"state-root/v2");
        h.update(&self.cache.borrow().root_acc);
        h.update(&(self.accounts.len() as u64).to_be_bytes());
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Address {
        Address([n; 20])
    }

    #[test]
    fn balances_default_zero() {
        let w = WorldState::new();
        assert_eq!(w.balance(addr(1)), U256::ZERO);
        assert!(!w.exists(addr(1)));
    }

    #[test]
    fn transfer_moves_funds() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from_u64(100));
        assert!(w.transfer(addr(1), addr(2), U256::from_u64(30)));
        assert_eq!(w.balance(addr(1)), U256::from_u64(70));
        assert_eq!(w.balance(addr(2)), U256::from_u64(30));
    }

    #[test]
    fn underfunded_transfer_rejected_without_change() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from_u64(10));
        assert!(!w.transfer(addr(1), addr(2), U256::from_u64(11)));
        assert_eq!(w.balance(addr(1)), U256::from_u64(10));
        assert_eq!(w.balance(addr(2)), U256::ZERO);
    }

    #[test]
    fn rollback_restores_everything() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from_u64(100));
        w.commit();
        let cp = w.checkpoint();

        w.set_balance(addr(1), U256::from_u64(5));
        w.set_nonce(addr(1), 9);
        w.set_storage(addr(1), U256::from_u64(1), U256::from_u64(42));
        w.set_code(addr(2), vec![1, 2, 3]);
        w.set_balance(addr(3), U256::from_u64(7));

        w.rollback_to(cp);
        assert_eq!(w.balance(addr(1)), U256::from_u64(100));
        assert_eq!(w.nonce(addr(1)), 0);
        assert_eq!(w.storage(addr(1), U256::from_u64(1)), U256::ZERO);
        assert!(!w.exists(addr(2)), "created account removed on rollback");
        assert!(!w.exists(addr(3)));
    }

    #[test]
    fn nested_checkpoints_roll_back_independently() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from_u64(1));
        let outer = w.checkpoint();
        w.set_balance(addr(1), U256::from_u64(2));
        let inner = w.checkpoint();
        w.set_balance(addr(1), U256::from_u64(3));
        w.rollback_to(inner);
        assert_eq!(w.balance(addr(1)), U256::from_u64(2));
        w.rollback_to(outer);
        assert_eq!(w.balance(addr(1)), U256::from_u64(1));
    }

    #[test]
    fn destroy_and_rollback() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from_u64(55));
        w.set_storage(addr(1), U256::ONE, U256::from_u64(9));
        let cp = w.checkpoint();
        w.destroy(addr(1));
        assert!(!w.exists(addr(1)));
        w.rollback_to(cp);
        assert_eq!(w.balance(addr(1)), U256::from_u64(55));
        assert_eq!(w.storage(addr(1), U256::ONE), U256::from_u64(9));
    }

    #[test]
    fn zero_storage_writes_prune_slots() {
        let mut w = WorldState::new();
        w.set_storage(addr(1), U256::ONE, U256::from_u64(5));
        w.set_storage(addr(1), U256::ONE, U256::ZERO);
        assert_eq!(w.account(addr(1)).unwrap().storage.len(), 0);
    }

    #[test]
    fn state_root_deterministic_and_order_independent() {
        let mut w1 = WorldState::new();
        w1.set_balance(addr(1), U256::from_u64(10));
        w1.set_balance(addr(2), U256::from_u64(20));

        let mut w2 = WorldState::new();
        w2.set_balance(addr(2), U256::from_u64(20));
        w2.set_balance(addr(1), U256::from_u64(10));

        assert_eq!(w1.state_root(), w2.state_root());

        w2.set_balance(addr(3), U256::ONE);
        assert_ne!(w1.state_root(), w2.state_root());
    }

    #[test]
    fn discard_until_keeps_later_rollbacks_valid() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from_u64(1)); // block 1
        let cp1 = w.checkpoint();
        w.set_balance(addr(1), U256::from_u64(2)); // block 2
        let cp2 = w.checkpoint();
        w.set_balance(addr(1), U256::from_u64(3)); // block 3

        // Finalize block 1's history.
        w.discard_until(cp1);
        // Rolling back to cp2 (undo block 3) still works.
        w.rollback_to(cp2);
        assert_eq!(w.balance(addr(1)), U256::from_u64(2));
        // And rolling back to cp1 (undo block 2) also still works.
        w.rollback_to(cp1);
        assert_eq!(w.balance(addr(1)), U256::from_u64(1));
    }

    #[test]
    #[should_panic(expected = "already finalized")]
    fn rollback_into_discarded_history_panics() {
        let mut w = WorldState::new();
        let cp0 = w.checkpoint();
        w.set_balance(addr(1), U256::ONE);
        let cp1 = w.checkpoint();
        w.set_balance(addr(1), U256::from_u64(2));
        w.discard_until(cp1);
        w.rollback_to(cp0);
    }

    #[test]
    fn commit_then_checkpoint_still_monotonic() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::ONE);
        let before = w.checkpoint();
        w.commit();
        let after = w.checkpoint();
        assert_eq!(before, after, "commit preserves absolute positions");
        assert_eq!(w.journal_len(), 0);
    }

    /// From-scratch recomputation of the incremental root, used to verify
    /// the accumulator never drifts from the true state.
    fn recomputed_root(w: &WorldState) -> H256 {
        let mut fresh = WorldState::new();
        let mut addrs: Vec<Address> = w.iter_accounts().map(|(a, _)| *a).collect();
        addrs.sort();
        for addr in addrs {
            let a = w.account(addr).unwrap().clone();
            fresh.set_nonce(addr, a.nonce);
            fresh.set_balance(addr, a.balance);
            fresh.set_code(addr, a.code);
            let mut keys: Vec<U256> = a.storage.keys().copied().collect();
            keys.sort();
            for k in keys {
                fresh.set_storage(addr, k, a.storage[&k]);
            }
        }
        fresh.state_root()
    }

    #[test]
    fn incremental_root_matches_recomputation_after_mutations() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from_u64(10));
        w.set_nonce(addr(1), 3);
        w.set_code(addr(2), vec![1, 2, 3]);
        w.set_storage(addr(2), U256::ONE, U256::from_u64(7));
        w.set_storage(addr(2), U256::from_u64(9), U256::from_u64(5));
        w.set_storage(addr(2), U256::ONE, U256::ZERO); // clear a slot
        w.set_balance(addr(3), U256::from_u64(99));
        w.destroy(addr(3));
        assert_eq!(w.state_root(), recomputed_root(&w));
    }

    #[test]
    fn incremental_root_matches_after_rollback() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from_u64(10));
        w.set_storage(addr(1), U256::ONE, U256::from_u64(1));
        w.commit();
        let before = w.state_root();
        let cp = w.checkpoint();
        w.set_balance(addr(1), U256::from_u64(20));
        w.set_storage(addr(1), U256::ONE, U256::from_u64(2));
        w.set_storage(addr(1), U256::from_u64(5), U256::from_u64(5));
        w.set_code(addr(4), vec![9]);
        w.destroy(addr(1));
        w.rollback_to(cp);
        assert_eq!(w.state_root(), before);
        assert_eq!(w.state_root(), recomputed_root(&w));
    }

    #[test]
    fn state_root_sensitive_to_storage() {
        let mut w1 = WorldState::new();
        w1.set_storage(addr(1), U256::ONE, U256::from_u64(1));
        let mut w2 = WorldState::new();
        w2.set_storage(addr(1), U256::ONE, U256::from_u64(2));
        assert_ne!(w1.state_root(), w2.state_root());
    }
}
