//! Byte-addressed frame memory with word-granular expansion.

use fork_primitives::U256;

use crate::error::VmError;

/// Hard cap on frame memory — a simulation guard far above anything the
/// workloads touch, but low enough that a buggy contract cannot OOM the host.
pub const MEMORY_LIMIT: usize = 16 * 1024 * 1024;

/// One frame's linear memory. Grows in 32-byte words; reads inside the
/// current size are zero-filled by construction.
#[derive(Debug, Default, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current size in bytes (always a multiple of 32).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when nothing has been touched.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Current size in 32-byte words.
    pub fn words(&self) -> u64 {
        (self.bytes.len() / 32) as u64
    }

    /// Number of words needed to cover `offset + len` (0 when `len == 0`,
    /// because the EVM does not expand memory for empty ranges).
    pub fn words_for(offset: usize, len: usize) -> Result<u64, VmError> {
        if len == 0 {
            return Ok(0);
        }
        let end = offset
            .checked_add(len)
            .ok_or(VmError::MemoryLimitExceeded {
                requested: usize::MAX,
            })?;
        if end > MEMORY_LIMIT {
            return Err(VmError::MemoryLimitExceeded { requested: end });
        }
        Ok(end.div_ceil(32) as u64)
    }

    /// Expands to cover `offset + len` bytes; no-op for empty ranges.
    pub fn expand(&mut self, offset: usize, len: usize) -> Result<(), VmError> {
        let words = Self::words_for(offset, len)?;
        let target = (words as usize) * 32;
        if target > self.bytes.len() {
            self.bytes.resize(target, 0);
        }
        Ok(())
    }

    /// Reads a 32-byte word at `offset` (memory must already cover it).
    pub fn load_word(&self, offset: usize) -> U256 {
        let mut buf = [0u8; 32];
        buf.copy_from_slice(&self.bytes[offset..offset + 32]);
        U256::from_be_slice(&buf).expect("32 bytes fit")
    }

    /// Writes a 32-byte word at `offset`.
    pub fn store_word(&mut self, offset: usize, value: U256) {
        self.bytes[offset..offset + 32].copy_from_slice(&value.to_be_bytes());
    }

    /// Writes a single byte.
    pub fn store_byte(&mut self, offset: usize, value: u8) {
        self.bytes[offset] = value;
    }

    /// Copies `data` into memory at `offset`, zero-padding when `data` is
    /// shorter than `len` (CALLDATACOPY semantics).
    pub fn copy_padded(&mut self, offset: usize, data: &[u8], len: usize) {
        let n = data.len().min(len);
        self.bytes[offset..offset + n].copy_from_slice(&data[..n]);
        for b in &mut self.bytes[offset + n..offset + len] {
            *b = 0;
        }
    }

    /// Borrows `len` bytes at `offset`.
    pub fn slice(&self, offset: usize, len: usize) -> &[u8] {
        if len == 0 {
            return &[];
        }
        &self.bytes[offset..offset + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_word_granular() {
        let mut m = Memory::new();
        m.expand(0, 1).unwrap();
        assert_eq!(m.len(), 32);
        m.expand(31, 2).unwrap();
        assert_eq!(m.len(), 64);
    }

    #[test]
    fn empty_range_does_not_expand() {
        let mut m = Memory::new();
        m.expand(1_000_000, 0).unwrap();
        assert_eq!(m.len(), 0);
        assert_eq!(Memory::words_for(usize::MAX, 0).unwrap(), 0);
    }

    #[test]
    fn word_roundtrip() {
        let mut m = Memory::new();
        m.expand(64, 32).unwrap();
        let v = U256::from_u128(0xDEAD_BEEF_0000_1111);
        m.store_word(64, v);
        assert_eq!(m.load_word(64), v);
        // Untouched memory reads zero.
        assert_eq!(m.load_word(0), U256::ZERO);
    }

    #[test]
    fn copy_padded_zero_fills() {
        let mut m = Memory::new();
        m.expand(0, 32).unwrap();
        m.store_word(0, U256::MAX);
        m.copy_padded(0, &[1, 2, 3], 32);
        assert_eq!(m.slice(0, 3), &[1, 2, 3]);
        assert!(m.slice(3, 29).iter().all(|&b| b == 0));
    }

    #[test]
    fn limit_enforced() {
        let mut m = Memory::new();
        assert!(matches!(
            m.expand(MEMORY_LIMIT, 1),
            Err(VmError::MemoryLimitExceeded { .. })
        ));
        assert!(matches!(
            Memory::words_for(usize::MAX, 2),
            Err(VmError::MemoryLimitExceeded { .. })
        ));
    }

    #[test]
    fn store_byte() {
        let mut m = Memory::new();
        m.expand(0, 32).unwrap();
        m.store_byte(5, 0xAB);
        assert_eq!(m.slice(5, 1), &[0xAB]);
    }
}
