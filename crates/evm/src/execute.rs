//! Transaction-level execution: intrinsic gas, upfront balance, nonce bump,
//! frame execution, refunds and fee payment to the coinbase.

use fork_primitives::{Address, U256};

use crate::gas::GasSchedule;
use crate::interpreter::{BlockContext, CallParams, Evm, Log, TxContext};
use crate::world::WorldState;
use crate::VmError;

/// Reasons a transaction is invalid *before* execution (it cannot be included
/// in a block at all, as opposed to executing-and-failing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing diagnostics
pub enum TxError {
    /// `gas_limit` below the intrinsic cost of the payload.
    IntrinsicGasTooHigh { intrinsic: u64, limit: u64 },
    /// Sender cannot cover `gas_limit * gas_price + value`.
    InsufficientFunds,
}

impl core::fmt::Display for TxError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::IntrinsicGasTooHigh { intrinsic, limit } => {
                write!(f, "intrinsic gas {intrinsic} exceeds limit {limit}")
            }
            Self::InsufficientFunds => write!(f, "insufficient funds for gas * price + value"),
        }
    }
}

impl std::error::Error for TxError {}

/// Outcome of an executed (included) transaction.
#[derive(Debug, Clone)]
pub struct TransactOutcome {
    /// Whether execution completed without an exceptional halt.
    pub success: bool,
    /// Gas consumed after refunds.
    pub gas_used: u64,
    /// RETURN data of the top-level frame.
    pub output: Vec<u8>,
    /// Logs emitted (empty if the top frame failed).
    pub logs: Vec<Log>,
    /// The deployed contract's address, for creation transactions.
    pub contract_address: Option<Address>,
    /// The halt reason when `success` is false.
    pub halt: Option<VmError>,
}

/// Executes one transaction against `world`.
///
/// On `Ok`, the world has been mutated (even for failed executions: the nonce
/// advances and gas is paid — exactly like mainnet). On `Err`, the world is
/// untouched and the transaction must not be included in a block.
#[allow(clippy::too_many_arguments)] // the yellow paper's Υ takes exactly these
pub fn transact(
    world: &mut WorldState,
    schedule: GasSchedule,
    block: BlockContext,
    sender: Address,
    to: Option<Address>,
    value: U256,
    data: &[u8],
    gas_limit: u64,
    gas_price: U256,
) -> Result<TransactOutcome, TxError> {
    let intrinsic = schedule.intrinsic_gas(data, to.is_none());
    if intrinsic > gas_limit {
        return Err(TxError::IntrinsicGasTooHigh {
            intrinsic,
            limit: gas_limit,
        });
    }
    let upfront = U256::from_u64(gas_limit)
        .saturating_mul(gas_price)
        .saturating_add(value);
    if world.balance(sender) < upfront {
        return Err(TxError::InsufficientFunds);
    }

    // Charge the full gas allowance up front; refund later.
    let gas_cost = U256::from_u64(gas_limit).saturating_mul(gas_price);
    assert!(world.debit(sender, gas_cost), "checked above");
    world.bump_nonce(sender);

    let mut evm = Evm::new(
        world,
        schedule,
        block,
        TxContext {
            origin: sender,
            gas_price,
        },
    );

    let gas = gas_limit - intrinsic;
    let (result, contract_address) = match to {
        Some(callee) => (
            evm.call(CallParams {
                caller: sender,
                address: callee,
                value,
                input: data.to_vec(),
                gas,
            }),
            None,
        ),
        None => {
            let (r, addr) = evm.create(sender, value, data.to_vec(), gas);
            (r, addr)
        }
    };

    let logs = std::mem::take(&mut evm.logs);
    let refund_counter = evm.refund;

    let gas_used_raw = gas_limit - result.gas_left;
    // SSTORE-clear refunds are capped at half of what was used.
    let refund = refund_counter.min(gas_used_raw / 2);
    let gas_used = gas_used_raw - refund;

    // Return unused gas to the sender, pay the fee to the coinbase.
    let returned = U256::from_u64(gas_limit - gas_used).saturating_mul(gas_price);
    world.credit(sender, returned);
    let fee = U256::from_u64(gas_used).saturating_mul(gas_price);
    world.credit(block.coinbase, fee);

    crate::telemetry::record_tx_gas(gas_used);

    Ok(TransactOutcome {
        success: result.success,
        gas_used,
        output: result.output,
        logs,
        contract_address,
        halt: result.error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::{Assembler, Opcode};

    fn addr(n: u8) -> Address {
        Address([n; 20])
    }

    fn funded_world(balance: u64) -> WorldState {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from_u64(balance));
        w
    }

    #[test]
    fn plain_transfer_charges_21000() {
        let mut w = funded_world(10_000_000);
        let out = transact(
            &mut w,
            GasSchedule::frontier(),
            BlockContext {
                coinbase: addr(0xC0),
                ..BlockContext::default()
            },
            addr(1),
            Some(addr(2)),
            U256::from_u64(1_000),
            &[],
            21_000,
            U256::ONE,
        )
        .unwrap();
        assert!(out.success);
        assert_eq!(out.gas_used, 21_000);
        assert_eq!(w.balance(addr(2)), U256::from_u64(1_000));
        assert_eq!(
            w.balance(addr(1)),
            U256::from_u64(10_000_000 - 1_000 - 21_000)
        );
        assert_eq!(w.balance(addr(0xC0)), U256::from_u64(21_000));
        assert_eq!(w.nonce(addr(1)), 1);
    }

    #[test]
    fn intrinsic_gas_over_limit_rejected() {
        let mut w = funded_world(10_000_000);
        let err = transact(
            &mut w,
            GasSchedule::frontier(),
            BlockContext::default(),
            addr(1),
            Some(addr(2)),
            U256::ZERO,
            &[1, 2, 3],
            21_000, // data costs extra
            U256::ONE,
        )
        .unwrap_err();
        assert!(matches!(err, TxError::IntrinsicGasTooHigh { .. }));
        // World untouched.
        assert_eq!(w.nonce(addr(1)), 0);
        assert_eq!(w.balance(addr(1)), U256::from_u64(10_000_000));
    }

    #[test]
    fn insufficient_funds_rejected() {
        let mut w = funded_world(20_000);
        let err = transact(
            &mut w,
            GasSchedule::frontier(),
            BlockContext::default(),
            addr(1),
            Some(addr(2)),
            U256::ZERO,
            &[],
            21_000,
            U256::ONE,
        )
        .unwrap_err();
        assert_eq!(err, TxError::InsufficientFunds);
    }

    #[test]
    fn failed_execution_still_pays_gas_and_bumps_nonce() {
        let mut w = funded_world(10_000_000);
        // Contract that hits an invalid opcode immediately.
        w.set_code(addr(2), vec![0xFE]);
        let out = transact(
            &mut w,
            GasSchedule::frontier(),
            BlockContext {
                coinbase: addr(0xC0),
                ..BlockContext::default()
            },
            addr(1),
            Some(addr(2)),
            U256::ZERO,
            &[],
            100_000,
            U256::ONE,
        )
        .unwrap();
        assert!(!out.success);
        // All gas consumed (pre-Byzantium).
        assert_eq!(out.gas_used, 100_000);
        assert_eq!(w.nonce(addr(1)), 1);
        assert_eq!(w.balance(addr(0xC0)), U256::from_u64(100_000));
    }

    #[test]
    fn sstore_clear_refund_applied() {
        let mut w = funded_world(10_000_000);
        w.set_storage(addr(2), U256::ONE, U256::from_u64(9));
        // Clear slot 1.
        let code = Assembler::new().push(0).push(1).op(Opcode::SStore).build();
        w.set_code(addr(2), code);
        w.commit();
        let out = transact(
            &mut w,
            GasSchedule::frontier(),
            BlockContext::default(),
            addr(1),
            Some(addr(2)),
            U256::ZERO,
            &[],
            100_000,
            U256::ONE,
        )
        .unwrap();
        assert!(out.success);
        // Raw usage: 21000 + 2*3 (pushes) + 5000 (sstore reset) = 26006.
        // Refund 15000 capped at half: 13003 -> used = 13003.
        assert_eq!(out.gas_used, 13_003);
        assert_eq!(w.storage(addr(2), U256::ONE), U256::ZERO);
    }

    #[test]
    fn create_transaction_deploys() {
        let mut w = funded_world(10_000_000);
        let init = Assembler::new()
            .push(0x6000)
            .push(0)
            .op(Opcode::MStore)
            .push(2)
            .push(30)
            .op(Opcode::Return)
            .build();
        let out = transact(
            &mut w,
            GasSchedule::frontier(),
            BlockContext::default(),
            addr(1),
            None,
            U256::ZERO,
            &init,
            200_000,
            U256::ONE,
        )
        .unwrap();
        assert!(out.success);
        let deployed = out.contract_address.unwrap();
        assert_eq!(w.code(deployed), &[0x60, 0x00]);
        // Gas includes the create intrinsic.
        assert!(out.gas_used > 53_000);
    }

    #[test]
    fn gas_price_multiplies_fee() {
        let mut w = funded_world(10_000_000);
        let coinbase = addr(0xC0);
        transact(
            &mut w,
            GasSchedule::frontier(),
            BlockContext {
                coinbase,
                ..BlockContext::default()
            },
            addr(1),
            Some(addr(2)),
            U256::ZERO,
            &[],
            21_000,
            U256::from_u64(20),
        )
        .unwrap();
        assert_eq!(w.balance(coinbase), U256::from_u64(21_000 * 20));
    }
}
