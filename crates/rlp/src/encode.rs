//! RLP encoding.

/// An append-only RLP output stream.
///
/// Strings are emitted directly; lists are built by snapshotting the buffer
/// position, writing the payload, then splicing the header in front — this
/// avoids a recursive intermediate tree on the hot path (every block and
/// transaction hash in the simulator passes through here).
#[derive(Default, Debug, Clone)]
pub struct RlpStream {
    out: Vec<u8>,
}

impl RlpStream {
    /// A fresh, empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the stream and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }

    /// Appends a byte-string item.
    pub fn append_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        match bytes {
            [b] if *b < 0x80 => self.out.push(*b),
            _ => {
                self.push_length_header(bytes.len(), 0x80);
                self.out.extend_from_slice(bytes);
            }
        }
        self
    }

    /// Appends an unsigned integer in canonical (minimal big-endian) form.
    pub fn append_u64(&mut self, v: u64) -> &mut Self {
        let be = v.to_be_bytes();
        let start = be.iter().position(|&b| b != 0).unwrap_or(8);
        self.append_bytes(&be[start..])
    }

    /// Appends a 256-bit unsigned integer in canonical form.
    pub fn append_u256(&mut self, v: fork_primitives::U256) -> &mut Self {
        self.append_bytes(&v.to_be_bytes_trimmed())
    }

    /// Appends a boolean as the canonical integers 1 / 0 (empty string).
    pub fn append_bool(&mut self, v: bool) -> &mut Self {
        self.append_u64(v as u64)
    }

    /// Appends an already-encoded RLP item verbatim (for nesting).
    pub fn append_raw(&mut self, rlp: &[u8]) -> &mut Self {
        self.out.extend_from_slice(rlp);
        self
    }

    /// Begins a list; returns a guard position to pass to [`Self::finish_list`].
    pub fn begin_list(&mut self) -> usize {
        self.out.len()
    }

    /// Closes a list opened at `start`, splicing the list header before the
    /// payload written since.
    pub fn finish_list(&mut self, start: usize) -> &mut Self {
        let payload_len = self.out.len() - start;
        let mut header = Vec::with_capacity(9);
        write_length_header(&mut header, payload_len, 0xC0);
        self.out.splice(start..start, header);
        self
    }

    fn push_length_header(&mut self, len: usize, offset: u8) {
        write_length_header(&mut self.out, len, offset);
    }
}

/// Writes a string (`offset = 0x80`) or list (`offset = 0xC0`) header.
fn write_length_header(out: &mut Vec<u8>, len: usize, offset: u8) {
    if len <= 55 {
        out.push(offset + len as u8);
    } else {
        let be = (len as u64).to_be_bytes();
        let start = be.iter().position(|&b| b != 0).unwrap_or(8);
        let len_of_len = 8 - start;
        out.push(offset + 55 + len_of_len as u8);
        out.extend_from_slice(&be[start..]);
    }
}

/// Convenience: encodes a single byte-string.
pub fn encode_bytes(bytes: &[u8]) -> Vec<u8> {
    let mut s = RlpStream::new();
    s.append_bytes(bytes);
    s.into_bytes()
}

/// Convenience: encodes a list from a closure that fills the payload.
pub fn encode_list(fill: impl FnOnce(&mut RlpStream)) -> Vec<u8> {
    let mut s = RlpStream::new();
    let l = s.begin_list();
    fill(&mut s);
    s.finish_list(l);
    s.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Vectors from the Ethereum wiki's RLP page.
    #[test]
    fn dog_vector() {
        assert_eq!(encode_bytes(b"dog"), vec![0x83, b'd', b'o', b'g']);
    }

    #[test]
    fn cat_dog_list_vector() {
        let enc = encode_list(|s| {
            s.append_bytes(b"cat");
            s.append_bytes(b"dog");
        });
        assert_eq!(
            enc,
            vec![0xC8, 0x83, b'c', b'a', b't', 0x83, b'd', b'o', b'g']
        );
    }

    #[test]
    fn empty_string_vector() {
        assert_eq!(encode_bytes(b""), vec![0x80]);
    }

    #[test]
    fn empty_list_vector() {
        assert_eq!(encode_list(|_| {}), vec![0xC0]);
    }

    #[test]
    fn integer_zero_is_empty_string() {
        let mut s = RlpStream::new();
        s.append_u64(0);
        assert_eq!(s.into_bytes(), vec![0x80]);
    }

    #[test]
    fn small_byte_encodes_as_itself() {
        assert_eq!(encode_bytes(&[0x0F]), vec![0x0F]);
        assert_eq!(encode_bytes(&[0x7F]), vec![0x7F]);
        assert_eq!(encode_bytes(&[0x80]), vec![0x81, 0x80]);
    }

    #[test]
    fn fifteen_vector() {
        let mut s = RlpStream::new();
        s.append_u64(15);
        assert_eq!(s.into_bytes(), vec![0x0F]);
    }

    #[test]
    fn one_thousand_twenty_four_vector() {
        let mut s = RlpStream::new();
        s.append_u64(1024);
        assert_eq!(s.into_bytes(), vec![0x82, 0x04, 0x00]);
    }

    #[test]
    fn lorem_long_string_vector() {
        let lorem = b"Lorem ipsum dolor sit amet, consectetur adipisicing elit";
        let enc = encode_bytes(lorem);
        assert_eq!(enc[0], 0xB8);
        assert_eq!(enc[1], lorem.len() as u8);
        assert_eq!(&enc[2..], lorem);
    }

    #[test]
    fn set_theoretic_nesting_vector() {
        // [ [], [[]], [ [], [[]] ] ]
        let enc = encode_list(|s| {
            let a = s.begin_list();
            s.finish_list(a);
            let b = s.begin_list();
            let b1 = s.begin_list();
            s.finish_list(b1);
            s.finish_list(b);
            let c = s.begin_list();
            let c1 = s.begin_list();
            s.finish_list(c1);
            let c2 = s.begin_list();
            let c21 = s.begin_list();
            s.finish_list(c21);
            s.finish_list(c2);
            s.finish_list(c);
        });
        assert_eq!(enc, vec![0xC7, 0xC0, 0xC1, 0xC0, 0xC3, 0xC0, 0xC1, 0xC0]);
    }

    #[test]
    fn long_list_header() {
        let enc = encode_list(|s| {
            for _ in 0..30 {
                s.append_bytes(b"ab");
            }
        });
        // 30 items * 3 bytes = 90 byte payload -> long form: 0xF8, 90.
        assert_eq!(enc[0], 0xF8);
        assert_eq!(enc[1], 90);
        assert_eq!(enc.len(), 92);
    }

    #[test]
    fn u256_minimal_encoding() {
        let mut s = RlpStream::new();
        s.append_u256(fork_primitives::U256::from_u64(0x0400));
        assert_eq!(s.into_bytes(), vec![0x82, 0x04, 0x00]);
    }
}
