//! RLP decoding errors.

use core::fmt;

/// Errors raised while decoding an RLP stream.
///
/// Decoding is strict: any non-canonical encoding (non-minimal length,
/// single byte wrapped in a string header, leading zeros in an integer) is
/// rejected, matching the consensus-critical behavior of Ethereum clients —
/// two nodes must never disagree on whether bytes parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing diagnostics
pub enum RlpError {
    /// Input ended before the announced payload did.
    UnexpectedEof,
    /// Bytes remained after the top-level item was fully decoded.
    TrailingBytes { extra: usize },
    /// A long-form length had leading zero bytes or encoded a value ≤ 55.
    NonCanonicalLength,
    /// A single byte `< 0x80` was wrapped in a string header.
    NonCanonicalSingleByte,
    /// An integer field had leading zero bytes.
    LeadingZeroInteger,
    /// An integer field was wider than the target type.
    IntegerOverflow,
    /// Expected a string item but found a list (or vice versa).
    UnexpectedType { expected: &'static str },
    /// A decoded list had the wrong number of fields for the target struct.
    WrongFieldCount { expected: usize, got: usize },
    /// A fixed-width field (hash, address, signature) had the wrong length.
    WrongLength { expected: usize, got: usize },
    /// A boolean field held a byte other than 0 or 1.
    InvalidBool,
    /// Payload length does not fit in usize (malicious length prefix).
    LengthOverflow,
}

impl fmt::Display for RlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEof => write!(f, "unexpected end of RLP input"),
            Self::TrailingBytes { extra } => write!(f, "{extra} trailing bytes after RLP item"),
            Self::NonCanonicalLength => write!(f, "non-canonical RLP length encoding"),
            Self::NonCanonicalSingleByte => {
                write!(f, "single byte < 0x80 must encode as itself")
            }
            Self::LeadingZeroInteger => write!(f, "integer has leading zero bytes"),
            Self::IntegerOverflow => write!(f, "integer wider than target type"),
            Self::UnexpectedType { expected } => write!(f, "expected RLP {expected}"),
            Self::WrongFieldCount { expected, got } => {
                write!(f, "expected {expected} RLP fields, got {got}")
            }
            Self::WrongLength { expected, got } => {
                write!(f, "expected {expected}-byte field, got {got}")
            }
            Self::InvalidBool => write!(f, "boolean must be 0 or 1"),
            Self::LengthOverflow => write!(f, "RLP length prefix overflows usize"),
        }
    }
}

impl std::error::Error for RlpError {}
