//! # fork-rlp
//!
//! Recursive Length Prefix (RLP) — Ethereum's canonical serialization — built
//! from scratch. Headers, transactions and network messages in this workspace
//! are all RLP-encoded so that hashing (`keccak256(rlp(header))`) matches the
//! real protocol's structure.
//!
//! Decoding is strict/canonical: any encoding a consensus client would reject
//! (non-minimal lengths, wrapped single bytes, leading-zero integers) errors
//! here too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decode;
pub mod encode;
pub mod error;

pub use decode::{decode, decode_prefix, expect_fields, Item, ListIter};
pub use encode::{encode_bytes, encode_list, RlpStream};
pub use error::RlpError;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A tree of strings/lists for roundtrip testing.
    #[derive(Debug, Clone)]
    enum Tree {
        Leaf(Vec<u8>),
        Node(Vec<Tree>),
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = proptest::collection::vec(any::<u8>(), 0..80).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 24, 6, |inner| {
            proptest::collection::vec(inner, 0..6).prop_map(Tree::Node)
        })
    }

    fn encode_tree(t: &Tree, s: &mut RlpStream) {
        match t {
            Tree::Leaf(bytes) => {
                s.append_bytes(bytes);
            }
            Tree::Node(children) => {
                let l = s.begin_list();
                for c in children {
                    encode_tree(c, s);
                }
                s.finish_list(l);
            }
        }
    }

    fn check_tree(t: &Tree, item: &Item<'_>) -> bool {
        match (t, item) {
            (Tree::Leaf(bytes), Item::Bytes(b)) => bytes.as_slice() == *b,
            (Tree::Node(children), item @ Item::List(_)) => {
                let items = match item.list_items() {
                    Ok(i) => i,
                    Err(_) => return false,
                };
                items.len() == children.len()
                    && children.iter().zip(&items).all(|(c, i)| check_tree(c, i))
            }
            _ => false,
        }
    }

    proptest! {
        #[test]
        fn tree_roundtrip(t in arb_tree()) {
            let mut s = RlpStream::new();
            encode_tree(&t, &mut s);
            let enc = s.into_bytes();
            let item = decode(&enc).unwrap();
            prop_assert!(check_tree(&t, &item));
        }

        #[test]
        fn u64_roundtrip(v in any::<u64>()) {
            let mut s = RlpStream::new();
            s.append_u64(v);
            let enc = s.into_bytes();
            prop_assert_eq!(decode(&enc).unwrap().as_u64().unwrap(), v);
        }

        #[test]
        fn bytes_roundtrip(b in proptest::collection::vec(any::<u8>(), 0..300)) {
            let enc = encode_bytes(&b);
            prop_assert_eq!(decode(&enc).unwrap().bytes().unwrap(), b.as_slice());
        }

        #[test]
        fn decoder_never_panics_on_garbage(b in proptest::collection::vec(any::<u8>(), 0..200)) {
            // Must return Ok or Err, never panic or loop.
            let _ = decode(&b);
        }

        #[test]
        fn encodings_are_prefix_free(
            a in proptest::collection::vec(any::<u8>(), 0..64),
            b in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            // decode_prefix over concatenated encodings recovers the split.
            let ea = encode_bytes(&a);
            let eb = encode_bytes(&b);
            let joined = [ea.clone(), eb].concat();
            let (first, rest) = decode_prefix(&joined).unwrap();
            prop_assert_eq!(first.bytes().unwrap(), a.as_slice());
            let (second, tail) = decode_prefix(rest).unwrap();
            prop_assert_eq!(second.bytes().unwrap(), b.as_slice());
            prop_assert!(tail.is_empty());
        }
    }
}
