//! Strict RLP decoding.

use crate::error::RlpError;

/// A decoded view into an RLP item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item<'a> {
    /// A byte string.
    Bytes(&'a [u8]),
    /// A list; elements are decoded lazily via [`ListIter`].
    List(&'a [u8]),
}

/// Decodes the single top-level item of `input`, rejecting trailing bytes.
pub fn decode(input: &[u8]) -> Result<Item<'_>, RlpError> {
    let (item, rest) = decode_prefix(input)?;
    if !rest.is_empty() {
        return Err(RlpError::TrailingBytes { extra: rest.len() });
    }
    Ok(item)
}

/// Decodes one item from the front of `input`, returning it and the remainder.
pub fn decode_prefix(input: &[u8]) -> Result<(Item<'_>, &[u8]), RlpError> {
    let first = *input.first().ok_or(RlpError::UnexpectedEof)?;
    match first {
        0x00..=0x7F => Ok((Item::Bytes(&input[..1]), &input[1..])),
        0x80..=0xB7 => {
            let len = (first - 0x80) as usize;
            let payload = slice(input, 1, len)?;
            if len == 1 && payload[0] < 0x80 {
                return Err(RlpError::NonCanonicalSingleByte);
            }
            Ok((Item::Bytes(payload), &input[1 + len..]))
        }
        0xB8..=0xBF => {
            let (len, header) = long_length(input, first - 0xB7)?;
            let payload = slice(input, header, len)?;
            Ok((Item::Bytes(payload), &input[header + len..]))
        }
        0xC0..=0xF7 => {
            let len = (first - 0xC0) as usize;
            let payload = slice(input, 1, len)?;
            Ok((Item::List(payload), &input[1 + len..]))
        }
        0xF8..=0xFF => {
            let (len, header) = long_length(input, first - 0xF7)?;
            let payload = slice(input, header, len)?;
            Ok((Item::List(payload), &input[header + len..]))
        }
    }
}

/// Reads a long-form length of `len_of_len` bytes; returns (length,
/// header_size). Enforces canonical form: no leading zeros, value > 55.
fn long_length(input: &[u8], len_of_len: u8) -> Result<(usize, usize), RlpError> {
    let n = len_of_len as usize;
    let bytes = slice(input, 1, n)?;
    if bytes[0] == 0 {
        return Err(RlpError::NonCanonicalLength);
    }
    if n > core::mem::size_of::<usize>() {
        return Err(RlpError::LengthOverflow);
    }
    let mut len = 0usize;
    for &b in bytes {
        len = len
            .checked_mul(256)
            .and_then(|l| l.checked_add(b as usize))
            .ok_or(RlpError::LengthOverflow)?;
    }
    if len <= 55 {
        return Err(RlpError::NonCanonicalLength);
    }
    Ok((len, 1 + n))
}

fn slice(input: &[u8], start: usize, len: usize) -> Result<&[u8], RlpError> {
    input
        .get(start..start.checked_add(len).ok_or(RlpError::LengthOverflow)?)
        .ok_or(RlpError::UnexpectedEof)
}

impl<'a> Item<'a> {
    /// The byte-string payload, or an error for lists.
    pub fn bytes(&self) -> Result<&'a [u8], RlpError> {
        match self {
            Item::Bytes(b) => Ok(b),
            Item::List(_) => Err(RlpError::UnexpectedType { expected: "string" }),
        }
    }

    /// An iterator over list elements, or an error for strings.
    pub fn list(&self) -> Result<ListIter<'a>, RlpError> {
        match self {
            Item::List(payload) => Ok(ListIter { rest: payload }),
            Item::Bytes(_) => Err(RlpError::UnexpectedType { expected: "list" }),
        }
    }

    /// Decodes all list elements eagerly.
    pub fn list_items(&self) -> Result<Vec<Item<'a>>, RlpError> {
        self.list()?.collect()
    }

    /// Decodes a canonical unsigned integer (no leading zeros, ≤ 8 bytes).
    pub fn as_u64(&self) -> Result<u64, RlpError> {
        let b = self.bytes()?;
        if b.len() > 8 {
            return Err(RlpError::IntegerOverflow);
        }
        if b.first() == Some(&0) {
            return Err(RlpError::LeadingZeroInteger);
        }
        let mut v = 0u64;
        for &byte in b {
            v = v << 8 | byte as u64;
        }
        Ok(v)
    }

    /// Decodes a canonical 256-bit unsigned integer.
    pub fn as_u256(&self) -> Result<fork_primitives::U256, RlpError> {
        let b = self.bytes()?;
        if b.len() > 32 {
            return Err(RlpError::IntegerOverflow);
        }
        if b.first() == Some(&0) {
            return Err(RlpError::LeadingZeroInteger);
        }
        fork_primitives::U256::from_be_slice(b).map_err(|_| RlpError::IntegerOverflow)
    }

    /// Decodes a boolean (canonical integers 0/1).
    pub fn as_bool(&self) -> Result<bool, RlpError> {
        match self.as_u64()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(RlpError::InvalidBool),
        }
    }

    /// Decodes a fixed-width byte array (hashes, addresses, signatures).
    pub fn as_array<const N: usize>(&self) -> Result<[u8; N], RlpError> {
        let b = self.bytes()?;
        if b.len() != N {
            return Err(RlpError::WrongLength {
                expected: N,
                got: b.len(),
            });
        }
        let mut out = [0u8; N];
        out.copy_from_slice(b);
        Ok(out)
    }
}

/// Lazy iterator over the elements of a decoded list.
pub struct ListIter<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for ListIter<'a> {
    type Item = Result<Item<'a>, RlpError>;
    fn next(&mut self) -> Option<Self::Item> {
        if self.rest.is_empty() {
            return None;
        }
        match decode_prefix(self.rest) {
            Ok((item, rest)) => {
                self.rest = rest;
                Some(Ok(item))
            }
            Err(e) => {
                self.rest = &[];
                Some(Err(e))
            }
        }
    }
}

/// Decodes a list item and checks it has exactly `n` elements.
pub fn expect_fields<'a>(item: &Item<'a>, n: usize) -> Result<Vec<Item<'a>>, RlpError> {
    let fields = item.list_items()?;
    if fields.len() != n {
        return Err(RlpError::WrongFieldCount {
            expected: n,
            got: fields.len(),
        });
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode_bytes, encode_list, RlpStream};

    #[test]
    fn decode_dog() {
        let enc = encode_bytes(b"dog");
        assert_eq!(decode(&enc).unwrap(), Item::Bytes(b"dog"));
    }

    #[test]
    fn decode_cat_dog_list() {
        let enc = encode_list(|s| {
            s.append_bytes(b"cat");
            s.append_bytes(b"dog");
        });
        let item = decode(&enc).unwrap();
        let items = item.list_items().unwrap();
        assert_eq!(items, vec![Item::Bytes(b"cat"), Item::Bytes(b"dog")]);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = encode_bytes(b"dog");
        enc.push(0x00);
        assert_eq!(decode(&enc), Err(RlpError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn truncated_input_rejected() {
        let enc = encode_bytes(b"longer string here");
        assert_eq!(decode(&enc[..enc.len() - 1]), Err(RlpError::UnexpectedEof));
        assert_eq!(decode(&[]), Err(RlpError::UnexpectedEof));
    }

    #[test]
    fn non_canonical_single_byte_rejected() {
        // 0x81 0x05 wraps a byte that must encode as itself.
        assert_eq!(decode(&[0x81, 0x05]), Err(RlpError::NonCanonicalSingleByte));
    }

    #[test]
    fn non_canonical_long_length_rejected() {
        // Long form used for a 3-byte payload.
        assert_eq!(
            decode(&[0xB8, 0x03, 1, 2, 3]),
            Err(RlpError::NonCanonicalLength)
        );
        // Leading zero in length-of-length.
        assert_eq!(
            decode(&[0xB9, 0x00, 0x38]),
            Err(RlpError::NonCanonicalLength)
        );
    }

    #[test]
    fn integer_decoding() {
        let mut s = RlpStream::new();
        s.append_u64(1024);
        let enc = s.into_bytes();
        assert_eq!(decode(&enc).unwrap().as_u64().unwrap(), 1024);
    }

    #[test]
    fn integer_leading_zero_rejected() {
        assert_eq!(
            decode(&[0x82, 0x00, 0x01]).unwrap().as_u64(),
            Err(RlpError::LeadingZeroInteger)
        );
    }

    #[test]
    fn integer_too_wide_rejected() {
        let mut s = RlpStream::new();
        s.append_bytes(&[0xFF; 9]);
        let enc = s.into_bytes();
        assert_eq!(
            decode(&enc).unwrap().as_u64(),
            Err(RlpError::IntegerOverflow)
        );
    }

    #[test]
    fn bool_decoding() {
        let mut s = RlpStream::new();
        s.append_bool(true).append_bool(false).append_u64(2);
        let enc = s.into_bytes();
        // Decode the three items in sequence.
        let (a, rest) = decode_prefix(&enc).unwrap();
        let (b, rest) = decode_prefix(rest).unwrap();
        let (c, _) = decode_prefix(rest).unwrap();
        assert_eq!(a.as_bool(), Ok(true));
        assert_eq!(b.as_bool(), Ok(false));
        assert_eq!(c.as_bool(), Err(RlpError::InvalidBool));
    }

    #[test]
    fn fixed_array_decoding() {
        let enc = encode_bytes(&[7u8; 20]);
        let arr: [u8; 20] = decode(&enc).unwrap().as_array().unwrap();
        assert_eq!(arr, [7u8; 20]);
        assert_eq!(
            decode(&enc).unwrap().as_array::<32>(),
            Err(RlpError::WrongLength {
                expected: 32,
                got: 20
            })
        );
    }

    #[test]
    fn type_mismatch_errors() {
        let list = encode_list(|_| {});
        assert!(decode(&list).unwrap().bytes().is_err());
        let string = encode_bytes(b"x");
        assert!(decode(&string).unwrap().list().is_err());
    }

    #[test]
    fn expect_fields_checks_count() {
        let enc = encode_list(|s| {
            s.append_u64(1);
            s.append_u64(2);
        });
        let item = decode(&enc).unwrap();
        assert!(expect_fields(&item, 2).is_ok());
        assert_eq!(
            expect_fields(&item, 3),
            Err(RlpError::WrongFieldCount {
                expected: 3,
                got: 2
            })
        );
    }

    #[test]
    fn nested_list_roundtrip() {
        let enc = encode_list(|s| {
            s.append_bytes(b"outer");
            let inner = s.begin_list();
            s.append_u64(42);
            s.finish_list(inner);
        });
        let item = decode(&enc).unwrap();
        let fields = item.list_items().unwrap();
        assert_eq!(fields[0], Item::Bytes(b"outer"));
        let inner = fields[1].list_items().unwrap();
        assert_eq!(inner[0].as_u64().unwrap(), 42);
    }

    #[test]
    fn u256_roundtrip() {
        let v = fork_primitives::U256::from_dec_str("98765432109876543210987654321").unwrap();
        let mut s = RlpStream::new();
        s.append_u256(v);
        let enc = s.into_bytes();
        assert_eq!(decode(&enc).unwrap().as_u256().unwrap(), v);
    }
}
