//! Durability tests: round-trips, torn tails, bit flips, replay order.
//!
//! These mirror the net layer's `seal_frame` proptests at the storage layer:
//! whatever happens to the bytes on disk, the archive either reads the data
//! back exactly or *reports* corruption — it never panics and never serves
//! silently wrong records.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use fork_analytics::{BlockRecord, TxRecord};
use fork_archive::{
    ArchiveConfig, ArchiveMeta, ArchiveReader, ArchiveRecord, ArchiveWriter, Codec,
};
use fork_primitives::{Address, H256, U256};
use fork_replay::Side;
use fork_sim::LedgerSink;
use proptest::prelude::*;

/// Fresh scratch directory per call (tests run in parallel in one process).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "fork-archive-test-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn block(side: Side, number: u64) -> BlockRecord {
    BlockRecord {
        network: side,
        number,
        hash: H256([(number % 251) as u8; 32]),
        timestamp: 1_469_000_000 + number * 14,
        difficulty: U256::from_u128(62_000_000_000_000 + number as u128),
        beneficiary: Address([(number % 31) as u8; 20]),
        gas_used: 21_000 + number,
        tx_count: (number % 7) as u32,
        ommer_count: (number % 3) as u32,
    }
}

fn tx(side: Side, n: u64, ts: u64) -> TxRecord {
    TxRecord {
        network: side,
        hash: H256([(n % 253) as u8; 32]),
        timestamp: ts,
        is_contract: n.is_multiple_of(2),
        has_chain_id: n.is_multiple_of(3),
        value: U256::from_u64(n * 1_000_000_007),
    }
}

/// Writes `plan` (side, number, txs-per-block) through the sink interface
/// and finishes; returns the flat list of records in global write order.
fn write_archive(
    dir: &std::path::Path,
    config: ArchiveConfig,
    plan: &[(u8, u64, u8)],
) -> Vec<ArchiveRecord> {
    let mut writer = ArchiveWriter::create_with(dir, config).unwrap();
    let mut written = Vec::new();
    let mut tx_n = 0u64;
    for &(side_bit, number, txs) in plan {
        let side = if side_bit == 0 { Side::Eth } else { Side::Etc };
        let b = block(side, number);
        let ts = b.timestamp;
        writer.block(b.clone());
        written.push(ArchiveRecord::Block(b));
        for _ in 0..txs {
            let t = tx(side, tx_n, ts);
            tx_n += 1;
            writer.tx(t.clone());
            written.push(ArchiveRecord::Tx(t));
        }
    }
    writer.finish(None).unwrap();
    written
}

/// Collects everything a replay delivers, in delivery order.
#[derive(Default)]
struct CollectSink(Vec<ArchiveRecord>);

impl LedgerSink for CollectSink {
    fn block(&mut self, record: BlockRecord) {
        self.0.push(ArchiveRecord::Block(record));
    }
    fn tx(&mut self, record: TxRecord) {
        self.0.push(ArchiveRecord::Tx(record));
    }
}

/// Per-side block numbers must ascend (the engine emits finalized blocks in
/// order); this massages an arbitrary plan into that shape.
fn normalize_plan(raw: Vec<[u8; 2]>) -> Vec<(u8, u64, u8)> {
    let mut next = [0u64; 2];
    raw.into_iter()
        .map(|[side_bit, txs]| {
            let side = (side_bit % 2) as usize;
            next[side] += 1;
            (side as u8, next[side], txs % 5)
        })
        .collect()
}

proptest! {
    /// Write N records, reopen, read N back — bit-exact, both the per-side
    /// streams and the seq-merged replay.
    #[test]
    fn roundtrip_arbitrary_plans(
        raw in proptest::collection::vec(any::<[u8; 2]>(), 1..60),
        // Small segments so plans regularly span several files.
        seg_kib in 1u64..8,
    ) {
        let dir = scratch("roundtrip");
        let config = ArchiveConfig { segment_max_bytes: seg_kib * 1024, ..ArchiveConfig::default() };
        let plan = normalize_plan(raw);
        let written = write_archive(&dir, config, &plan);

        let reader = ArchiveReader::open(&dir).unwrap();
        prop_assert_eq!(reader.open_report().torn_bytes, 0);
        prop_assert!(reader.open_report().skipped.is_empty());
        prop_assert!(reader.verify().is_clean());

        // Per-side scans return exactly the written subsequences.
        for side in [Side::Eth, Side::Etc] {
            let got: Vec<ArchiveRecord> = reader
                .records(side)
                .map(|r| r.unwrap().1)
                .collect();
            let want: Vec<ArchiveRecord> = written
                .iter()
                .filter(|r| match r {
                    ArchiveRecord::Block(b) => b.network == side,
                    ArchiveRecord::Tx(t) => t.network == side,
                })
                .cloned()
                .collect();
            prop_assert_eq!(got, want);
        }

        // The seq-merge reconstructs the global write order exactly.
        let mut sink = CollectSink::default();
        let delivered = reader.replay_into_sink(&mut sink).unwrap();
        prop_assert_eq!(delivered as usize, written.len());
        prop_assert_eq!(sink.0, written);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Chopping an arbitrary number of bytes off a segment's end (what a
    /// crash mid-write leaves behind) never panics the reader: every record
    /// before the cut reads back, nothing after it is invented.
    #[test]
    fn torn_tail_recovers(
        raw in proptest::collection::vec(any::<[u8; 2]>(), 2..40),
        cut in 1u64..200,
    ) {
        let dir = scratch("torn");
        let plan = normalize_plan(raw);
        // The generated plan may be single-sided; tear whichever side has data.
        let torn_side = if plan.iter().any(|&(s, _, _)| s == 0) {
            Side::Eth
        } else {
            Side::Etc
        };
        let written = write_archive(&dir, ArchiveConfig::default(), &plan);
        let eth_written = written
            .iter()
            .filter(|r| match r {
                ArchiveRecord::Block(b) => b.network == torn_side,
                ArchiveRecord::Tx(t) => t.network == torn_side,
            })
            .count();

        let side_dir = match torn_side {
            Side::Eth => "eth",
            Side::Etc => "etc",
        };
        let seg = dir.join(side_dir).join("seg-00000.seg");
        let bytes = std::fs::read(&seg).unwrap();
        // Keep at least the superblock; cut somewhere in the frame region.
        let keep = bytes.len().saturating_sub(cut as usize).max(32);
        std::fs::write(&seg, &bytes[..keep]).unwrap();

        let reader = ArchiveReader::open(&dir).unwrap();
        let survivors = reader
            .records(torn_side)
            .inspect(|r| assert!(r.is_ok(), "torn tail must not surface as Err"))
            .count();
        prop_assert!(survivors <= eth_written);
        if keep < bytes.len() {
            // At least the frame the cut landed in is gone (a cut landing
            // exactly on a frame boundary removes whole frames and leaves
            // torn_bytes == 0, so only the count is asserted).
            prop_assert!(survivors < eth_written, "a cut must lose the torn frame");
        } else {
            prop_assert_eq!(survivors, eth_written);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_tail_truncated_and_append_resumes() {
    let dir = scratch("torn-resume");
    let plan: Vec<(u8, u64, u8)> = (1..=20u64)
        .map(|n| ((n % 2) as u8, n.div_ceil(2), (n % 4) as u8))
        .collect();
    let written = write_archive(&dir, ArchiveConfig::default(), &plan);

    // Simulate a crash: chop bytes off the end of the eth tail segment so
    // its last frame is incomplete, then append junk shorter than a header.
    let seg = dir.join("eth").join("seg-00000.seg");
    let bytes = std::fs::read(&seg).unwrap();
    let torn_len = bytes.len() as u64 - 13;
    std::fs::write(&seg, &bytes[..torn_len as usize]).unwrap();

    let reader = ArchiveReader::open(&dir).unwrap();
    let report = reader.open_report();
    assert_eq!(report.torn_segments, 1, "the chopped segment is reported");
    assert!(report.torn_bytes > 0);
    // Everything before the torn frame still reads, without panicking.
    let survivors: Vec<ArchiveRecord> = reader
        .records(Side::Eth)
        .map(|r| r.expect("no corrupt frames before the tear"))
        .map(|(_, rec)| rec)
        .collect();
    let eth_written = written
        .iter()
        .filter(|r| {
            matches!(r, ArchiveRecord::Block(b) if b.network == Side::Eth)
                || matches!(r, ArchiveRecord::Tx(t) if t.network == Side::Eth)
        })
        .count();
    assert_eq!(
        survivors.len(),
        eth_written - 1,
        "exactly the torn frame is lost"
    );

    // Reopen for appending: the tail is physically truncated...
    let max_seq_before = written.len() as u64 - 1;
    let mut writer = ArchiveWriter::open_append(&dir).unwrap();
    let on_disk = std::fs::metadata(&seg).unwrap().len();
    assert!(on_disk < torn_len, "torn bytes removed from disk");
    // ...and sequence numbering resumes past every surviving record.
    assert!(writer.next_seq() <= max_seq_before + 1);
    let resumed_at = writer.next_seq();
    writer.block(block(Side::Eth, 999));
    writer.finish(None).unwrap();

    let reader = ArchiveReader::open(&dir).unwrap();
    assert_eq!(reader.open_report().torn_bytes, 0, "tail healed");
    let last = reader
        .records(Side::Eth)
        .map(|r| r.unwrap())
        .last()
        .unwrap();
    assert_eq!(last.0, resumed_at);
    assert!(matches!(last.1, ArchiveRecord::Block(b) if b.number == 999));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_single_byte_flip_is_detected() {
    let dir = scratch("flip");
    let plan: Vec<(u8, u64, u8)> = vec![(0, 1, 2), (1, 1, 1), (0, 2, 0)];
    write_archive(&dir, ArchiveConfig::default(), &plan);
    let seg = dir.join("eth").join("seg-00000.seg");
    let clean = std::fs::read(&seg).unwrap();
    let clean_count = {
        let reader = ArchiveReader::open(&dir).unwrap();
        let (ok, bad, torn) = reader.verify().totals();
        assert_eq!((bad, torn), (0, 0));
        ok
    };

    for i in 0..clean.len() {
        let mut bad = clean.clone();
        bad[i] ^= 0x10;
        std::fs::write(&seg, &bad).unwrap();
        // Opening never panics, whatever byte is flipped.
        let reader = ArchiveReader::open(&dir).unwrap();
        let verify = reader.verify();
        assert!(
            !verify.is_clean(),
            "flip at byte {i} of {} undetected",
            clean.len()
        );
        // Structural flips (superblock, frame lengths) may hide later
        // frames, but a detected-corrupt archive must never claim *more*
        // valid frames than the clean one.
        let (ok, _, _) = verify.totals();
        assert!(ok < clean_count + 1, "flip at {i} grew the archive");
    }
    std::fs::write(&seg, &clean).unwrap();
    assert!(ArchiveReader::open(&dir).unwrap().verify().is_clean());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn range_queries_match_full_scans() {
    let dir = scratch("ranges");
    // 200 eth blocks with a few txs each, tiny segments to force several
    // files and exercise cross-segment seeks.
    let plan: Vec<(u8, u64, u8)> = (1..=200u64).map(|n| (0u8, n, (n % 3) as u8)).collect();
    let config = ArchiveConfig {
        segment_max_bytes: 4 * 1024,
        ..ArchiveConfig::default()
    };
    write_archive(&dir, config, &plan);
    let reader = ArchiveReader::open(&dir).unwrap();
    assert!(
        reader.open_report().segments > 2,
        "plan should span several segments"
    );

    for (first, last) in [(1u64, 200u64), (37, 105), (1, 1), (200, 200), (150, 9999)] {
        let got: Vec<u64> = reader
            .blocks_in(Side::Eth, first, last)
            .map(|r| r.unwrap().number)
            .collect();
        let want: Vec<u64> = (first..=last.min(200)).collect();
        assert_eq!(got, want, "range {first}..={last}");
    }
    // Empty range and a side with no data.
    assert_eq!(reader.blocks_in(Side::Eth, 300, 400).count(), 0);
    assert_eq!(reader.blocks_in(Side::Etc, 1, 100).count(), 0);

    // Time-range query: block 100's timestamp window picks exactly the
    // records stamped inside it.
    let t0 = 1_469_000_000 + 100 * 14;
    let t1 = 1_469_000_000 + 110 * 14;
    let in_window: Vec<(u64, ArchiveRecord)> = reader
        .records_in_time_range(Side::Eth, t0, t1)
        .map(|r| r.unwrap())
        .collect();
    assert!(!in_window.is_empty());
    for (_, rec) in &in_window {
        assert!((t0..=t1).contains(&rec.timestamp()));
    }
    let by_scan = reader
        .records(Side::Eth)
        .map(|r| r.unwrap())
        .filter(|(_, rec)| (t0..=t1).contains(&rec.timestamp()))
        .count();
    assert_eq!(in_window.len(), by_scan);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn manifest_roundtrips_meta() {
    let dir = scratch("manifest");
    let mut writer = ArchiveWriter::create(&dir).unwrap();
    writer.block(block(Side::Eth, 1));
    let meta = ArchiveMeta {
        seed: u64::MAX - 3, // past 2^53: exercises the string encoding
        start_unix: 1_469_000_000,
        end_unix: 1_470_000_000,
    };
    let stats = writer.finish(Some(meta)).unwrap();
    assert_eq!(stats.blocks, 1);
    let reader = ArchiveReader::open(&dir).unwrap();
    assert_eq!(reader.meta(), Some(meta));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn open_on_garbage_is_an_error_not_a_panic() {
    let dir = scratch("garbage");
    assert!(
        ArchiveReader::open(&dir).is_err(),
        "empty dir: not an archive"
    );
    // A directory with the right shape but an unreadable superblock:
    std::fs::create_dir_all(dir.join("eth")).unwrap();
    std::fs::write(dir.join("eth").join("seg-00000.seg"), b"not a segment").unwrap();
    let reader = ArchiveReader::open(&dir).unwrap();
    assert_eq!(reader.open_report().skipped.len(), 1);
    assert_eq!(reader.totals(), (0, 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_final_segment_is_tolerated_and_removed() {
    // A crash between a segment roll and the first superblock byte leaves a
    // zero-length file. The reader must skip it (not report corruption) and
    // an appending reopen must remove it and resume on the previous tail.
    let dir = scratch("empty-tail");
    let plan: Vec<(u8, u64, u8)> = (1..=10u64).map(|n| (0u8, n, 2)).collect();
    let written = write_archive(&dir, ArchiveConfig::default(), &plan);

    let phantom = dir.join("eth").join("seg-00001.seg");
    std::fs::write(&phantom, b"").unwrap();

    let reader = ArchiveReader::open(&dir).unwrap();
    assert_eq!(reader.open_report().empty_segments, 1);
    assert!(reader.open_report().skipped.is_empty());
    let read: Vec<ArchiveRecord> = reader.records(Side::Eth).map(|r| r.unwrap().1).collect();
    assert_eq!(read.len(), written.len());

    let mut writer = ArchiveWriter::open_append(&dir).unwrap();
    assert!(!phantom.exists(), "reopen must remove the crash artifact");
    writer.block(block(Side::Eth, 11));
    writer.finish(None).unwrap();

    let reader = ArchiveReader::open(&dir).unwrap();
    assert_eq!(reader.open_report().empty_segments, 0);
    let numbers: Vec<u64> = reader
        .blocks_in(Side::Eth, 1, 11)
        .map(|b| b.unwrap().number)
        .collect();
    assert_eq!(numbers, (1..=11).collect::<Vec<u64>>());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compact_below_preserves_retained_window_byte_identically() {
    let dir = scratch("compact");
    // Tiny segments so the 200-block plan spans many files on each side.
    let config = ArchiveConfig {
        segment_max_bytes: 4 * 1024,
        ..ArchiveConfig::default()
    };
    let plan: Vec<(u8, u64, u8)> = (1..=200u64)
        .flat_map(|n| [(0u8, n, (n % 3) as u8), (1u8, n, (n % 2) as u8)])
        .collect();
    write_archive(&dir, config, &plan);

    let cutoff = 120u64;
    let before: Vec<ArchiveRecord> = {
        let reader = ArchiveReader::open(&dir).unwrap();
        [Side::Eth, Side::Etc]
            .into_iter()
            .flat_map(|side| {
                reader
                    .blocks_in(side, cutoff, 200)
                    .map(|b| ArchiveRecord::Block(b.unwrap()))
                    .collect::<Vec<_>>()
            })
            .collect()
    };

    let report = ArchiveWriter::compact_below(&dir, cutoff).unwrap();
    assert!(report.removed_segments > 0, "nothing was pruned");
    assert!(report.retained_segments > 0);

    let reader = ArchiveReader::open(&dir).unwrap();
    assert!(reader.verify().is_clean());
    let after: Vec<ArchiveRecord> = [Side::Eth, Side::Etc]
        .into_iter()
        .flat_map(|side| {
            reader
                .blocks_in(side, cutoff, 200)
                .map(|b| ArchiveRecord::Block(b.unwrap()))
                .collect::<Vec<_>>()
        })
        .collect();
    assert_eq!(after, before, "retained window changed across compaction");

    // Every retained segment still holds at least one block >= cutoff or is
    // the non-prunable tail; all blocks strictly below the first retained
    // segment are gone, and the manifest reflects the surviving totals.
    let (blocks, txs) = reader.totals();
    assert_eq!((blocks, txs), (report.retained_blocks, report.retained_txs));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compact_below_never_removes_the_tail_segment() {
    let dir = scratch("compact-tail");
    let plan: Vec<(u8, u64, u8)> = (1..=5u64).map(|n| (0u8, n, 1)).collect();
    write_archive(&dir, ArchiveConfig::default(), &plan);
    // Everything is below the cutoff, but the single (tail) segment stays.
    let report = ArchiveWriter::compact_below(&dir, 1_000_000).unwrap();
    assert_eq!(report.removed_segments, 0);
    let reader = ArchiveReader::open(&dir).unwrap();
    assert_eq!(reader.totals().0, 5);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn delta_codec_roundtrips_and_reopens() {
    let dir = scratch("delta");
    let config = ArchiveConfig {
        segment_max_bytes: 4 * 1024,
        codec: Codec::Delta,
    };
    let plan: Vec<(u8, u64, u8)> = (1..=80u64)
        .flat_map(|n| [(0u8, n, (n % 4) as u8), (1u8, n, (n % 3) as u8)])
        .collect();
    let written = write_archive(&dir, config, &plan);

    let reader = ArchiveReader::open(&dir).unwrap();
    assert!(reader.verify().is_clean());
    let mut sink = CollectSink::default();
    reader.replay_into_sink(&mut sink).unwrap();
    assert_eq!(sink.0, written, "delta replay is not byte-identical");

    // Appending under a *raw* config keeps the delta tail's own codec for
    // frames landing there; new segments use the raw codec. Either way the
    // records round-trip.
    let mut writer = ArchiveWriter::open_append(&dir).unwrap();
    writer.block(block(Side::Eth, 81));
    writer.finish(None).unwrap();
    let reader = ArchiveReader::open(&dir).unwrap();
    assert!(reader.verify().is_clean());
    let last = reader
        .blocks_in(Side::Eth, 81, 81)
        .map(|b| b.unwrap())
        .collect::<Vec<_>>();
    assert_eq!(last, vec![block(Side::Eth, 81)]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn delta_archive_is_smaller_than_raw() {
    let raw_dir = scratch("size-raw");
    let delta_dir = scratch("size-delta");
    let plan: Vec<(u8, u64, u8)> = (1..=100u64).map(|n| (0u8, n, 3)).collect();
    write_archive(&raw_dir, ArchiveConfig::default(), &plan);
    write_archive(
        &delta_dir,
        ArchiveConfig {
            codec: Codec::Delta,
            ..ArchiveConfig::default()
        },
        &plan,
    );
    let size = |dir: &std::path::Path| -> u64 {
        let mut total = 0;
        for side in ["eth", "etc"] {
            let d = dir.join(side);
            if let Ok(entries) = std::fs::read_dir(&d) {
                for e in entries {
                    total += e.unwrap().metadata().unwrap().len();
                }
            }
        }
        total
    };
    assert!(
        size(&delta_dir) < size(&raw_dir),
        "delta {} >= raw {}",
        size(&delta_dir),
        size(&raw_dir)
    );
    let _ = std::fs::remove_dir_all(&raw_dir);
    let _ = std::fs::remove_dir_all(&delta_dir);
}
