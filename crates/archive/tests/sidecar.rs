//! Hash-index sidecar durability: whatever happens to the sidecar file —
//! bit flips, truncation, going stale against an appended or compacted
//! archive — loading either uses it verbatim or rebuilds an index
//! identical to a fresh scan. A damaged sidecar can cost a rebuild, never
//! a wrong answer.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use fork_analytics::{BlockRecord, TxRecord};
use fork_archive::{
    ArchiveConfig, ArchiveReader, ArchiveWriter, Codec, HashIndex, SidecarCheck, SidecarFault,
    SidecarLoad, SIDECAR_FILE,
};
use fork_primitives::{Address, H256, U256};
use fork_replay::Side;
use fork_sim::LedgerSink;
use proptest::prelude::*;

/// Fresh scratch directory per call (tests run in parallel in one process).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "fork-sidecar-test-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn block(side: Side, number: u64) -> BlockRecord {
    BlockRecord {
        network: side,
        number,
        hash: H256([(number % 251) as u8; 32]),
        timestamp: 1_469_000_000 + number * 14,
        difficulty: U256::from_u128(62_000_000_000_000 + number as u128),
        beneficiary: Address([(number % 31) as u8; 20]),
        gas_used: 21_000 + number,
        tx_count: (number % 7) as u32,
        ommer_count: (number % 3) as u32,
    }
}

fn tx(side: Side, n: u64, ts: u64) -> TxRecord {
    TxRecord {
        network: side,
        hash: H256([(n % 253) as u8; 32]),
        timestamp: ts,
        is_contract: n.is_multiple_of(2),
        has_chain_id: n.is_multiple_of(3),
        value: U256::from_u64(n * 1_000_000_007),
    }
}

/// Writes `plan` (side, number, txs-per-block) and finishes.
fn write_archive(dir: &std::path::Path, config: ArchiveConfig, plan: &[(u8, u64, u8)]) {
    let mut writer = ArchiveWriter::create_with(dir, config).unwrap();
    let mut tx_n = 0u64;
    for &(side_bit, number, txs) in plan {
        let side = if side_bit == 0 { Side::Eth } else { Side::Etc };
        let b = block(side, number);
        let ts = b.timestamp;
        writer.block(b);
        for _ in 0..txs {
            writer.tx(tx(side, tx_n, ts));
            tx_n += 1;
        }
    }
    writer.finish(None).unwrap();
}

/// Per-side block numbers must ascend; massage an arbitrary plan into shape.
fn normalize_plan(raw: Vec<[u8; 2]>) -> Vec<(u8, u64, u8)> {
    let mut next = [0u64; 2];
    raw.into_iter()
        .map(|[side_bit, txs]| {
            let side = (side_bit % 2) as usize;
            next[side] += 1;
            (side as u8, next[side], txs % 5)
        })
        .collect()
}

fn small_segments() -> ArchiveConfig {
    ArchiveConfig {
        segment_max_bytes: 2 * 1024,
        codec: Codec::Delta,
    }
}

/// Opens the archive and persists a fresh sidecar, asserting it was built
/// (not loaded) because the file did not exist yet.
fn persist_sidecar(dir: &std::path::Path) -> HashIndex {
    let reader = ArchiveReader::open(dir).unwrap();
    let (index, load) = HashIndex::load_or_build(&reader);
    assert_eq!(load, SidecarLoad::Rebuilt(SidecarFault::Missing));
    assert!(dir.join(SIDECAR_FILE).exists(), "sidecar was persisted");
    index
}

proptest! {
    /// Any single corrupted byte anywhere in the sidecar is caught by its
    /// trailing checksum; the rebuilt index equals a fresh scan, and the
    /// rebuild re-persists a sidecar that then verifies clean.
    #[test]
    fn corrupted_byte_forces_identical_rebuild(
        raw in proptest::collection::vec(any::<[u8; 2]>(), 1..40),
        at_pick in any::<u64>(),
        mask in 1u8..=255,
    ) {
        let dir = scratch("flip");
        write_archive(&dir, small_segments(), &normalize_plan(raw));
        let original = persist_sidecar(&dir);

        let path = dir.join(SIDECAR_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = (at_pick as usize) % bytes.len();
        bytes[at] ^= mask;
        std::fs::write(&path, &bytes).unwrap();

        let reader = ArchiveReader::open(&dir).unwrap();
        // verify() reports the damage without repairing anything...
        let report = reader.verify();
        prop_assert!(!report.sidecar.is_clean(), "flip at {at} read as clean");
        prop_assert!(matches!(report.sidecar, SidecarCheck::Corrupt { .. }));

        // ...while load tolerates it: rebuild equals both the fresh scan
        // and the pre-damage index, and the file is healed on disk.
        let (rebuilt, load) = HashIndex::load_or_build(&reader);
        prop_assert!(matches!(load, SidecarLoad::Rebuilt(SidecarFault::Corrupt(_))));
        prop_assert_eq!(&rebuilt, &HashIndex::build(&reader));
        prop_assert_eq!(&rebuilt, &original);
        let healed = reader.verify();
        prop_assert!(matches!(healed.sidecar, SidecarCheck::Valid { .. }));
    }

    /// Any truncation of the sidecar (including to zero) reads as corrupt
    /// and rebuilds identically.
    #[test]
    fn truncated_sidecar_forces_identical_rebuild(
        raw in proptest::collection::vec(any::<[u8; 2]>(), 1..40),
        keep_pick in any::<u64>(),
    ) {
        let dir = scratch("truncate");
        write_archive(&dir, small_segments(), &normalize_plan(raw));
        let original = persist_sidecar(&dir);

        let path = dir.join(SIDECAR_FILE);
        let bytes = std::fs::read(&path).unwrap();
        let keep = (keep_pick as usize) % bytes.len();
        std::fs::write(&path, &bytes[..keep]).unwrap();

        let reader = ArchiveReader::open(&dir).unwrap();
        let report = reader.verify();
        prop_assert!(matches!(report.sidecar, SidecarCheck::Corrupt { .. }));
        let (rebuilt, load) = HashIndex::load_or_build(&reader);
        prop_assert!(matches!(load, SidecarLoad::Rebuilt(SidecarFault::Corrupt(_))));
        prop_assert_eq!(&rebuilt, &original);
    }

    /// Appending to the archive after the sidecar was written leaves an
    /// internally-valid but stale sidecar: detected via the fingerprint,
    /// rebuilt to cover the appended records.
    #[test]
    fn appended_archive_makes_sidecar_stale(
        raw in proptest::collection::vec(any::<[u8; 2]>(), 1..30),
        extra in 1u64..6,
    ) {
        let dir = scratch("append");
        let plan = normalize_plan(raw);
        write_archive(&dir, small_segments(), &plan);
        let before = persist_sidecar(&dir);

        let next_eth = plan.iter().filter(|p| p.0 == 0).map(|p| p.1).max().unwrap_or(0) + 1;
        let mut writer = ArchiveWriter::open_append_with(&dir, small_segments()).unwrap();
        for i in 0..extra {
            writer.block(block(Side::Eth, next_eth + i));
        }
        writer.finish(None).unwrap();

        let reader = ArchiveReader::open(&dir).unwrap();
        let report = reader.verify();
        prop_assert_eq!(&report.sidecar, &SidecarCheck::Stale);
        let (rebuilt, load) = HashIndex::load_or_build(&reader);
        prop_assert_eq!(load, SidecarLoad::Rebuilt(SidecarFault::Stale));
        prop_assert_eq!(&rebuilt, &HashIndex::build(&reader));
        prop_assert_eq!(rebuilt.len(), before.len() + extra as usize);
    }
}

#[test]
fn missing_sidecar_is_clean_then_loads_once_built() {
    let dir = scratch("missing");
    write_archive(&dir, small_segments(), &[(0, 1, 2), (1, 1, 1), (0, 2, 0)]);

    // No sidecar yet: verify is clean (Missing is a legal state).
    let reader = ArchiveReader::open(&dir).unwrap();
    let report = reader.verify();
    assert!(report.is_clean());
    assert_eq!(report.sidecar, SidecarCheck::Missing);

    // First use builds and persists; the second open loads it verbatim.
    let (built, load) = HashIndex::load_or_build(&reader);
    assert_eq!(load, SidecarLoad::Rebuilt(SidecarFault::Missing));
    assert_eq!(built.len(), 6, "3 blocks + 3 txs indexed");
    let reopened = ArchiveReader::open(&dir).unwrap();
    let (loaded, second) = HashIndex::load_or_build(&reopened);
    assert_eq!(second, SidecarLoad::Loaded);
    assert_eq!(loaded, built);
    match reopened.verify().sidecar {
        SidecarCheck::Valid { entries } => assert_eq!(entries, 6),
        other => panic!("expected Valid, got {other:?}"),
    }
}

#[test]
fn compaction_makes_sidecar_stale_and_rebuild_drops_pruned_frames() {
    let dir = scratch("compact");
    // Many blocks over tiny segments so a prefix of segments is prunable.
    let plan: Vec<(u8, u64, u8)> = (1..=40)
        .flat_map(|n| [(0u8, n, 2u8), (1u8, n, 2u8)])
        .collect();
    write_archive(&dir, small_segments(), &plan);
    let before = persist_sidecar(&dir);

    let report = ArchiveWriter::compact_below(&dir, 30).unwrap();
    assert!(report.removed_segments > 0, "compaction pruned nothing");

    let reader = ArchiveReader::open(&dir).unwrap();
    assert_eq!(reader.verify().sidecar, SidecarCheck::Stale);
    let (rebuilt, load) = HashIndex::load_or_build(&reader);
    assert_eq!(load, SidecarLoad::Rebuilt(SidecarFault::Stale));
    assert_eq!(rebuilt, HashIndex::build(&reader));
    assert!(
        rebuilt.len() < before.len(),
        "rebuild still indexes pruned frames: {} vs {}",
        rebuilt.len(),
        before.len()
    );

    // The healed sidecar is fresh for the compacted archive.
    let reopened = ArchiveReader::open(&dir).unwrap();
    let (_, second) = HashIndex::load_or_build(&reopened);
    assert_eq!(second, SidecarLoad::Loaded);
}
