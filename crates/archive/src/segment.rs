//! Segment scanning and sequential frame reading.
//!
//! [`scan_segment`] is the open-time pass: it validates the superblock,
//! walks the frame *headers* (reading only a short payload prefix per
//! frame and seeking over the rest), builds the sparse block-number and
//! timestamp indexes, and finds the torn-tail boundary — the offset after
//! the last structurally complete frame. It does **not** verify payload
//! checksums; that is the job of reads and of `ArchiveReader::verify`.
//!
//! [`SegmentCursor`] is the read path: sequential frames with checksum
//! verification, startable at any frame offset the index produced.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use fork_replay::Side;

use crate::error::ArchiveError;
use crate::format::{
    checksum, min_payload_len, ArchiveRecord, FramePrefix, Superblock, FRAME_HEADER_LEN,
    INDEX_STRIDE, KIND_BLOCK, KIND_TX, MAX_PAYLOAD_LEN, PREFIX_READ_LEN, SUPERBLOCK_LEN,
};

/// Everything the open-time scan learns about one segment file.
#[derive(Debug, Clone)]
pub struct SegmentScan {
    /// The validated superblock.
    pub superblock: Superblock,
    /// Offset one past the last structurally complete frame. Bytes beyond
    /// this are a torn tail: unreadable, truncated on append-reopen.
    pub valid_len: u64,
    /// `file_len - valid_len` — 0 for a cleanly closed segment.
    pub torn_bytes: u64,
    /// Number of complete frames.
    pub frames: u64,
    /// Block frames seen.
    pub blocks: u64,
    /// Tx frames seen.
    pub txs: u64,
    /// Smallest and largest global sequence numbers (`None` when empty).
    pub seq_range: Option<(u64, u64)>,
    /// First and last block numbers (`None` when no block frames).
    pub block_range: Option<(u64, u64)>,
    /// First and last block timestamps (`None` when no block frames).
    pub time_range: Option<(u64, u64)>,
    /// Sparse index: every [`INDEX_STRIDE`]-th block frame as
    /// `(block_number, frame_offset)`, ascending.
    pub block_index: Vec<(u64, u64)>,
    /// Sparse index: the same frames as `(block_timestamp, frame_offset)`.
    pub time_index: Vec<(u64, u64)>,
}

impl SegmentScan {
    /// Largest indexed frame offset whose block number is `<= number`
    /// (falls back to the first frame).
    pub fn seek_for_number(&self, number: u64) -> u64 {
        floor_offset(&self.block_index, number)
    }

    /// Largest indexed frame offset whose block timestamp is `<= ts`
    /// (falls back to the first frame).
    pub fn seek_for_time(&self, ts: u64) -> u64 {
        floor_offset(&self.time_index, ts)
    }
}

fn floor_offset(index: &[(u64, u64)], key: u64) -> u64 {
    let i = index.partition_point(|(k, _)| *k <= key);
    if i == 0 {
        SUPERBLOCK_LEN as u64
    } else {
        index[i - 1].1
    }
}

/// Scans one segment file. Structural damage *past* the superblock is
/// recovered (the scan stops at the torn boundary); a damaged superblock is
/// an [`ArchiveError::Corrupt`] — without it the segment's side and order
/// cannot be trusted.
pub fn scan_segment(path: &Path, expect_side: Side) -> Result<SegmentScan, ArchiveError> {
    let file = File::open(path).map_err(|e| ArchiveError::io(path, e))?;
    let file_len = file
        .metadata()
        .map_err(|e| ArchiveError::io(path, e))?
        .len();
    let mut reader = BufReader::new(file);

    let mut sb_bytes = [0u8; SUPERBLOCK_LEN];
    read_exact_at_start(&mut reader, &mut sb_bytes, path)?;
    let superblock =
        Superblock::decode(&sb_bytes).map_err(|d| ArchiveError::corrupt(path, 0, d))?;
    if superblock.side != expect_side {
        return Err(ArchiveError::corrupt(
            path,
            0,
            format!(
                "superblock side {:?} does not match directory {:?}",
                superblock.side, expect_side
            ),
        ));
    }

    let mut scan = SegmentScan {
        superblock,
        valid_len: SUPERBLOCK_LEN as u64,
        torn_bytes: 0,
        frames: 0,
        blocks: 0,
        txs: 0,
        seq_range: None,
        block_range: None,
        time_range: None,
        block_index: Vec::new(),
        time_index: Vec::new(),
    };

    let min_len = min_payload_len(superblock.codec);
    let mut pos = SUPERBLOCK_LEN as u64;
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut prefix_buf = [0u8; PREFIX_READ_LEN];
    loop {
        if pos + FRAME_HEADER_LEN as u64 > file_len {
            break; // clean end, or a tail shorter than a header
        }
        if read_exact_or_none(&mut reader, &mut header).is_none() {
            break;
        }
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        if !(min_len..=MAX_PAYLOAD_LEN).contains(&len)
            || pos + (FRAME_HEADER_LEN as u64) + (len as u64) > file_len
        {
            // Implausible length or a payload running past EOF: the tail
            // from `pos` on is unreadable.
            break;
        }
        let prefix_len = PREFIX_READ_LEN.min(len as usize);
        if read_exact_or_none(&mut reader, &mut prefix_buf[..prefix_len]).is_none() {
            break;
        }
        let Ok(prefix) = FramePrefix::decode_in(&superblock, &prefix_buf[..prefix_len]) else {
            break;
        };
        // Skip the rest of the payload without reading it.
        let remainder = (len as usize - prefix_len) as i64;
        if remainder > 0 && reader.seek_relative(remainder).is_err() {
            break;
        }

        scan.frames += 1;
        scan.seq_range = Some(match scan.seq_range {
            None => (prefix.seq, prefix.seq),
            Some((lo, hi)) => (lo.min(prefix.seq), hi.max(prefix.seq)),
        });
        match prefix.kind {
            KIND_BLOCK => {
                if scan.blocks.is_multiple_of(INDEX_STRIDE) {
                    scan.block_index.push((prefix.number, pos));
                    scan.time_index.push((prefix.timestamp, pos));
                }
                scan.blocks += 1;
                scan.block_range = Some(match scan.block_range {
                    None => (prefix.number, prefix.number),
                    Some((lo, _)) => (lo, prefix.number),
                });
                scan.time_range = Some(match scan.time_range {
                    None => (prefix.timestamp, prefix.timestamp),
                    Some((lo, _)) => (lo, prefix.timestamp),
                });
            }
            KIND_TX => scan.txs += 1,
            _ => break, // unknown kind: unreadable from here on
        }
        pos += FRAME_HEADER_LEN as u64 + len as u64;
        scan.valid_len = pos;
    }
    scan.torn_bytes = file_len - scan.valid_len;
    Ok(scan)
}

fn read_exact_at_start(
    reader: &mut BufReader<File>,
    buf: &mut [u8],
    path: &Path,
) -> Result<(), ArchiveError> {
    reader.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ArchiveError::corrupt(path, 0, "file shorter than a superblock")
        } else {
            ArchiveError::io(path, e)
        }
    })
}

fn read_exact_or_none(reader: &mut BufReader<File>, buf: &mut [u8]) -> Option<()> {
    reader.read_exact(buf).ok()
}

/// Sequential checksum-verified frame reader over one segment's valid range.
pub struct SegmentCursor {
    path: PathBuf,
    superblock: Superblock,
    reader: BufReader<File>,
    pos: u64,
    end: u64,
}

impl SegmentCursor {
    /// Opens a cursor at `start` (a frame offset from the sparse index, or
    /// `SUPERBLOCK_LEN` for the first frame), bounded by the scan's
    /// `valid_len`. The superblock supplies the side and codec; every
    /// cursor over one segment can share the scan's copy.
    pub fn open(
        path: &Path,
        superblock: Superblock,
        start: u64,
        end: u64,
    ) -> Result<SegmentCursor, ArchiveError> {
        let file = File::open(path).map_err(|e| ArchiveError::io(path, e))?;
        let mut reader = BufReader::new(file);
        reader
            .seek(SeekFrom::Start(start))
            .map_err(|e| ArchiveError::io(path, e))?;
        Ok(SegmentCursor {
            path: path.to_path_buf(),
            superblock,
            reader,
            pos: start,
            end,
        })
    }

    /// Current byte offset: the offset the next [`SegmentCursor::next_frame`]
    /// will read from (after a successful read, one past the frame just
    /// returned). External cached readers use this to learn a frame's length
    /// without re-parsing headers.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Reads the next frame, verifying its checksum and decoding the record.
    /// `None` at the end of the valid range; `Some(Err(..))` for a corrupt
    /// frame (the cursor stops there — with a damaged length field the
    /// following offsets cannot be trusted).
    #[allow(clippy::type_complexity)]
    pub fn next_frame(&mut self) -> Option<Result<(u64, u64, ArchiveRecord), ArchiveError>> {
        if self.pos + FRAME_HEADER_LEN as u64 > self.end {
            return None;
        }
        let offset = self.pos;
        let mut header = [0u8; FRAME_HEADER_LEN];
        if let Err(e) = self.reader.read_exact(&mut header) {
            return Some(Err(ArchiveError::io(&self.path, e)));
        }
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        if !(min_payload_len(self.superblock.codec)..=MAX_PAYLOAD_LEN).contains(&len)
            || offset + FRAME_HEADER_LEN as u64 + len as u64 > self.end
        {
            self.pos = self.end;
            return Some(Err(ArchiveError::corrupt(
                &self.path,
                offset,
                format!("implausible frame length {len}"),
            )));
        }
        let mut payload = vec![0u8; len as usize];
        if let Err(e) = self.reader.read_exact(&mut payload) {
            return Some(Err(ArchiveError::io(&self.path, e)));
        }
        self.pos = offset + FRAME_HEADER_LEN as u64 + len as u64;
        if checksum(&payload) != header[4..8] {
            return Some(Err(ArchiveError::corrupt(
                &self.path,
                offset,
                "frame checksum mismatch",
            )));
        }
        match ArchiveRecord::decode_payload_in(&self.superblock, &payload) {
            Ok((seq, record)) => Some(Ok((offset, seq, record))),
            Err(d) => Some(Err(ArchiveError::corrupt(&self.path, offset, d))),
        }
    }
}
