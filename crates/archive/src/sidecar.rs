//! Persistent hash-index sidecar: block/tx hash → frame location.
//!
//! The open-time scan builds sparse *number/time* indexes only; point
//! lookups by hash would otherwise be full scans. [`HashIndex`] maps every
//! record's hash to `(side, segment, frame offset, seq)` and persists next
//! to the archive as a single [`SIDECAR_FILE`]:
//!
//! ```text
//! magic "FARCHHX1" (8) · version u16 LE (2) · reserved u16 (2)
//! · archive fingerprint (4) · entry count u64 LE (8)
//! · count × 54-byte entries, sorted by (hash, seq)
//! · truncated-keccak checksum over everything above (4)
//! ```
//!
//! Each entry is `hash (32) · kind u8 · side u8 · segment u32 LE ·
//! offset u64 LE · seq u64 LE`. The **fingerprint** is a truncated-keccak
//! over every segment's `(side, segment id, valid_len)` triple, so an
//! append, a compaction, or a torn-tail truncation all invalidate the
//! sidecar — a stale file is detected and rebuilt, never trusted.
//!
//! The sidecar is a pure accelerator: [`HashIndex::load_or_build`] never
//! fails. A missing, torn, corrupt, or stale file is silently replaced by
//! a fresh scan-built index (persisted best-effort via write-to-temp +
//! rename), and entries only ever point at frames the checksummed read
//! path then re-verifies — a lookup through the index returns exactly the
//! bytes a naive scan would.

use std::path::Path;

use fork_primitives::H256;
use fork_replay::Side;

use crate::format::{checksum, ArchiveRecord, CHECKSUM_LEN, SUPERBLOCK_LEN};
use crate::reader::ArchiveReader;
use crate::segment::SegmentCursor;

/// Sidecar file name, at the archive root next to `manifest.json`.
pub const SIDECAR_FILE: &str = "hash-index.sidecar";

/// Magic bytes opening the sidecar file.
pub const SIDECAR_MAGIC: &[u8; 8] = b"FARCHHX1";

/// Sidecar format version.
pub const SIDECAR_VERSION: u16 = 1;

/// Fixed header length: magic + version + reserved + fingerprint + count.
const HEADER_LEN: usize = 8 + 2 + 2 + CHECKSUM_LEN + 8;

/// Encoded entry length: hash + kind + side + segment + offset + seq.
const ENTRY_LEN: usize = 32 + 1 + 1 + 4 + 8 + 8;

/// One hash-index entry: where a record with this hash lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// The record's block or tx hash.
    pub hash: H256,
    /// [`KIND_BLOCK`](crate::format::KIND_BLOCK) or
    /// [`KIND_TX`](crate::format::KIND_TX).
    pub kind: u8,
    /// Which side's stream holds the frame.
    pub side: Side,
    /// Segment id (the superblock's `segment` field).
    pub segment: u32,
    /// Frame byte offset within the segment file.
    pub offset: u64,
    /// Global sequence number stamped into the frame.
    pub seq: u64,
}

/// Why [`HashIndex::load_or_build`] could not use the on-disk sidecar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SidecarFault {
    /// No sidecar file on disk.
    Missing,
    /// Present but structurally invalid or failing its checksum.
    Corrupt(String),
    /// Internally valid but built from a different archive state (the
    /// archive was appended, truncated, or compacted since).
    Stale,
}

/// How [`HashIndex::load_or_build`] obtained the index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SidecarLoad {
    /// The persisted sidecar was valid and fresh.
    Loaded,
    /// The sidecar was unusable for the contained reason; the index was
    /// rebuilt by a scan (and re-persisted best-effort).
    Rebuilt(SidecarFault),
}

/// Sidecar state as seen by [`ArchiveReader::verify`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum SidecarCheck {
    /// No sidecar on disk — legal; one is built on first use.
    #[default]
    Missing,
    /// Present, checksum-valid, and matching the archive fingerprint.
    Valid {
        /// Number of entries in the sidecar.
        entries: u64,
    },
    /// Present but corrupt (regenerated on next load).
    Corrupt {
        /// What failed.
        detail: String,
    },
    /// Present but built from a different archive state.
    Stale,
}

impl SidecarCheck {
    /// Whether the sidecar is in an acceptable state (valid, or simply not
    /// built yet). `Corrupt` and `Stale` are detected-damage states.
    pub fn is_clean(&self) -> bool {
        matches!(self, SidecarCheck::Missing | SidecarCheck::Valid { .. })
    }
}

/// Truncated-keccak fingerprint over every segment's identity and valid
/// length, in side-major scan order. Any append, truncation, or compaction
/// changes it, so it pins a sidecar to one exact archive state.
pub fn archive_fingerprint(reader: &ArchiveReader) -> [u8; CHECKSUM_LEN] {
    let mut buf = Vec::new();
    for side in [Side::Eth, Side::Etc] {
        for (_, scan) in reader.segments(side) {
            buf.push(match side {
                Side::Eth => 0,
                Side::Etc => 1,
            });
            buf.extend_from_slice(&scan.superblock.segment.to_le_bytes());
            buf.extend_from_slice(&scan.valid_len.to_le_bytes());
        }
    }
    checksum(&buf)
}

/// Format version required to read this archive: the highest version any
/// segment's codec demands (`Delta` frames are a v2 feature; `Raw` reads
/// as v1), or the current writer version for an empty archive. Clients key
/// caches on this plus the fingerprint.
pub fn archive_format_version(reader: &ArchiveReader) -> u16 {
    let mut version = 0;
    for side in [Side::Eth, Side::Etc] {
        for (_, scan) in reader.segments(side) {
            version = version.max(match scan.superblock.codec {
                crate::format::Codec::Raw => 1,
                crate::format::Codec::Delta => 2,
            });
        }
    }
    if version == 0 {
        crate::format::VERSION
    } else {
        version
    }
}

/// In-memory hash index over one opened archive. See the [module
/// docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashIndex {
    entries: Vec<IndexEntry>,
    fingerprint: [u8; CHECKSUM_LEN],
}

impl HashIndex {
    /// Builds the index by scanning every readable frame. Infallible by
    /// design: unreadable segments or corrupt frames simply contribute
    /// nothing (mirroring what any scan of this archive can deliver).
    pub fn build(reader: &ArchiveReader) -> HashIndex {
        let mut entries = Vec::new();
        for side in [Side::Eth, Side::Etc] {
            for (path, scan) in reader.segments(side) {
                let Ok(mut cursor) = SegmentCursor::open(
                    path,
                    scan.superblock,
                    SUPERBLOCK_LEN as u64,
                    scan.valid_len,
                ) else {
                    continue;
                };
                while let Some(frame) = cursor.next_frame() {
                    let Ok((offset, seq, record)) = frame else {
                        break; // corrupt frame: offsets beyond it are untrustworthy
                    };
                    let (kind, hash) = match &record {
                        ArchiveRecord::Block(b) => (crate::format::KIND_BLOCK, b.hash),
                        ArchiveRecord::Tx(t) => (crate::format::KIND_TX, t.hash),
                    };
                    entries.push(IndexEntry {
                        hash,
                        kind,
                        side,
                        segment: scan.superblock.segment,
                        offset,
                        seq,
                    });
                }
            }
        }
        entries.sort_by_key(|e| (e.hash.0, e.seq));
        HashIndex {
            entries,
            fingerprint: archive_fingerprint(reader),
        }
    }

    /// Loads the persisted sidecar if it is valid and fresh, else rebuilds
    /// from a scan and re-persists best-effort (an unwritable directory
    /// still yields a working in-memory index).
    pub fn load_or_build(reader: &ArchiveReader) -> (HashIndex, SidecarLoad) {
        match try_load(reader.dir(), archive_fingerprint(reader)) {
            Ok(index) => (index, SidecarLoad::Loaded),
            Err(fault) => {
                let index = HashIndex::build(reader);
                let _ = index.write_to(reader.dir());
                (index, SidecarLoad::Rebuilt(fault))
            }
        }
    }

    /// All entries whose hash equals `hash`, ascending by seq (possibly
    /// several: hashes are not required to be unique across records).
    pub fn candidates(&self, hash: &H256) -> &[IndexEntry] {
        let lo = self.entries.partition_point(|e| e.hash.0 < hash.0);
        let hi = self.entries.partition_point(|e| e.hash.0 <= hash.0);
        &self.entries[lo..hi]
    }

    /// Every entry, sorted by `(hash, seq)`.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the archive had no readable records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The archive fingerprint this index was built against.
    pub fn fingerprint(&self) -> [u8; CHECKSUM_LEN] {
        self.fingerprint
    }

    /// Serializes and atomically persists the sidecar (write to a temp
    /// file, then rename over [`SIDECAR_FILE`]).
    pub fn write_to(&self, dir: &Path) -> Result<(), crate::ArchiveError> {
        let bytes = self.encode();
        let tmp = dir.join(format!("{SIDECAR_FILE}.tmp"));
        let path = dir.join(SIDECAR_FILE);
        std::fs::write(&tmp, &bytes).map_err(|e| crate::ArchiveError::Io {
            path: tmp.clone(),
            source: e,
        })?;
        std::fs::rename(&tmp, &path).map_err(|e| crate::ArchiveError::Io { path, source: e })
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.entries.len() * ENTRY_LEN + 4);
        out.extend_from_slice(SIDECAR_MAGIC);
        out.extend_from_slice(&SIDECAR_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&self.fingerprint);
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.hash.0);
            out.push(e.kind);
            out.push(match e.side {
                Side::Eth => 0,
                Side::Etc => 1,
            });
            out.extend_from_slice(&e.segment.to_le_bytes());
            out.extend_from_slice(&e.offset.to_le_bytes());
            out.extend_from_slice(&e.seq.to_le_bytes());
        }
        let sum = checksum(&out);
        out.extend_from_slice(&sum);
        out
    }
}

/// Validates the on-disk sidecar against the opened archive, for
/// [`ArchiveReader::verify`]. Never touches or rewrites the file.
pub(crate) fn check_sidecar(reader: &ArchiveReader) -> SidecarCheck {
    match try_load(reader.dir(), archive_fingerprint(reader)) {
        Ok(index) => SidecarCheck::Valid {
            entries: index.entries.len() as u64,
        },
        Err(SidecarFault::Missing) => SidecarCheck::Missing,
        Err(SidecarFault::Corrupt(detail)) => SidecarCheck::Corrupt { detail },
        Err(SidecarFault::Stale) => SidecarCheck::Stale,
    }
}

fn try_load(dir: &Path, expect_fingerprint: [u8; CHECKSUM_LEN]) -> Result<HashIndex, SidecarFault> {
    let path = dir.join(SIDECAR_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(SidecarFault::Missing),
        Err(e) => return Err(SidecarFault::Corrupt(format!("unreadable: {e}"))),
    };
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(SidecarFault::Corrupt(format!(
            "{} bytes: shorter than a header",
            bytes.len()
        )));
    }
    let (body, tail) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
    if checksum(body) != tail {
        return Err(SidecarFault::Corrupt("file checksum mismatch".into()));
    }
    if &body[0..8] != SIDECAR_MAGIC {
        return Err(SidecarFault::Corrupt("bad magic".into()));
    }
    let version = u16::from_le_bytes(body[8..10].try_into().unwrap());
    if version != SIDECAR_VERSION {
        return Err(SidecarFault::Corrupt(format!(
            "unsupported sidecar version {version}"
        )));
    }
    let mut fingerprint = [0u8; CHECKSUM_LEN];
    fingerprint.copy_from_slice(&body[12..12 + CHECKSUM_LEN]);
    let count = u64::from_le_bytes(body[12 + CHECKSUM_LEN..HEADER_LEN].try_into().unwrap());
    let entry_bytes = &body[HEADER_LEN..];
    if entry_bytes.len() % ENTRY_LEN != 0 || count != (entry_bytes.len() / ENTRY_LEN) as u64 {
        return Err(SidecarFault::Corrupt(format!(
            "entry count {count} does not match {} entry bytes",
            entry_bytes.len()
        )));
    }
    let mut entries = Vec::with_capacity(count as usize);
    for chunk in entry_bytes.chunks_exact(ENTRY_LEN) {
        let mut hash = [0u8; 32];
        hash.copy_from_slice(&chunk[0..32]);
        let kind = chunk[32];
        if kind != crate::format::KIND_BLOCK && kind != crate::format::KIND_TX {
            return Err(SidecarFault::Corrupt(format!("unknown record kind {kind}")));
        }
        let side = match chunk[33] {
            0 => Side::Eth,
            1 => Side::Etc,
            b => return Err(SidecarFault::Corrupt(format!("unknown side byte {b}"))),
        };
        entries.push(IndexEntry {
            hash: H256(hash),
            kind,
            side,
            segment: u32::from_le_bytes(chunk[34..38].try_into().unwrap()),
            offset: u64::from_le_bytes(chunk[38..46].try_into().unwrap()),
            seq: u64::from_le_bytes(chunk[46..54].try_into().unwrap()),
        });
    }
    if !entries.is_sorted_by_key(|e| (e.hash.0, e.seq)) {
        return Err(SidecarFault::Corrupt("entries out of order".into()));
    }
    // Freshness last: a structurally sound sidecar for a changed archive is
    // Stale, not Corrupt — callers may want to distinguish.
    if fingerprint != expect_fingerprint {
        return Err(SidecarFault::Stale);
    }
    Ok(HashIndex {
        entries,
        fingerprint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{KIND_BLOCK, KIND_TX};

    fn sample() -> HashIndex {
        let entry = |hash: u8, kind: u8, seq: u64| IndexEntry {
            hash: H256([hash; 32]),
            kind,
            side: if seq.is_multiple_of(2) {
                Side::Eth
            } else {
                Side::Etc
            },
            segment: (seq / 10) as u32,
            offset: 32 + seq * 133,
            seq,
        };
        let mut entries = vec![
            entry(7, KIND_BLOCK, 4),
            entry(7, KIND_TX, 9),
            entry(7, KIND_BLOCK, 12),
            entry(3, KIND_TX, 2),
            entry(200, KIND_BLOCK, 1),
        ];
        entries.sort_by_key(|e| (e.hash.0, e.seq));
        HashIndex {
            entries,
            fingerprint: [0xAA, 0xBB, 0xCC, 0xDD],
        }
    }

    #[test]
    fn roundtrips_through_encode() {
        let index = sample();
        let dir = std::env::temp_dir().join(format!("sidecar-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        index.write_to(&dir).unwrap();
        let loaded = try_load(&dir, index.fingerprint()).unwrap();
        assert_eq!(loaded, index);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn candidates_are_the_hash_run_in_seq_order() {
        let index = sample();
        let hits = index.candidates(&H256([7; 32]));
        assert_eq!(hits.len(), 3);
        assert!(hits.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(index.candidates(&H256([5; 32])).is_empty());
    }

    #[test]
    fn every_single_byte_flip_is_detected_or_stale() {
        let index = sample();
        let clean = index.encode();
        let dir = std::env::temp_dir().join(format!("sidecar-flip-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SIDECAR_FILE);
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                try_load(&dir, index.fingerprint()).is_err(),
                "flip at byte {i} of {} accepted",
                clean.len()
            );
        }
        std::fs::write(&path, &clean).unwrap();
        assert!(try_load(&dir, index.fingerprint()).is_ok());
        // A different expected fingerprint is Stale, not Corrupt.
        assert_eq!(
            try_load(&dir, [9, 9, 9, 9]),
            Err(SidecarFault::Stale),
            "fingerprint mismatch must read as stale"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_is_detected() {
        let index = sample();
        let clean = index.encode();
        let dir = std::env::temp_dir().join(format!("sidecar-trunc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SIDECAR_FILE);
        for keep in 0..clean.len() {
            std::fs::write(&path, &clean[..keep]).unwrap();
            assert!(
                matches!(
                    try_load(&dir, index.fingerprint()),
                    Err(SidecarFault::Corrupt(_))
                ),
                "truncation to {keep} bytes accepted"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
