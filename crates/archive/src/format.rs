//! The on-disk format: superblock, frame layout, record codec.
//!
//! An archive is a directory with one subdirectory per network side
//! (`eth/`, `etc/`), each holding numbered segment files
//! (`seg-00000.seg`, `seg-00001.seg`, …), plus a human-readable
//! `manifest.json` written when the archive is finished. A segment is a
//! fixed-size [`Superblock`] followed by append-only frames:
//!
//! ```text
//! [len: u32 LE][crc: 4 bytes][payload: len bytes]
//! ```
//!
//! `crc` is the first [`CHECKSUM_LEN`] bytes of the Keccak-256 digest of the
//! payload — the same truncated-keccak integrity scheme as the net layer's
//! `seal_frame`. Payloads are fixed-layout record encodings (no RLP: records
//! are flat rows, and a fixed layout lets the open-time scan read only a
//! 25-byte prefix per frame to build the sparse index).
//!
//! Every record carries a **global sequence number**, monotonically
//! increasing across *both* sides. The analytics pipeline's echo detector is
//! order-sensitive across chains ("which side saw this hash first"), so a
//! replay must reconstruct the exact interleaving of the original stream;
//! merging the two per-side streams by `seq` does exactly that.

use fork_analytics::{BlockRecord, TxRecord};
use fork_crypto::keccak256;
use fork_primitives::{Address, H256, U256};
use fork_replay::Side;

/// Segment-file magic ("Fork ARCHive SeGment v1").
pub const MAGIC: [u8; 8] = *b"FARCHSG1";

/// Format version stamped into every superblock.
pub const VERSION: u16 = 1;

/// Size of the superblock at the start of every segment file.
pub const SUPERBLOCK_LEN: usize = 32;

/// Frame header size: `len: u32` + truncated-keccak checksum.
pub const FRAME_HEADER_LEN: usize = 4 + CHECKSUM_LEN;

/// Checksum length in bytes (truncated keccak — integrity, not crypto).
pub const CHECKSUM_LEN: usize = 4;

/// Upper bound on a sane frame payload; anything larger is corruption.
pub const MAX_PAYLOAD_LEN: u32 = 1 << 20;

/// Shortest valid payload (a tx record); anything shorter is corruption.
pub const MIN_PAYLOAD_LEN: u32 = TX_PAYLOAD_LEN as u32;

/// Bytes of payload the open-time scan reads to index a frame:
/// `kind + seq + timestamp + number`.
pub const PREFIX_LEN: usize = 25;

/// Every `INDEX_STRIDE`-th block frame lands in the sparse index.
pub const INDEX_STRIDE: u64 = 64;

/// Payload kind tag: a [`BlockRecord`].
pub const KIND_BLOCK: u8 = 0;
/// Payload kind tag: a [`TxRecord`].
pub const KIND_TX: u8 = 1;

const BLOCK_PAYLOAD_LEN: usize = 125;
const TX_PAYLOAD_LEN: usize = 82;

/// Truncated-keccak checksum over a frame payload.
pub fn checksum(payload: &[u8]) -> [u8; CHECKSUM_LEN] {
    let digest = keccak256(payload);
    let mut out = [0u8; CHECKSUM_LEN];
    out.copy_from_slice(&digest.0[..CHECKSUM_LEN]);
    out
}

/// Segment filename for index `i` (`seg-00042.seg`).
pub fn segment_file_name(i: u32) -> String {
    format!("seg-{i:05}.seg")
}

/// Directory name for a side's segments.
pub fn side_dir_name(side: Side) -> &'static str {
    match side {
        Side::Eth => "eth",
        Side::Etc => "etc",
    }
}

fn side_to_byte(side: Side) -> u8 {
    match side {
        Side::Eth => 0,
        Side::Etc => 1,
    }
}

fn side_from_byte(b: u8) -> Option<Side> {
    match b {
        0 => Some(Side::Eth),
        1 => Some(Side::Etc),
        _ => None,
    }
}

/// The fixed-size header at the start of every segment file.
///
/// Layout (32 bytes): magic(8) · version(u16 LE) · side(u8) · reserved(u8) ·
/// segment(u32 LE) · first_seq(u64 LE) · reserved(4) · checksum(4) — the
/// checksum covers the first 28 bytes, so a flipped superblock byte marks
/// the whole segment corrupt instead of mis-attributing its records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Which side's stream this segment holds.
    pub side: Side,
    /// Segment index within the side (contiguous from 0).
    pub segment: u32,
    /// Global sequence number of the first record written to this segment.
    pub first_seq: u64,
}

impl Superblock {
    /// Serializes to the fixed 32-byte layout.
    pub fn encode(&self) -> [u8; SUPERBLOCK_LEN] {
        let mut out = [0u8; SUPERBLOCK_LEN];
        out[0..8].copy_from_slice(&MAGIC);
        out[8..10].copy_from_slice(&VERSION.to_le_bytes());
        out[10] = side_to_byte(self.side);
        out[12..16].copy_from_slice(&self.segment.to_le_bytes());
        out[16..24].copy_from_slice(&self.first_seq.to_le_bytes());
        let crc = checksum(&out[..SUPERBLOCK_LEN - CHECKSUM_LEN]);
        out[SUPERBLOCK_LEN - CHECKSUM_LEN..].copy_from_slice(&crc);
        out
    }

    /// Parses and verifies a superblock; the error string says what failed.
    pub fn decode(bytes: &[u8]) -> Result<Superblock, String> {
        if bytes.len() < SUPERBLOCK_LEN {
            return Err(format!("superblock truncated ({} bytes)", bytes.len()));
        }
        let bytes = &bytes[..SUPERBLOCK_LEN];
        let crc = checksum(&bytes[..SUPERBLOCK_LEN - CHECKSUM_LEN]);
        if crc != bytes[SUPERBLOCK_LEN - CHECKSUM_LEN..] {
            return Err("superblock checksum mismatch".into());
        }
        if bytes[0..8] != MAGIC {
            return Err("bad magic".into());
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != VERSION {
            return Err(format!("unsupported version {version}"));
        }
        let side = side_from_byte(bytes[10]).ok_or_else(|| format!("bad side {}", bytes[10]))?;
        let segment = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let first_seq = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        Ok(Superblock {
            side,
            segment,
            first_seq,
        })
    }
}

/// One archived row: a block or a transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchiveRecord {
    /// An exported block row.
    Block(BlockRecord),
    /// An exported transaction row.
    Tx(TxRecord),
}

impl ArchiveRecord {
    /// Timestamp of the record (a tx carries its including block's).
    pub fn timestamp(&self) -> u64 {
        match self {
            ArchiveRecord::Block(b) => b.timestamp,
            ArchiveRecord::Tx(t) => t.timestamp,
        }
    }

    /// Encodes `self` into a frame payload, stamping the global `seq`.
    /// The side is *not* stored per record — it is the segment's side.
    pub fn encode_payload(&self, seq: u64) -> Vec<u8> {
        match self {
            ArchiveRecord::Block(b) => {
                let mut out = Vec::with_capacity(BLOCK_PAYLOAD_LEN);
                out.push(KIND_BLOCK);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&b.timestamp.to_le_bytes());
                out.extend_from_slice(&b.number.to_le_bytes());
                out.extend_from_slice(&b.hash.0);
                out.extend_from_slice(&b.difficulty.to_be_bytes());
                out.extend_from_slice(&b.beneficiary.0);
                out.extend_from_slice(&b.gas_used.to_le_bytes());
                out.extend_from_slice(&b.tx_count.to_le_bytes());
                out.extend_from_slice(&b.ommer_count.to_le_bytes());
                debug_assert_eq!(out.len(), BLOCK_PAYLOAD_LEN);
                out
            }
            ArchiveRecord::Tx(t) => {
                let mut out = Vec::with_capacity(TX_PAYLOAD_LEN);
                out.push(KIND_TX);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&t.timestamp.to_le_bytes());
                out.extend_from_slice(&t.hash.0);
                out.extend_from_slice(&t.value.to_be_bytes());
                out.push(u8::from(t.is_contract) | (u8::from(t.has_chain_id) << 1));
                debug_assert_eq!(out.len(), TX_PAYLOAD_LEN);
                out
            }
        }
    }

    /// Decodes a full frame payload into `(seq, record)`, re-attaching the
    /// segment's `side` as the record's network.
    pub fn decode_payload(side: Side, payload: &[u8]) -> Result<(u64, ArchiveRecord), String> {
        let prefix = FramePrefix::decode(payload)?;
        match prefix.kind {
            KIND_BLOCK => {
                if payload.len() != BLOCK_PAYLOAD_LEN {
                    return Err(format!("block payload length {}", payload.len()));
                }
                let mut hash = [0u8; 32];
                hash.copy_from_slice(&payload[25..57]);
                let difficulty = U256::from_be_slice(&payload[57..89])
                    .map_err(|e| format!("difficulty: {e:?}"))?;
                let mut beneficiary = [0u8; 20];
                beneficiary.copy_from_slice(&payload[89..109]);
                let gas_used = u64::from_le_bytes(payload[109..117].try_into().unwrap());
                let tx_count = u32::from_le_bytes(payload[117..121].try_into().unwrap());
                let ommer_count = u32::from_le_bytes(payload[121..125].try_into().unwrap());
                Ok((
                    prefix.seq,
                    ArchiveRecord::Block(BlockRecord {
                        network: side,
                        number: prefix.number,
                        hash: H256(hash),
                        timestamp: prefix.timestamp,
                        difficulty,
                        beneficiary: Address(beneficiary),
                        gas_used,
                        tx_count,
                        ommer_count,
                    }),
                ))
            }
            KIND_TX => {
                if payload.len() != TX_PAYLOAD_LEN {
                    return Err(format!("tx payload length {}", payload.len()));
                }
                let mut hash = [0u8; 32];
                hash.copy_from_slice(&payload[17..49]);
                let value =
                    U256::from_be_slice(&payload[49..81]).map_err(|e| format!("value: {e:?}"))?;
                let flags = payload[81];
                Ok((
                    prefix.seq,
                    ArchiveRecord::Tx(TxRecord {
                        network: side,
                        hash: H256(hash),
                        timestamp: prefix.timestamp,
                        is_contract: flags & 1 != 0,
                        has_chain_id: flags & 2 != 0,
                        value,
                    }),
                ))
            }
            k => Err(format!("unknown record kind {k}")),
        }
    }
}

/// The fixed-offset prefix shared by both payload kinds, enough to build the
/// sparse index without reading (or verifying) whole payloads.
#[derive(Debug, Clone, Copy)]
pub struct FramePrefix {
    /// Record kind tag ([`KIND_BLOCK`] / [`KIND_TX`]).
    pub kind: u8,
    /// Global sequence number.
    pub seq: u64,
    /// Record timestamp.
    pub timestamp: u64,
    /// Block number ([`KIND_BLOCK`] only; 0 for transactions).
    pub number: u64,
}

impl FramePrefix {
    /// Decodes the first [`PREFIX_LEN`] bytes of a payload.
    pub fn decode(payload: &[u8]) -> Result<FramePrefix, String> {
        if payload.len() < 17 {
            return Err(format!("payload too short ({} bytes)", payload.len()));
        }
        let kind = payload[0];
        let seq = u64::from_le_bytes(payload[1..9].try_into().unwrap());
        let timestamp = u64::from_le_bytes(payload[9..17].try_into().unwrap());
        let number = if kind == KIND_BLOCK {
            if payload.len() < PREFIX_LEN {
                return Err(format!("block payload too short ({} bytes)", payload.len()));
            }
            u64::from_le_bytes(payload[17..25].try_into().unwrap())
        } else {
            0
        };
        Ok(FramePrefix {
            kind,
            seq,
            timestamp,
            number,
        })
    }
}

/// Encodes a full frame (header + payload) for `record` at `seq`.
pub fn encode_frame(record: &ArchiveRecord, seq: u64) -> Vec<u8> {
    let payload = record.encode_payload(seq);
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(&payload));
    out.extend_from_slice(&payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: u64) -> ArchiveRecord {
        ArchiveRecord::Block(BlockRecord {
            network: Side::Eth,
            number: n,
            hash: H256([n as u8; 32]),
            timestamp: 1_000 + n,
            difficulty: U256::from_u128(0xDEAD_BEEF_0000 + n as u128),
            beneficiary: Address([7; 20]),
            gas_used: 21_000 * n,
            tx_count: 3,
            ommer_count: 1,
        })
    }

    fn tx(n: u64) -> ArchiveRecord {
        ArchiveRecord::Tx(TxRecord {
            network: Side::Etc,
            hash: H256([n as u8; 32]),
            timestamp: 2_000 + n,
            is_contract: n.is_multiple_of(2),
            has_chain_id: n.is_multiple_of(3),
            value: U256::from_u64(n * 17),
        })
    }

    #[test]
    fn superblock_roundtrip() {
        let sb = Superblock {
            side: Side::Etc,
            segment: 42,
            first_seq: 1_234_567,
        };
        let bytes = sb.encode();
        assert_eq!(bytes.len(), SUPERBLOCK_LEN);
        assert_eq!(Superblock::decode(&bytes).unwrap(), sb);
    }

    #[test]
    fn superblock_detects_any_flip() {
        let bytes = Superblock {
            side: Side::Eth,
            segment: 0,
            first_seq: 0,
        }
        .encode();
        for i in 0..bytes.len() {
            let mut bad = bytes;
            bad[i] ^= 0x40;
            assert!(Superblock::decode(&bad).is_err(), "flip at {i} undetected");
        }
    }

    #[test]
    fn record_payload_roundtrip() {
        for (seq, rec) in [(0u64, block(5)), (9, tx(6)), (u64::MAX, block(0))] {
            let payload = rec.encode_payload(seq);
            // A record's own network is *not* stored; decoding re-attaches
            // the segment side.
            let want_side = match &rec {
                ArchiveRecord::Block(b) => b.network,
                ArchiveRecord::Tx(t) => t.network,
            };
            let (got_seq, got) = ArchiveRecord::decode_payload(want_side, &payload).unwrap();
            assert_eq!(got_seq, seq);
            assert_eq!(got, rec);
        }
    }

    #[test]
    fn prefix_matches_full_decode() {
        let rec = block(77);
        let payload = rec.encode_payload(123);
        let p = FramePrefix::decode(&payload).unwrap();
        assert_eq!(p.kind, KIND_BLOCK);
        assert_eq!(p.seq, 123);
        assert_eq!(p.timestamp, 1_077);
        assert_eq!(p.number, 77);

        let t = tx(4).encode_payload(9);
        let p = FramePrefix::decode(&t).unwrap();
        assert_eq!(p.kind, KIND_TX);
        assert_eq!((p.seq, p.timestamp, p.number), (9, 2_004, 0));
    }

    #[test]
    fn frame_checksum_covers_payload() {
        let frame = encode_frame(&tx(1), 3);
        let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
        assert_eq!(len + FRAME_HEADER_LEN, frame.len());
        let payload = &frame[FRAME_HEADER_LEN..];
        assert_eq!(checksum(payload), frame[4..8]);
    }

    #[test]
    fn truncated_payload_rejected() {
        let payload = block(1).encode_payload(0);
        assert!(ArchiveRecord::decode_payload(Side::Eth, &payload[..20]).is_err());
        assert!(ArchiveRecord::decode_payload(Side::Eth, &[]).is_err());
        let mut wrong_kind = payload.clone();
        wrong_kind[0] = 9;
        assert!(ArchiveRecord::decode_payload(Side::Eth, &wrong_kind).is_err());
    }
}
