//! The on-disk format: superblock, frame layout, record codec.
//!
//! An archive is a directory with one subdirectory per network side
//! (`eth/`, `etc/`), each holding numbered segment files
//! (`seg-00000.seg`, `seg-00001.seg`, …), plus a human-readable
//! `manifest.json` written when the archive is finished. A segment is a
//! fixed-size [`Superblock`] followed by append-only frames:
//!
//! ```text
//! [len: u32 LE][crc: 4 bytes][payload: len bytes]
//! ```
//!
//! `crc` is the first [`CHECKSUM_LEN`] bytes of the Keccak-256 digest of the
//! payload — the same truncated-keccak integrity scheme as the net layer's
//! `seal_frame`. Payloads are per-segment-[`Codec`] record encodings (no
//! RLP: records are flat rows):
//!
//! - [`Codec::Raw`] (format v1's only layout) is fixed-layout little-endian,
//!   which lets the open-time scan read a short prefix per frame to build
//!   the sparse index;
//! - [`Codec::Delta`] (format v2) shrinks the integer fields with LEB128
//!   varints, encoding `seq` as a delta against the superblock's
//!   `first_seq` and the timestamp as a zig-zag delta against the
//!   superblock's `base_time`. Deltas are against per-segment *superblock*
//!   anchors, never the previous frame, so a cursor can still start at any
//!   sparse-index offset. The prefix fields (kind, seq, timestamp, number)
//!   come first in either codec, so the index scan reads at most
//!   [`PREFIX_READ_LEN`] bytes per frame.
//!
//! Version-2 superblocks carry the codec byte and `base_time`; version-1
//! segments (all zeroes in those slots) still decode as `Raw`, so archives
//! written before the bump keep opening.
//!
//! Every record carries a **global sequence number**, monotonically
//! increasing across *both* sides. The analytics pipeline's echo detector is
//! order-sensitive across chains ("which side saw this hash first"), so a
//! replay must reconstruct the exact interleaving of the original stream;
//! merging the two per-side streams by `seq` does exactly that.

use fork_analytics::{BlockRecord, TxRecord};
use fork_crypto::keccak256;
use fork_primitives::{Address, H256, U256};
use fork_replay::Side;

/// Segment-file magic ("Fork ARCHive SeGment v1").
pub const MAGIC: [u8; 8] = *b"FARCHSG1";

/// Format version stamped into every superblock.
pub const VERSION: u16 = 2;

/// Oldest superblock version this build still reads.
pub const MIN_VERSION: u16 = 1;

/// Size of the superblock at the start of every segment file.
pub const SUPERBLOCK_LEN: usize = 32;

/// Frame header size: `len: u32` + truncated-keccak checksum.
pub const FRAME_HEADER_LEN: usize = 4 + CHECKSUM_LEN;

/// Checksum length in bytes (truncated keccak — integrity, not crypto).
pub const CHECKSUM_LEN: usize = 4;

/// Upper bound on a sane frame payload; anything larger is corruption.
pub const MAX_PAYLOAD_LEN: u32 = 1 << 20;

/// Shortest valid [`Codec::Raw`] payload (a tx record); anything shorter is
/// corruption. Codec-aware callers should use [`min_payload_len`].
pub const MIN_PAYLOAD_LEN: u32 = TX_PAYLOAD_LEN as u32;

/// Bytes of [`Codec::Raw`] payload the open-time scan reads to index a
/// frame: `kind + seq + timestamp + number`.
pub const PREFIX_LEN: usize = 25;

/// Bytes of payload the open-time scan reads to index a frame under any
/// codec. A [`Codec::Delta`] prefix is at most 31 bytes (kind + three
/// 10-byte varints), and every delta payload is longer than that, so a
/// 32-byte read always covers the prefix.
pub const PREFIX_READ_LEN: usize = 32;

/// Every `INDEX_STRIDE`-th block frame lands in the sparse index.
pub const INDEX_STRIDE: u64 = 64;

/// Payload kind tag: a [`BlockRecord`].
pub const KIND_BLOCK: u8 = 0;
/// Payload kind tag: a [`TxRecord`].
pub const KIND_TX: u8 = 1;

const BLOCK_PAYLOAD_LEN: usize = 125;
const TX_PAYLOAD_LEN: usize = 82;

/// Shortest delta-coded payload: a tx with one-byte varints and a
/// zero-length value (`kind + seqΔ + tsΔ + len + flags + hash`).
const MIN_DELTA_PAYLOAD_LEN: u32 = 1 + 1 + 1 + 1 + 1 + 32;

/// Payload encoding used within one segment, stamped into its superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Fixed-layout little-endian rows — format v1's only codec.
    #[default]
    Raw = 0,
    /// LEB128 varints with zig-zag deltas against superblock anchors.
    Delta = 1,
}

impl Codec {
    /// The superblock byte for this codec.
    pub fn as_byte(self) -> u8 {
        self as u8
    }

    /// Parses the superblock codec byte.
    pub fn from_byte(b: u8) -> Option<Codec> {
        match b {
            0 => Some(Codec::Raw),
            1 => Some(Codec::Delta),
            _ => None,
        }
    }
}

/// Shortest valid payload for `codec`; anything shorter is corruption.
pub fn min_payload_len(codec: Codec) -> u32 {
    match codec {
        Codec::Raw => TX_PAYLOAD_LEN as u32,
        Codec::Delta => MIN_DELTA_PAYLOAD_LEN,
    }
}

fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn read_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf
            .get(*pos)
            .ok_or_else(|| "varint truncated".to_string())?;
        *pos += 1;
        let low = u64::from(b & 0x7f);
        if shift >= 64 || (shift == 63 && low > 1) {
            return Err("varint overflow".into());
        }
        v |= low << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag_encode(v: i64) -> u64 {
    (v.wrapping_shl(1) ^ (v >> 63)) as u64
}

fn zigzag_decode(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

fn read_fixed<const N: usize>(buf: &[u8], pos: &mut usize) -> Result<[u8; N], String> {
    let end = pos
        .checked_add(N)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| format!("field truncated ({N} bytes at {pos})"))?;
    let mut out = [0u8; N];
    out.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(out)
}

fn read_len_prefixed_u256(buf: &[u8], pos: &mut usize) -> Result<U256, String> {
    let len = *buf.get(*pos).ok_or("length byte truncated")? as usize;
    *pos += 1;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| format!("integer truncated ({len} bytes at {pos})"))?;
    let v = U256::from_be_slice(&buf[*pos..end]).map_err(|e| format!("integer: {e:?}"))?;
    *pos = end;
    Ok(v)
}

/// Truncated-keccak checksum over a frame payload.
pub fn checksum(payload: &[u8]) -> [u8; CHECKSUM_LEN] {
    let digest = keccak256(payload);
    let mut out = [0u8; CHECKSUM_LEN];
    out.copy_from_slice(&digest.0[..CHECKSUM_LEN]);
    out
}

/// Segment filename for index `i` (`seg-00042.seg`).
pub fn segment_file_name(i: u32) -> String {
    format!("seg-{i:05}.seg")
}

/// Directory name for a side's segments.
pub fn side_dir_name(side: Side) -> &'static str {
    match side {
        Side::Eth => "eth",
        Side::Etc => "etc",
    }
}

fn side_to_byte(side: Side) -> u8 {
    match side {
        Side::Eth => 0,
        Side::Etc => 1,
    }
}

fn side_from_byte(b: u8) -> Option<Side> {
    match b {
        0 => Some(Side::Eth),
        1 => Some(Side::Etc),
        _ => None,
    }
}

/// The fixed-size header at the start of every segment file.
///
/// Layout (32 bytes): magic(8) · version(u16 LE) · side(u8) · codec(u8) ·
/// segment(u32 LE) · first_seq(u64 LE) · base_time(u32 LE) · checksum(4) —
/// the checksum covers the first 28 bytes, so a flipped superblock byte
/// marks the whole segment corrupt instead of mis-attributing its records.
///
/// The codec byte and `base_time` occupy slots that were reserved zeroes in
/// format v1, so v1 segments decode as `Raw` with `base_time == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Which side's stream this segment holds.
    pub side: Side,
    /// Payload encoding for every frame in this segment.
    pub codec: Codec,
    /// Segment index within the side (monotonic; gaps appear after
    /// compaction).
    pub segment: u32,
    /// Global sequence number of the first record written to this segment.
    pub first_seq: u64,
    /// Timestamp anchor for [`Codec::Delta`] zig-zag deltas (the first
    /// record's timestamp, saturated to `u32::MAX`). Zero for `Raw`.
    pub base_time: u32,
}

impl Superblock {
    /// Serializes to the fixed 32-byte layout (always [`VERSION`]).
    pub fn encode(&self) -> [u8; SUPERBLOCK_LEN] {
        let mut out = [0u8; SUPERBLOCK_LEN];
        out[0..8].copy_from_slice(&MAGIC);
        out[8..10].copy_from_slice(&VERSION.to_le_bytes());
        out[10] = side_to_byte(self.side);
        out[11] = self.codec.as_byte();
        out[12..16].copy_from_slice(&self.segment.to_le_bytes());
        out[16..24].copy_from_slice(&self.first_seq.to_le_bytes());
        out[24..28].copy_from_slice(&self.base_time.to_le_bytes());
        let crc = checksum(&out[..SUPERBLOCK_LEN - CHECKSUM_LEN]);
        out[SUPERBLOCK_LEN - CHECKSUM_LEN..].copy_from_slice(&crc);
        out
    }

    /// Parses and verifies a superblock; the error string says what failed.
    /// Accepts any version in `[MIN_VERSION, VERSION]`.
    pub fn decode(bytes: &[u8]) -> Result<Superblock, String> {
        if bytes.len() < SUPERBLOCK_LEN {
            return Err(format!("superblock truncated ({} bytes)", bytes.len()));
        }
        let bytes = &bytes[..SUPERBLOCK_LEN];
        let crc = checksum(&bytes[..SUPERBLOCK_LEN - CHECKSUM_LEN]);
        if crc != bytes[SUPERBLOCK_LEN - CHECKSUM_LEN..] {
            return Err("superblock checksum mismatch".into());
        }
        if bytes[0..8] != MAGIC {
            return Err("bad magic".into());
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(format!("unsupported version {version}"));
        }
        let side = side_from_byte(bytes[10]).ok_or_else(|| format!("bad side {}", bytes[10]))?;
        // v1 wrote zeroes in the codec and base_time slots, which decode as
        // Raw / 0 — exactly the v1 semantics.
        let codec =
            Codec::from_byte(bytes[11]).ok_or_else(|| format!("bad codec {}", bytes[11]))?;
        let segment = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let first_seq = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let base_time = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
        Ok(Superblock {
            side,
            codec,
            segment,
            first_seq,
            base_time,
        })
    }
}

/// One archived row: a block or a transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchiveRecord {
    /// An exported block row.
    Block(BlockRecord),
    /// An exported transaction row.
    Tx(TxRecord),
}

impl ArchiveRecord {
    /// Timestamp of the record (a tx carries its including block's).
    pub fn timestamp(&self) -> u64 {
        match self {
            ArchiveRecord::Block(b) => b.timestamp,
            ArchiveRecord::Tx(t) => t.timestamp,
        }
    }

    /// Encodes `self` under the segment's codec, stamping the global `seq`.
    pub fn encode_payload_in(&self, sb: &Superblock, seq: u64) -> Vec<u8> {
        match sb.codec {
            Codec::Raw => self.encode_payload(seq),
            Codec::Delta => self.encode_payload_delta(sb, seq),
        }
    }

    /// Decodes a payload under the segment's codec into `(seq, record)`.
    pub fn decode_payload_in(
        sb: &Superblock,
        payload: &[u8],
    ) -> Result<(u64, ArchiveRecord), String> {
        match sb.codec {
            Codec::Raw => Self::decode_payload(sb.side, payload),
            Codec::Delta => Self::decode_payload_delta(sb, payload),
        }
    }

    fn encode_payload_delta(&self, sb: &Superblock, seq: u64) -> Vec<u8> {
        // Prefix fields first (kind, seqΔ, tsΔ, number) so the open-time
        // scan can index a frame from its first PREFIX_READ_LEN bytes.
        match self {
            ArchiveRecord::Block(b) => {
                let mut out = Vec::with_capacity(96);
                out.push(KIND_BLOCK);
                write_uvarint(&mut out, seq.wrapping_sub(sb.first_seq));
                let ts_delta = (b.timestamp as i64).wrapping_sub(i64::from(sb.base_time));
                write_uvarint(&mut out, zigzag_encode(ts_delta));
                write_uvarint(&mut out, b.number);
                write_uvarint(&mut out, b.gas_used);
                write_uvarint(&mut out, u64::from(b.tx_count));
                write_uvarint(&mut out, u64::from(b.ommer_count));
                let diff = b.difficulty.to_be_bytes_trimmed();
                out.push(diff.len() as u8);
                out.extend_from_slice(&diff);
                out.extend_from_slice(&b.hash.0);
                out.extend_from_slice(&b.beneficiary.0);
                out
            }
            ArchiveRecord::Tx(t) => {
                let mut out = Vec::with_capacity(64);
                out.push(KIND_TX);
                write_uvarint(&mut out, seq.wrapping_sub(sb.first_seq));
                let ts_delta = (t.timestamp as i64).wrapping_sub(i64::from(sb.base_time));
                write_uvarint(&mut out, zigzag_encode(ts_delta));
                let val = t.value.to_be_bytes_trimmed();
                out.push(val.len() as u8);
                out.extend_from_slice(&val);
                out.push(u8::from(t.is_contract) | (u8::from(t.has_chain_id) << 1));
                out.extend_from_slice(&t.hash.0);
                out
            }
        }
    }

    fn decode_payload_delta(
        sb: &Superblock,
        payload: &[u8],
    ) -> Result<(u64, ArchiveRecord), String> {
        let mut pos = 0usize;
        let kind = *payload.get(pos).ok_or("empty payload")?;
        pos += 1;
        let seq = sb.first_seq.wrapping_add(read_uvarint(payload, &mut pos)?);
        let ts_delta = zigzag_decode(read_uvarint(payload, &mut pos)?);
        let timestamp = i64::from(sb.base_time).wrapping_add(ts_delta) as u64;
        match kind {
            KIND_BLOCK => {
                let number = read_uvarint(payload, &mut pos)?;
                let gas_used = read_uvarint(payload, &mut pos)?;
                let tx_count = u32::try_from(read_uvarint(payload, &mut pos)?)
                    .map_err(|_| "tx_count overflow".to_string())?;
                let ommer_count = u32::try_from(read_uvarint(payload, &mut pos)?)
                    .map_err(|_| "ommer_count overflow".to_string())?;
                let difficulty = read_len_prefixed_u256(payload, &mut pos)?;
                let hash = read_fixed::<32>(payload, &mut pos)?;
                let beneficiary = read_fixed::<20>(payload, &mut pos)?;
                if pos != payload.len() {
                    return Err(format!(
                        "block payload trailing bytes ({})",
                        payload.len() - pos
                    ));
                }
                Ok((
                    seq,
                    ArchiveRecord::Block(BlockRecord {
                        network: sb.side,
                        number,
                        hash: H256(hash),
                        timestamp,
                        difficulty,
                        beneficiary: Address(beneficiary),
                        gas_used,
                        tx_count,
                        ommer_count,
                    }),
                ))
            }
            KIND_TX => {
                let value = read_len_prefixed_u256(payload, &mut pos)?;
                let flags = *payload.get(pos).ok_or("flags truncated")?;
                pos += 1;
                let hash = read_fixed::<32>(payload, &mut pos)?;
                if pos != payload.len() {
                    return Err(format!(
                        "tx payload trailing bytes ({})",
                        payload.len() - pos
                    ));
                }
                Ok((
                    seq,
                    ArchiveRecord::Tx(TxRecord {
                        network: sb.side,
                        hash: H256(hash),
                        timestamp,
                        is_contract: flags & 1 != 0,
                        has_chain_id: flags & 2 != 0,
                        value,
                    }),
                ))
            }
            k => Err(format!("unknown record kind {k}")),
        }
    }

    /// Encodes `self` into a [`Codec::Raw`] frame payload, stamping the
    /// global `seq`. The side is *not* stored per record — it is the
    /// segment's side.
    pub fn encode_payload(&self, seq: u64) -> Vec<u8> {
        match self {
            ArchiveRecord::Block(b) => {
                let mut out = Vec::with_capacity(BLOCK_PAYLOAD_LEN);
                out.push(KIND_BLOCK);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&b.timestamp.to_le_bytes());
                out.extend_from_slice(&b.number.to_le_bytes());
                out.extend_from_slice(&b.hash.0);
                out.extend_from_slice(&b.difficulty.to_be_bytes());
                out.extend_from_slice(&b.beneficiary.0);
                out.extend_from_slice(&b.gas_used.to_le_bytes());
                out.extend_from_slice(&b.tx_count.to_le_bytes());
                out.extend_from_slice(&b.ommer_count.to_le_bytes());
                debug_assert_eq!(out.len(), BLOCK_PAYLOAD_LEN);
                out
            }
            ArchiveRecord::Tx(t) => {
                let mut out = Vec::with_capacity(TX_PAYLOAD_LEN);
                out.push(KIND_TX);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&t.timestamp.to_le_bytes());
                out.extend_from_slice(&t.hash.0);
                out.extend_from_slice(&t.value.to_be_bytes());
                out.push(u8::from(t.is_contract) | (u8::from(t.has_chain_id) << 1));
                debug_assert_eq!(out.len(), TX_PAYLOAD_LEN);
                out
            }
        }
    }

    /// Decodes a full frame payload into `(seq, record)`, re-attaching the
    /// segment's `side` as the record's network.
    pub fn decode_payload(side: Side, payload: &[u8]) -> Result<(u64, ArchiveRecord), String> {
        let prefix = FramePrefix::decode(payload)?;
        match prefix.kind {
            KIND_BLOCK => {
                if payload.len() != BLOCK_PAYLOAD_LEN {
                    return Err(format!("block payload length {}", payload.len()));
                }
                let mut hash = [0u8; 32];
                hash.copy_from_slice(&payload[25..57]);
                let difficulty = U256::from_be_slice(&payload[57..89])
                    .map_err(|e| format!("difficulty: {e:?}"))?;
                let mut beneficiary = [0u8; 20];
                beneficiary.copy_from_slice(&payload[89..109]);
                let gas_used = u64::from_le_bytes(payload[109..117].try_into().unwrap());
                let tx_count = u32::from_le_bytes(payload[117..121].try_into().unwrap());
                let ommer_count = u32::from_le_bytes(payload[121..125].try_into().unwrap());
                Ok((
                    prefix.seq,
                    ArchiveRecord::Block(BlockRecord {
                        network: side,
                        number: prefix.number,
                        hash: H256(hash),
                        timestamp: prefix.timestamp,
                        difficulty,
                        beneficiary: Address(beneficiary),
                        gas_used,
                        tx_count,
                        ommer_count,
                    }),
                ))
            }
            KIND_TX => {
                if payload.len() != TX_PAYLOAD_LEN {
                    return Err(format!("tx payload length {}", payload.len()));
                }
                let mut hash = [0u8; 32];
                hash.copy_from_slice(&payload[17..49]);
                let value =
                    U256::from_be_slice(&payload[49..81]).map_err(|e| format!("value: {e:?}"))?;
                let flags = payload[81];
                Ok((
                    prefix.seq,
                    ArchiveRecord::Tx(TxRecord {
                        network: side,
                        hash: H256(hash),
                        timestamp: prefix.timestamp,
                        is_contract: flags & 1 != 0,
                        has_chain_id: flags & 2 != 0,
                        value,
                    }),
                ))
            }
            k => Err(format!("unknown record kind {k}")),
        }
    }
}

/// The fixed-offset prefix shared by both payload kinds, enough to build the
/// sparse index without reading (or verifying) whole payloads.
#[derive(Debug, Clone, Copy)]
pub struct FramePrefix {
    /// Record kind tag ([`KIND_BLOCK`] / [`KIND_TX`]).
    pub kind: u8,
    /// Global sequence number.
    pub seq: u64,
    /// Record timestamp.
    pub timestamp: u64,
    /// Block number ([`KIND_BLOCK`] only; 0 for transactions).
    pub number: u64,
}

impl FramePrefix {
    /// Decodes a payload prefix under the segment's codec. `payload` may be
    /// just the first [`PREFIX_READ_LEN`] bytes of a longer frame.
    pub fn decode_in(sb: &Superblock, payload: &[u8]) -> Result<FramePrefix, String> {
        match sb.codec {
            Codec::Raw => Self::decode(payload),
            Codec::Delta => {
                let mut pos = 0usize;
                let kind = *payload.get(pos).ok_or("empty payload")?;
                pos += 1;
                let seq = sb.first_seq.wrapping_add(read_uvarint(payload, &mut pos)?);
                let ts_delta = zigzag_decode(read_uvarint(payload, &mut pos)?);
                let timestamp = i64::from(sb.base_time).wrapping_add(ts_delta) as u64;
                let number = if kind == KIND_BLOCK {
                    read_uvarint(payload, &mut pos)?
                } else {
                    0
                };
                Ok(FramePrefix {
                    kind,
                    seq,
                    timestamp,
                    number,
                })
            }
        }
    }

    /// Decodes the first [`PREFIX_LEN`] bytes of a [`Codec::Raw`] payload.
    pub fn decode(payload: &[u8]) -> Result<FramePrefix, String> {
        if payload.len() < 17 {
            return Err(format!("payload too short ({} bytes)", payload.len()));
        }
        let kind = payload[0];
        let seq = u64::from_le_bytes(payload[1..9].try_into().unwrap());
        let timestamp = u64::from_le_bytes(payload[9..17].try_into().unwrap());
        let number = if kind == KIND_BLOCK {
            if payload.len() < PREFIX_LEN {
                return Err(format!("block payload too short ({} bytes)", payload.len()));
            }
            u64::from_le_bytes(payload[17..25].try_into().unwrap())
        } else {
            0
        };
        Ok(FramePrefix {
            kind,
            seq,
            timestamp,
            number,
        })
    }
}

/// Encodes a full frame (header + payload) for `record` at `seq` under the
/// segment's codec.
pub fn encode_frame_in(sb: &Superblock, record: &ArchiveRecord, seq: u64) -> Vec<u8> {
    frame_from_payload(record.encode_payload_in(sb, seq))
}

/// Encodes a full [`Codec::Raw`] frame (header + payload) for `record`.
pub fn encode_frame(record: &ArchiveRecord, seq: u64) -> Vec<u8> {
    frame_from_payload(record.encode_payload(seq))
}

fn frame_from_payload(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(&payload));
    out.extend_from_slice(&payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: u64) -> ArchiveRecord {
        ArchiveRecord::Block(BlockRecord {
            network: Side::Eth,
            number: n,
            hash: H256([n as u8; 32]),
            timestamp: 1_000 + n,
            difficulty: U256::from_u128(0xDEAD_BEEF_0000 + n as u128),
            beneficiary: Address([7; 20]),
            gas_used: 21_000 * n,
            tx_count: 3,
            ommer_count: 1,
        })
    }

    fn tx(n: u64) -> ArchiveRecord {
        ArchiveRecord::Tx(TxRecord {
            network: Side::Etc,
            hash: H256([n as u8; 32]),
            timestamp: 2_000 + n,
            is_contract: n.is_multiple_of(2),
            has_chain_id: n.is_multiple_of(3),
            value: U256::from_u64(n * 17),
        })
    }

    fn delta_superblock(first_seq: u64, base_time: u32) -> Superblock {
        Superblock {
            side: Side::Eth,
            codec: Codec::Delta,
            segment: 3,
            first_seq,
            base_time,
        }
    }

    #[test]
    fn superblock_roundtrip() {
        for codec in [Codec::Raw, Codec::Delta] {
            let sb = Superblock {
                side: Side::Etc,
                codec,
                segment: 42,
                first_seq: 1_234_567,
                base_time: 1_469_000_000,
            };
            let bytes = sb.encode();
            assert_eq!(bytes.len(), SUPERBLOCK_LEN);
            assert_eq!(Superblock::decode(&bytes).unwrap(), sb);
        }
    }

    #[test]
    fn superblock_detects_any_flip() {
        let bytes = Superblock {
            side: Side::Eth,
            codec: Codec::Raw,
            segment: 0,
            first_seq: 0,
            base_time: 0,
        }
        .encode();
        for i in 0..bytes.len() {
            let mut bad = bytes;
            bad[i] ^= 0x40;
            assert!(Superblock::decode(&bad).is_err(), "flip at {i} undetected");
        }
    }

    #[test]
    fn v1_superblock_still_decodes_as_raw() {
        // Hand-build a version-1 superblock: reserved zeroes where v2 puts
        // the codec byte and base_time.
        let mut bytes = [0u8; SUPERBLOCK_LEN];
        bytes[0..8].copy_from_slice(&MAGIC);
        bytes[8..10].copy_from_slice(&1u16.to_le_bytes());
        bytes[10] = 1; // Etc
        bytes[12..16].copy_from_slice(&7u32.to_le_bytes());
        bytes[16..24].copy_from_slice(&99u64.to_le_bytes());
        let crc = checksum(&bytes[..SUPERBLOCK_LEN - CHECKSUM_LEN]);
        bytes[SUPERBLOCK_LEN - CHECKSUM_LEN..].copy_from_slice(&crc);
        let sb = Superblock::decode(&bytes).unwrap();
        assert_eq!(sb.codec, Codec::Raw);
        assert_eq!(sb.base_time, 0);
        assert_eq!((sb.side, sb.segment, sb.first_seq), (Side::Etc, 7, 99));
    }

    #[test]
    fn uvarint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        // Truncated and over-long varints error instead of panicking.
        let mut pos = 0;
        assert!(read_uvarint(&[0x80, 0x80], &mut pos).is_err());
        let mut pos = 0;
        assert!(read_uvarint(&[0xff; 11], &mut pos).is_err());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn delta_payload_roundtrip() {
        let sb = delta_superblock(1_000, 1_469_000_000);
        let recs = [
            (1_000u64, block(0)),
            (1_001, tx(6)),
            (1_700, block(4_500_000)),
            (u64::MAX, tx(1)),
        ];
        for (seq, rec) in recs {
            let payload = rec.encode_payload_in(&sb, seq);
            assert!(payload.len() as u32 >= min_payload_len(Codec::Delta));
            let (got_seq, got) = ArchiveRecord::decode_payload_in(&sb, &payload).unwrap();
            assert_eq!(got_seq, seq);
            // Delta decode re-attaches the segment side.
            let want = match rec {
                ArchiveRecord::Block(b) => ArchiveRecord::Block(BlockRecord {
                    network: sb.side,
                    ..b
                }),
                ArchiveRecord::Tx(t) => ArchiveRecord::Tx(TxRecord {
                    network: sb.side,
                    ..t
                }),
            };
            assert_eq!(got, want);
        }
    }

    #[test]
    fn delta_is_smaller_than_raw_for_typical_records() {
        let sb = delta_superblock(0, 1_469_021_581);
        let b = ArchiveRecord::Block(BlockRecord {
            network: Side::Eth,
            number: 1_920_001,
            hash: H256([9; 32]),
            timestamp: 1_469_021_600,
            difficulty: U256::from_u128(62_413_376_722_602_996_188),
            beneficiary: Address([3; 20]),
            gas_used: 1_500_000,
            tx_count: 12,
            ommer_count: 0,
        });
        let raw = b.encode_payload(5);
        let delta = b.encode_payload_in(&sb, 5);
        assert!(
            delta.len() < raw.len(),
            "delta {} >= raw {}",
            delta.len(),
            raw.len()
        );
    }

    #[test]
    fn delta_prefix_matches_full_decode() {
        let sb = delta_superblock(40, 1_000);
        let rec = block(77);
        let payload = rec.encode_payload_in(&sb, 123);
        let full = ArchiveRecord::decode_payload_in(&sb, &payload).unwrap();
        let read = PREFIX_READ_LEN.min(payload.len());
        let p = FramePrefix::decode_in(&sb, &payload[..read]).unwrap();
        assert_eq!(p.kind, KIND_BLOCK);
        assert_eq!(p.seq, 123);
        assert_eq!(p.seq, full.0);
        assert_eq!(p.timestamp, 1_077);
        assert_eq!(p.number, 77);
    }

    #[test]
    fn delta_truncated_payload_rejected() {
        let sb = delta_superblock(0, 0);
        let payload = block(1).encode_payload_in(&sb, 0);
        for cut in [0, 1, 3, payload.len() - 1] {
            assert!(
                ArchiveRecord::decode_payload_in(&sb, &payload[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
        let mut extra = payload.clone();
        extra.push(0);
        assert!(ArchiveRecord::decode_payload_in(&sb, &extra).is_err());
    }

    #[test]
    fn record_payload_roundtrip() {
        for (seq, rec) in [(0u64, block(5)), (9, tx(6)), (u64::MAX, block(0))] {
            let payload = rec.encode_payload(seq);
            // A record's own network is *not* stored; decoding re-attaches
            // the segment side.
            let want_side = match &rec {
                ArchiveRecord::Block(b) => b.network,
                ArchiveRecord::Tx(t) => t.network,
            };
            let (got_seq, got) = ArchiveRecord::decode_payload(want_side, &payload).unwrap();
            assert_eq!(got_seq, seq);
            assert_eq!(got, rec);
        }
    }

    #[test]
    fn prefix_matches_full_decode() {
        let rec = block(77);
        let payload = rec.encode_payload(123);
        let p = FramePrefix::decode(&payload).unwrap();
        assert_eq!(p.kind, KIND_BLOCK);
        assert_eq!(p.seq, 123);
        assert_eq!(p.timestamp, 1_077);
        assert_eq!(p.number, 77);

        let t = tx(4).encode_payload(9);
        let p = FramePrefix::decode(&t).unwrap();
        assert_eq!(p.kind, KIND_TX);
        assert_eq!((p.seq, p.timestamp, p.number), (9, 2_004, 0));
    }

    #[test]
    fn frame_checksum_covers_payload() {
        let frame = encode_frame(&tx(1), 3);
        let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
        assert_eq!(len + FRAME_HEADER_LEN, frame.len());
        let payload = &frame[FRAME_HEADER_LEN..];
        assert_eq!(checksum(payload), frame[4..8]);
    }

    #[test]
    fn truncated_payload_rejected() {
        let payload = block(1).encode_payload(0);
        assert!(ArchiveRecord::decode_payload(Side::Eth, &payload[..20]).is_err());
        assert!(ArchiveRecord::decode_payload(Side::Eth, &[]).is_err());
        let mut wrong_kind = payload.clone();
        wrong_kind[0] = 9;
        assert!(ArchiveRecord::decode_payload(Side::Eth, &wrong_kind).is_err());
    }
}
