//! Archive error type.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Anything that can go wrong opening, writing, or reading an archive.
///
/// Corruption is a *reported* condition, never a panic: torn tails are
/// recovered at open, checksum mismatches surface as [`ArchiveError::Corrupt`]
/// with the segment and byte offset.
#[derive(Debug)]
pub enum ArchiveError {
    /// An I/O operation failed.
    Io {
        /// File or directory being touched.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A frame or superblock failed validation.
    Corrupt {
        /// The segment file.
        path: PathBuf,
        /// Byte offset of the offending frame (0 for the superblock).
        offset: u64,
        /// What failed (checksum mismatch, bad length, …).
        detail: String,
    },
    /// The directory holds no recognizable archive.
    NotAnArchive {
        /// The directory inspected.
        path: PathBuf,
    },
    /// `manifest.json` exists but does not parse as a v1 manifest.
    Manifest {
        /// The manifest file.
        path: PathBuf,
        /// What failed.
        detail: String,
    },
}

impl ArchiveError {
    pub(crate) fn io(path: &Path, source: io::Error) -> Self {
        ArchiveError::Io {
            path: path.to_path_buf(),
            source,
        }
    }

    pub(crate) fn corrupt(path: &Path, offset: u64, detail: impl Into<String>) -> Self {
        ArchiveError::Corrupt {
            path: path.to_path_buf(),
            offset,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::Io { path, source } => {
                write!(f, "archive i/o error at {}: {source}", path.display())
            }
            ArchiveError::Corrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "corrupt archive segment {} at offset {offset}: {detail}",
                path.display()
            ),
            ArchiveError::NotAnArchive { path } => {
                write!(f, "{} is not a fork-archive directory", path.display())
            }
            ArchiveError::Manifest { path, detail } => {
                write!(f, "bad manifest {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for ArchiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArchiveError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
