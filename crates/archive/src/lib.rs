//! fork-archive: a durable, append-only block/tx archive.
//!
//! The paper's methodology is *archive then re-analyze*: every block and
//! transaction is exported to a separate database and each figure is a query
//! over it. This crate is that layer for the reproduction. An archive is a
//! directory with one segment subdirectory per network side plus a
//! `manifest.json`; records are length-prefixed, checksummed frames (see
//! [`format`]) carrying a global sequence number so a replay reconstructs
//! the exact cross-side interleaving the analytics pipeline saw live.
//!
//! - [`ArchiveWriter`] implements `fork_sim::LedgerSink`: any micro/meso run
//!   streams to disk, typically tee'd alongside the live pipeline.
//! - [`ArchiveReader`] opens with a header-only scan (torn tails recovered,
//!   sparse number/time indexes built), then serves full scans, range
//!   queries, [`ArchiveReader::replay_into`], and a checksum-walking
//!   [`ArchiveReader::verify`].
//!
//! Corruption is a reported condition, never a panic: see [`ArchiveError`],
//! [`OpenReport`], and [`VerifyReport`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod format;
pub mod reader;
pub mod segment;
pub mod sidecar;
pub mod writer;

pub use error::ArchiveError;
pub use format::{ArchiveRecord, Codec};
pub use reader::{ArchiveReader, OpenReport, RecordStream, SegmentVerify, VerifyReport};
pub use segment::{SegmentCursor, SegmentScan};
pub use sidecar::{
    archive_fingerprint, archive_format_version, HashIndex, IndexEntry, SidecarCheck, SidecarFault,
    SidecarLoad, SIDECAR_FILE,
};
pub use writer::{ArchiveConfig, ArchiveMeta, ArchiveStats, ArchiveWriter, CompactReport};
