//! Query-side of the archive: [`ArchiveReader`].
//!
//! Opening scans every segment's frame headers (payloads are seeked over,
//! not read), recovering torn tails and building per-segment sparse indexes.
//! From there the reader offers full per-side scans, block-number and
//! timestamp range queries, a cross-side [`ArchiveReader::replay_into`] that
//! rebuilds analytics state in the original ingestion order, and a
//! [`ArchiveReader::verify`] pass that checksums every frame.

use std::fs;
use std::path::{Path, PathBuf};

use fork_analytics::{BlockRecord, Pipeline};
use fork_replay::Side;
use fork_sim::LedgerSink;
use fork_telemetry::{json::Value, MetricsRegistry};

use crate::error::ArchiveError;
use crate::format::{segment_file_name, side_dir_name, ArchiveRecord, SUPERBLOCK_LEN};
use crate::segment::{scan_segment, SegmentCursor, SegmentScan};
use crate::sidecar::SidecarCheck;
use crate::writer::{list_segments, ArchiveMeta};

/// What the open-time scan found (and what it had to repair or skip).
#[derive(Debug, Clone, Default)]
pub struct OpenReport {
    /// Readable segments across both sides.
    pub segments: u64,
    /// Complete frames across both sides.
    pub frames: u64,
    /// Block frames across both sides.
    pub blocks: u64,
    /// Tx frames across both sides.
    pub txs: u64,
    /// Bytes of torn tail found (readers stop before them; they are only
    /// physically truncated by `ArchiveWriter::open_append`).
    pub torn_bytes: u64,
    /// Segments whose torn tail was non-empty.
    pub torn_segments: u64,
    /// Segments skipped because their superblock failed validation, with the
    /// reason. Their frames are unreadable — side attribution needs the
    /// superblock — but the rest of the archive stays readable.
    pub skipped: Vec<(PathBuf, String)>,
    /// Zero-length segment files ignored at open (a crash between a segment
    /// roll and the first superblock byte leaves one behind).
    pub empty_segments: u64,
}

/// Per-segment result of [`ArchiveReader::verify`].
#[derive(Debug, Clone)]
pub struct SegmentVerify {
    /// The segment file.
    pub path: PathBuf,
    /// Frames whose checksum and decode both passed.
    pub frames_ok: u64,
    /// Byte offsets of corrupt frames, with the failure detail.
    pub corrupt: Vec<(u64, String)>,
    /// Unreadable tail bytes.
    pub torn_bytes: u64,
}

/// Whole-archive result of [`ArchiveReader::verify`].
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// One entry per readable segment, plus skipped superblock failures
    /// (those report zero ok frames and one corrupt entry at offset 0).
    pub segments: Vec<SegmentVerify>,
    /// State of the hash-index sidecar. `Missing` is acceptable (the index
    /// is built on first use); `Corrupt`/`Stale` are detected damage —
    /// tolerated by loaders, which regenerate, but reported here.
    pub sidecar: SidecarCheck,
}

impl VerifyReport {
    /// True when every frame in every segment verified clean and the
    /// sidecar, if present, is valid and fresh.
    pub fn is_clean(&self) -> bool {
        self.sidecar.is_clean()
            && self
                .segments
                .iter()
                .all(|s| s.corrupt.is_empty() && s.torn_bytes == 0)
    }

    /// Totals as `(frames_ok, corrupt_frames, torn_bytes)`.
    pub fn totals(&self) -> (u64, u64, u64) {
        let mut ok = 0;
        let mut bad = 0;
        let mut torn = 0;
        for s in &self.segments {
            ok += s.frames_ok;
            bad += s.corrupt.len() as u64;
            torn += s.torn_bytes;
        }
        (ok, bad, torn)
    }
}

#[derive(Debug)]
struct SideIndex {
    /// Scanned segments in segment order.
    segments: Vec<(PathBuf, SegmentScan)>,
}

/// Read handle over an archive directory. See the [module docs](self).
#[derive(Debug)]
pub struct ArchiveReader {
    dir: PathBuf,
    sides: [SideIndex; 2],
    report: OpenReport,
    meta: Option<ArchiveMeta>,
}

impl ArchiveReader {
    /// Opens `dir`, scanning all segments. Fails only on I/O errors or when
    /// `dir` holds no archive at all; per-segment corruption is recovered
    /// and reported in [`ArchiveReader::open_report`].
    pub fn open(dir: &Path) -> Result<ArchiveReader, ArchiveError> {
        Self::open_with_telemetry(dir, &MetricsRegistry::new())
    }

    /// [`ArchiveReader::open`] timing the scan under `archive.open` /
    /// `archive.scan` spans and counting `archive.skipped_segments`.
    pub fn open_with_telemetry(
        dir: &Path,
        registry: &MetricsRegistry,
    ) -> Result<ArchiveReader, ArchiveError> {
        let open_span = registry.span("archive.open");
        let _open_guard = open_span.enter();

        let manifest_path = dir.join("manifest.json");
        let any_side_dir = [Side::Eth, Side::Etc]
            .iter()
            .any(|s| dir.join(side_dir_name(*s)).is_dir());
        if !any_side_dir && !manifest_path.is_file() {
            return Err(ArchiveError::NotAnArchive {
                path: dir.to_path_buf(),
            });
        }

        let mut report = OpenReport::default();
        let scan_span = registry.span("archive.scan");
        let skipped_counter = registry.counter("archive.skipped_segments");
        let mut sides_vec = Vec::with_capacity(2);
        for side in [Side::Eth, Side::Etc] {
            let side_dir = dir.join(side_dir_name(side));
            let mut index = SideIndex {
                segments: Vec::new(),
            };
            if side_dir.is_dir() {
                let mut seg_ids = list_segments(&side_dir)?;
                seg_ids.sort();
                for seg in seg_ids {
                    let path = side_dir.join(segment_file_name(seg));
                    let _scan_guard = scan_span.enter();
                    // An empty file is a crash artifact, not corruption: the
                    // roll happened but no superblock byte ever landed.
                    let len = fs::metadata(&path)
                        .map_err(|e| ArchiveError::io(&path, e))?
                        .len();
                    if len == 0 {
                        report.empty_segments += 1;
                        continue;
                    }
                    match scan_segment(&path, side) {
                        Ok(scan) => {
                            report.segments += 1;
                            report.frames += scan.frames;
                            report.blocks += scan.blocks;
                            report.txs += scan.txs;
                            if scan.torn_bytes > 0 {
                                report.torn_bytes += scan.torn_bytes;
                                report.torn_segments += 1;
                            }
                            index.segments.push((path, scan));
                        }
                        Err(ArchiveError::Corrupt { path, detail, .. }) => {
                            skipped_counter.incr();
                            report.skipped.push((path, detail));
                        }
                        Err(other) => return Err(other),
                    }
                }
            }
            sides_vec.push(index);
        }
        let [eth, etc]: [SideIndex; 2] = sides_vec.try_into().expect("two sides");

        let meta = read_manifest(&manifest_path)?;
        Ok(ArchiveReader {
            dir: dir.to_path_buf(),
            sides: [eth, etc],
            report,
            meta,
        })
    }

    /// Archive root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What the open-time scan found.
    pub fn open_report(&self) -> &OpenReport {
        &self.report
    }

    /// Run provenance from `manifest.json`, when present and well-formed.
    pub fn meta(&self) -> Option<ArchiveMeta> {
        self.meta
    }

    /// Records as `(blocks, txs)` across both sides.
    pub fn totals(&self) -> (u64, u64) {
        (self.report.blocks, self.report.txs)
    }

    fn side_index(&self, side: Side) -> &SideIndex {
        match side {
            Side::Eth => &self.sides[0],
            Side::Etc => &self.sides[1],
        }
    }

    /// One side's scanned segments in segment order, as `(path, scan)`.
    /// This is the raw material for external cursors (fork-query's reader
    /// pool): each scan carries the superblock, valid length, and sparse
    /// indexes needed to open independent [`SegmentCursor`]s without
    /// re-scanning the archive.
    pub fn segments(&self, side: Side) -> &[(PathBuf, SegmentScan)] {
        &self.side_index(side).segments
    }

    /// Full scan of one side, in write (= seq) order.
    pub fn records(&self, side: Side) -> RecordStream<'_> {
        RecordStream::new(self.side_index(side), None, None)
    }

    /// Block records of `side` with numbers in `[first, last]` (inclusive),
    /// seeking via the sparse block-number index.
    pub fn blocks_in(
        &self,
        side: Side,
        first: u64,
        last: u64,
    ) -> impl Iterator<Item = Result<BlockRecord, ArchiveError>> + '_ {
        let stream = RecordStream::new(
            self.side_index(side),
            Some(SeekKey::Number(first)),
            Some(StopKey::Number(last)),
        );
        stream.filter_map(move |item| match item {
            Ok((_, ArchiveRecord::Block(b))) => (first..=last).contains(&b.number).then_some(Ok(b)),
            Ok(_) => None,
            Err(e) => Some(Err(e)),
        })
    }

    /// All records of `side` with timestamps in `[start, end]` (inclusive
    /// unix seconds), seeking via the sparse timestamp index. Transactions
    /// carry their including block's timestamp, so a time window yields the
    /// same population the paper's per-hour/per-day queries would.
    pub fn records_in_time_range(
        &self,
        side: Side,
        start: u64,
        end: u64,
    ) -> impl Iterator<Item = Result<(u64, ArchiveRecord), ArchiveError>> + '_ {
        let stream = RecordStream::new(
            self.side_index(side),
            Some(SeekKey::Time(start)),
            Some(StopKey::Time(end)),
        );
        stream.filter_map(move |item| match item {
            Ok((seq, rec)) => (start..=end)
                .contains(&rec.timestamp())
                .then_some(Ok((seq, rec))),
            Err(e) => Some(Err(e)),
        })
    }

    /// Streams the whole archive into `sink` in the original global
    /// ingestion order, merging the two per-side streams by sequence number.
    pub fn replay_into_sink(&self, sink: &mut impl LedgerSink) -> Result<u64, ArchiveError> {
        let mut eth = RecordStream::new(&self.sides[0], None, None).peekable_seq()?;
        let mut etc = RecordStream::new(&self.sides[1], None, None).peekable_seq()?;
        let mut delivered = 0u64;
        loop {
            let take_eth = match (eth.peek_seq(), etc.peek_seq()) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(a), Some(b)) => a <= b,
            };
            let stream = if take_eth { &mut eth } else { &mut etc };
            let (_, record) = stream.take()?;
            match record {
                ArchiveRecord::Block(b) => sink.block(b),
                ArchiveRecord::Tx(t) => sink.tx(t),
            }
            delivered += 1;
        }
        Ok(delivered)
    }

    /// Rebuilds full analytics state from disk: every archived record is
    /// ingested into `pipeline` in the original order. Returns the number of
    /// records delivered.
    pub fn replay_into(&self, pipeline: &mut Pipeline) -> Result<u64, ArchiveError> {
        self.replay_into_sink(pipeline)
    }

    /// Walks every frame in every segment, verifying checksums and decodes.
    /// Corrupt frames are collected, never panicked on; a bad frame header
    /// ends that segment's walk (offsets past it cannot be trusted).
    pub fn verify(&self) -> VerifyReport {
        let mut report = VerifyReport::default();
        for side in &self.sides {
            for (path, scan) in &side.segments {
                let mut sv = SegmentVerify {
                    path: path.clone(),
                    frames_ok: 0,
                    corrupt: Vec::new(),
                    torn_bytes: scan.torn_bytes,
                };
                match SegmentCursor::open(
                    path,
                    scan.superblock,
                    SUPERBLOCK_LEN as u64,
                    scan.valid_len,
                ) {
                    Ok(mut cursor) => {
                        while let Some(item) = cursor.next_frame() {
                            match item {
                                Ok(_) => sv.frames_ok += 1,
                                Err(ArchiveError::Corrupt { offset, detail, .. }) => {
                                    sv.corrupt.push((offset, detail));
                                }
                                Err(e) => {
                                    sv.corrupt.push((0, e.to_string()));
                                    break;
                                }
                            }
                        }
                    }
                    Err(e) => sv.corrupt.push((0, e.to_string())),
                }
                report.segments.push(sv);
            }
        }
        for (path, detail) in &self.report.skipped {
            report.segments.push(SegmentVerify {
                path: path.clone(),
                frames_ok: 0,
                corrupt: vec![(0, detail.clone())],
                torn_bytes: 0,
            });
        }
        report.sidecar = crate::sidecar::check_sidecar(self);
        report
    }
}

enum SeekKey {
    Number(u64),
    Time(u64),
}

enum StopKey {
    Number(u64),
    Time(u64),
}

/// Iterator over one side's records in write order, segment by segment.
/// Yields `(seq, record)`; corrupt frames surface as `Err` and end the
/// affected segment's contribution (the stream continues with the next
/// segment).
pub struct RecordStream<'a> {
    segments: std::slice::Iter<'a, (PathBuf, SegmentScan)>,
    seek: Option<SeekKey>,
    stop: Option<StopKey>,
    cursor: Option<SegmentCursor>,
    /// Set once a stop key fires; the stream is exhausted.
    done: bool,
}

impl<'a> RecordStream<'a> {
    fn new(index: &'a SideIndex, seek: Option<SeekKey>, stop: Option<StopKey>) -> Self {
        RecordStream {
            segments: index.segments.iter(),
            seek,
            stop,
            cursor: None,
            done: false,
        }
    }

    /// Opens the next segment's cursor, applying the seek key (and skipping
    /// segments that end before it).
    fn advance_segment(&mut self) -> Option<Result<(), ArchiveError>> {
        loop {
            let (path, scan) = self.segments.next()?;
            let start = match &self.seek {
                None => SUPERBLOCK_LEN as u64,
                Some(SeekKey::Number(n)) => {
                    if scan.block_range.is_some_and(|(_, hi)| hi < *n) {
                        continue; // whole segment precedes the range
                    }
                    scan.seek_for_number(*n)
                }
                Some(SeekKey::Time(t)) => {
                    if scan.time_range.is_some_and(|(_, hi)| hi < *t) {
                        continue;
                    }
                    scan.seek_for_time(*t)
                }
            };
            match SegmentCursor::open(path, scan.superblock, start, scan.valid_len) {
                Ok(cursor) => {
                    self.cursor = Some(cursor);
                    return Some(Ok(()));
                }
                Err(e) => return Some(Err(e)),
            }
        }
    }

    fn past_stop(&self, record: &ArchiveRecord) -> bool {
        match (&self.stop, record) {
            // Block numbers and timestamps ascend per side, so the first
            // block past the bound ends the scan. Tx frames tag along with
            // their block and are filtered by the caller.
            (Some(StopKey::Number(n)), ArchiveRecord::Block(b)) => b.number > *n,
            (Some(StopKey::Time(t)), rec) => rec.timestamp() > *t,
            _ => false,
        }
    }

    /// Wraps into a single-lookahead adapter for the seq-merge in
    /// `replay_into_sink`.
    fn peekable_seq(self) -> Result<PeekedStream<'a>, ArchiveError> {
        let mut stream = self;
        let head = stream.pull()?;
        Ok(PeekedStream { stream, head })
    }

    /// Next record, or `None` at the end; propagates corruption errors after
    /// ending the affected segment.
    fn pull(&mut self) -> Result<Option<(u64, ArchiveRecord)>, ArchiveError> {
        loop {
            if self.done {
                return Ok(None);
            }
            if self.cursor.is_none() {
                match self.advance_segment() {
                    None => return Ok(None),
                    Some(Ok(())) => {}
                    Some(Err(e)) => return Err(e),
                }
            }
            let cursor = self.cursor.as_mut().expect("cursor opened above");
            match cursor.next_frame() {
                None => {
                    self.cursor = None; // segment exhausted, try the next
                }
                Some(Ok((_, seq, record))) => {
                    if self.past_stop(&record) {
                        self.done = true;
                        return Ok(None);
                    }
                    return Ok(Some((seq, record)));
                }
                Some(Err(e)) => {
                    self.cursor = None; // cursor already stopped at the error
                    return Err(e);
                }
            }
        }
    }
}

impl Iterator for RecordStream<'_> {
    type Item = Result<(u64, ArchiveRecord), ArchiveError>;
    fn next(&mut self) -> Option<Self::Item> {
        self.pull().transpose()
    }
}

struct PeekedStream<'a> {
    stream: RecordStream<'a>,
    head: Option<(u64, ArchiveRecord)>,
}

impl PeekedStream<'_> {
    fn peek_seq(&self) -> Option<u64> {
        self.head.as_ref().map(|(seq, _)| *seq)
    }

    fn take(&mut self) -> Result<(u64, ArchiveRecord), ArchiveError> {
        let out = self.head.take().expect("take() after peek_seq() = Some");
        self.head = self.stream.pull()?;
        Ok(out)
    }
}

pub(crate) fn read_manifest(path: &Path) -> Result<Option<ArchiveMeta>, ArchiveError> {
    if !path.is_file() {
        return Ok(None);
    }
    let text = fs::read_to_string(path).map_err(|e| ArchiveError::io(path, e))?;
    let value = Value::parse(&text).map_err(|e| ArchiveError::Manifest {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })?;
    if value["schema"].as_str() != Some("fork-archive/v1") {
        return Err(ArchiveError::Manifest {
            path: path.to_path_buf(),
            detail: "unknown schema".into(),
        });
    }
    let Some(seed_str) = value["seed"].as_str() else {
        return Ok(None); // manifest without provenance — fine
    };
    let seed = seed_str
        .parse::<u64>()
        .map_err(|_| ArchiveError::Manifest {
            path: path.to_path_buf(),
            detail: "seed is not a u64".into(),
        })?;
    Ok(Some(ArchiveMeta {
        seed,
        start_unix: value["start_unix"].as_u64().unwrap_or(0),
        end_unix: value["end_unix"].as_u64().unwrap_or(0),
    }))
}
