//! Append-side of the archive: [`ArchiveWriter`].
//!
//! The writer is a [`LedgerSink`], so it slots anywhere a `Pipeline` does —
//! typically as one arm of a `TeeSink` behind the existing `MeteredSink`.
//! Records are routed to per-side segment files and stamped with a global
//! sequence number shared across both sides, which is what lets a replay
//! reconstruct the original interleaving.
//!
//! `LedgerSink` methods cannot return errors, so I/O failures during
//! ingestion are held *stickily* and surfaced by [`ArchiveWriter::finish`]
//! (or [`ArchiveWriter::take_error`]); after the first failure the writer
//! drops further records rather than archiving a stream with holes.

use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use fork_analytics::{BlockRecord, TxRecord};
use fork_replay::Side;
use fork_sim::LedgerSink;
use fork_telemetry::{json::Value, Counter, MetricsRegistry};

use crate::error::ArchiveError;
use crate::format::{
    encode_frame_in, segment_file_name, side_dir_name, ArchiveRecord, Codec, Superblock,
    SUPERBLOCK_LEN,
};
use crate::segment::scan_segment;

/// Tunables for the append side.
#[derive(Debug, Clone, Copy)]
pub struct ArchiveConfig {
    /// Roll to a new segment file once the current one would exceed this
    /// many bytes (a segment always holds at least one frame).
    pub segment_max_bytes: u64,
    /// Payload codec for newly opened segments. Appending to an existing
    /// archive keeps each reopened segment's own codec.
    pub codec: Codec,
}

impl Default for ArchiveConfig {
    fn default() -> Self {
        ArchiveConfig {
            segment_max_bytes: 4 << 20,
            codec: Codec::Raw,
        }
    }
}

/// Run provenance stored in `manifest.json` by [`ArchiveWriter::finish`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArchiveMeta {
    /// RNG seed of the archived run.
    pub seed: u64,
    /// Simulated start time (unix seconds).
    pub start_unix: u64,
    /// Simulated end time (unix seconds).
    pub end_unix: u64,
}

/// What [`ArchiveWriter::finish`] reports about the completed archive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArchiveStats {
    /// Block records written.
    pub blocks: u64,
    /// Tx records written.
    pub txs: u64,
    /// Total frame bytes written (headers + payloads, superblocks excluded).
    pub bytes: u64,
    /// Segment files created across both sides.
    pub segments: u64,
}

/// One side's open segment file.
#[derive(Debug)]
struct SideWriter {
    dir: PathBuf,
    side: Side,
    file: Option<BufWriter<File>>,
    /// Superblock of the open segment (encode anchors live here).
    sb: Option<Superblock>,
    /// Index of the segment `file` writes to (next to create when `None`).
    segment: u32,
    /// Bytes in the current segment, superblock included.
    seg_bytes: u64,
    /// Frames in the current segment.
    seg_frames: u64,
    /// Segments this side has opened in total.
    segments_opened: u64,
}

impl SideWriter {
    fn new(dir: PathBuf, side: Side) -> Self {
        SideWriter {
            dir,
            side,
            file: None,
            sb: None,
            segment: 0,
            seg_bytes: 0,
            seg_frames: 0,
            segments_opened: 0,
        }
    }

    fn seg_path(&self, segment: u32) -> PathBuf {
        self.dir.join(segment_file_name(segment))
    }

    /// Opens the segment file `self.segment` fresh, writing its superblock.
    /// `first_ts` anchors delta timestamps (saturated to `u32::MAX`).
    fn open_segment(
        &mut self,
        first_seq: u64,
        first_ts: u64,
        codec: Codec,
    ) -> Result<(), ArchiveError> {
        let path = self.seg_path(self.segment);
        let file = File::create(&path).map_err(|e| ArchiveError::io(&path, e))?;
        let mut writer = BufWriter::new(file);
        let sb = Superblock {
            side: self.side,
            codec,
            segment: self.segment,
            first_seq,
            base_time: match codec {
                Codec::Raw => 0,
                Codec::Delta => u32::try_from(first_ts).unwrap_or(u32::MAX),
            },
        };
        writer
            .write_all(&sb.encode())
            .map_err(|e| ArchiveError::io(&path, e))?;
        self.file = Some(writer);
        self.sb = Some(sb);
        self.seg_bytes = SUPERBLOCK_LEN as u64;
        self.seg_frames = 0;
        self.segments_opened += 1;
        Ok(())
    }

    /// Encodes and appends one record, rolling segments as needed. Encoding
    /// happens here because the payload depends on the receiving segment's
    /// superblock anchors (codec, `first_seq`, `base_time`); a frame that
    /// triggers a roll is re-encoded against the fresh segment. Returns the
    /// frame's byte length.
    fn append(
        &mut self,
        record: &ArchiveRecord,
        seq: u64,
        config: &ArchiveConfig,
    ) -> Result<u64, ArchiveError> {
        let mut frame = self
            .sb
            .filter(|_| self.file.is_some())
            .map(|sb| encode_frame_in(&sb, record, seq));
        if let Some(f) = &frame {
            if self.seg_frames > 0 && self.seg_bytes + f.len() as u64 > config.segment_max_bytes {
                self.close_current()?;
                self.segment += 1;
                frame = None;
            }
        }
        if self.file.is_none() {
            self.open_segment(seq, record.timestamp(), config.codec)?;
        }
        let frame = match frame {
            Some(f) => f,
            None => {
                let sb = self.sb.expect("segment opened above");
                encode_frame_in(&sb, record, seq)
            }
        };
        let path = self.seg_path(self.segment);
        let writer = self.file.as_mut().expect("segment opened above");
        writer
            .write_all(&frame)
            .map_err(|e| ArchiveError::io(&path, e))?;
        self.seg_bytes += frame.len() as u64;
        self.seg_frames += 1;
        Ok(frame.len() as u64)
    }

    fn flush(&mut self) -> Result<(), ArchiveError> {
        let path = self.seg_path(self.segment);
        if let Some(writer) = self.file.as_mut() {
            writer.flush().map_err(|e| ArchiveError::io(&path, e))?;
        }
        Ok(())
    }

    fn close_current(&mut self) -> Result<(), ArchiveError> {
        if let Some(mut writer) = self.file.take() {
            let path = self.seg_path(self.segment);
            writer.flush().map_err(|e| ArchiveError::io(&path, e))?;
        }
        Ok(())
    }
}

/// Append-only archive writer; see the [module docs](self) for the error
/// model. Create with [`ArchiveWriter::create`] (fresh) or
/// [`ArchiveWriter::open_append`] (resume after a crash or a previous run).
#[derive(Debug)]
pub struct ArchiveWriter {
    dir: PathBuf,
    config: ArchiveConfig,
    sides: [SideWriter; 2],
    next_seq: u64,
    blocks: u64,
    txs: u64,
    bytes: u64,
    error: Option<ArchiveError>,
    // Telemetry (no-op counters unless attached to a registry).
    bytes_written: Arc<Counter>,
    frames_written: Arc<Counter>,
    flushes: Arc<Counter>,
    segments_opened: Arc<Counter>,
}

impl ArchiveWriter {
    /// Creates a fresh archive at `dir` (created if missing). Existing
    /// segment files and manifest from a previous archive are removed.
    pub fn create(dir: &Path) -> Result<ArchiveWriter, ArchiveError> {
        Self::create_with(dir, ArchiveConfig::default())
    }

    /// [`ArchiveWriter::create`] with explicit tunables.
    pub fn create_with(dir: &Path, config: ArchiveConfig) -> Result<ArchiveWriter, ArchiveError> {
        let mut sides_vec = Vec::with_capacity(2);
        for side in [Side::Eth, Side::Etc] {
            let side_dir = dir.join(side_dir_name(side));
            fs::create_dir_all(&side_dir).map_err(|e| ArchiveError::io(&side_dir, e))?;
            remove_segments(&side_dir)?;
            sides_vec.push(SideWriter::new(side_dir, side));
        }
        let manifest = dir.join("manifest.json");
        if manifest.exists() {
            fs::remove_file(&manifest).map_err(|e| ArchiveError::io(&manifest, e))?;
        }
        let [eth, etc]: [SideWriter; 2] = sides_vec.try_into().expect("two sides");
        Ok(ArchiveWriter {
            dir: dir.to_path_buf(),
            config,
            sides: [eth, etc],
            next_seq: 0,
            blocks: 0,
            txs: 0,
            bytes: 0,
            error: None,
            bytes_written: Arc::new(Counter::new()),
            frames_written: Arc::new(Counter::new()),
            flushes: Arc::new(Counter::new()),
            segments_opened: Arc::new(Counter::new()),
        })
    }

    /// Reopens an existing archive for appending. Torn tails left by a crash
    /// are physically truncated at the last valid frame; sequence numbering
    /// resumes after the highest surviving record.
    pub fn open_append(dir: &Path) -> Result<ArchiveWriter, ArchiveError> {
        Self::open_append_with(dir, ArchiveConfig::default())
    }

    /// [`ArchiveWriter::open_append`] with explicit tunables.
    pub fn open_append_with(
        dir: &Path,
        config: ArchiveConfig,
    ) -> Result<ArchiveWriter, ArchiveError> {
        let mut writer = Self::create_preserving(dir, config)?;
        let mut max_seq: Option<u64> = None;
        for sw in writer.sides.iter_mut() {
            let mut segments = list_segments(&sw.dir)?;
            segments.sort();
            // A crash between a segment roll and the first superblock byte
            // leaves a zero-length file. There is nothing to recover in it;
            // remove it so the previous segment becomes the append tail.
            // (Only empty files get this treatment — a short-but-nonempty
            // file is real corruption and still fails the superblock scan.)
            let mut kept = Vec::with_capacity(segments.len());
            for &seg in &segments {
                let path = sw.dir.join(segment_file_name(seg));
                let len = fs::metadata(&path)
                    .map_err(|e| ArchiveError::io(&path, e))?
                    .len();
                if len == 0 {
                    fs::remove_file(&path).map_err(|e| ArchiveError::io(&path, e))?;
                } else {
                    kept.push(seg);
                }
            }
            let Some(&last) = kept.last() else {
                continue;
            };
            for &seg in &kept {
                let path = sw.dir.join(segment_file_name(seg));
                let scan = scan_segment(&path, sw.side)?;
                if scan.torn_bytes > 0 {
                    truncate_to(&path, scan.valid_len)?;
                }
                writer.blocks += scan.blocks;
                writer.txs += scan.txs;
                writer.bytes += scan.valid_len - SUPERBLOCK_LEN as u64;
                if let Some((_, hi)) = scan.seq_range {
                    max_seq = Some(max_seq.map_or(hi, |m| m.max(hi)));
                }
                if seg == last {
                    // Reopen the tail segment for appending. Its own
                    // superblock keeps supplying the encode anchors, so a
                    // raw tail stays raw even under a delta config.
                    let file = OpenOptions::new()
                        .append(true)
                        .open(&path)
                        .map_err(|e| ArchiveError::io(&path, e))?;
                    sw.segment = seg;
                    sw.sb = Some(scan.superblock);
                    sw.seg_bytes = scan.valid_len;
                    sw.seg_frames = scan.frames;
                    sw.file = Some(BufWriter::new(file));
                }
            }
        }
        writer.next_seq = max_seq.map_or(0, |m| m + 1);
        Ok(writer)
    }

    /// Like `create_with` but leaves existing segments in place.
    fn create_preserving(dir: &Path, config: ArchiveConfig) -> Result<ArchiveWriter, ArchiveError> {
        let mut sides_vec = Vec::with_capacity(2);
        for side in [Side::Eth, Side::Etc] {
            let side_dir = dir.join(side_dir_name(side));
            fs::create_dir_all(&side_dir).map_err(|e| ArchiveError::io(&side_dir, e))?;
            sides_vec.push(SideWriter::new(side_dir, side));
        }
        let [eth, etc]: [SideWriter; 2] = sides_vec.try_into().expect("two sides");
        Ok(ArchiveWriter {
            dir: dir.to_path_buf(),
            config,
            sides: [eth, etc],
            next_seq: 0,
            blocks: 0,
            txs: 0,
            bytes: 0,
            error: None,
            bytes_written: Arc::new(Counter::new()),
            frames_written: Arc::new(Counter::new()),
            flushes: Arc::new(Counter::new()),
            segments_opened: Arc::new(Counter::new()),
        })
    }

    /// Registers write counters (`archive.bytes_written`, `archive.frames`,
    /// `archive.flushes`, `archive.segments`) in `registry`.
    pub fn with_telemetry(mut self, registry: &MetricsRegistry) -> Self {
        self.bytes_written = registry.counter("archive.bytes_written");
        self.frames_written = registry.counter("archive.frames");
        self.flushes = registry.counter("archive.flushes");
        self.segments_opened = registry.counter("archive.segments");
        self
    }

    /// Archive root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Next global sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Records written so far as `(blocks, txs)`.
    pub fn totals(&self) -> (u64, u64) {
        (self.blocks, self.txs)
    }

    /// The first I/O error hit during ingestion, if any, leaving the writer
    /// error-free. After an error the writer stops appending.
    pub fn take_error(&mut self) -> Option<ArchiveError> {
        self.error.take()
    }

    fn side_index(side: Side) -> usize {
        match side {
            Side::Eth => 0,
            Side::Etc => 1,
        }
    }

    fn append(&mut self, side: Side, record: ArchiveRecord) {
        if self.error.is_some() {
            return; // sticky failure: do not archive a stream with holes
        }
        let seq = self.next_seq;
        let sw = &mut self.sides[Self::side_index(side)];
        let opened_before = sw.segments_opened;
        match sw.append(&record, seq, &self.config) {
            Ok(bytes) => {
                self.next_seq += 1;
                self.bytes += bytes;
                self.bytes_written.add(bytes);
                self.frames_written.incr();
                self.segments_opened.add(sw.segments_opened - opened_before);
                match record {
                    ArchiveRecord::Block(_) => self.blocks += 1,
                    ArchiveRecord::Tx(_) => self.txs += 1,
                }
            }
            Err(e) => self.error = Some(e),
        }
    }

    /// Flushes both sides' buffered frames to the OS.
    pub fn flush(&mut self) -> Result<(), ArchiveError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        for sw in self.sides.iter_mut() {
            sw.flush()?;
        }
        self.flushes.incr();
        Ok(())
    }

    /// Flushes and closes all segments, writes `manifest.json`, and returns
    /// whole-archive stats. Surfaces any sticky ingestion error.
    pub fn finish(mut self, meta: Option<ArchiveMeta>) -> Result<ArchiveStats, ArchiveError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut segments = 0;
        for sw in self.sides.iter_mut() {
            sw.close_current()?;
            segments += sw.segments_opened;
        }
        self.flushes.incr();
        write_manifest(&self.dir, meta, self.blocks, self.txs, None)?;
        Ok(ArchiveStats {
            blocks: self.blocks,
            txs: self.txs,
            bytes: self.bytes,
            segments,
        })
    }
}

/// What [`ArchiveWriter::compact_below`] removed and kept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Segment files deleted across both sides.
    pub removed_segments: u64,
    /// Block records that went with them.
    pub removed_blocks: u64,
    /// Tx records that went with them.
    pub removed_txs: u64,
    /// Segment files retained across both sides.
    pub retained_segments: u64,
    /// Block records still readable.
    pub retained_blocks: u64,
    /// Tx records still readable.
    pub retained_txs: u64,
}

impl ArchiveWriter {
    /// Prunes whole segments whose blocks all precede `cutoff` (exclusive)
    /// and rewrites `manifest.json` with the surviving totals.
    ///
    /// Only a *prefix* of each side's segment sequence is removable: block
    /// numbers ascend per side, and tx frames carry no block number, so a
    /// tx-only segment is pruned together with the block segments around it.
    /// The tail segment is never pruned — the archive stays append-able and
    /// never becomes side-less. Retained segments are untouched (their
    /// numbering keeps its gap; readers sort indices, not assume contiguity).
    pub fn compact_below(dir: &Path, cutoff: u64) -> Result<CompactReport, ArchiveError> {
        let mut report = CompactReport::default();
        for side in [Side::Eth, Side::Etc] {
            let side_dir = dir.join(side_dir_name(side));
            if !side_dir.is_dir() {
                continue;
            }
            let mut segments = list_segments(&side_dir)?;
            segments.sort();
            let mut scans = Vec::with_capacity(segments.len());
            for &seg in &segments {
                let path = side_dir.join(segment_file_name(seg));
                let scan = scan_segment(&path, side)?;
                scans.push((path, scan));
            }
            let mut prefix = 0;
            for (i, (_, scan)) in scans.iter().enumerate() {
                if i + 1 == scans.len() {
                    break; // never prune the tail
                }
                if scan.block_range.is_some_and(|(_, hi)| hi >= cutoff) {
                    break;
                }
                prefix = i + 1;
            }
            for (i, (path, scan)) in scans.iter().enumerate() {
                if i < prefix {
                    fs::remove_file(path).map_err(|e| ArchiveError::io(path, e))?;
                    report.removed_segments += 1;
                    report.removed_blocks += scan.blocks;
                    report.removed_txs += scan.txs;
                } else {
                    report.retained_segments += 1;
                    report.retained_blocks += scan.blocks;
                    report.retained_txs += scan.txs;
                }
            }
        }
        let manifest = dir.join("manifest.json");
        let meta = crate::reader::read_manifest(&manifest)?;
        write_manifest(
            dir,
            meta,
            report.retained_blocks,
            report.retained_txs,
            Some(cutoff),
        )?;
        Ok(report)
    }
}

/// Writes `manifest.json`. `compacted_below` records the cutoff of the last
/// [`ArchiveWriter::compact_below`], if any.
fn write_manifest(
    dir: &Path,
    meta: Option<ArchiveMeta>,
    blocks: u64,
    txs: u64,
    compacted_below: Option<u64>,
) -> Result<(), ArchiveError> {
    let mut fields = vec![(
        "schema".to_string(),
        Value::Str("fork-archive/v1".to_string()),
    )];
    if let Some(m) = meta {
        // Seed as a string: JSON numbers are f64 and a 64-bit seed would
        // lose precision past 2^53.
        fields.push(("seed".to_string(), Value::Str(m.seed.to_string())));
        fields.push(("start_unix".to_string(), Value::Num(m.start_unix as f64)));
        fields.push(("end_unix".to_string(), Value::Num(m.end_unix as f64)));
    }
    fields.push(("blocks".to_string(), Value::Num(blocks as f64)));
    fields.push(("txs".to_string(), Value::Num(txs as f64)));
    if let Some(cutoff) = compacted_below {
        fields.push(("compacted_below".to_string(), Value::Num(cutoff as f64)));
    }
    let manifest = dir.join("manifest.json");
    fs::write(&manifest, Value::Obj(fields).to_json_pretty())
        .map_err(|e| ArchiveError::io(&manifest, e))
}

impl LedgerSink for ArchiveWriter {
    fn block(&mut self, record: BlockRecord) {
        self.append(record.network, ArchiveRecord::Block(record));
    }
    fn tx(&mut self, record: TxRecord) {
        self.append(record.network, ArchiveRecord::Tx(record));
    }
}

/// Segment indices present in a side directory.
pub(crate) fn list_segments(side_dir: &Path) -> Result<Vec<u32>, ArchiveError> {
    let mut out = Vec::new();
    let entries = fs::read_dir(side_dir).map_err(|e| ArchiveError::io(side_dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| ArchiveError::io(side_dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(idx) = name
            .strip_prefix("seg-")
            .and_then(|rest| rest.strip_suffix(".seg"))
            .and_then(|digits| digits.parse::<u32>().ok())
        {
            out.push(idx);
        }
    }
    Ok(out)
}

fn remove_segments(side_dir: &Path) -> Result<(), ArchiveError> {
    for idx in list_segments(side_dir)? {
        let path = side_dir.join(segment_file_name(idx));
        fs::remove_file(&path).map_err(|e| ArchiveError::io(&path, e))?;
    }
    Ok(())
}

fn truncate_to(path: &Path, len: u64) -> Result<(), ArchiveError> {
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| ArchiveError::io(path, e))?;
    file.set_len(len).map_err(|e| ArchiveError::io(path, e))?;
    file.sync_all().map_err(|e| ArchiveError::io(path, e))
}
