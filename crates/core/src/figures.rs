//! Figure data structures: one per figure of the paper, each regenerable
//! from a completed study run.

use fork_analytics::{ascii_chart, TimeSeries};
use fork_telemetry::json::Value;

/// One panel of a figure (the paper's figures stack up to three panels).
#[derive(Debug, Clone)]
pub struct FigurePanel {
    /// Y-axis label.
    pub title: String,
    /// The series plotted in this panel.
    pub series: Vec<TimeSeries>,
    /// Log-scale hint for rendering (Figure 4's bottom panel).
    pub log_scale: bool,
}

/// A full figure: id, caption and panels.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// "fig1" … "fig5".
    pub id: &'static str,
    /// The paper's caption, abbreviated.
    pub caption: &'static str,
    /// Panels, top to bottom.
    pub panels: Vec<FigurePanel>,
}

impl FigureData {
    /// Renders every panel as an ASCII chart.
    pub fn render_ascii(&self, width: usize, height: usize) -> String {
        let mut out = format!("== {}: {} ==\n", self.id, self.caption);
        for panel in &self.panels {
            let series: Vec<&TimeSeries> = panel.series.iter().collect();
            let rendered = if panel.log_scale {
                // Plot log10(v) for positive values.
                let logged: Vec<TimeSeries> = panel
                    .series
                    .iter()
                    .map(|s| TimeSeries {
                        label: format!("log10 {}", s.label),
                        points: s
                            .points
                            .iter()
                            .filter(|(_, v)| *v > 0.0)
                            .map(|(t, v)| (*t, v.log10()))
                            .collect(),
                    })
                    .collect();
                let refs: Vec<&TimeSeries> = logged.iter().collect();
                ascii_chart(&panel.title, &refs, width, height)
            } else {
                ascii_chart(&panel.title, &series, width, height)
            };
            out.push_str(&rendered);
            out.push('\n');
        }
        out
    }

    /// All series flattened (for CSV export).
    pub fn all_series(&self) -> Vec<&TimeSeries> {
        self.panels.iter().flat_map(|p| p.series.iter()).collect()
    }

    /// This figure as a JSON value (id, caption, panels with their series).
    pub fn to_json_value(&self) -> Value {
        Value::Obj(vec![
            ("id".into(), Value::Str(self.id.into())),
            ("caption".into(), Value::Str(self.caption.into())),
            (
                "panels".into(),
                Value::Arr(
                    self.panels
                        .iter()
                        .map(|p| {
                            Value::Obj(vec![
                                ("title".into(), Value::Str(p.title.clone())),
                                (
                                    "series".into(),
                                    Value::Arr(
                                        p.series.iter().map(|s| s.to_json_value()).collect(),
                                    ),
                                ),
                                ("log_scale".into(), Value::Bool(p.log_scale)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Compact JSON rendering of [`FigureData::to_json_value`].
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fork_primitives::SimTime;

    fn series(label: &str, vals: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new(label);
        for (i, v) in vals.iter().enumerate() {
            s.push(SimTime::from_unix(i as u64 * 3_600), *v);
        }
        s
    }

    fn fig() -> FigureData {
        FigureData {
            id: "fig1",
            caption: "test figure",
            panels: vec![
                FigurePanel {
                    title: "Blocks per Hour".into(),
                    series: vec![series("ETH", &[1.0, 2.0]), series("ETC", &[2.0, 1.0])],
                    log_scale: false,
                },
                FigurePanel {
                    title: "# Rebroadcasts/Day".into(),
                    series: vec![series("ETH", &[10.0, 10_000.0, 0.0])],
                    log_scale: true,
                },
            ],
        }
    }

    #[test]
    fn render_includes_all_panels() {
        let r = fig().render_ascii(40, 8);
        assert!(r.contains("fig1"));
        assert!(r.contains("Blocks per Hour"));
        assert!(r.contains("# Rebroadcasts/Day"));
        assert!(r.contains("log10 ETH"), "log panel relabeled");
    }

    #[test]
    fn log_scale_drops_nonpositive_points() {
        let r = fig().render_ascii(40, 8);
        // The log panel's max is log10(10000)=4; axis labels stay small.
        assert!(!r.contains("1.0000e4"), "raw values must not leak: {r}");
    }

    #[test]
    fn all_series_flattens() {
        assert_eq!(fig().all_series().len(), 3);
    }

    #[test]
    fn serializes_to_json() {
        let j = fig().to_json();
        assert!(j.contains("\"id\":\"fig1\""));
        let v = Value::parse(&j).unwrap();
        assert_eq!(v["panels"][0]["series"][0]["label"].as_str(), Some("ETH"));
        assert_eq!(v["panels"][1]["log_scale"].as_bool(), Some(true));
    }
}
