//! # fork-core
//!
//! The public API of the *Stick a fork in it* reproduction. A [`ForkStudy`]
//! binds the calibrated DAO-fork scenario to the two-chain simulation
//! engine; running it yields a [`StudyResult`] from which every figure of
//! the paper ([`StudyResult::figure1`] … [`StudyResult::figure5`]) and every
//! in-text observation ([`observations::short_term`],
//! [`observations::long_term`]) can be regenerated.
//!
//! ```
//! use fork_core::{observations, ForkStudy};
//!
//! let result = ForkStudy::quick(7).run();
//! let report = observations::short_term(&result);
//! println!("{}", report.to_markdown());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod observations;
pub mod report;
pub mod study;

pub use figures::{FigureData, FigurePanel};
pub use observations::{Observation, ObservationReport};
pub use report::{full_report, summary_text};
pub use study::{ArchiveAggregates, ForkStudy, StudyResult};
