//! Human-readable study reports.

use crate::observations::ObservationReport;
use crate::study::StudyResult;
use fork_replay::Side;

/// Renders the run-level summary: counts, heads, echo totals.
pub fn summary_text(result: &StudyResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Study window: {} .. {}\n",
        result.start, result.end
    ));
    for (i, side) in [Side::Eth, Side::Etc].into_iter().enumerate() {
        let (blocks, txs, ommers) = result.pipeline.totals(side);
        out.push_str(&format!(
            "{}: {} blocks, {} transactions, {} ommers, final difficulty {:.3e}, \
             {} echoes received\n",
            side.label(),
            blocks,
            txs,
            ommers,
            result.summary.final_difficulty[i].to_f64_lossy(),
            result.pipeline.total_echoes(side),
        ));
    }
    out.push_str(&format!(
        "replay pushes attempted: {}\n",
        result.summary.replay_pushes
    ));
    out
}

/// Renders the full report: summary, observations, and every figure as an
/// ASCII chart.
pub fn full_report(result: &StudyResult, observations: &ObservationReport) -> String {
    let mut out = String::new();
    out.push_str("STICK A FORK IN IT — reproduction run report\n");
    out.push_str("============================================\n\n");
    out.push_str(&summary_text(result));
    out.push('\n');
    out.push_str("Observations (paper vs measured)\n");
    out.push_str(&observations.to_markdown());
    out.push('\n');
    for fig in result.all_figures() {
        out.push_str(&fig.render_ascii(72, 12));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::ForkStudy;

    #[test]
    fn report_renders_end_to_end() {
        let result = ForkStudy::quick(3).run();
        let obs = crate::observations::short_term(&result);
        let text = full_report(&result, &obs);
        assert!(text.contains("ETH:"));
        assert!(text.contains("ETC:"));
        assert!(text.contains("fig1"));
        assert!(text.contains("fig5"));
        assert!(text.contains("| id | paper | measured | match |"));
    }
}
