//! Checks of the paper's in-text quantitative observations against a
//! completed run — the paper-vs-measured rows of EXPERIMENTS.md.

use fork_analytics::{correlation, ratio};
use fork_primitives::time::TARGET_BLOCK_TIME_SECS;
use fork_replay::Side;
use fork_telemetry::json::Value;

use crate::study::StudyResult;

/// One paper claim with our measurement.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Short id ("O1", "O2", …).
    pub id: &'static str,
    /// The paper's statement.
    pub paper: &'static str,
    /// What we measured.
    pub measured: String,
    /// Whether the measured shape matches the claim.
    pub pass: bool,
}

/// The full set of observation checks.
#[derive(Debug, Clone)]
pub struct ObservationReport {
    /// Individual checks.
    pub observations: Vec<Observation>,
}

impl ObservationReport {
    /// True when every observation passed.
    pub fn all_pass(&self) -> bool {
        self.observations.iter().all(|o| o.pass)
    }

    /// The report as a JSON string.
    pub fn to_json(&self) -> String {
        Value::Obj(vec![(
            "observations".into(),
            Value::Arr(
                self.observations
                    .iter()
                    .map(|o| {
                        Value::Obj(vec![
                            ("id".into(), Value::Str(o.id.into())),
                            ("paper".into(), Value::Str(o.paper.into())),
                            ("measured".into(), Value::Str(o.measured.clone())),
                            ("pass".into(), Value::Bool(o.pass)),
                        ])
                    })
                    .collect(),
            ),
        )])
        .to_json()
    }

    /// Markdown table for EXPERIMENTS.md.
    pub fn to_markdown(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .observations
            .iter()
            .map(|o| {
                vec![
                    o.id.to_string(),
                    o.paper.to_string(),
                    o.measured.clone(),
                    if o.pass { "✓".into() } else { "✗".into() },
                ]
            })
            .collect();
        fork_analytics::markdown_table(&["id", "paper", "measured", "match"], &rows)
    }
}

/// Target blocks per hour at the 14-second cadence (≈257).
fn target_blocks_per_hour() -> f64 {
    3_600.0 / TARGET_BLOCK_TIME_SECS as f64
}

/// Runs the short-term checks (need ≥ the fork month of data).
pub fn short_term(result: &StudyResult) -> ObservationReport {
    let mut obs = Vec::new();
    let etc_bph = result.pipeline.blocks_per_hour(Side::Etc);
    let start = result.start;

    // O1: drastic, rapid partition — ETC block production collapses.
    {
        let first_12h = etc_bph.window(start, start.plus_secs(12 * 3_600));
        let mean = if first_12h.is_empty() {
            0.0
        } else {
            first_12h.mean()
        };
        let frac = mean / target_blocks_per_hour();
        obs.push(Observation {
            id: "O1",
            paper: "ETC lost ~90% of its network at the fork; blocks/hour near 0 for ~a day",
            measured: format!(
                "ETC first-12h block rate = {:.1}% of target ({:.1}/hr)",
                frac * 100.0,
                mean
            ),
            pass: frac < 0.15,
        });
    }

    // O2: stabilization takes ~two days.
    {
        let mut recovery_hours = None;
        let threshold = 0.75 * target_blocks_per_hour();
        for (t, _) in &etc_bph.points {
            let from = fork_primitives::SimTime::from_unix(*t);
            let window = etc_bph.window(from, from.plus_secs(6 * 3_600));
            if window.len() >= 4 && window.mean() >= threshold {
                recovery_hours = Some((from.secs_since(start)) / 3_600);
                break;
            }
        }
        let measured = match recovery_hours {
            Some(h) => format!("ETC back at ≥75% of target rate after {h} hours"),
            None => "never recovered".into(),
        };
        obs.push(Observation {
            id: "O2",
            paper: "It took two days for ETC to resume producing blocks at the target rate",
            measured,
            pass: recovery_hours
                .map(|h| (18..=96).contains(&h))
                .unwrap_or(false),
        });
    }

    // O2b: the inter-block delta spike.
    {
        let delta = result.pipeline.block_delta(Side::Etc);
        let max = delta.value_range().map(|(_, hi)| hi).unwrap_or(0.0);
        obs.push(Observation {
            id: "O2b",
            paper: "The average time delta per block spiked to over 1,200 seconds",
            measured: format!("max hourly mean ETC inter-block delta = {max:.0} s"),
            pass: max > 1_200.0,
        });
    }

    // O2c: the mirror-image difficulty exchange (miners switching back).
    {
        let etc_diff = result.pipeline.daily_difficulty(Side::Etc);
        let d9 = etc_diff.nearest(start.plus_days(9)).unwrap_or(0.0);
        let d18 = etc_diff.nearest(start.plus_days(18)).unwrap_or(0.0);
        let gain = if d9 > 0.0 { d18 / d9 } else { 0.0 };
        obs.push(Observation {
            id: "O2c",
            paper: "Over the two weeks following the fork, ETC difficulty rises as ETH's dips \
                    (miners switching back)",
            measured: format!("ETC difficulty day 18 / day 9 = {gain:.2}x"),
            pass: gain > 1.15,
        });
    }

    obs.extend(replay_checks(result));
    ObservationReport { observations: obs }
}

/// Runs the long-term checks (need the nine-month window).
pub fn long_term(result: &StudyResult) -> ObservationReport {
    let mut obs = short_term(result).observations;
    let start = result.start;
    let late = result.end;

    // O3: persistent divergence — ETH difficulty ~an order of magnitude up.
    {
        let eth = result.pipeline.daily_difficulty(Side::Eth);
        let etc = result.pipeline.daily_difficulty(Side::Etc);
        let r = eth
            .nearest(late)
            .zip(etc.nearest(late))
            .map(|(a, b)| a / b)
            .unwrap_or(0.0);
        obs.push(Observation {
            id: "O3",
            paper: "ETH has substantially higher difficulty (roughly an order of magnitude)",
            measured: format!("ETH:ETC difficulty at window end = {r:.1}:1"),
            pass: (5.0..25.0).contains(&r),
        });
    }

    // O4: market efficiency — hashes/USD nearly identical.
    {
        let eth = result
            .pipeline
            .hashes_per_usd(Side::Eth, |t| result.eth_usd.usd_at(t));
        let etc = result
            .pipeline
            .hashes_per_usd(Side::Etc, |t| result.etc_usd.usd_at(t));
        // Skip the chaotic fork fortnight where ETC is far from difficulty
        // equilibrium.
        let eth_w = eth.window(start.plus_days(20), late);
        let etc_w = etc.window(start.plus_days(20), late);
        let corr = correlation(&eth_w, &etc_w).unwrap_or(0.0);
        let mean_ratio = ratio(&eth_w, &etc_w, "ratio").mean();
        obs.push(Observation {
            id: "O4",
            paper: "Expected hashes/USD in ETH and ETC are almost identical (efficient market)",
            measured: format!("corr = {corr:.3}, mean ETH:ETC ratio = {mean_ratio:.2}"),
            pass: corr > 0.85 && (0.6..1.6).contains(&mean_ratio),
        });
    }

    // T4: the transaction-volume ratio drift.
    {
        let eth = result.pipeline.txs_per_day(Side::Eth);
        let etc = result.pipeline.txs_per_day(Side::Etc);
        let r = ratio(&eth, &etc, "tx ratio");
        let early = r.window(start.plus_days(20), start.plus_days(120)).mean();
        let late_r = r.window(start.plus_days(240), late).mean();
        obs.push(Observation {
            id: "T4",
            paper: "ETH:ETC transactions ~2.5:1 for most of the study, up to 5:1 in late March",
            measured: format!("early ratio {early:.1}:1, late ratio {late_r:.1}:1"),
            pass: (1.8..3.4).contains(&early) && (3.8..6.5).contains(&late_r),
        });
    }

    // O6: pool concentration convergence.
    {
        let eth5 = result.pipeline.pool_top_n(Side::Eth, 5);
        let etc5 = result.pipeline.pool_top_n(Side::Etc, 5);
        let eth_start = eth5.window(start, start.plus_days(30)).mean();
        let etc_start = etc5.window(start, start.plus_days(30)).mean();
        // Daily top-N is noisy; "converged" is judged on the final month's
        // mean, exactly as one reads Figure 5.
        let month = 30 * 86_400;
        let last_month = fork_primitives::SimTime::from_unix(late.as_unix().saturating_sub(month));
        let eth_end = eth5.window(last_month, late).mean();
        let etc_end = etc5.window(last_month, late).mean();
        let gap_start = eth_start - etc_start;
        let gap_end = (eth_end - etc_end).abs();
        obs.push(Observation {
            id: "O6",
            paper:
                "ETC's top-pool share starts considerably smaller, then converges to ETH's ratios",
            measured: format!(
                "top-5 gap: {gap_start:.0} pp at start → {gap_end:.0} pp at end \
                 (ETH {eth_end:.0}%, ETC {etc_end:.0}%)"
            ),
            // "Converged" as the paper's Figure 5 reads: a large initial gap
            // that has at least halved (and sits under 20 pp) by the end —
            // the daily top-5 series itself swings ±10 pp in the paper too.
            pass: gap_start > 15.0 && gap_end < 20.0 && gap_end < gap_start / 2.0,
        });
    }

    ObservationReport { observations: obs }
}

/// Replay-channel checks (apply to any window).
fn replay_checks(result: &StudyResult) -> Vec<Observation> {
    let mut obs = Vec::new();
    let etc_pct = result.pipeline.echo_percent(Side::Etc);
    // O5a: the initial echo spike. Daily series are bucketed at midnight
    // UTC, so the window starts at the fork *day*, not the fork instant.
    {
        let day_start = result.start.date().to_sim_time();
        let peak = etc_pct
            .window(day_start, day_start.plus_days(8))
            .value_range()
            .map(|(_, hi)| hi)
            .unwrap_or(0.0);
        obs.push(Observation {
            id: "O5a",
            paper:
                "A high level of rebroadcasting initially after the fork (up to ~50% of ETC txs)",
            measured: format!("peak ETC echo share in week 1 = {peak:.0}%"),
            pass: peak > 25.0,
        });
    }
    // O5b: direction asymmetry.
    {
        let into_etc = result.pipeline.total_echoes(Side::Etc);
        let into_eth = result.pipeline.total_echoes(Side::Eth);
        obs.push(Observation {
            id: "O5b",
            paper: "Most rebroadcasts were originally broadcast in ETH and rebroadcast into ETC",
            measured: format!("echoes into ETC = {into_etc}, into ETH = {into_eth}"),
            pass: into_etc > into_eth,
        });
    }
    obs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_renders() {
        let report = ObservationReport {
            observations: vec![Observation {
                id: "O1",
                paper: "claim",
                measured: "value".into(),
                pass: true,
            }],
        };
        let md = report.to_markdown();
        assert!(md.contains("| O1 | claim | value | ✓ |"));
        assert!(report.all_pass());
    }

    #[test]
    fn all_pass_false_when_any_fails() {
        let report = ObservationReport {
            observations: vec![
                Observation {
                    id: "a",
                    paper: "p",
                    measured: "m".into(),
                    pass: true,
                },
                Observation {
                    id: "b",
                    paper: "p",
                    measured: "m".into(),
                    pass: false,
                },
            ],
        };
        assert!(!report.all_pass());
    }
}
