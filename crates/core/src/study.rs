//! The headline API: configure, run, extract figures.

use std::path::Path;

use fork_analytics::{Pipeline, TimeSeries};
use fork_archive::{ArchiveConfig, ArchiveError, ArchiveMeta, ArchiveReader, ArchiveWriter};
use fork_market::PriceSeries;
use fork_primitives::SimTime;
use fork_query::{
    CacheStats, Projection, Query, QueryError, QueryExecutor, QueryOutput, QueryRange, ReaderPool,
};
use fork_replay::Side;
use fork_sim::scenario;
use fork_sim::{MesoConfig, ProgressEvent, RunSummary, SimRng, TeeSink, TwoChainEngine};

use crate::figures::{FigureData, FigurePanel};

/// A configured fork study, ready to run.
///
/// ```
/// use fork_core::ForkStudy;
/// // A fast, test-scale run (seconds); use `fork_month`/`nine_months`
/// // for the paper-scale experiments.
/// let result = ForkStudy::quick(42).run();
/// let fig1 = result.figure1();
/// assert_eq!(fig1.panels.len(), 3);
/// ```
pub struct ForkStudy {
    config: MesoConfig,
    seed: u64,
}

impl ForkStudy {
    /// The Figure 1 window: one month after the fork, full difficulty scale.
    pub fn fork_month(seed: u64) -> Self {
        ForkStudy {
            config: scenario::fork_month(seed),
            seed,
        }
    }

    /// The full nine-month study window (Figures 2–5).
    pub fn nine_months(seed: u64) -> Self {
        ForkStudy {
            config: scenario::nine_months(seed),
            seed,
        }
    }

    /// A custom window of `days` on the calibrated scenario.
    pub fn days(seed: u64, days: u64) -> Self {
        ForkStudy {
            config: scenario::dao_scenario(seed, days),
            seed,
        }
    }

    /// A down-scaled configuration for tests and doc examples: the full
    /// mechanism at toy difficulty over a few simulated hours.
    pub fn quick(seed: u64) -> Self {
        let mut config = scenario::dao_scenario(seed, 17);
        config.end = config.start.plus_secs(6 * 3_600);
        // Shrink difficulty and hashrate together (operating point ~14 s),
        // staying above the protocol's 131,072 difficulty floor.
        config.genesis_difficulty = fork_primitives::U256::from_u64(1_400_000);
        fn scale_series(s: &fork_sim::StepSeries) -> fork_sim::StepSeries {
            fork_sim::StepSeries::from_knots(
                s.knots()
                    .iter()
                    .map(|(t, v)| (*t, v / 4.4e7))
                    .collect::<Vec<_>>(),
            )
        }
        config.eth.hashrate = scale_series(&config.eth.hashrate);
        // Soften ETC's collapse to 8% (instead of 0.5%) so the toy window
        // still produces ETC blocks — the echo and pool mechanisms need an
        // ETC ledger to land in. The paper-scale presets keep the real
        // near-total collapse.
        let etc_level = config.eth.hashrate.at(config.start) * 0.08;
        config.etc.hashrate = fork_sim::StepSeries::constant(etc_level);
        config.users = 60;
        config.retention = 32;
        ForkStudy { config, seed }
    }

    /// Direct access to the underlying configuration (ablation benches
    /// mutate schedules before running).
    pub fn config_mut(&mut self) -> &mut MesoConfig {
        &mut self.config
    }

    /// Runs the simulation and collects the measurement pipeline.
    pub fn run(self) -> StudyResult {
        self.run_with_progress(None)
    }

    /// Like [`run`](Self::run), but forwards a per-simulated-day heartbeat
    /// to `progress` (see [`fork_sim::ProgressEvent`]). The callback is
    /// observation-only: results are byte-identical with or without it.
    pub fn run_with_progress(self, progress: Option<&mut dyn FnMut(ProgressEvent)>) -> StudyResult {
        let mut engine = TwoChainEngine::new(self.config.clone());
        let mut pipeline = Pipeline::new();
        pipeline.attach_telemetry(engine.telemetry());
        let mut sink = fork_sim::MeteredSink::registered(pipeline, engine.telemetry());
        let summary = engine.run_with_progress(&mut sink, progress);
        let telemetry = engine.telemetry().snapshot();
        let pipeline = sink.into_inner();
        // Regenerate the exact price series the scenario's hashpower
        // allocation used (same seed, same fork label).
        let mut price_rng = SimRng::new(self.seed).fork("prices");
        let (eth_usd, etc_usd) = fork_market::calibrated_pair(&mut price_rng);
        StudyResult {
            pipeline,
            summary,
            eth_usd,
            etc_usd,
            start: self.config.start,
            end: self.config.end,
            telemetry,
        }
    }

    /// Runs the simulation exactly as [`run`](Self::run) does while also
    /// streaming every finalized block and transaction into a durable
    /// [`fork_archive`] at `dir`. The archive's manifest records the seed
    /// and study window, so [`StudyResult::from_archive`] can later replay
    /// the run — byte-identical figure exports included — without
    /// re-simulating.
    ///
    /// The directory is created (and any previous archive in it replaced).
    /// Archive I/O rides the engine's telemetry registry, so the returned
    /// snapshot includes `archive.bytes_written`, `archive.frames`, and
    /// friends.
    pub fn archive_to(self, dir: impl AsRef<std::path::Path>) -> Result<StudyResult, ArchiveError> {
        self.archive_to_with(dir, ArchiveConfig::default())
    }

    /// [`archive_to`](Self::archive_to) with an explicit archive
    /// configuration — segment size and on-disk codec (e.g.
    /// [`fork_archive::Codec::Delta`] for the compressed format).
    pub fn archive_to_with(
        self,
        dir: impl AsRef<std::path::Path>,
        config: ArchiveConfig,
    ) -> Result<StudyResult, ArchiveError> {
        let meta = ArchiveMeta {
            seed: self.seed,
            start_unix: self.config.start.as_unix(),
            end_unix: self.config.end.as_unix(),
        };
        let mut engine = TwoChainEngine::new(self.config.clone());
        let mut pipeline = Pipeline::new();
        pipeline.attach_telemetry(engine.telemetry());
        let mut writer =
            ArchiveWriter::create_with(dir.as_ref(), config)?.with_telemetry(engine.telemetry());
        let summary = {
            let tee = TeeSink {
                a: &mut pipeline,
                b: &mut writer,
            };
            let mut sink = fork_sim::MeteredSink::registered(tee, engine.telemetry());
            engine.run(&mut sink)
        };
        writer.finish(Some(meta))?;
        let telemetry = engine.telemetry().snapshot();
        let mut price_rng = SimRng::new(self.seed).fork("prices");
        let (eth_usd, etc_usd) = fork_market::calibrated_pair(&mut price_rng);
        Ok(StudyResult {
            pipeline,
            summary,
            eth_usd,
            etc_usd,
            start: self.config.start,
            end: self.config.end,
            telemetry,
        })
    }
}

/// Rebuilds per-side [`RunSummary`] counters from the archived stream.
///
/// `replay_pushes` is an engine-internal counter that never reaches the
/// ledger stream, so it is not recoverable and stays 0; everything the
/// figures depend on flows through the pipeline, not the summary.
#[derive(Default)]
struct ReplaySummarySink {
    blocks: [u64; 2],
    txs: [u64; 2],
    final_difficulty: [fork_primitives::U256; 2],
}

impl ReplaySummarySink {
    fn side_index(side: Side) -> usize {
        match side {
            Side::Eth => 0,
            Side::Etc => 1,
        }
    }

    fn into_summary(self) -> RunSummary {
        RunSummary {
            blocks: self.blocks,
            txs: self.txs,
            replay_pushes: 0,
            final_difficulty: self.final_difficulty,
        }
    }
}

impl fork_sim::LedgerSink for ReplaySummarySink {
    fn block(&mut self, record: fork_analytics::BlockRecord) {
        let i = Self::side_index(record.network);
        self.blocks[i] += 1;
        self.final_difficulty[i] = record.difficulty;
    }

    fn tx(&mut self, record: fork_analytics::TxRecord) {
        self.txs[Self::side_index(record.network)] += 1;
    }
}

/// The paper aggregates of an archived run, re-derived by the fork-query
/// engine instead of a full pipeline replay. See
/// [`StudyResult::aggregates_from_archive`].
#[derive(Debug, Clone)]
pub struct ArchiveAggregates {
    /// Inter-block arrival histograms for `[ETH, ETC]` — bit-identical to
    /// the live run's `meso.interarrival.{eth,etc}` telemetry histograms.
    pub interarrival: [fork_telemetry::HistogramSnapshot; 2],
    /// Daily mean difficulty for `[ETH, ETC]` — bit-identical to the live
    /// pipeline's `daily_difficulty`.
    pub daily_difficulty: [TimeSeries; 2],
    /// Pointwise ETH:ETC transactions-per-day ratio.
    pub tx_ratio_per_day: TimeSeries,
    /// Daily echo counts into `[ETH, ETC]` — bit-identical to the live
    /// pipeline's `echoes_per_day`.
    pub echoes_per_day: [TimeSeries; 2],
    /// Frame-cache counters after the batch.
    pub cache: CacheStats,
    /// Per-query latency (`query.latency`, microseconds; empty when the
    /// build compiles telemetry out).
    pub latency: fork_telemetry::HistogramSnapshot,
}

fn expect_histogram(out: QueryOutput) -> fork_telemetry::HistogramSnapshot {
    match out {
        QueryOutput::Histogram(h) => *h,
        other => unreachable!("histogram projection returned {other:?}"),
    }
}

fn expect_series(out: QueryOutput) -> TimeSeries {
    match out {
        QueryOutput::Series(s) => s,
        other => unreachable!("series projection returned {other:?}"),
    }
}

/// A completed run: the aggregated pipeline plus market context.
pub struct StudyResult {
    /// The aggregation pipeline (all per-hour/per-day metrics).
    pub pipeline: Pipeline,
    /// Run counters.
    pub summary: RunSummary,
    /// The ETH/USD series in force during the run.
    pub eth_usd: PriceSeries,
    /// The ETC/USD series in force during the run.
    pub etc_usd: PriceSeries,
    /// Window start.
    pub start: SimTime,
    /// Window end.
    pub end: SimTime,
    /// The engine's telemetry at the end of the run: step-phase spans, both
    /// stores' import counters/timings, sink throughput. Empty when the
    /// `telemetry` feature is off.
    pub telemetry: fork_telemetry::Snapshot,
}

impl StudyResult {
    /// Reconstructs a study from an archive written by
    /// [`ForkStudy::archive_to`], without re-running the simulation.
    ///
    /// The archived record stream is replayed — in its original global
    /// order — through a fresh [`Pipeline`], so every figure export is
    /// byte-identical to the live run's. Prices are regenerated from the
    /// manifest's seed (the same derivation the live run used). The
    /// returned summary is rebuilt from the stream: `replay_pushes` is not
    /// recoverable (always 0), and a side that mined no blocks reports
    /// zero difficulty rather than the genesis difficulty.
    ///
    /// Fails with [`ArchiveError::Manifest`] when the archive carries no
    /// manifest (e.g. it was produced by a raw [`ArchiveWriter`] finished
    /// without [`ArchiveMeta`]).
    pub fn from_archive(dir: impl AsRef<Path>) -> Result<StudyResult, ArchiveError> {
        let dir = dir.as_ref();
        let registry = fork_telemetry::MetricsRegistry::new();
        let reader = ArchiveReader::open_with_telemetry(dir, &registry)?;
        let meta = reader.meta().ok_or_else(|| ArchiveError::Manifest {
            path: dir.join("manifest.json"),
            detail: "no manifest (seed and window unknown); archive studies with \
                     ForkStudy::archive_to, or pass ArchiveMeta to ArchiveWriter::finish"
                .into(),
        })?;
        let mut pipeline = Pipeline::new();
        pipeline.attach_telemetry(&registry);
        let mut recount = ReplaySummarySink::default();
        {
            let mut tee = TeeSink {
                a: &mut pipeline,
                b: &mut recount,
            };
            reader.replay_into_sink(&mut tee)?;
        }
        let mut price_rng = SimRng::new(meta.seed).fork("prices");
        let (eth_usd, etc_usd) = fork_market::calibrated_pair(&mut price_rng);
        Ok(StudyResult {
            pipeline,
            summary: recount.into_summary(),
            eth_usd,
            etc_usd,
            start: SimTime::from_unix(meta.start_unix),
            end: SimTime::from_unix(meta.end_unix),
            telemetry: registry.snapshot(),
        })
    }

    /// Re-derives the paper aggregates straight from an archive through the
    /// fork-query engine — an 8-worker [`QueryExecutor`] over a shared
    /// [`ReaderPool`] — without re-running the simulation *or* replaying
    /// the full pipeline. The batch covers both sides' inter-arrival
    /// histograms, daily difficulty, the ETH:ETC tx-per-day ratio, and
    /// daily echo counts; each result is bit-identical to what the live
    /// run produced (`assert`ed in this crate's tests).
    ///
    /// Unlike [`StudyResult::from_archive`] this works on manifest-less
    /// archives too: the aggregates need only the record stream.
    pub fn aggregates_from_archive(dir: impl AsRef<Path>) -> Result<ArchiveAggregates, QueryError> {
        let pool = ReaderPool::open(dir.as_ref())?;
        let exec = QueryExecutor::new(8);
        let q = |side: Option<Side>, projection| Query {
            side,
            range: QueryRange::All,
            projection,
        };
        let batch = [
            q(Some(Side::Eth), Projection::InterArrival),
            q(Some(Side::Etc), Projection::InterArrival),
            q(Some(Side::Eth), Projection::Difficulty),
            q(Some(Side::Etc), Projection::Difficulty),
            q(None, Projection::TxRatioPerDay),
            q(Some(Side::Eth), Projection::Echoes { window_days: 1 }),
            q(Some(Side::Etc), Projection::Echoes { window_days: 1 }),
        ];
        let mut results = exec.run_batch(&pool, &batch).into_iter();
        let mut next = || results.next().expect("one result per query");
        Ok(ArchiveAggregates {
            interarrival: [expect_histogram(next()?), expect_histogram(next()?)],
            daily_difficulty: [expect_series(next()?), expect_series(next()?)],
            tx_ratio_per_day: expect_series(next()?),
            echoes_per_day: [expect_series(next()?), expect_series(next()?)],
            cache: pool.cache().stats(),
            latency: exec.latency_snapshot(),
        })
    }

    /// Block inter-arrival distributions (`meso.interarrival.{eth,etc}`
    /// telemetry histograms) as figure-style series: x is each occupied
    /// log2 bucket's lower bound in seconds, y its block count. Empty when
    /// telemetry is compiled out (and for archive replays, which carry no
    /// engine histograms).
    pub fn interarrival_series(&self) -> Vec<TimeSeries> {
        let mut out = Vec::new();
        for (name, label) in [
            ("meso.interarrival.eth", "ETH inter-arrival (s)"),
            ("meso.interarrival.etc", "ETC inter-arrival (s)"),
        ] {
            if let Some(h) = self.telemetry.histograms.get(name) {
                out.push(fork_analytics::histogram_series(label, h));
            }
        }
        out
    }

    /// Figure 1: blocks/hour, block difficulty, inter-block delta — the
    /// month following the fork.
    pub fn figure1(&self) -> FigureData {
        FigureData {
            id: "fig1",
            caption: "Blocks per hour, block difficulty, and time delta between blocks \
                      the month following the hard fork",
            panels: vec![
                FigurePanel {
                    title: "Blocks per Hour".into(),
                    series: vec![
                        self.pipeline.blocks_per_hour(Side::Eth),
                        self.pipeline.blocks_per_hour(Side::Etc),
                    ],
                    log_scale: false,
                },
                FigurePanel {
                    title: "Block Difficulty".into(),
                    series: vec![
                        self.pipeline.hourly_difficulty(Side::Eth),
                        self.pipeline.hourly_difficulty(Side::Etc),
                    ],
                    log_scale: false,
                },
                FigurePanel {
                    title: "Block Delta (sec)".into(),
                    series: vec![
                        self.pipeline.block_delta(Side::Eth),
                        self.pipeline.block_delta(Side::Etc),
                    ],
                    log_scale: false,
                },
            ],
        }
    }

    /// Figure 2: daily difficulty, transactions per day, percent contract
    /// transactions — the nine months since the fork.
    pub fn figure2(&self) -> FigureData {
        FigureData {
            id: "fig2",
            caption: "Overall difficulty, transactions per day, and fraction of \
                      transactions involving contracts since the fork",
            panels: vec![
                FigurePanel {
                    title: "Block Difficulty".into(),
                    series: vec![
                        self.pipeline.daily_difficulty(Side::Eth),
                        self.pipeline.daily_difficulty(Side::Etc),
                    ],
                    log_scale: false,
                },
                FigurePanel {
                    title: "Transactions per Day".into(),
                    series: vec![
                        self.pipeline.txs_per_day(Side::Eth),
                        self.pipeline.txs_per_day(Side::Etc),
                    ],
                    log_scale: false,
                },
                FigurePanel {
                    title: "Percent Contract Transactions".into(),
                    series: vec![
                        self.pipeline.contract_tx_percent(Side::Eth),
                        self.pipeline.contract_tx_percent(Side::Etc),
                    ],
                    log_scale: false,
                },
            ],
        }
    }

    /// Figure 3: expected hashes per USD for both networks.
    pub fn figure3(&self) -> FigureData {
        FigureData {
            id: "fig3",
            caption: "Expected payoff for mining: hashes needed to earn 1 USD",
            panels: vec![FigurePanel {
                title: "Expected Hashes/USD".into(),
                series: vec![
                    self.pipeline
                        .hashes_per_usd(Side::Eth, |t| self.eth_usd.usd_at(t)),
                    self.pipeline
                        .hashes_per_usd(Side::Etc, |t| self.etc_usd.usd_at(t)),
                ],
                log_scale: false,
            }],
        }
    }

    /// Figure 4: percentage of transactions that are rebroadcasts and the
    /// number of rebroadcast transactions per day (log scale).
    pub fn figure4(&self) -> FigureData {
        FigureData {
            id: "fig4",
            caption: "Rebroadcast (echo) transactions: share of all transactions and \
                      daily counts",
            panels: vec![
                FigurePanel {
                    title: "% Transactions that Are Rebroadcasts".into(),
                    series: vec![
                        self.pipeline.echo_percent(Side::Eth),
                        self.pipeline.echo_percent(Side::Etc),
                    ],
                    log_scale: false,
                },
                FigurePanel {
                    title: "# Rebroadcast Transactions/Day".into(),
                    series: vec![
                        self.pipeline.echoes_per_day(Side::Eth),
                        self.pipeline.echoes_per_day(Side::Etc),
                    ],
                    log_scale: true,
                },
            ],
        }
    }

    /// Figure 5: percent of daily blocks mined by the top 1/3/5 pools.
    pub fn figure5(&self) -> FigureData {
        let mut series = Vec::new();
        for side in [Side::Eth, Side::Etc] {
            for n in [5usize, 3, 1] {
                series.push(self.pipeline.pool_top_n(side, n));
            }
        }
        FigureData {
            id: "fig5",
            caption: "Percent of all mined blocks won by the top 1, 3, and 5 mining \
                      pools in ETH and ETC",
            panels: vec![FigurePanel {
                title: "% All Blocks Mined by Top N".into(),
                series,
                log_scale: false,
            }],
        }
    }

    /// All five figures.
    pub fn all_figures(&self) -> Vec<FigureData> {
        vec![
            self.figure1(),
            self.figure2(),
            self.figure3(),
            self.figure4(),
            self.figure5(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_produces_all_figures() {
        let result = ForkStudy::quick(1).run();
        assert!(result.summary.blocks[0] > 100);
        for fig in result.all_figures() {
            assert!(!fig.panels.is_empty(), "{}", fig.id);
            // Every figure has at least one non-empty ETH series.
            let has_data = fig
                .panels
                .iter()
                .flat_map(|p| &p.series)
                .any(|s| !s.is_empty());
            assert!(has_data, "{} has no data", fig.id);
        }
    }

    #[test]
    fn quick_study_deterministic() {
        let a = ForkStudy::quick(5).run();
        let b = ForkStudy::quick(5).run();
        assert_eq!(a.summary, b.summary);
        assert_eq!(
            a.figure1().panels[0].series[0].points,
            b.figure1().panels[0].series[0].points
        );
    }

    #[test]
    fn figure_ids_are_stable() {
        let result = ForkStudy::quick(2).run();
        let ids: Vec<&str> = result.all_figures().iter().map(|f| f.id).collect();
        assert_eq!(ids, vec!["fig1", "fig2", "fig3", "fig4", "fig5"]);
    }

    #[test]
    fn archived_run_matches_live_run() {
        let dir = std::env::temp_dir().join(format!("fork-core-study-{}", std::process::id()));
        let live = ForkStudy::quick(7).archive_to(&dir).unwrap();
        let replayed = StudyResult::from_archive(&dir).unwrap();
        assert_eq!(live.summary.blocks, replayed.summary.blocks);
        assert_eq!(live.summary.txs, replayed.summary.txs);
        assert_eq!(
            live.summary.final_difficulty,
            replayed.summary.final_difficulty
        );
        assert_eq!(live.start, replayed.start);
        assert_eq!(live.end, replayed.end);
        for (a, b) in live.all_figures().iter().zip(replayed.all_figures().iter()) {
            for (pa, pb) in a.panels.iter().zip(b.panels.iter()) {
                let ca = fork_analytics::to_csv(&pa.series.iter().collect::<Vec<_>>());
                let cb = fork_analytics::to_csv(&pb.series.iter().collect::<Vec<_>>());
                assert_eq!(ca, cb, "{} / {}", a.id, pa.title);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn archive_aggregates_match_live_run() {
        let dir = std::env::temp_dir().join(format!("fork-core-agg-{}", std::process::id()));
        let live = ForkStudy::quick(11)
            .archive_to_with(
                &dir,
                ArchiveConfig {
                    codec: fork_archive::Codec::Delta,
                    ..ArchiveConfig::default()
                },
            )
            .unwrap();
        let agg = StudyResult::aggregates_from_archive(&dir).unwrap();
        for (i, side) in [Side::Eth, Side::Etc].into_iter().enumerate() {
            assert_eq!(
                agg.daily_difficulty[i],
                live.pipeline.daily_difficulty(side),
                "{side:?} daily difficulty"
            );
            assert_eq!(
                agg.echoes_per_day[i],
                live.pipeline.echoes_per_day(side),
                "{side:?} echoes/day"
            );
        }
        assert_eq!(
            agg.tx_ratio_per_day,
            fork_analytics::ratio(
                &live.pipeline.txs_per_day(Side::Eth),
                &live.pipeline.txs_per_day(Side::Etc),
                "ETH:ETC",
            )
        );
        #[cfg(feature = "telemetry")]
        for (i, name) in ["meso.interarrival.eth", "meso.interarrival.etc"]
            .into_iter()
            .enumerate()
        {
            assert_eq!(
                Some(&agg.interarrival[i]),
                live.telemetry.histograms.get(name),
                "{name} must be re-derivable from the archive bit-identically"
            );
        }
        assert!(agg.cache.misses > 0, "the batch reads through the cache");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn interarrival_series_present_with_telemetry() {
        let result = ForkStudy::quick(3).run();
        let series = result.interarrival_series();
        assert_eq!(series.len(), 2);
        let eth_total: f64 = series[0].points.iter().map(|(_, n)| n).sum();
        // Every block after the first contributes one inter-arrival sample.
        assert_eq!(eth_total as u64 + 1, result.summary.blocks[0]);
    }
}
