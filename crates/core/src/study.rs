//! The headline API: configure, run, extract figures.

use fork_analytics::Pipeline;
use fork_market::PriceSeries;
use fork_primitives::SimTime;
use fork_replay::Side;
use fork_sim::scenario;
use fork_sim::{MesoConfig, RunSummary, SimRng, TwoChainEngine};

use crate::figures::{FigureData, FigurePanel};

/// A configured fork study, ready to run.
///
/// ```
/// use fork_core::ForkStudy;
/// // A fast, test-scale run (seconds); use `fork_month`/`nine_months`
/// // for the paper-scale experiments.
/// let result = ForkStudy::quick(42).run();
/// let fig1 = result.figure1();
/// assert_eq!(fig1.panels.len(), 3);
/// ```
pub struct ForkStudy {
    config: MesoConfig,
    seed: u64,
}

impl ForkStudy {
    /// The Figure 1 window: one month after the fork, full difficulty scale.
    pub fn fork_month(seed: u64) -> Self {
        ForkStudy {
            config: scenario::fork_month(seed),
            seed,
        }
    }

    /// The full nine-month study window (Figures 2–5).
    pub fn nine_months(seed: u64) -> Self {
        ForkStudy {
            config: scenario::nine_months(seed),
            seed,
        }
    }

    /// A custom window of `days` on the calibrated scenario.
    pub fn days(seed: u64, days: u64) -> Self {
        ForkStudy {
            config: scenario::dao_scenario(seed, days),
            seed,
        }
    }

    /// A down-scaled configuration for tests and doc examples: the full
    /// mechanism at toy difficulty over a few simulated hours.
    pub fn quick(seed: u64) -> Self {
        let mut config = scenario::dao_scenario(seed, 17);
        config.end = config.start.plus_secs(6 * 3_600);
        // Shrink difficulty and hashrate together (operating point ~14 s),
        // staying above the protocol's 131,072 difficulty floor.
        config.genesis_difficulty = fork_primitives::U256::from_u64(1_400_000);
        fn scale_series(s: &fork_sim::StepSeries) -> fork_sim::StepSeries {
            fork_sim::StepSeries::from_knots(
                s.knots()
                    .iter()
                    .map(|(t, v)| (*t, v / 4.4e7))
                    .collect::<Vec<_>>(),
            )
        }
        config.eth.hashrate = scale_series(&config.eth.hashrate);
        // Soften ETC's collapse to 8% (instead of 0.5%) so the toy window
        // still produces ETC blocks — the echo and pool mechanisms need an
        // ETC ledger to land in. The paper-scale presets keep the real
        // near-total collapse.
        let etc_level = config.eth.hashrate.at(config.start) * 0.08;
        config.etc.hashrate = fork_sim::StepSeries::constant(etc_level);
        config.users = 60;
        config.retention = 32;
        ForkStudy { config, seed }
    }

    /// Direct access to the underlying configuration (ablation benches
    /// mutate schedules before running).
    pub fn config_mut(&mut self) -> &mut MesoConfig {
        &mut self.config
    }

    /// Runs the simulation and collects the measurement pipeline.
    pub fn run(self) -> StudyResult {
        let mut engine = TwoChainEngine::new(self.config.clone());
        let mut sink = fork_sim::MeteredSink::registered(Pipeline::new(), engine.telemetry());
        let summary = engine.run(&mut sink);
        let telemetry = engine.telemetry().snapshot();
        let pipeline = sink.into_inner();
        // Regenerate the exact price series the scenario's hashpower
        // allocation used (same seed, same fork label).
        let mut price_rng = SimRng::new(self.seed).fork("prices");
        let (eth_usd, etc_usd) = fork_market::calibrated_pair(&mut price_rng);
        StudyResult {
            pipeline,
            summary,
            eth_usd,
            etc_usd,
            start: self.config.start,
            end: self.config.end,
            telemetry,
        }
    }
}

/// A completed run: the aggregated pipeline plus market context.
pub struct StudyResult {
    /// The aggregation pipeline (all per-hour/per-day metrics).
    pub pipeline: Pipeline,
    /// Run counters.
    pub summary: RunSummary,
    /// The ETH/USD series in force during the run.
    pub eth_usd: PriceSeries,
    /// The ETC/USD series in force during the run.
    pub etc_usd: PriceSeries,
    /// Window start.
    pub start: SimTime,
    /// Window end.
    pub end: SimTime,
    /// The engine's telemetry at the end of the run: step-phase spans, both
    /// stores' import counters/timings, sink throughput. Empty when the
    /// `telemetry` feature is off.
    pub telemetry: fork_telemetry::Snapshot,
}

impl StudyResult {
    /// Figure 1: blocks/hour, block difficulty, inter-block delta — the
    /// month following the fork.
    pub fn figure1(&self) -> FigureData {
        FigureData {
            id: "fig1",
            caption: "Blocks per hour, block difficulty, and time delta between blocks \
                      the month following the hard fork",
            panels: vec![
                FigurePanel {
                    title: "Blocks per Hour".into(),
                    series: vec![
                        self.pipeline.blocks_per_hour(Side::Eth),
                        self.pipeline.blocks_per_hour(Side::Etc),
                    ],
                    log_scale: false,
                },
                FigurePanel {
                    title: "Block Difficulty".into(),
                    series: vec![
                        self.pipeline.hourly_difficulty(Side::Eth),
                        self.pipeline.hourly_difficulty(Side::Etc),
                    ],
                    log_scale: false,
                },
                FigurePanel {
                    title: "Block Delta (sec)".into(),
                    series: vec![
                        self.pipeline.block_delta(Side::Eth),
                        self.pipeline.block_delta(Side::Etc),
                    ],
                    log_scale: false,
                },
            ],
        }
    }

    /// Figure 2: daily difficulty, transactions per day, percent contract
    /// transactions — the nine months since the fork.
    pub fn figure2(&self) -> FigureData {
        FigureData {
            id: "fig2",
            caption: "Overall difficulty, transactions per day, and fraction of \
                      transactions involving contracts since the fork",
            panels: vec![
                FigurePanel {
                    title: "Block Difficulty".into(),
                    series: vec![
                        self.pipeline.daily_difficulty(Side::Eth),
                        self.pipeline.daily_difficulty(Side::Etc),
                    ],
                    log_scale: false,
                },
                FigurePanel {
                    title: "Transactions per Day".into(),
                    series: vec![
                        self.pipeline.txs_per_day(Side::Eth),
                        self.pipeline.txs_per_day(Side::Etc),
                    ],
                    log_scale: false,
                },
                FigurePanel {
                    title: "Percent Contract Transactions".into(),
                    series: vec![
                        self.pipeline.contract_tx_percent(Side::Eth),
                        self.pipeline.contract_tx_percent(Side::Etc),
                    ],
                    log_scale: false,
                },
            ],
        }
    }

    /// Figure 3: expected hashes per USD for both networks.
    pub fn figure3(&self) -> FigureData {
        FigureData {
            id: "fig3",
            caption: "Expected payoff for mining: hashes needed to earn 1 USD",
            panels: vec![FigurePanel {
                title: "Expected Hashes/USD".into(),
                series: vec![
                    self.pipeline
                        .hashes_per_usd(Side::Eth, |t| self.eth_usd.usd_at(t)),
                    self.pipeline
                        .hashes_per_usd(Side::Etc, |t| self.etc_usd.usd_at(t)),
                ],
                log_scale: false,
            }],
        }
    }

    /// Figure 4: percentage of transactions that are rebroadcasts and the
    /// number of rebroadcast transactions per day (log scale).
    pub fn figure4(&self) -> FigureData {
        FigureData {
            id: "fig4",
            caption: "Rebroadcast (echo) transactions: share of all transactions and \
                      daily counts",
            panels: vec![
                FigurePanel {
                    title: "% Transactions that Are Rebroadcasts".into(),
                    series: vec![
                        self.pipeline.echo_percent(Side::Eth),
                        self.pipeline.echo_percent(Side::Etc),
                    ],
                    log_scale: false,
                },
                FigurePanel {
                    title: "# Rebroadcast Transactions/Day".into(),
                    series: vec![
                        self.pipeline.echoes_per_day(Side::Eth),
                        self.pipeline.echoes_per_day(Side::Etc),
                    ],
                    log_scale: true,
                },
            ],
        }
    }

    /// Figure 5: percent of daily blocks mined by the top 1/3/5 pools.
    pub fn figure5(&self) -> FigureData {
        let mut series = Vec::new();
        for side in [Side::Eth, Side::Etc] {
            for n in [5usize, 3, 1] {
                series.push(self.pipeline.pool_top_n(side, n));
            }
        }
        FigureData {
            id: "fig5",
            caption: "Percent of all mined blocks won by the top 1, 3, and 5 mining \
                      pools in ETH and ETC",
            panels: vec![FigurePanel {
                title: "% All Blocks Mined by Top N".into(),
                series,
                log_scale: false,
            }],
        }
    }

    /// All five figures.
    pub fn all_figures(&self) -> Vec<FigureData> {
        vec![
            self.figure1(),
            self.figure2(),
            self.figure3(),
            self.figure4(),
            self.figure5(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_produces_all_figures() {
        let result = ForkStudy::quick(1).run();
        assert!(result.summary.blocks[0] > 100);
        for fig in result.all_figures() {
            assert!(!fig.panels.is_empty(), "{}", fig.id);
            // Every figure has at least one non-empty ETH series.
            let has_data = fig
                .panels
                .iter()
                .flat_map(|p| &p.series)
                .any(|s| !s.is_empty());
            assert!(has_data, "{} has no data", fig.id);
        }
    }

    #[test]
    fn quick_study_deterministic() {
        let a = ForkStudy::quick(5).run();
        let b = ForkStudy::quick(5).run();
        assert_eq!(a.summary, b.summary);
        assert_eq!(
            a.figure1().panels[0].series[0].points,
            b.figure1().panels[0].series[0].points
        );
    }

    #[test]
    fn figure_ids_are_stable() {
        let result = ForkStudy::quick(2).run();
        let ids: Vec<&str> = result.all_figures().iter().map(|f| f.id).collect();
        assert_eq!(ids, vec!["fig1", "fig2", "fig3", "fig4", "fig5"]);
    }
}
