//! Figure 3 bench: expected hashes-per-USD for both chains.
//!
//! The short default window cannot show the long-horizon equilibrium (ETC
//! spends the fork fortnight far from its difficulty equilibrium), so the
//! bench validates the *mechanism* directly — the equilibrium model over the
//! full 270 days — and regenerates the simulated-series variant for its
//! window. `FORK_BENCH_DAYS=280` exercises the full simulated version.

use criterion::{criterion_group, criterion_main, Criterion};
use fork_analytics::{correlation, TimeSeries};
use fork_bench::{assert_series_nonempty, bench_days, run_days};
use fork_market::{HashpowerAllocator, HashpowerSplit, TotalHashpowerPath};
use fork_primitives::time::DAO_FORK_TIMESTAMP;
use fork_primitives::{units, SimTime, U256};
use fork_sim::SimRng;

/// The equilibrium-model series-pair for 270 days (the market mechanism
/// behind Figure 3, independent of the block-level simulator).
fn equilibrium_series(seed: u64) -> (TimeSeries, TimeSeries) {
    let mut rng = SimRng::new(seed).fork("prices");
    let (eth_usd, etc_usd) = fork_market::calibrated_pair(&mut rng);
    let start = SimTime::from_unix(DAO_FORK_TIMESTAMP);
    let total = TotalHashpowerPath::default();
    let allocator = HashpowerAllocator::default();
    let mut split = HashpowerSplit { eth_fraction: 0.9 };
    let mut eth = TimeSeries::new("ETH");
    let mut etc = TimeSeries::new("ETC");
    for day in 0..270u64 {
        let t = start.plus_days(day);
        let (p_eth, p_etc) = (eth_usd.usd_at(t), etc_usd.usd_at(t));
        split = allocator.step(split, p_eth, p_etc);
        let h = total.at_day(day);
        let d_eth = h * split.eth_fraction * 14.4;
        let d_etc = h * split.etc_fraction() * 14.4;
        if let Some(v) = units::hashes_per_usd(U256::from_u128(d_eth as u128), p_eth) {
            eth.push(t, v);
        }
        if let Some(v) = units::hashes_per_usd(U256::from_u128(d_etc as u128), p_etc) {
            etc.push(t, v);
        }
    }
    (eth, etc)
}

fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);

    group.bench_function("equilibrium_270d", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let (eth, etc) = equilibrium_series(seed);
            // Across arbitrary seeds, the partial-adjustment lag under
            // independent price noise can pull the wiggle-correlation down
            // to ~0.85 (the calibrated seed gives 0.99); the *level*
            // identity — mean ratio ≈ 1 — is the sharper invariant.
            let corr = correlation(&eth, &etc).unwrap_or(0.0);
            assert!(
                corr > 0.80,
                "hashes/USD must be near-identical (corr {corr})"
            );
            let mean_ratio = fork_analytics::ratio(&eth, &etc, "r").mean();
            assert!(
                (0.75..1.35).contains(&mean_ratio),
                "mean hashes/USD ratio {mean_ratio}"
            );
            (eth, etc)
        })
    });

    let days = bench_days();
    group.bench_function(format!("simulated_{days}d"), |b| {
        let mut seed = 300u64;
        b.iter(|| {
            seed += 1;
            let result = run_days(seed, days);
            let fig = result.figure3();
            assert_series_nonempty(&fig);
            fig
        })
    });
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
