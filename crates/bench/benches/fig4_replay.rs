//! Figure 4 bench: echo counts and percentages, with the direction and
//! initial-spike shape checked on every regeneration.

use criterion::{criterion_group, criterion_main, Criterion};
use fork_bench::{assert_series_nonempty, bench_days, run_days};
use fork_replay::Side;

fn fig4(c: &mut Criterion) {
    let days = bench_days();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function(format!("echo_series_{days}d"), |b| {
        let mut seed = 400u64;
        b.iter(|| {
            seed += 1;
            let result = run_days(seed, days);
            let fig = result.figure4();
            assert_series_nonempty(&fig);

            // Direction: the paper observes most echoes flow ETH -> ETC.
            let into_etc = result.pipeline.total_echoes(Side::Etc);
            let into_eth = result.pipeline.total_echoes(Side::Eth);
            assert!(
                into_etc > into_eth,
                "echo direction inverted: {into_etc} vs {into_eth}"
            );
            // Initial spike: ETC's echo share is large right after the fork.
            let pct = result.pipeline.echo_percent(Side::Etc);
            let peak = pct
                .window(result.start, result.start.plus_days(3))
                .value_range()
                .map(|(_, hi)| hi)
                .unwrap_or(0.0);
            assert!(peak > 20.0, "no initial echo spike: {peak}%");
            fig
        })
    });
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
