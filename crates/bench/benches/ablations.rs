//! Ablation benches for the design choices called out in DESIGN.md §4.
//!
//! Each bench isolates one mechanism and checks the directional effect while
//! measuring its cost:
//!
//! * the −99 difficulty-adjustment cap (recovery speed after the crash),
//! * the difficulty bomb (long-horizon block-time drift),
//! * EIP-155 adoption (echo volume),
//! * gossip latency (transient-fork rate),
//! * pool payout schemes (miner income variance).

use criterion::{criterion_group, criterion_main, Criterion};
use fork_chain::{BombConfig, DifficultyConfig};
use fork_core::ForkStudy;
use fork_net::LatencyModel;
use fork_pools::{distribute, income_coefficient_of_variation, PayoutScheme, ShareLedger};
use fork_primitives::{units::ether, Address, U256};
use fork_replay::{AdoptionCurve, Side};
use fork_sim::micro::{MicroConfig, MicroNet};
use fork_sim::SimRng;
use rand::Rng;

/// Deterministic recovery after ETC's actual ~99.5% hashpower collapse (the
/// −99 cap binds only when blocks are slower than ~1,000 s, so the ablation
/// must use the real collapse depth, not a mild one). Returns
/// `(blocks, seconds)` until the expected block time re-enters the target
/// band.
fn recovery(capped: bool) -> (u64, f64) {
    let cfg = DifficultyConfig {
        bomb: BombConfig::Disabled,
        ..DifficultyConfig::default()
    };
    let mut d = 6.2e13f64;
    let h = 6.2e13 / 14.0 * 0.005; // 0.5% of pre-fork hashpower remains
    let mut blocks = 0u64;
    let mut elapsed = 0.0f64;
    while d / h >= 20.0 {
        let bt = d / h;
        elapsed += bt;
        if capped {
            let next =
                cfg.next_difficulty(U256::from_u128(d as u128), 0, bt as u64, 1_920_000 + blocks);
            d = next.to_f64_lossy();
        } else {
            // Uncapped: sigma = 1 - bt/10 with no floor.
            let sigma = 1.0 - (bt / 10.0).floor();
            d += d / 2048.0 * sigma;
            d = d.max(131_072.0);
        }
        blocks += 1;
        assert!(blocks < 100_000);
    }
    (blocks, elapsed)
}

fn ablate_difficulty_cap(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_difficulty_cap");
    group.bench_function("bounded_vs_instant_retarget", |b| {
        b.iter(|| {
            let (capped_blocks, capped_secs) = recovery(true);
            let (_, uncapped_secs) = recovery(false);
            // Finding (recorded in EXPERIMENTS.md): the −99 cap itself is a
            // *minor* effect — it only binds while blocks are slower than
            // ~1,000 s, and removing it saves ~12% of the recovery time.
            // The hours-long recovery is intrinsic to the *bounded
            // proportional* rule: an instant-retarget rule (difficulty :=
            // hashrate × target) would recover in one block (~46 min at
            // the 0.5% collapse), versus ~40 hours for Homestead.
            assert!(
                capped_secs > uncapped_secs,
                "cap must cost wall-clock: {capped_secs:.0}s vs {uncapped_secs:.0}s"
            );
            let instant_retarget_secs = 6.2e13 / (6.2e13 / 14.0 * 0.005); // one slow block
            assert!(
                capped_secs > 10.0 * instant_retarget_secs,
                "bounded adjustment must dominate instant retarget: \
                 {capped_secs:.0}s vs {instant_retarget_secs:.0}s"
            );
            (capped_blocks, capped_secs)
        })
    });
    group.finish();
}

fn ablate_bomb(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_bomb");
    group.bench_function("block_time_drift", |b| {
        b.iter(|| {
            // At a fixed hashrate, walk difficulty to equilibrium with and
            // without the bomb at a high block number (year-2017 heights).
            let h = 6.2e13 / 14.0;
            let walk = |bomb: BombConfig, number: u64| -> f64 {
                let cfg = DifficultyConfig {
                    bomb,
                    ..DifficultyConfig::default()
                };
                let mut d = 6.2e13f64;
                for i in 0..2_000u64 {
                    let bt = (d / h).max(1.0);
                    d = cfg
                        .next_difficulty(U256::from_u128(d as u128), 0, bt as u64, number + i)
                        .to_f64_lossy();
                }
                d / h // equilibrium block time
            };
            let with_bomb = walk(BombConfig::Active, 3_700_000);
            let without = walk(BombConfig::Disabled, 3_700_000);
            assert!(
                with_bomb > without,
                "bomb must slow blocks: {with_bomb} vs {without}"
            );
            (with_bomb, without)
        })
    });
    group.finish();
}

fn ablate_eip155(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_eip155");
    group.sample_size(10);
    group.bench_function("adoption_vs_echo_volume", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let run_with_ceiling = |ceiling: f64, seed: u64| {
                let mut study = ForkStudy::quick(seed);
                let cfg = study.config_mut();
                // Replay protection active from the start, adoption at the
                // given ceiling with a fast ramp.
                for net in [&mut cfg.eth, &mut cfg.etc] {
                    net.spec.eip155 = net.spec.eip155.map(|(_, id)| (1, id));
                    net.workload.adoption = AdoptionCurve {
                        activation_day: 0,
                        halflife_days: 0.01,
                        ceiling,
                    };
                }
                let result = study.run();
                result.pipeline.total_echoes(Side::Etc)
            };
            let unprotected = run_with_ceiling(0.0, seed);
            let protected = run_with_ceiling(0.95, seed);
            assert!(
                protected * 3 < unprotected.max(1) * 2,
                "adoption must cut echoes: {unprotected} -> {protected}"
            );
            (unprotected, protected)
        })
    });
    group.finish();
}

fn ablate_gossip(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_gossip");
    group.sample_size(10);
    group.bench_function("latency_vs_transient_forks", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let run_at = |base_ms: u64, seed: u64| {
                let mut net = MicroNet::new(MicroConfig {
                    seed,
                    n_nodes: 16,
                    n_miners: 8,
                    duration_secs: 1_800,
                    latency: LatencyModel {
                        base_ms,
                        jitter_ms: base_ms / 2,
                    },
                    ..MicroConfig::default()
                });
                let r = net.run();
                r.side_blocks + r.reorgs
            };
            let fast: u64 = (0..2).map(|k| run_at(50, seed * 10 + k)).sum();
            let slow: u64 = (0..2).map(|k| run_at(4_000, seed * 10 + k)).sum();
            assert!(
                slow >= fast,
                "latency must not reduce transient forks: {fast} vs {slow}"
            );
            (fast, slow)
        })
    });
    group.finish();
}

fn ablate_payout(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_payout");
    group.bench_function("income_variance_by_scheme", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(7);
            let miners: Vec<Address> = (0..40).map(|i| Address([i as u8 + 1; 20])).collect();
            let rounds = 2_000;

            let mut solo = vec![0.0f64; miners.len()];
            let mut proportional = vec![0.0f64; miners.len()];
            let mut pplns = vec![0.0f64; miners.len()];
            let mut ledger = ShareLedger::new();
            for _ in 0..rounds {
                // Everyone submits one share per round; one lottery winner.
                for m in &miners {
                    ledger.submit(*m, 1);
                }
                let w = rng.gen_range(0..miners.len());
                solo[w] += 5.0;
                for (m, v) in distribute(PayoutScheme::Proportional, ether(5), &ledger) {
                    let i = miners.iter().position(|x| *x == m).unwrap();
                    proportional[i] += v.to_f64_lossy();
                }
                for (m, v) in distribute(PayoutScheme::Pplns { window: 40 }, ether(5), &ledger) {
                    let i = miners.iter().position(|x| *x == m).unwrap();
                    pplns[i] += v.to_f64_lossy();
                }
                ledger.clear();
            }
            let cv_solo = income_coefficient_of_variation(&solo);
            let cv_prop = income_coefficient_of_variation(&proportional);
            let cv_pplns = income_coefficient_of_variation(&pplns);
            assert!(
                cv_solo > 5.0 * cv_prop.max(1e-12),
                "pooling must slash variance: solo {cv_solo}, prop {cv_prop}"
            );
            (cv_solo, cv_prop, cv_pplns)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    ablate_difficulty_cap,
    ablate_bomb,
    ablate_eip155,
    ablate_gossip,
    ablate_payout
);
criterion_main!(benches);
