//! Figure 2 bench: daily difficulty, transactions/day, contract-call
//! fraction. Default window 3 days (shape checks on volumes and ratios);
//! `FORK_BENCH_DAYS=280` regenerates the full nine months.

use criterion::{criterion_group, criterion_main, Criterion};
use fork_analytics::ratio;
use fork_bench::{assert_series_nonempty, bench_days, run_days};
use fork_replay::Side;

fn fig2(c: &mut Criterion) {
    let days = bench_days();
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function(format!("nine_month_series_{days}d"), |b| {
        let mut seed = 100u64;
        b.iter(|| {
            seed += 1;
            let result = run_days(seed, days);
            let fig = result.figure2();
            assert_series_nonempty(&fig);

            // Transaction volumes track the schedule: the ETH:ETC ratio sits
            // near 2.5:1 outside the chaotic first two days.
            let eth = result.pipeline.txs_per_day(Side::Eth);
            let etc = result.pipeline.txs_per_day(Side::Etc);
            if days >= 3 {
                let r = ratio(&eth, &etc, "ratio")
                    .window(result.start.plus_days(2), result.end)
                    .mean();
                assert!((1.6..4.5).contains(&r), "tx ratio {r}");
            }
            // Contract share in a plausible band on both chains.
            for side in [Side::Eth, Side::Etc] {
                let pct = result.pipeline.contract_tx_percent(side).mean();
                assert!((3.0..45.0).contains(&pct), "{side:?} contract % {pct}");
            }
            fig
        })
    });
    group.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
