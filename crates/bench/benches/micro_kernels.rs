//! Microbenchmarks of the hot kernels under every experiment: Keccak, RLP,
//! U256, the difficulty rule, signature recovery, EVM execution, seal
//! grinding and block import.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use fork_chain::{ChainSpec, ChainStore, GenesisBuilder, Transaction};
use fork_crypto::{keccak256, Keypair};
use fork_evm::{contracts, transact, BlockContext, GasSchedule, WorldState};
use fork_primitives::{units::ether, Address, U256};

fn bench_keccak(c: &mut Criterion) {
    let mut g = c.benchmark_group("keccak256");
    for size in [32usize, 136, 512, 4096] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| {
            b.iter(|| keccak256(black_box(&data)))
        });
    }
    g.finish();
}

fn bench_rlp(c: &mut Criterion) {
    let kp = Keypair::from_seed("bench", 0);
    let tx = Transaction::transfer(&kp, 7, Address([9; 20]), ether(1), U256::from_u64(20), None);
    let encoded = tx.rlp();
    c.bench_function("rlp/encode_tx", |b| b.iter(|| black_box(&tx).rlp()));
    c.bench_function("rlp/decode_tx", |b| {
        b.iter(|| Transaction::decode_bytes(black_box(&encoded)).unwrap())
    });
}

fn bench_u256(c: &mut Criterion) {
    let a = U256::from_dec_str("98765432109876543210987654321098765432109").unwrap();
    let b_ = U256::from_dec_str("12345678901234567890123456789").unwrap();
    c.bench_function("u256/mul", |b| {
        b.iter(|| black_box(a).overflowing_mul(black_box(b_)))
    });
    c.bench_function("u256/div_rem", |b| {
        b.iter(|| black_box(a).div_rem(black_box(b_)))
    });
}

fn bench_difficulty(c: &mut Criterion) {
    let cfg = fork_chain::DifficultyConfig::default();
    let parent = U256::from_u128(62_000_000_000_000);
    c.bench_function("difficulty/next", |b| {
        b.iter(|| cfg.next_difficulty(black_box(parent), 1_000, 1_140, 1_920_001))
    });
}

fn bench_signatures(c: &mut Criterion) {
    let kp = Keypair::from_seed("bench", 1);
    let tx = Transaction::transfer(&kp, 0, Address([9; 20]), ether(1), U256::from_u64(20), None);
    c.bench_function("signature/sign_transfer", |b| {
        b.iter(|| {
            Transaction::transfer(
                black_box(&kp),
                0,
                Address([9; 20]),
                ether(1),
                U256::from_u64(20),
                None,
            )
        })
    });
    c.bench_function("signature/recover_sender", |b| {
        b.iter(|| black_box(&tx).sender().unwrap())
    });
}

fn bench_evm(c: &mut Criterion) {
    // Plain transfer.
    c.bench_function("evm/transact_transfer", |b| {
        let mut world = WorldState::new();
        world.set_balance(Address([1; 20]), ether(1_000_000));
        world.commit();
        b.iter(|| {
            transact(
                &mut world,
                GasSchedule::frontier(),
                BlockContext::default(),
                Address([1; 20]),
                Some(Address([2; 20])),
                U256::from_u64(1),
                &[],
                21_000,
                U256::ONE,
            )
            .unwrap()
        })
    });
    // Contract call (storage churner).
    c.bench_function("evm/transact_contract_call", |b| {
        let mut world = WorldState::new();
        world.set_balance(Address([1; 20]), ether(1_000_000));
        world.set_code(Address([0xCC; 20]), contracts::storage_churner());
        world.commit();
        let data = U256::from_u64(7).to_be_bytes().to_vec();
        b.iter(|| {
            transact(
                &mut world,
                GasSchedule::frontier(),
                BlockContext::default(),
                Address([1; 20]),
                Some(Address([0xCC; 20])),
                U256::ZERO,
                &data,
                120_000,
                U256::ONE,
            )
            .unwrap()
        })
    });
}

fn bench_block_pipeline(c: &mut Criterion) {
    let users: Vec<Keypair> = (0..8).map(|i| Keypair::from_seed("bench", i)).collect();
    let mk_store = || {
        let mut g = GenesisBuilder::new()
            .difficulty(U256::from_u64(1 << 16))
            .timestamp(1_469_020_839);
        for u in &users {
            g = g.alloc(u.address(), ether(100_000));
        }
        let (genesis, state) = g.build();
        ChainStore::new(ChainSpec::test(), genesis, state)
    };

    c.bench_function("chain/propose_import_8tx_block", |b| {
        let mut store = mk_store();
        let mut t = 1_469_020_839u64;
        let mut round = 0u64;
        b.iter(|| {
            t += 14;
            let txs: Vec<Transaction> = users
                .iter()
                .map(|u| {
                    Transaction::transfer(u, round, Address([9; 20]), U256::ONE, U256::ONE, None)
                })
                .collect();
            round += 1;
            let block = store.propose(Address([0xC0; 20]), t, vec![], &txs);
            store.import(black_box(block)).unwrap()
        })
    });

    c.bench_function("pow/seal_grind_wf4", |b| {
        let header = fork_chain::Header {
            number: 1,
            difficulty: U256::from_u128(62_000_000_000_000),
            timestamp: 1_469_020_839,
            ..fork_chain::Header::default()
        };
        let mut nonce = 0u64;
        b.iter(|| {
            nonce = nonce.wrapping_add(0x9E37_79B9);
            fork_chain::pow::mine_seal(black_box(&header), 4, nonce)
        })
    });
}

criterion_group!(
    kernels,
    bench_keccak,
    bench_rlp,
    bench_u256,
    bench_difficulty,
    bench_signatures,
    bench_evm,
    bench_block_pipeline
);
criterion_main!(kernels);
