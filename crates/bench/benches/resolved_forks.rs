//! In-text T3 bench: the resolved forks' minority-branch lengths (paper: 86
//! blocks for ETH's Nov 2016 fork, 3,583 for ETC's Jan 2017 fork).

use criterion::{criterion_group, criterion_main, Criterion};
use fork_sim::resolved::{run, ResolvedForkConfig};

fn resolved(c: &mut Criterion) {
    let mut group = c.benchmark_group("resolved_forks");
    group.sample_size(10);

    group.bench_function("eth_dos_2016", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let out = run(&ResolvedForkConfig::eth_dos_2016(seed));
            assert!(
                (20..400).contains(&out.minority_branch_len),
                "ETH branch {} (paper: 86)",
                out.minority_branch_len
            );
            out
        })
    });

    group.bench_function("etc_replay_2017", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let out = run(&ResolvedForkConfig::etc_replay_2017(seed));
            assert!(
                (1_200..9_000).contains(&out.minority_branch_len),
                "ETC branch {} (paper: 3,583)",
                out.minority_branch_len
            );
            out
        })
    });

    group.finish();
}

criterion_group!(benches, resolved);
criterion_main!(benches);
