//! Figure 1 bench: regenerates the fork-window series (blocks/hour,
//! difficulty, inter-block delta) and checks the headline shapes while
//! measuring the simulation's cost per simulated day.
//!
//! Default window: 3 days (covers the collapse, the recovery and the delta
//! spike). Set `FORK_BENCH_DAYS=31` for the paper's full month.

use criterion::{criterion_group, criterion_main, Criterion};
use fork_bench::{assert_series_nonempty, bench_days, run_days};
use fork_replay::Side;

fn fig1(c: &mut Criterion) {
    let days = bench_days();
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function(format!("fork_window_{days}d"), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let result = run_days(seed, days);
            let fig = result.figure1();
            assert_series_nonempty(&fig);

            // Shape checks on every regeneration — the bench doubles as a
            // statistical test over seeds.
            let etc_bph = result.pipeline.blocks_per_hour(Side::Etc);
            let first12 = etc_bph.window(result.start, result.start.plus_secs(12 * 3_600));
            let early_rate = if first12.is_empty() {
                0.0
            } else {
                first12.mean()
            };
            assert!(
                early_rate < 40.0,
                "ETC early block rate should collapse, got {early_rate}/hr"
            );
            let delta = result.pipeline.block_delta(Side::Etc);
            let max_delta = delta.value_range().map(|(_, hi)| hi).unwrap_or(0.0);
            assert!(
                max_delta > 1_200.0,
                "delta spike must exceed 1,200s (paper), got {max_delta}"
            );
            fig
        })
    });
    group.finish();
}

criterion_group!(benches, fig1);
criterion_main!(benches);
