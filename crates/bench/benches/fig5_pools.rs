//! Figure 5 bench: top-1/3/5 pool concentration per day on both networks.
//!
//! The convergence itself takes months, so alongside the simulated window
//! this bench regenerates the pool-dynamics process over 240 days directly
//! (block winners sampled per day) and asserts the paper's start/end shape.

use criterion::{criterion_group, criterion_main, Criterion};
use fork_bench::{assert_series_nonempty, bench_days, run_days};
use fork_pools::{DailyWinners, PoolSet};
use fork_replay::Side;
use fork_sim::SimRng;

fn convergence_process(seed: u64) -> (f64, f64, f64) {
    let mut rng = SimRng::new(seed).fork("fig5");
    let mut eth = PoolSet::converged("eth");
    let mut etc = PoolSet::fragmented("etc", 20);
    let blocks_per_day = 6_171;
    let mut etc_start = 0.0;
    let mut etc_end = 0.0;
    let mut eth_mean = 0.0;
    let days = 240u64;
    for day in 0..days {
        let mut eth_day = DailyWinners::new();
        let mut etc_day = DailyWinners::new();
        for _ in 0..blocks_per_day {
            eth_day.record(eth.sample_winner(&mut rng));
            etc_day.record(etc.sample_winner(&mut rng));
        }
        let etc5 = etc_day.top_n_fraction(5).unwrap();
        if day == 0 {
            etc_start = etc5;
        }
        if day == days - 1 {
            etc_end = etc5;
        }
        eth_mean += eth_day.top_n_fraction(5).unwrap() / days as f64;
        eth.step_preferential(0.004, &mut rng);
        etc.step_preferential(0.020, &mut rng);
    }
    (etc_start, etc_end, eth_mean)
}

fn fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);

    group.bench_function("convergence_240d", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let (etc_start, etc_end, eth_mean) = convergence_process(seed);
            // Paper: ETC starts considerably lower, converges toward ETH's
            // plateau; ETH stays put.
            assert!(etc_start < 0.45, "ETC should start fragmented: {etc_start}");
            assert!(
                etc_end > etc_start + 0.15,
                "no convergence: {etc_start} -> {etc_end}"
            );
            assert!((0.6..0.92).contains(&eth_mean), "ETH top5 {eth_mean}");
            (etc_start, etc_end)
        })
    });

    let days = bench_days();
    group.bench_function(format!("simulated_{days}d"), |b| {
        let mut seed = 500u64;
        b.iter(|| {
            seed += 1;
            let result = run_days(seed, days);
            let fig = result.figure5();
            assert_series_nonempty(&fig);
            // Day-one gap between the ecosystems.
            let eth5 = result.pipeline.pool_top_n(Side::Eth, 5).mean();
            let etc5 = result.pipeline.pool_top_n(Side::Etc, 5).mean();
            assert!(eth5 > etc5, "ETH {eth5} vs ETC {etc5}");
            fig
        })
    });
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
