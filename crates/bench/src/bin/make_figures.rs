//! Regenerates every figure and every in-text observation of the paper.
//!
//! ```sh
//! cargo run --release -p fork-bench --bin make-figures -- all
//! cargo run --release -p fork-bench --bin make-figures -- fig1 --days 31
//! cargo run --release -p fork-bench --bin make-figures -- fig2 fig3 --days 280
//! cargo run --release -p fork-bench --bin make-figures -- resolved obs
//! cargo run --release -p fork-bench --bin make-figures -- micro --telemetry-out telemetry.json
//! cargo run --release -p fork-bench --bin make-figures -- chaos
//! cargo run --release -p fork-bench --bin make-figures -- atlas
//! cargo run --release -p fork-bench --bin make-figures -- trace
//! cargo run --release -p fork-bench --bin make-figures -- fig2 --days 280 --progress
//! cargo run --release -p fork-bench --bin make-figures -- archive --quick --archive-dir run.arch
//! cargo run --release -p fork-bench --bin make-figures -- telemetry-diff a.json b.json
//! cargo run --release -p fork-bench --bin make-figures -- interarrival
//! cargo run --release -p fork-bench --bin make-figures -- query --quick
//! cargo run --release -p fork-bench --bin make-figures -- bench --quick
//! cargo run --release -p fork-bench --bin make-figures -- macro --quick
//! ```
//!
//! The `archive` target runs a study streamed into a durable on-disk
//! archive (or, when `--archive-dir` already holds one, replays it without
//! re-simulating), verifies every frame checksum, and proves the replayed
//! figures byte-identical to the live run's. The `query` target drives the
//! fork-query engine over an archive (creating one first if needed): an
//! 8-worker executor runs a mixed batch twice, every result is diffed
//! against a single-threaded naive scan, and `query.md` reports throughput,
//! cache hit rates, and the `query.latency` histogram. The `bench` target
//! is the serving benchmark: it measures raw scan throughput and cold/warm
//! in-process batch rates over an archive, then boots an in-process
//! `fork-served` daemon and drives it with the `fork-load` mixed workload
//! (120 connections), writing client- and server-side p50/p90/p99 plus
//! cache hit rates to `BENCH_10.json` (`--bench-out`). It also races the
//! hash-index sidecar's point lookups against naive full scans over the
//! same sampled hashes (the `lookup` section of the report), and prices
//! the observability plane: a tracing-off control run of the same served
//! workload, reported against the traced run in the `obs` section. `telemetry-diff`
//! compares two
//! exported telemetry JSON files metric by metric. The `atlas` target runs
//! the fork atlas — every partition preset across three seeds under the
//! safety and heal-convergence invariants, plus the never-healed negative
//! control — and writes `atlas.md` (partition duration vs minority-branch
//! lifetime vs heal reorg depth, per preset × seed) including the
//! lifetime-vs-duration scaling curve (a sweep of partition durations ×
//! seeds on the flash topology). The `macro` target runs the macro-scale
//! engine: the propagation preset at 100/500/1,000 generated-topology
//! nodes (pre/post-fork p50/p90/max into `macro.md`) and a 1,000-node
//! serial-vs-sharded timing race whose rounds/s land in the `macro`
//! section of the bench report. `interarrival` exports
//! the block inter-arrival histograms as CSV/JSON series. The `trace`
//! target runs the fork-split micro network with the block-lifecycle
//! tracer attached and writes `trace.json` (Chrome trace-event format,
//! loadable in `chrome://tracing` / Perfetto) plus `propagation.md` (per-
//! side time-to-coverage, pre- vs post-fork). `--progress` prints one
//! stderr heartbeat per simulated day on the long meso runs.
//!
//! Writes `figN.csv` / `figN.json` plus `observations.md` into `--out`
//! (default `figures/`), and prints ASCII renderings. With
//! `--telemetry-out <path>`, the merged telemetry of everything that ran —
//! engine step-phase spans, per-chain import counters, EVM opcode-class
//! dispatch counts, gossip/frame counters from the `micro` target — is
//! written as `fork-telemetry/v1` JSON and printed as a table.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use fork_core::{observations, ForkStudy, StudyResult};
use fork_sim::resolved::{run as run_resolved, ResolvedForkConfig};
use fork_sim::{MicroConfig, MicroNet};
use fork_telemetry::{MetricsRegistry, Snapshot, TimingMode};

struct Args {
    targets: HashSet<String>,
    days_short: u64,
    days_long: u64,
    seed: u64,
    out: PathBuf,
    telemetry_out: Option<PathBuf>,
    bench_out: PathBuf,
    archive_dir: Option<PathBuf>,
    quick: bool,
    progress: bool,
    diff: Option<(PathBuf, PathBuf)>,
}

fn parse_args() -> Args {
    let mut targets = HashSet::new();
    let mut days_short = 31u64;
    let mut days_long = 280u64;
    let mut seed = 2016u64;
    let mut out = PathBuf::from("figures");
    let mut telemetry_out = None;
    let mut bench_out = PathBuf::from("BENCH_10.json");
    let mut archive_dir = None;
    let mut quick = false;
    let mut progress = false;
    let mut diff = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--days" => {
                let v: u64 = argv[i + 1].parse().expect("--days takes a number");
                days_short = v.min(31);
                days_long = v;
                i += 1;
            }
            "--seed" => {
                seed = argv[i + 1].parse().expect("--seed takes a number");
                i += 1;
            }
            "--out" => {
                out = PathBuf::from(&argv[i + 1]);
                i += 1;
            }
            "--telemetry-out" => {
                telemetry_out = Some(PathBuf::from(
                    argv.get(i + 1).expect("--telemetry-out takes a path"),
                ));
                i += 1;
            }
            "--bench-out" => {
                bench_out = PathBuf::from(argv.get(i + 1).expect("--bench-out takes a path"));
                i += 1;
            }
            "--archive-dir" => {
                archive_dir = Some(PathBuf::from(
                    argv.get(i + 1).expect("--archive-dir takes a path"),
                ));
                i += 1;
            }
            "--quick" => {
                quick = true;
            }
            "--progress" => {
                progress = true;
            }
            "telemetry-diff" => {
                let a = argv
                    .get(i + 1)
                    .expect("telemetry-diff takes two JSON paths");
                let b = argv
                    .get(i + 2)
                    .expect("telemetry-diff takes two JSON paths");
                diff = Some((PathBuf::from(a), PathBuf::from(b)));
                targets.insert("telemetry-diff".to_string());
                i += 2;
            }
            t => {
                targets.insert(t.to_string());
            }
        }
        i += 1;
    }
    if targets.is_empty() || targets.contains("all") {
        for t in [
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "obs",
            "resolved",
            "micro",
            "chaos",
            "atlas",
            "trace",
            "interarrival",
        ] {
            targets.insert(t.to_string());
        }
    }
    Args {
        targets,
        days_short,
        days_long,
        seed,
        out,
        telemetry_out,
        bench_out,
        archive_dir,
        quick,
        progress,
        diff,
    }
}

/// One stderr heartbeat line per simulated day (`--progress`).
fn heartbeat(label: &'static str) -> impl FnMut(fork_sim::ProgressEvent) {
    move |p| {
        eprintln!(
            "  [{label}] day {:>3}: sim t={}s, blocks eth/etc {}/{}, {:.0} events/s",
            p.day, p.sim_unix, p.blocks[0], p.blocks[1], p.events_per_sec
        );
    }
}

/// Steps an atlas preset to its end, checking the safety invariants (and,
/// past the preset's heal-plus-grace deadline, census convergence) at every
/// 60 s window and the reorg-depth bound at the end. The census itself is
/// sampled every 15 s — short partitions cross the census's 8-block
/// agreement cushion only briefly, and 60 s sampling can miss the whole
/// divergent phase. Returns the finished net plus the observed
/// minority-branch lifetime: seconds during which the sampled census was
/// divergent.
fn run_atlas_preset(preset: &fork_sim::AtlasPreset, seed: u64) -> (MicroNet, u64) {
    const SAMPLE_MS: u64 = 15_000;
    let end_ms = preset.config.duration_secs * 1_000;
    let mut net = MicroNet::new(preset.config.clone());
    let mut divergent_ms = 0u64;
    let mut t = 0;
    while t < end_ms {
        t = (t + SAMPLE_MS).min(end_ms);
        net.run_until(t);
        if net.partition_census().len() > 1 {
            divergent_ms += SAMPLE_MS;
        }
        if t % 60_000 != 0 && t != end_ms {
            continue;
        }
        if let Err(v) = fork_sim::check_invariants(&net) {
            panic!(
                "atlas {} seed {seed}: invariant violated at t={}s: {v}",
                preset.name,
                t / 1_000
            );
        }
        if t >= preset.converge_by_ms {
            if let Err(v) = fork_sim::check_heal_convergence(&net, preset.expected_groups) {
                panic!("atlas {} seed {seed}: t={}s: {v}", preset.name, t / 1_000);
            }
        }
    }
    if let Err(v) = fork_sim::check_reorg_depth(&net, preset.reorg_depth_bound) {
        panic!("atlas {} seed {seed}: {v}", preset.name);
    }
    (net, divergent_ms / 1_000)
}

fn write_figure(out: &Path, fig: &fork_core::FigureData) {
    let series = fig.all_series();
    let csv = out.join(format!("{}.csv", fig.id));
    let json = out.join(format!("{}.json", fig.id));
    fork_analytics::write_csv(&csv, &series).expect("write csv");
    fork_analytics::write_json(&json, &series).expect("write json");
    println!("{}", fig.render_ascii(76, 14));
    println!("  -> {} and {}\n", csv.display(), json.display());
}

fn main() {
    let args = parse_args();
    std::fs::create_dir_all(&args.out).expect("create output dir");

    // Top-level phase spans for this tool's own runs; merged into the
    // telemetry export alongside the engines' metrics.
    let registry = MetricsRegistry::new();
    let mut telemetry = Snapshot::default();

    let wants = |t: &str| args.targets.contains(t);
    let wants_short = wants("fig1") || wants("interarrival");
    let wants_long =
        wants("fig2") || wants("fig3") || wants("fig4") || wants("fig5") || wants("obs");

    let mut short_result: Option<StudyResult> = None;
    let mut long_result: Option<StudyResult> = None;

    if wants_short {
        eprintln!(
            "Running the fork-month window ({} days, seed {})...",
            args.days_short, args.seed
        );
        let run_span = registry.span("figures.run.fork_month");
        let guard = run_span.enter();
        let study = ForkStudy::days(args.seed, args.days_short);
        short_result = Some(if args.progress {
            let mut beat = heartbeat("fork-month");
            study.run_with_progress(Some(&mut beat))
        } else {
            study.run()
        });
        drop(guard);
        eprintln!(
            "  done in {:.1}s",
            run_span.snapshot().total_ns as f64 / 1e9
        );
    }
    if wants_long {
        eprintln!(
            "Running the nine-month window ({} days, seed {})...",
            args.days_long, args.seed
        );
        let run_span = registry.span("figures.run.nine_months");
        let guard = run_span.enter();
        let study = ForkStudy::days(args.seed, args.days_long);
        long_result = Some(if args.progress {
            let mut beat = heartbeat("nine-months");
            study.run_with_progress(Some(&mut beat))
        } else {
            study.run()
        });
        drop(guard);
        eprintln!(
            "  done in {:.1}s",
            run_span.snapshot().total_ns as f64 / 1e9
        );
    }
    for result in [&short_result, &long_result].into_iter().flatten() {
        telemetry.merge(&result.telemetry);
    }

    if let Some(result) = &short_result {
        if wants("fig1") {
            write_figure(&args.out, &result.figure1());
        }
    }
    if let Some(result) = &long_result {
        if wants("fig2") {
            write_figure(&args.out, &result.figure2());
        }
        if wants("fig3") {
            write_figure(&args.out, &result.figure3());
        }
        if wants("fig4") {
            write_figure(&args.out, &result.figure4());
        }
        if wants("fig5") {
            write_figure(&args.out, &result.figure5());
        }
        if wants("obs") {
            let mut report = observations::long_term(result);
            if let Some(short) = &short_result {
                // The fork-month run measures the short-term observations
                // more sharply; replace the long run's copies of those rows.
                let short_report = observations::short_term(short);
                let n = short_report.observations.len();
                report.observations.splice(0..n, short_report.observations);
            }
            let md = report.to_markdown();
            println!("Observations (paper vs measured)\n{md}");
            std::fs::write(args.out.join("observations.md"), &md).expect("write observations");
            println!("  -> {}\n", args.out.join("observations.md").display());
        }
    }

    if wants("resolved") {
        println!("Resolved forks (in-text T3): minority-branch lengths\n");
        let eth = run_resolved(&ResolvedForkConfig::eth_dos_2016(args.seed));
        let etc = run_resolved(&ResolvedForkConfig::etc_replay_2017(args.seed));
        let rows = vec![
            vec![
                "ETH 2016-11-22".to_string(),
                "86 blocks".to_string(),
                format!(
                    "{} blocks over {:.1} h",
                    eth.minority_branch_len,
                    eth.duration_secs / 3_600.0
                ),
            ],
            vec![
                "ETC 2017-01-13".to_string(),
                "3,583 blocks".to_string(),
                format!(
                    "{} blocks over {:.1} h",
                    etc.minority_branch_len,
                    etc.duration_secs / 3_600.0
                ),
            ],
        ];
        let md = fork_analytics::markdown_table(&["fork", "paper", "measured"], &rows);
        println!("{md}");
        std::fs::write(args.out.join("resolved_forks.md"), &md).expect("write resolved");
        println!("  -> {}\n", args.out.join("resolved_forks.md").display());
    }

    if wants("micro") {
        eprintln!("Running the networked micro-simulation (30 min, 16 nodes)...");
        let run_span = registry.span("figures.run.micro");
        let guard = run_span.enter();
        let mut net = MicroNet::new(MicroConfig {
            seed: args.seed,
            n_nodes: 16,
            n_miners: 6,
            duration_secs: 1_800,
            ..MicroConfig::default()
        });
        let report = net.run();
        drop(guard);
        println!(
            "Micro run: {} blocks mined, {} messages delivered, {} corrupted frames, \
             mean propagation {:.0} ms\n",
            report.mined.iter().sum::<u64>(),
            report.delivered,
            report.corrupted_frames,
            report.mean_propagation_ms,
        );
        telemetry.merge(&net.telemetry_snapshot());
    }

    if wants("chaos") {
        eprintln!("Running the chaos scenario (80 min, 20 nodes, fork split + faults)...");
        let run_span = registry.span("figures.run.chaos");
        let guard = run_span.enter();
        let scenario = fork_sim::scenario::chaos_scenario(args.seed);
        let end_ms = scenario.config.duration_secs * 1_000;
        let mut net = MicroNet::new(scenario.config.clone());
        // A bounded flight recorder (constant memory) so an invariant
        // violation can dump each node's recent lifecycle events.
        net.attach_tracer(std::sync::Arc::new(
            fork_telemetry::TraceSink::recorder_only(64),
        ));
        // Step window by window with the invariant checker engaged, exactly
        // like the chaos integration test.
        let mut t = 0;
        while t < end_ms {
            t = (t + 60_000).min(end_ms);
            net.run_until(t);
            if let Err(v) = fork_sim::check_invariants(&net) {
                let dump = fork_sim::violation_report(&net, &v);
                let dump_path = args.out.join("flight_dump.txt");
                std::fs::write(&dump_path, &dump).expect("write flight dump");
                eprintln!("{dump}");
                panic!(
                    "invariant violated at t={}s: {v} (flight dump at {})",
                    t / 1_000,
                    dump_path.display()
                );
            }
        }
        let report = net.finalize_report();
        drop(guard);

        let fmt_u64s = |v: &[u64]| v.iter().map(u64::to_string).collect::<Vec<_>>().join(" ");
        let rows: Vec<Vec<String>> = vec![
            vec![
                "crashes / restarts".into(),
                format!("{} / {}", report.crashes, report.restarts),
            ],
            vec!["recovery times (ms)".into(), fmt_u64s(&report.recovery_ms)],
            vec![
                "sync timeouts / retries".into(),
                format!("{} / {}", report.sync_timeouts, report.sync_retries),
            ],
            vec!["peer bans".into(), report.peer_bans.to_string()],
            vec!["equivocations".into(), report.equivocations.to_string()],
            vec![
                "corrupted frames".into(),
                report.corrupted_frames.to_string(),
            ],
            vec![
                "reorgs / side blocks".into(),
                format!("{} / {}", report.reorgs, report.side_blocks),
            ],
            vec![
                "partition groups".into(),
                format!("{:?}", report.partition_groups),
            ],
            vec!["head heights".into(), fmt_u64s(&report.head_numbers)],
        ];
        let md = fork_analytics::markdown_table(&["chaos metric", "value"], &rows);
        println!("{md}");
        std::fs::write(args.out.join("chaos.md"), &md).expect("write chaos");
        println!("  -> {}\n", args.out.join("chaos.md").display());
        telemetry.merge(&net.telemetry_snapshot());
    }

    if wants("atlas") {
        eprintln!("Running the fork atlas (4 partition presets x 3 seeds + negative control)...");
        let run_span = registry.span("figures.run.atlas");
        let guard = run_span.enter();
        let seeds = [args.seed, args.seed + 1, args.seed + 2];
        let mut rows: Vec<Vec<String>> = Vec::new();
        for &seed in &seeds {
            for preset in fork_sim::scenario::atlas_presets(seed) {
                let (net, minority_lifetime_s) = run_atlas_preset(&preset, seed);
                let partition = if preset.partition_secs == 0 {
                    "spec-driven".to_string()
                } else {
                    format!("{} s", preset.partition_secs)
                };
                rows.push(vec![
                    preset.name.to_string(),
                    seed.to_string(),
                    partition,
                    format!("{minority_lifetime_s} s"),
                    format!(
                        "{} (bound {})",
                        net.max_reorg_depth(),
                        preset.reorg_depth_bound
                    ),
                    format!("{:?}", net.partition_census()),
                    "ok".to_string(),
                ]);
            }
        }
        // The lifetime-vs-duration scaling curve: the flash topology swept
        // over partition durations × seeds. Lifetime is expected to track
        // duration roughly linearly once the split outlives the census's
        // 8-block agreement cushion.
        eprintln!("Sweeping the lifetime-vs-duration scaling curve...");
        let durations: &[u64] = if args.quick {
            &[30, 240, 960]
        } else {
            &[30, 60, 120, 240, 480, 720, 960]
        };
        let mut curve_rows: Vec<Vec<String>> = Vec::new();
        for &duration in durations {
            let mut lifetimes = Vec::new();
            let mut depths = Vec::new();
            for &seed in &seeds {
                let preset = fork_sim::scenario::atlas_duration_sweep(seed, duration);
                let (net, lifetime_s) = run_atlas_preset(&preset, seed);
                lifetimes.push(lifetime_s);
                depths.push(net.max_reorg_depth());
            }
            let mean_lifetime = lifetimes.iter().sum::<u64>() as f64 / lifetimes.len() as f64;
            curve_rows.push(vec![
                format!("{duration} s"),
                lifetimes
                    .iter()
                    .map(|l| format!("{l} s"))
                    .collect::<Vec<_>>()
                    .join(" / "),
                format!("{mean_lifetime:.0} s"),
                depths
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(" / "),
                fork_sim::scenario::atlas_reorg_bound(duration).to_string(),
            ]);
        }

        // Negative control: the flash partition without its heal must FAIL
        // the convergence invariant — an atlas whose gate can't reject a
        // stuck partition proves nothing.
        let control = fork_sim::scenario::atlas_never_healed(args.seed);
        let mut net = MicroNet::new(control.config.clone());
        net.run();
        let control_line = match fork_sim::check_heal_convergence(&net, control.expected_groups) {
            Err(v) => format!(
                "Negative control `{}` (heal removed): convergence invariant correctly \
                 rejected it — {v}.",
                control.name
            ),
            Ok(()) => panic!("never-healed control passed convergence — the gate is broken"),
        };
        drop(guard);

        let md = format!(
            "# Fork atlas\n\nEach preset × seed runs under the safety invariants at every \
             60 s window; past its heal-plus-grace deadline the census must hold its \
             expected group count at every window. \"Minority lifetime\" is how long a \
             divergent census persisted (15 s sampling); 0 s means the partition healed \
             before the divergence ever crossed the census's 8-block agreement cushion — \
             a flash partition can be invisible at spec tolerance.\n\n{}\n\
             ## Lifetime vs duration scaling curve\n\nThe flash two-way topology \
             (16 nodes, split at 600 s) swept over partition durations, {} seeds \
             each. Minority-branch lifetime tracks partition duration once the \
             split outlives the census's agreement cushion; the heal reorg depth \
             stays inside the duration-derived bound at every point.\n\n{}\n{}\n",
            fork_analytics::markdown_table(
                &[
                    "preset",
                    "seed",
                    "partition",
                    "minority lifetime",
                    "heal reorg depth (blocks)",
                    "census",
                    "invariants",
                ],
                &rows,
            ),
            seeds.len(),
            fork_analytics::markdown_table(
                &[
                    "partition duration",
                    "minority lifetime (per seed)",
                    "mean lifetime",
                    "heal reorg depth (per seed)",
                    "reorg bound",
                ],
                &curve_rows,
            ),
            control_line,
        );
        println!("{md}");
        std::fs::write(args.out.join("atlas.md"), &md).expect("write atlas");
        println!("  -> {}\n", args.out.join("atlas.md").display());
    }

    if wants("trace") {
        eprintln!(
            "Running the trace scenario (30 min, 20 nodes, fork at block {})...",
            fork_sim::scenario::TRACE_FORK_BLOCK
        );
        let run_span = registry.span("figures.run.trace");
        let guard = run_span.enter();
        let scenario = fork_sim::scenario::trace_scenario(args.seed);
        let mut net = MicroNet::new(scenario.config.clone());
        net.attach_tracer(std::sync::Arc::new(
            fork_telemetry::TraceSink::with_recorder(64),
        ));
        let report = net.run();
        drop(guard);

        let n = scenario.config.n_nodes;
        let mut side_of = vec![0usize; n];
        for &i in &scenario.etc_nodes {
            side_of[i] = 1;
        }
        let labels: Vec<String> = (0..n)
            .map(|i| format!("node{:02} ({})", i, ["eth", "etc"][side_of[i]]))
            .collect();
        let events = net.tracer().events();
        let trace_path = args.out.join("trace.json");
        std::fs::write(
            &trace_path,
            fork_telemetry::chrome_trace_json(&events, &labels),
        )
        .expect("write trace");

        let rows = fork_telemetry::propagation_rows(
            &events,
            &side_of,
            &["eth", "etc"],
            fork_sim::scenario::TRACE_FORK_BLOCK,
        );
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.side.clone(),
                    r.phase.to_string(),
                    r.blocks.to_string(),
                    r.p50_ms.to_string(),
                    r.p90_ms.to_string(),
                    r.max_ms.to_string(),
                ]
            })
            .collect();
        let md = fork_analytics::markdown_table(
            &[
                "side", "phase", "blocks", "p50 (ms)", "p90 (ms)", "max (ms)",
            ],
            &table,
        );
        println!(
            "Trace run: {} blocks mined, {} lifecycle events\n\n\
             Propagation: time from Mined to full same-side coverage\n{md}",
            report.mined.iter().sum::<u64>(),
            events.len(),
        );
        std::fs::write(args.out.join("propagation.md"), &md).expect("write propagation");
        println!(
            "  -> {} and {}\n",
            trace_path.display(),
            args.out.join("propagation.md").display()
        );
        telemetry.merge(&net.telemetry_snapshot());
    }

    if wants("interarrival") {
        if let Some(result) = short_result.as_ref().or(long_result.as_ref()) {
            let series = result.interarrival_series();
            if series.is_empty() {
                eprintln!("interarrival: no histograms (telemetry feature off); skipping\n");
            } else {
                let refs: Vec<&fork_analytics::TimeSeries> = series.iter().collect();
                let csv = args.out.join("interarrival.csv");
                let json = args.out.join("interarrival.json");
                fork_analytics::write_csv(&csv, &refs).expect("write interarrival csv");
                fork_analytics::write_json(&json, &refs).expect("write interarrival json");
                for s in &series {
                    let n: f64 = s.points.iter().map(|(_, v)| v).sum();
                    println!(
                        "{}: {} samples across {} log2 buckets",
                        s.label,
                        n,
                        s.points.len()
                    );
                }
                println!("  -> {} and {}\n", csv.display(), json.display());
            }
        }
    }

    if wants("archive") {
        let dir = args
            .archive_dir
            .clone()
            .unwrap_or_else(|| args.out.join("archive"));
        let replayed = if dir.join("manifest.json").is_file() {
            eprintln!("Replaying archived study from {}...", dir.display());
            StudyResult::from_archive(&dir).expect("replay archive")
        } else {
            let study = if args.quick {
                eprintln!(
                    "Running and archiving a quick-scale study (seed {}) into {}...",
                    args.seed,
                    dir.display()
                );
                ForkStudy::quick(args.seed)
            } else {
                eprintln!(
                    "Running and archiving the fork-month window ({} days, seed {}) into {}...",
                    args.days_short,
                    args.seed,
                    dir.display()
                );
                ForkStudy::days(args.seed, args.days_short)
            };
            let run_span = registry.span("figures.run.archive");
            let guard = run_span.enter();
            let live = study.archive_to(&dir).expect("archive run");
            drop(guard);
            let replayed = StudyResult::from_archive(&dir).expect("replay archive");
            let mut mismatched = Vec::new();
            for (a, b) in live.all_figures().iter().zip(replayed.all_figures().iter()) {
                let csv_live = fork_analytics::to_csv(&a.all_series());
                let csv_replay = fork_analytics::to_csv(&b.all_series());
                if csv_live != csv_replay {
                    mismatched.push(a.id);
                }
            }
            assert!(
                mismatched.is_empty(),
                "archive replay diverged from the live run on {mismatched:?}"
            );
            println!("Archive round-trip: all 5 figures byte-identical to the live run");
            telemetry.merge(&live.telemetry);
            replayed
        };

        let reader = fork_archive::ArchiveReader::open(&dir).expect("reopen archive");
        let report = reader.open_report();
        let verify = reader.verify();
        let (ok, bad, torn) = verify.totals();
        println!(
            "Archive {}: {} segments, {} blocks + {} txs; verify: {} frames ok, \
             {} corrupt, {} torn bytes{}",
            dir.display(),
            report.segments,
            report.blocks,
            report.txs,
            ok,
            bad,
            torn,
            if verify.is_clean() { " (clean)" } else { "" },
        );
        for (path, detail) in &report.skipped {
            eprintln!("  skipped segment {}: {detail}", path.display());
        }

        for fig in replayed.all_figures() {
            write_figure(&args.out, &fig);
        }
    }

    if wants("query") {
        use fork_query::{
            FrameCache, Projection, Query, QueryExecutor, QueryRange, ReaderPool,
            DEFAULT_CACHE_BYTES, DEFAULT_CACHE_SHARDS,
        };
        use fork_replay::Side;

        let dir = args
            .archive_dir
            .clone()
            .unwrap_or_else(|| args.out.join("archive"));
        if !dir.join("manifest.json").is_file() {
            let study = if args.quick {
                eprintln!(
                    "No archive at {}; running and archiving a quick-scale study (seed {})...",
                    dir.display(),
                    args.seed
                );
                ForkStudy::quick(args.seed)
            } else {
                eprintln!(
                    "No archive at {}; running and archiving the fork-month window \
                     ({} days, seed {})...",
                    dir.display(),
                    args.days_short,
                    args.seed
                );
                ForkStudy::days(args.seed, args.days_short)
            };
            let run_span = registry.span("figures.run.query_archive");
            let guard = run_span.enter();
            let live = study.archive_to(&dir).expect("archive run");
            drop(guard);
            telemetry.merge(&live.telemetry);
        }

        eprintln!("Querying archive at {}...", dir.display());
        let reader = fork_archive::ArchiveReader::open(&dir).expect("open archive");
        let (total_blocks, total_txs) = reader.totals();
        // Overall block-number and time ranges, for mixed range queries.
        let mut num_range: Option<(u64, u64)> = None;
        let mut time_range: Option<(u64, u64)> = None;
        for side in [Side::Eth, Side::Etc] {
            for (_, scan) in reader.segments(side) {
                for (acc, seen) in [
                    (&mut num_range, scan.block_range),
                    (&mut time_range, scan.time_range),
                ] {
                    if let Some((lo, hi)) = seen {
                        *acc = Some(match *acc {
                            None => (lo, hi),
                            Some((alo, ahi)) => (alo.min(lo), ahi.max(hi)),
                        });
                    }
                }
            }
        }
        let mid_half = |lo: u64, hi: u64| {
            let span = hi - lo;
            (lo + span / 4, hi - span / 4)
        };

        let mut queries = Vec::new();
        for side in [Side::Eth, Side::Etc] {
            for projection in [
                Projection::Blocks,
                Projection::InterArrival,
                Projection::Difficulty,
            ] {
                queries.push(Query {
                    side: Some(side),
                    range: QueryRange::All,
                    projection,
                });
                if let Some((lo, hi)) = num_range {
                    let (first, last) = mid_half(lo, hi);
                    queries.push(Query {
                        side: Some(side),
                        range: QueryRange::Blocks { first, last },
                        projection,
                    });
                }
            }
            let tx_range = match time_range {
                Some((lo, hi)) => {
                    let (start, end) = mid_half(lo, hi);
                    QueryRange::Time { start, end }
                }
                None => QueryRange::All,
            };
            for projection in [
                Projection::Txs,
                Projection::Echoes { window_days: 1 },
                Projection::Echoes { window_days: 7 },
            ] {
                queries.push(Query {
                    side: Some(side),
                    range: QueryRange::All,
                    projection,
                });
                queries.push(Query {
                    side: Some(side),
                    range: tx_range,
                    projection,
                });
            }
        }
        queries.push(Query {
            side: None,
            range: QueryRange::All,
            projection: Projection::TxRatioPerDay,
        });

        let pool = ReaderPool::new(
            reader,
            FrameCache::new(DEFAULT_CACHE_BYTES, DEFAULT_CACHE_SHARDS).with_telemetry(&registry),
        );
        let exec = QueryExecutor::new(8).with_telemetry(&registry);

        let t = std::time::Instant::now();
        let first_pass = exec.run_batch(&pool, &queries);
        let cold_wall = t.elapsed();
        let cold = pool.cache().stats();
        let t = std::time::Instant::now();
        let second_pass = exec.run_batch(&pool, &queries);
        let warm_wall = t.elapsed();
        let warm = pool.cache().stats();

        // Correctness: both passes identical, and every result identical to
        // a naive single-threaded full scan.
        let naive_reader = fork_archive::ArchiveReader::open(&dir).expect("reopen archive");
        for ((q, a), b) in queries.iter().zip(&first_pass).zip(&second_pass) {
            let a = a.as_ref().expect("query failed");
            assert_eq!(
                a,
                b.as_ref().expect("query failed"),
                "cold and warm passes diverged on {q:?}"
            );
            let naive = QueryExecutor::run_naive(&naive_reader, q).expect("naive scan");
            assert_eq!(
                a, &naive,
                "8-thread executor diverged from naive scan on {q:?}"
            );
        }

        let pct = |hits: u64, misses: u64| {
            let total = hits + misses;
            if total == 0 {
                0.0
            } else {
                100.0 * hits as f64 / total as f64
            }
        };
        let cold_rate = pct(cold.hits, cold.misses);
        let warm_rate = pct(warm.hits - cold.hits, warm.misses - cold.misses);
        let qps = |wall: std::time::Duration| queries.len() as f64 / wall.as_secs_f64().max(1e-9);
        let lat = exec.latency_snapshot();
        let lat_row = if lat.count == 0 {
            "no samples (telemetry feature off)".to_string()
        } else {
            format!(
                "{} samples, min {} us, mean {:.0} us, max {} us",
                lat.count,
                lat.min,
                lat.sum as f64 / lat.count as f64,
                lat.max
            )
        };
        let rows: Vec<Vec<String>> = vec![
            vec![
                "archive".into(),
                format!(
                    "{} ({} blocks, {} txs)",
                    dir.display(),
                    total_blocks,
                    total_txs
                ),
            ],
            vec![
                "batch".into(),
                format!("{} queries x 8 workers, 2 passes", queries.len()),
            ],
            vec![
                "pass 1 (cold cache)".into(),
                format!(
                    "{:.1} ms ({:.0} queries/s)",
                    cold_wall.as_secs_f64() * 1e3,
                    qps(cold_wall)
                ),
            ],
            vec![
                "pass 2 (warm cache)".into(),
                format!(
                    "{:.1} ms ({:.0} queries/s)",
                    warm_wall.as_secs_f64() * 1e3,
                    qps(warm_wall)
                ),
            ],
            vec![
                "cache hit rate (first pass)".into(),
                format!("{cold_rate:.2}%"),
            ],
            vec![
                "cache hit rate (second pass)".into(),
                format!("{warm_rate:.2}%"),
            ],
            vec![
                "cache counters".into(),
                format!(
                    "{} hits, {} misses, {} evictions, {} entries resident (~{} KiB)",
                    warm.hits,
                    warm.misses,
                    warm.evictions,
                    warm.entries,
                    warm.resident_bytes / 1024
                ),
            ],
            vec!["query.latency".into(), lat_row],
            vec![
                "naive-scan check".into(),
                format!(
                    "{} / {} results byte-identical",
                    queries.len(),
                    queries.len()
                ),
            ],
        ];
        let md = fork_analytics::markdown_table(&["query engine", "value"], &rows);
        println!("{md}");
        std::fs::write(args.out.join("query.md"), &md).expect("write query report");
        println!("  -> {}\n", args.out.join("query.md").display());
        assert!(
            warm_rate > 50.0,
            "second pass should be mostly cache hits, got {warm_rate:.2}%"
        );
    }

    if wants("bench") {
        use fork_query::{
            FrameCache, Projection, Query, QueryExecutor, QueryRange, ReaderPool,
            DEFAULT_CACHE_BYTES, DEFAULT_CACHE_SHARDS,
        };
        use fork_replay::Side;
        use fork_serve::{
            run_load, workload_queries, LoadConfig, ServeClient, ServeConfig, Server,
        };

        let dir = args
            .archive_dir
            .clone()
            .unwrap_or_else(|| args.out.join("archive"));
        if !dir.join("manifest.json").is_file() {
            let study = if args.quick {
                eprintln!(
                    "No archive at {}; running and archiving a quick-scale study (seed {})...",
                    dir.display(),
                    args.seed
                );
                ForkStudy::quick(args.seed)
            } else {
                eprintln!(
                    "No archive at {}; running and archiving the fork-month window \
                     ({} days, seed {})...",
                    dir.display(),
                    args.days_short,
                    args.seed
                );
                ForkStudy::days(args.seed, args.days_short)
            };
            let live = study.archive_to(&dir).expect("archive run");
            telemetry.merge(&live.telemetry);
        }

        eprintln!("Benchmarking archive at {}...", dir.display());
        let pool = ReaderPool::open(&dir).expect("open archive");
        let (total_blocks, total_txs) = pool.reader().totals();

        // Raw scan throughput: full per-side Blocks scans through a fresh
        // cold cache, 8 workers. Every archived block is decoded once.
        let scan_queries: Vec<Query> = [Side::Eth, Side::Etc]
            .into_iter()
            .map(|side| Query {
                side: Some(side),
                range: QueryRange::All,
                projection: Projection::Blocks,
            })
            .collect();
        let scan_exec = QueryExecutor::new(8);
        let t = std::time::Instant::now();
        for r in scan_exec.run_batch(&pool, &scan_queries) {
            r.expect("scan query");
        }
        let scan_wall = t.elapsed();
        let blocks_per_sec = total_blocks as f64 / scan_wall.as_secs_f64().max(1e-9);

        // Point lookups: the sidecar-indexed path raced against a naive
        // full scan over the same sampled hashes. The index build (or
        // sidecar load) is timed once; each lookup is timed individually.
        use fork_query::Lookup;
        let t = std::time::Instant::now();
        let index_entries = pool.hash_index().len();
        let index_build_ms = t.elapsed().as_secs_f64() * 1e3;
        let mut sample_lookups: Vec<Lookup> = Vec::new();
        for side in [Side::Eth, Side::Etc] {
            let mut blocks = Vec::new();
            let mut txs = Vec::new();
            for item in pool.reader().records(side) {
                match item.expect("clean archive").1 {
                    fork_archive::ArchiveRecord::Block(b) => blocks.push(b.hash),
                    fork_archive::ArchiveRecord::Tx(x) => txs.push(x.hash),
                }
            }
            for (from, is_block) in [(blocks, true), (txs, false)] {
                if from.is_empty() {
                    continue;
                }
                for k in 0..16usize {
                    let hash = from[k * (from.len() - 1) / 15];
                    sample_lookups.push(if is_block {
                        Lookup::BlockByHash { hash }
                    } else {
                        Lookup::TxByHash { hash }
                    });
                }
            }
        }
        let mut indexed_lat = fork_telemetry::HistogramSnapshot::default();
        let mut scan_lat = fork_telemetry::HistogramSnapshot::default();
        let lookup_exec = QueryExecutor::new(2);
        let naive_reader = fork_archive::ArchiveReader::open(&dir).expect("reopen archive");
        for round in 0..3 {
            for lookup in &sample_lookups {
                let t = std::time::Instant::now();
                lookup_exec
                    .run_lookup(&pool, lookup)
                    .expect("indexed lookup");
                indexed_lat.record(t.elapsed().as_micros() as u64);
                if round == 0 {
                    let t = std::time::Instant::now();
                    QueryExecutor::run_lookup_naive(&naive_reader, lookup).expect("naive lookup");
                    scan_lat.record(t.elapsed().as_micros() as u64);
                }
            }
        }

        // In-process batch rates, cold vs warm, over the serving workload.
        let meta = fork_serve::server::archive_meta(&pool);
        let workload = workload_queries(&meta);
        let batch_pool = ReaderPool::new(
            fork_archive::ArchiveReader::open(&dir).expect("reopen archive"),
            FrameCache::new(DEFAULT_CACHE_BYTES, DEFAULT_CACHE_SHARDS),
        );
        let exec = QueryExecutor::new(8);
        let t = std::time::Instant::now();
        for r in exec.run_batch(&batch_pool, &workload) {
            r.expect("bench query");
        }
        let cold_wall = t.elapsed();
        let cold_stats = batch_pool.cache().stats();
        let t = std::time::Instant::now();
        for r in exec.run_batch(&batch_pool, &workload) {
            r.expect("bench query");
        }
        let warm_wall = t.elapsed();
        let warm_stats = batch_pool.cache().stats();
        let rate = |hits: u64, misses: u64| {
            let total = hits + misses;
            if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            }
        };
        let cold_hit_rate = rate(cold_stats.hits, cold_stats.misses);
        let warm_hit_rate = rate(
            warm_stats.hits - cold_stats.hits,
            warm_stats.misses - cold_stats.misses,
        );
        let qps = |n: usize, wall: std::time::Duration| n as f64 / wall.as_secs_f64().max(1e-9);

        // Tracing-off control: the same daemon and workload with the
        // per-request tracing plane disabled, to price observability.
        eprintln!("Starting tracing-off fork-served control (120 connections)...");
        let mut off_cfg = ServeConfig::new(&dir);
        off_cfg.tracing = false;
        let off_handle = Server::start(off_cfg).expect("start tracing-off daemon");
        let off_addr = off_handle.local_addr().to_string();
        let mut off_load = LoadConfig::new(&off_addr);
        off_load.connections = 120;
        off_load.requests_per_conn = 10;
        off_load.seed = args.seed;
        let off_report = run_load(&off_load).expect("tracing-off load run");
        off_handle.shutdown();
        let tracing_off_p99 = off_report.overall.latency.p99();

        // The served path: an in-process daemon on an ephemeral port under
        // the standard fork-load mix — 120 connections, cold + warm phase.
        eprintln!("Starting in-process fork-served and driving 120 connections...");
        let handle = Server::start(ServeConfig::new(&dir)).expect("start daemon");
        let addr = handle.local_addr().to_string();
        let mut load_cfg = LoadConfig::new(&addr);
        load_cfg.connections = 120;
        load_cfg.requests_per_conn = 10;
        load_cfg.seed = args.seed;
        let report = run_load(&load_cfg).expect("load run");
        print!("{}", report.render_table());

        // Server-side view before shutdown: per-endpoint latency merged
        // into one histogram, plus the shared frame-cache hit rate.
        let mut probe = ServeClient::connect_retry(&addr, std::time::Duration::from_secs(5))
            .expect("stats probe");
        let stats_json = probe.stats().expect("stats");
        let server_snap = Snapshot::from_json(&stats_json).expect("parse daemon stats");
        let mut server_latency = fork_telemetry::HistogramSnapshot::default();
        for (name, h) in &server_snap.histograms {
            if name.starts_with("serve.latency.") {
                server_latency.merge(h);
            }
        }
        let counter = |name: &str| server_snap.counters.get(name).copied().unwrap_or(0);
        let served_hit_rate = rate(counter("query.cache.hit"), counter("query.cache.miss"));

        // Observability plane, scraped from the traced daemon before
        // shutdown: slow-query log, series ring, and the stage histogram
        // sums (the five stages should account for ~all of end-to-end).
        let slow_log = probe.obs_slow_log().expect("slow log");
        let series = probe.obs_series().expect("series ring");
        let hist_sum = |name: &str| server_snap.histograms.get(name).map(|h| h.sum).unwrap_or(0);
        let stage_sum_us: u64 = ["read", "admit", "queue", "execute", "write"]
            .iter()
            .map(|s| hist_sum(&format!("serve.stage.{s}")))
            .sum();
        let stage_total_us = hist_sum("serve.stage.total");
        drop(probe);
        handle.shutdown();
        telemetry.merge(&server_snap);
        let tracing_on_p99 = report.overall.latency.p99();
        let overhead_ratio = tracing_on_p99 as f64 / tracing_off_p99.max(1) as f64;

        let phase_obj = |name: &str, wall: std::time::Duration, hit_rate: f64, n: usize| {
            format!(
                "{{\"name\": \"{name}\", \"wall_ms\": {:.1}, \"queries_per_sec\": {:.1}, \
                 \"cache_hit_rate\": {hit_rate:.4}}}",
                wall.as_secs_f64() * 1e3,
                qps(n, wall),
            )
        };
        let pctls = |h: &fork_telemetry::HistogramSnapshot| {
            format!(
                "{{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"min\": {}, \"max\": {}}}",
                h.p50(),
                h.p90(),
                h.p99(),
                h.min,
                h.max
            )
        };
        let json = format!(
            "{{\n  \"schema\": \"fork-bench/v1\",\n  \"archive\": {{\"dir\": {:?}, \
             \"blocks\": {total_blocks}, \"txs\": {total_txs}}},\n  \"scan\": \
             {{\"blocks_per_sec\": {blocks_per_sec:.1}, \"wall_ms\": {:.1}}},\n  \
             \"lookup\": {{\"index_entries\": {index_entries}, \
             \"index_build_ms\": {index_build_ms:.1}, \"samples\": {}, \
             \"indexed_latency_us\": {}, \"scan_latency_us\": {}}},\n  \
             \"in_process\": {{\"queries\": {}, \"cold\": {}, \"warm\": {}}},\n  \
             \"served\": {{\"connections\": {}, \"requests\": {}, \"ok\": {}, \
             \"overloaded\": {}, \"backpressure\": {}, \"errors\": {}, \
             \"queries_per_sec\": {:.1}, \"cache_hit_rate\": {served_hit_rate:.4}, \
             \"client_latency_us\": {}, \"server_latency_us\": {}}},\n  \
             \"obs\": {{\"tracing_on_p99_us\": {tracing_on_p99}, \
             \"tracing_off_p99_us\": {tracing_off_p99}, \
             \"overhead_ratio\": {overhead_ratio:.4}, \
             \"slow_log\": {}, \"series_samples\": {}, \
             \"stage_sum_us\": {stage_sum_us}, \"stage_total_us\": {stage_total_us}}}\n}}\n",
            dir.display().to_string(),
            scan_wall.as_secs_f64() * 1e3,
            sample_lookups.len(),
            pctls(&indexed_lat),
            pctls(&scan_lat),
            workload.len(),
            phase_obj("cold", cold_wall, cold_hit_rate, workload.len()),
            phase_obj("warm", warm_wall, warm_hit_rate, workload.len()),
            report.connections,
            report.overall.requests,
            report.overall.ok,
            report.overall.overloaded,
            report.overall.backpressure,
            report.overall.errors,
            report.overall.queries_per_sec(),
            pctls(&report.overall.latency),
            pctls(&server_latency),
            slow_log.len(),
            series.len(),
        );
        std::fs::write(&args.bench_out, &json).expect("write bench report");
        println!(
            "bench: {blocks_per_sec:.0} blocks/s scanned; lookups p99 {}us indexed \
             vs {}us full-scan ({} entries, built in {index_build_ms:.0}ms); \
             in-process {:.0} q/s cold \
             -> {:.0} q/s warm (hit rate {:.1}% -> {:.1}%); served {:.0} q/s, \
             client p99 {}us, server p99 {}us",
            indexed_lat.p99(),
            scan_lat.p99(),
            index_entries,
            qps(workload.len(), cold_wall),
            qps(workload.len(), warm_wall),
            100.0 * cold_hit_rate,
            100.0 * warm_hit_rate,
            report.overall.queries_per_sec(),
            report.overall.latency.p99(),
            server_latency.p99(),
        );
        println!(
            "obs: tracing on p99 {tracing_on_p99}us vs off {tracing_off_p99}us \
             (x{overhead_ratio:.2}); {} slow queries logged, {} series samples; \
             stage sum {stage_sum_us}us vs end-to-end {stage_total_us}us",
            slow_log.len(),
            series.len(),
        );
        println!("  -> {}\n", args.bench_out.display());
    }

    if wants("macro") {
        use fork_sim::macroscale::{macro_propagation, MacroConfig, MacroNet, TopologyGenConfig};
        eprintln!("Running the macro-scale engine (propagation at 100/500/1,000 nodes)...");
        let run_span = registry.span("figures.run.macro");
        let guard = run_span.enter();
        let shards = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);

        let mut rows: Vec<Vec<String>> = Vec::new();
        for (label, n) in [
            ("macro-100", 100usize),
            ("macro-500", 500),
            ("macro-1000", 1_000),
        ] {
            let preset = macro_propagation(args.seed, n);
            let mut config = preset.config;
            if args.quick {
                config.duration_secs = 300;
                config.fork_at_secs = Some(150);
            }
            config.n_shards = shards;
            let mut net = MacroNet::new(config).expect("macro propagation preset is valid");
            net.attach_registry(&registry);
            let report = if args.progress {
                // Macro heartbeats tick per simulated *minute*, not day.
                let mut beat = |p: fork_sim::ProgressEvent| {
                    eprintln!(
                        "  [{label}] min {:>3}: sim t={}s, blocks maj/min {}/{}, \
                         {:.0} deliveries/s",
                        p.day, p.sim_unix, p.blocks[0], p.blocks[1], p.events_per_sec
                    );
                };
                net.run_with_progress(Some(&mut beat))
            } else {
                net.run()
            };
            telemetry.merge(&net.telemetry_snapshot());
            for (phase, blocks, stats) in [
                ("pre-fork", report.mined_prefork, report.pre_fork),
                (
                    "post-fork",
                    report.mined_majority + report.mined_minority,
                    report.post_fork,
                ),
            ] {
                rows.push(vec![
                    n.to_string(),
                    phase.to_string(),
                    blocks.to_string(),
                    stats.samples.to_string(),
                    stats.p50_ms.to_string(),
                    stats.p90_ms.to_string(),
                    stats.max_ms.to_string(),
                ]);
            }
        }

        // Serial-vs-sharded timing race at 1,000 nodes: identical config
        // and seed, so the reports must be byte-identical — only the
        // wall-clock may differ. Dense blocks + heavy simulated header
        // verification (a pure ALU spin, the sharded phase's dominant
        // cost) give the shards real work to parallelize; each arm runs
        // twice and keeps its best wall, the usual guard against a cold
        // first pass.
        eprintln!("Racing serial vs {shards}-shard execution at 1,000 nodes...");
        let bench_config = MacroConfig {
            seed: args.seed,
            topology: TopologyGenConfig {
                n_nodes: 1_000,
                ..TopologyGenConfig::default()
            },
            duration_secs: if args.quick { 30 } else { 60 },
            round_ms: 200,
            block_every_secs: 2.0,
            verify_cost: 131_072,
            ..MacroConfig::default()
        };
        let time_one = |n_shards: usize| {
            let mut cfg = bench_config.clone();
            cfg.n_shards = n_shards;
            let mut net = MacroNet::new(cfg).expect("bench config valid");
            let t0 = std::time::Instant::now();
            let report = net.run();
            (t0.elapsed(), report)
        };
        // Interleave the arms (S,P × 3, best wall each) so machine drift
        // during the race biases neither side.
        let mut serial_best: Option<(std::time::Duration, _)> = None;
        let mut parallel_best: Option<(std::time::Duration, _)> = None;
        for _ in 0..3 {
            let (wall, report) = time_one(1);
            let better = match &serial_best {
                Some((w, _)) => wall < *w,
                None => true,
            };
            if better {
                serial_best = Some((wall, report));
            }
            let (wall, report) = time_one(shards);
            let better = match &parallel_best {
                Some((w, _)) => wall < *w,
                None => true,
            };
            if better {
                parallel_best = Some((wall, report));
            }
        }
        let (serial_wall, serial_report) = serial_best.expect("three passes ran");
        let (parallel_wall, parallel_report) = parallel_best.expect("three passes ran");
        let byte_identical = format!("{serial_report:?}") == format!("{parallel_report:?}");
        assert!(byte_identical, "sharded macro run diverged from serial");
        let rounds = serial_report.rounds_executed;
        let serial_rps = rounds as f64 / serial_wall.as_secs_f64().max(1e-9);
        let parallel_rps = rounds as f64 / parallel_wall.as_secs_f64().max(1e-9);
        let speedup = parallel_rps / serial_rps;
        drop(guard);

        // macro.md carries only simulation-derived numbers (no wall-clock),
        // so a double run is byte-identical — CI `cmp`s exactly that.
        let md = format!(
            "# Macro-scale propagation\n\nThe macro propagation preset (generated \
             power-law topology, three geo-latency clusters, client-diversity \
             stances; protocol fork at mid-run) at increasing node counts. \
             Delays are mining-round to remote-import, quantized to engine \
             rounds; post-fork rows cover both sides' blocks.\n\n{}\n",
            fork_analytics::markdown_table(
                &["nodes", "phase", "blocks", "samples", "p50_ms", "p90_ms", "max_ms"],
                &rows,
            ),
        );
        println!("{md}");
        std::fs::write(args.out.join("macro.md"), &md).expect("write macro figure");
        println!("  -> {}\n", args.out.join("macro.md").display());

        // Splice the `macro` section into the bench report, preserving any
        // sections a `bench` run already wrote (and replacing a previous
        // `macro` section — it is always the last key).
        let macro_json = format!(
            "\"macro\": {{\"nodes\": 1000, \"rounds\": {rounds}, \
             \"serial_rounds_per_sec\": {serial_rps:.2}, \
             \"parallel_rounds_per_sec\": {parallel_rps:.2}, \
             \"speedup\": {speedup:.3}, \"shards\": {shards}, \
             \"byte_identical\": {byte_identical}}}"
        );
        let report_json = match std::fs::read_to_string(&args.bench_out) {
            Ok(existing) => {
                let trimmed = existing.trim_end();
                let head = match trimmed.find("\"macro\":") {
                    Some(pos) => trimmed[..pos].trim_end().trim_end_matches(','),
                    None => trimmed
                        .strip_suffix('}')
                        .expect("bench report ends with a closing brace"),
                };
                format!("{},\n  {macro_json}\n}}\n", head.trim_end())
            }
            Err(_) => format!("{{\n  \"schema\": \"fork-bench/v1\",\n  {macro_json}\n}}\n"),
        };
        std::fs::write(&args.bench_out, &report_json).expect("write bench report");
        println!(
            "macro: {rounds} rounds at 1,000 nodes; serial {serial_rps:.0} rounds/s vs \
             {shards}-shard {parallel_rps:.0} rounds/s (x{speedup:.2}), reports byte-identical"
        );
        println!("  -> {}\n", args.bench_out.display());
    }

    if let Some((a_path, b_path)) = &args.diff {
        let parse = |p: &Path| {
            let text =
                std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()));
            Snapshot::from_json(&text).unwrap_or_else(|e| panic!("parse {}: {e}", p.display()))
        };
        let a = parse(a_path);
        let b = parse(b_path);
        let d = fork_telemetry::diff_snapshots(&a, &b);
        println!(
            "Telemetry diff: {} -> {}\n{}",
            a_path.display(),
            b_path.display(),
            fork_telemetry::render_diff(&d)
        );
    }

    if let Some(path) = &args.telemetry_out {
        // Fold in this binary's own spans plus the process-global crate
        // metrics (EVM dispatch/gas, net frames/gossip).
        telemetry.merge(&registry.snapshot());
        fork_evm::telemetry::snapshot_into(&mut telemetry);
        fork_net::telemetry::snapshot_into(&mut telemetry);
        println!("Telemetry\n{}", telemetry.render_table());
        std::fs::write(path, telemetry.to_json(TimingMode::Wall)).expect("write telemetry");
        println!("  -> {}\n", path.display());
    }
}
