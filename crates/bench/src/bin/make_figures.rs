//! Regenerates every figure and every in-text observation of the paper.
//!
//! ```sh
//! cargo run --release -p fork-bench --bin make-figures -- all
//! cargo run --release -p fork-bench --bin make-figures -- fig1 --days 31
//! cargo run --release -p fork-bench --bin make-figures -- fig2 fig3 --days 280
//! cargo run --release -p fork-bench --bin make-figures -- resolved obs
//! ```
//!
//! Writes `figN.csv` / `figN.json` plus `observations.md` into `--out`
//! (default `figures/`), and prints ASCII renderings.

use std::collections::HashSet;
use std::path::PathBuf;

use fork_core::{observations, ForkStudy, StudyResult};
use fork_sim::resolved::{run as run_resolved, ResolvedForkConfig};

struct Args {
    targets: HashSet<String>,
    days_short: u64,
    days_long: u64,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut targets = HashSet::new();
    let mut days_short = 31u64;
    let mut days_long = 280u64;
    let mut seed = 2016u64;
    let mut out = PathBuf::from("figures");
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--days" => {
                let v: u64 = argv[i + 1].parse().expect("--days takes a number");
                days_short = v.min(31);
                days_long = v;
                i += 1;
            }
            "--seed" => {
                seed = argv[i + 1].parse().expect("--seed takes a number");
                i += 1;
            }
            "--out" => {
                out = PathBuf::from(&argv[i + 1]);
                i += 1;
            }
            t => {
                targets.insert(t.to_string());
            }
        }
        i += 1;
    }
    if targets.is_empty() || targets.contains("all") {
        for t in ["fig1", "fig2", "fig3", "fig4", "fig5", "obs", "resolved"] {
            targets.insert(t.to_string());
        }
    }
    Args {
        targets,
        days_short,
        days_long,
        seed,
        out,
    }
}

fn write_figure(out: &PathBuf, fig: &fork_core::FigureData) {
    let series = fig.all_series();
    let csv = out.join(format!("{}.csv", fig.id));
    let json = out.join(format!("{}.json", fig.id));
    fork_analytics::write_csv(&csv, &series).expect("write csv");
    fork_analytics::write_json(&json, &series).expect("write json");
    println!("{}", fig.render_ascii(76, 14));
    println!("  -> {} and {}\n", csv.display(), json.display());
}

fn main() {
    let args = parse_args();
    std::fs::create_dir_all(&args.out).expect("create output dir");

    let wants = |t: &str| args.targets.contains(t);
    let wants_short = wants("fig1");
    let wants_long =
        wants("fig2") || wants("fig3") || wants("fig4") || wants("fig5") || wants("obs");

    let mut short_result: Option<StudyResult> = None;
    let mut long_result: Option<StudyResult> = None;

    if wants_short {
        eprintln!(
            "Running the fork-month window ({} days, seed {})...",
            args.days_short, args.seed
        );
        let start = std::time::Instant::now();
        short_result = Some(ForkStudy::days(args.seed, args.days_short).run());
        eprintln!("  done in {:.1}s", start.elapsed().as_secs_f64());
    }
    if wants_long {
        eprintln!(
            "Running the nine-month window ({} days, seed {})...",
            args.days_long, args.seed
        );
        let start = std::time::Instant::now();
        long_result = Some(ForkStudy::days(args.seed, args.days_long).run());
        eprintln!("  done in {:.1}s", start.elapsed().as_secs_f64());
    }

    if let Some(result) = &short_result {
        if wants("fig1") {
            write_figure(&args.out, &result.figure1());
        }
    }
    if let Some(result) = &long_result {
        if wants("fig2") {
            write_figure(&args.out, &result.figure2());
        }
        if wants("fig3") {
            write_figure(&args.out, &result.figure3());
        }
        if wants("fig4") {
            write_figure(&args.out, &result.figure4());
        }
        if wants("fig5") {
            write_figure(&args.out, &result.figure5());
        }
        if wants("obs") {
            let mut report = observations::long_term(result);
            if let Some(short) = &short_result {
                // The fork-month run measures the short-term observations
                // more sharply; replace the long run's copies of those rows.
                let short_report = observations::short_term(short);
                let n = short_report.observations.len();
                report.observations.splice(0..n, short_report.observations);
            }
            let md = report.to_markdown();
            println!("Observations (paper vs measured)\n{md}");
            std::fs::write(args.out.join("observations.md"), &md).expect("write observations");
            println!("  -> {}\n", args.out.join("observations.md").display());
        }
    }

    if wants("resolved") {
        println!("Resolved forks (in-text T3): minority-branch lengths\n");
        let eth = run_resolved(&ResolvedForkConfig::eth_dos_2016(args.seed));
        let etc = run_resolved(&ResolvedForkConfig::etc_replay_2017(args.seed));
        let rows = vec![
            vec![
                "ETH 2016-11-22".to_string(),
                "86 blocks".to_string(),
                format!("{} blocks over {:.1} h", eth.minority_branch_len, eth.duration_secs / 3_600.0),
            ],
            vec![
                "ETC 2017-01-13".to_string(),
                "3,583 blocks".to_string(),
                format!("{} blocks over {:.1} h", etc.minority_branch_len, etc.duration_secs / 3_600.0),
            ],
        ];
        let md = fork_analytics::markdown_table(&["fork", "paper", "measured"], &rows);
        println!("{md}");
        std::fs::write(args.out.join("resolved_forks.md"), &md).expect("write resolved");
        println!("  -> {}\n", args.out.join("resolved_forks.md").display());
    }
}
