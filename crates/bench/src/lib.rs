//! # fork-bench
//!
//! Shared helpers for the figure-regeneration benches and the
//! `make-figures` binary.
//!
//! Every figure of the paper has a criterion bench (`benches/figN_*.rs`)
//! that regenerates its data series at a bench-friendly scale, and the
//! `make-figures` binary that runs the paper-scale windows once and writes
//! CSV/JSON plus ASCII renderings. Set `FORK_BENCH_DAYS` to stretch the
//! bench windows toward paper scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fork_core::{ForkStudy, StudyResult};

/// Days simulated by figure benches unless `FORK_BENCH_DAYS` overrides.
pub const DEFAULT_BENCH_DAYS: u64 = 3;

/// Reads the bench window length.
pub fn bench_days() -> u64 {
    std::env::var("FORK_BENCH_DAYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_BENCH_DAYS)
}

/// Runs the calibrated scenario for `days` and returns the result.
pub fn run_days(seed: u64, days: u64) -> StudyResult {
    ForkStudy::days(seed, days).run()
}

/// Quick sanity assertion helpers shared by benches: a named series must be
/// non-empty.
pub fn assert_series_nonempty(fig: &fork_core::FigureData) {
    let any = fig
        .panels
        .iter()
        .flat_map(|p| &p.series)
        .any(|s| !s.is_empty());
    assert!(any, "{} produced no data", fig.id);
}
