//! Point-to-point links with latency and smoltcp-style fault injection.
//!
//! A [`Link`] does no I/O: given a frame and an RNG it produces a
//! [`DeliveryPlan`] — zero or more (delay, bytes) deliveries — which the
//! discrete-event engine schedules. Faults (drop / duplicate / corrupt /
//! reorder-via-jitter) are applied here so every layer above stays
//! deterministic and testable.

use rand::Rng;

use fork_telemetry::{BlockTag, TraceEventKind, TraceSink};

/// Latency model for one link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed propagation delay in milliseconds.
    pub base_ms: u64,
    /// Uniform extra jitter in milliseconds (0..=jitter_ms sampled per
    /// frame; jitter larger than the inter-frame gap yields reordering).
    pub jitter_ms: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // Rough public-internet numbers for 2016 Ethereum peers.
        LatencyModel {
            base_ms: 80,
            jitter_ms: 120,
        }
    }
}

/// Rejected [`FaultPlan`] probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlanError {
    /// Which probability was invalid.
    pub field: &'static str,
    /// The offending value.
    pub value: f64,
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid {} probability {} (must be a finite value >= 0)",
            self.field, self.value
        )
    }
}

impl std::error::Error for FaultPlanError {}

/// Fault-injection knobs, mirroring the smoltcp examples' `--drop-chance`
/// style options.
///
/// Probabilities are validated once, at construction: NaN and negative
/// values are rejected, values above 1.0 are clamped to 1.0. Consumers can
/// therefore use the accessors directly without re-clamping.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    drop_chance: f64,
    duplicate_chance: f64,
    corrupt_chance: f64,
}

impl FaultPlan {
    /// No faults.
    pub const NONE: FaultPlan = FaultPlan {
        drop_chance: 0.0,
        duplicate_chance: 0.0,
        corrupt_chance: 0.0,
    };

    /// Validates and builds a plan. Rejects NaN / infinite / negative
    /// probabilities; clamps values above 1.0 to 1.0.
    pub fn new(
        drop_chance: f64,
        duplicate_chance: f64,
        corrupt_chance: f64,
    ) -> Result<FaultPlan, FaultPlanError> {
        let check = |field: &'static str, value: f64| -> Result<f64, FaultPlanError> {
            if !value.is_finite() || value < 0.0 {
                return Err(FaultPlanError { field, value });
            }
            Ok(value.min(1.0))
        };
        Ok(FaultPlan {
            drop_chance: check("drop", drop_chance)?,
            duplicate_chance: check("duplicate", duplicate_chance)?,
            corrupt_chance: check("corrupt", corrupt_chance)?,
        })
    }

    /// The smoltcp documentation's suggested stress setting (15% drop, 15%
    /// corrupt).
    pub fn stress() -> FaultPlan {
        FaultPlan {
            drop_chance: 0.15,
            duplicate_chance: 0.05,
            corrupt_chance: 0.15,
        }
    }

    /// Probability a frame is silently dropped.
    pub fn drop_chance(&self) -> f64 {
        self.drop_chance
    }

    /// Probability a frame is delivered twice.
    pub fn duplicate_chance(&self) -> f64 {
        self.duplicate_chance
    }

    /// Probability one random byte of the frame is flipped.
    pub fn corrupt_chance(&self) -> f64 {
        self.corrupt_chance
    }

    /// True when every probability is zero (the link is clean).
    pub fn is_none(&self) -> bool {
        self.drop_chance == 0.0 && self.duplicate_chance == 0.0 && self.corrupt_chance == 0.0
    }
}

/// A unidirectional link.
#[derive(Debug, Clone, Default)]
pub struct Link {
    /// Latency model.
    pub latency: LatencyModel,
    /// Fault plan.
    pub faults: FaultPlan,
}

/// One scheduled delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Delay from send time, in milliseconds.
    pub delay_ms: u64,
    /// Frame bytes as they will arrive (possibly corrupted).
    pub bytes: Vec<u8>,
}

/// The deliveries produced for one sent frame (empty = dropped).
pub type DeliveryPlan = Vec<Delivery>;

impl Link {
    /// A link with the given latency and no faults.
    pub fn with_latency(base_ms: u64, jitter_ms: u64) -> Self {
        Link {
            latency: LatencyModel { base_ms, jitter_ms },
            faults: FaultPlan::NONE,
        }
    }

    /// Computes the deliveries for `frame`.
    ///
    /// The `> 0.0` guards are not redundant with `gen_bool`: a zero-chance
    /// fault must not consume an RNG draw, so clean links stay
    /// draw-for-draw identical to links that never had fault code at all.
    pub fn transmit<R: Rng>(&self, frame: &[u8], rng: &mut R) -> DeliveryPlan {
        if self.faults.drop_chance > 0.0 && rng.gen_bool(self.faults.drop_chance) {
            return Vec::new();
        }
        let copies =
            if self.faults.duplicate_chance > 0.0 && rng.gen_bool(self.faults.duplicate_chance) {
                2
            } else {
                1
            };
        let mut plan = Vec::with_capacity(copies);
        for _ in 0..copies {
            let mut bytes = frame.to_vec();
            if !bytes.is_empty()
                && self.faults.corrupt_chance > 0.0
                && rng.gen_bool(self.faults.corrupt_chance)
            {
                let idx = rng.gen_range(0..bytes.len());
                let mask = rng.gen_range(1..=255u8);
                bytes[idx] ^= mask;
            }
            let jitter = if self.latency.jitter_ms > 0 {
                rng.gen_range(0..=self.latency.jitter_ms)
            } else {
                0
            };
            plan.push(Delivery {
                delay_ms: self.latency.base_ms + jitter,
                bytes,
            });
        }
        plan
    }
}

/// Emits the send-side trace events for one [`Link::transmit`] outcome: a
/// [`TraceEventKind::GossipSent`] at `from` (peer = `to`) per scheduled
/// delivery, or a [`TraceEventKind::GossipDropped`] with detail `"link"`
/// when the plan came back empty (the drop fault fired). Frames that carry
/// no block (`block` = `None` — status, transactions, announcements) emit
/// nothing: the trace is a *block*-lifecycle record.
pub fn trace_transmit(
    sink: &TraceSink,
    plan: &DeliveryPlan,
    from: u32,
    to: u32,
    block: Option<(BlockTag, u64)>,
) {
    let Some((tag, number)) = block else { return };
    if plan.is_empty() {
        sink.record_full(
            from,
            tag,
            number,
            TraceEventKind::GossipDropped,
            Some(to),
            "link",
        );
        return;
    }
    for _ in plan {
        sink.record_full(from, tag, number, TraceEventKind::GossipSent, Some(to), "");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn clean_link_delivers_verbatim_with_base_latency() {
        let link = Link::with_latency(50, 0);
        let mut r = rng();
        let plan = link.transmit(b"hello", &mut r);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].bytes, b"hello");
        assert_eq!(plan[0].delay_ms, 50);
    }

    #[test]
    fn jitter_bounded() {
        let link = Link::with_latency(100, 30);
        let mut r = rng();
        for _ in 0..200 {
            let plan = link.transmit(b"x", &mut r);
            let d = plan[0].delay_ms;
            assert!((100..=130).contains(&d));
        }
    }

    #[test]
    fn drop_rate_statistics() {
        let mut link = Link::with_latency(10, 0);
        link.faults = FaultPlan::new(0.30, 0.0, 0.0).unwrap();
        let mut r = rng();
        let delivered = (0..5_000)
            .filter(|_| !link.transmit(b"f", &mut r).is_empty())
            .count();
        let rate = delivered as f64 / 5_000.0;
        assert!((rate - 0.70).abs() < 0.03, "delivery rate {rate}");
    }

    #[test]
    fn duplicates_produce_two_copies() {
        let mut link = Link::with_latency(10, 0);
        link.faults = FaultPlan::new(0.0, 1.0, 0.0).unwrap();
        let mut r = rng();
        let plan = link.transmit(b"dup", &mut r);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].bytes, b"dup");
        assert_eq!(plan[1].bytes, b"dup");
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        let mut link = Link::with_latency(10, 0);
        link.faults = FaultPlan::new(0.0, 0.0, 1.0).unwrap();
        let mut r = rng();
        let frame = vec![0u8; 64];
        for _ in 0..100 {
            let plan = link.transmit(&frame, &mut r);
            let diff: usize = plan[0]
                .bytes
                .iter()
                .zip(&frame)
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    fn empty_frame_never_corrupted() {
        let mut link = Link::with_latency(10, 0);
        link.faults = FaultPlan::new(0.0, 0.0, 1.0).unwrap();
        let mut r = rng();
        let plan = link.transmit(&[], &mut r);
        assert_eq!(plan[0].bytes, Vec::<u8>::new());
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut link = Link::with_latency(10, 50);
        link.faults = FaultPlan::stress();
        let run = || {
            let mut r = StdRng::seed_from_u64(7);
            (0..100)
                .map(|i| link.transmit(&[i as u8; 16], &mut r))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fault_plan_accepts_boundaries() {
        let p = FaultPlan::new(0.0, 0.5, 1.0).unwrap();
        assert_eq!(p.drop_chance(), 0.0);
        assert_eq!(p.duplicate_chance(), 0.5);
        assert_eq!(p.corrupt_chance(), 1.0);
        assert!(!p.is_none());
        assert!(FaultPlan::NONE.is_none());
        assert!(FaultPlan::default().is_none());
    }

    #[test]
    fn fault_plan_clamps_above_one() {
        let p = FaultPlan::new(1.5, 2.0, 100.0).unwrap();
        assert_eq!(p.drop_chance(), 1.0);
        assert_eq!(p.duplicate_chance(), 1.0);
        assert_eq!(p.corrupt_chance(), 1.0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn trace_transmit_maps_plans_to_hop_events() {
        let sink = TraceSink::new();
        let tag: BlockTag = [9; 32];
        let delivered = vec![Delivery {
            delay_ms: 10,
            bytes: vec![1],
        }];
        let duplicated = vec![delivered[0].clone(), delivered[0].clone()];
        let dropped: DeliveryPlan = Vec::new();

        trace_transmit(&sink, &delivered, 1, 2, Some((tag, 5)));
        trace_transmit(&sink, &duplicated, 1, 3, Some((tag, 5)));
        trace_transmit(&sink, &dropped, 1, 4, Some((tag, 5)));
        trace_transmit(&sink, &delivered, 1, 5, None); // non-block frame

        let events = sink.events();
        assert_eq!(events.len(), 4, "1 sent + 2 sent (dup) + 1 dropped");
        assert_eq!(events[0].kind, TraceEventKind::GossipSent);
        assert_eq!((events[0].node, events[0].peer), (1, Some(2)));
        assert_eq!(events[2].peer, Some(3));
        assert_eq!(events[3].kind, TraceEventKind::GossipDropped);
        assert_eq!(events[3].detail, "link");
        assert_eq!(events[3].peer, Some(4));
    }

    #[test]
    fn fault_plan_rejects_nan_negative_and_infinite() {
        for (d, u, c, field) in [
            (f64::NAN, 0.0, 0.0, "drop"),
            (0.0, -0.1, 0.0, "duplicate"),
            (0.0, 0.0, f64::INFINITY, "corrupt"),
            (f64::NEG_INFINITY, 0.0, 0.0, "drop"),
        ] {
            let err = FaultPlan::new(d, u, c).unwrap_err();
            assert_eq!(err.field, field, "{err}");
        }
    }

    #[test]
    fn clamped_plan_never_consumes_extra_draws() {
        // A plan clamped from 1.5 must behave exactly like 1.0 — every
        // frame dropped, no statistical residue from the overshoot.
        let mut link = Link::with_latency(10, 0);
        link.faults = FaultPlan::new(1.5, 0.0, 0.0).unwrap();
        let mut r = rng();
        for _ in 0..100 {
            assert!(link.transmit(b"x", &mut r).is_empty());
        }
    }
}
