//! # fork-net
//!
//! The simulated peer-to-peer layer: Kademlia routing tables (the discovery
//! overlay the paper notes Ethereum uses), devp2p-shaped messages with a
//! strict RLP codec, the Status handshake whose fork-block check *is* the
//! network partition, point-to-point links with latency and smoltcp-style
//! fault injection, gossip relay policy, and peer-graph construction.
//!
//! Following the session's networking guides, this layer is event-driven and
//! I/O-free: every function maps inputs to outputs deterministically given an
//! RNG, and the discrete-event engine in `fork-sim` drives delivery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod gossip;
pub mod kademlia;
pub mod link;
pub mod message;
pub mod node_id;
pub mod telemetry;
pub mod topology;

pub use frame::{open_frame, seal_frame};
pub use gossip::{plan_block_relay, BlockRelayPlan, GossipState, SeenFilter};
pub use kademlia::{iterative_lookup, RoutingTable, BUCKET_SIZE};
pub use link::{Delivery, DeliveryPlan, FaultPlan, LatencyModel, Link};
pub use message::{Message, Status, PROTOCOL_VERSION};
pub use node_id::NodeId;
pub use topology::{build_topology, Topology, TopologyConfig};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// Message decoding never panics on arbitrary bytes.
        #[test]
        fn decode_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = Message::decode(&bytes);
        }

        /// Seen filters never report a fresh item as seen.
        #[test]
        fn seen_filter_no_false_positives_on_fresh(
            items in proptest::collection::vec(any::<u64>(), 1..500),
        ) {
            let mut f = SeenFilter::new(64);
            let mut inserted = std::collections::HashSet::new();
            for item in items {
                let fresh = f.insert(item);
                // If the filter says "fresh", we must never have inserted it
                // recently... but forgetting is allowed; the inverse (claiming
                // seen for a never-inserted item) is the real bug class:
                if fresh {
                    inserted.insert(item);
                } else {
                    prop_assert!(inserted.contains(&item), "false positive");
                }
            }
        }

        /// Relay plans cover each peer exactly once.
        #[test]
        fn relay_plan_partitions_peers(n in 0usize..64, seed in any::<u64>()) {
            let peers: Vec<NodeId> = (0..n as u64).map(|i| NodeId::from_seed("p", i)).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            let plan = plan_block_relay(&peers, None, &mut rng);
            let mut all: Vec<NodeId> = plan.full_block.iter().chain(&plan.announce).copied().collect();
            all.sort();
            let mut expect = peers.clone();
            expect.sort();
            prop_assert_eq!(all, expect);
        }

        /// Link transmission preserves frame length unless corrupted (which
        /// flips, never truncates).
        #[test]
        fn link_never_truncates(
            frame in proptest::collection::vec(any::<u8>(), 0..256),
            seed in any::<u64>(),
        ) {
            let mut link = Link::with_latency(10, 20);
            link.faults = FaultPlan { drop_chance: 0.2, duplicate_chance: 0.2, corrupt_chance: 0.5 };
            let mut rng = StdRng::seed_from_u64(seed);
            for d in link.transmit(&frame, &mut rng) {
                prop_assert_eq!(d.bytes.len(), frame.len());
            }
        }
    }
}
