//! # fork-net
//!
//! The simulated peer-to-peer layer: Kademlia routing tables (the discovery
//! overlay the paper notes Ethereum uses), devp2p-shaped messages with a
//! strict RLP codec, the Status handshake whose fork-block check *is* the
//! network partition, point-to-point links with latency and smoltcp-style
//! fault injection, gossip relay policy, and peer-graph construction.
//!
//! Following the session's networking guides, this layer is event-driven and
//! I/O-free: every function maps inputs to outputs deterministically given an
//! RNG, and the discrete-event engine in `fork-sim` drives delivery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod gossip;
pub mod kademlia;
pub mod link;
pub mod message;
pub mod node_id;
pub mod telemetry;
pub mod topology;

pub use frame::{open_frame, seal_frame};
pub use gossip::{plan_block_relay, trace_block_seen, BlockRelayPlan, GossipState, SeenFilter};
pub use kademlia::{iterative_lookup, RoutingTable, BUCKET_SIZE};
pub use link::{
    trace_transmit, Delivery, DeliveryPlan, FaultPlan, FaultPlanError, LatencyModel, Link,
};
pub use message::{Message, Status, PROTOCOL_VERSION};
pub use node_id::NodeId;
pub use topology::{build_topology, Topology, TopologyConfig};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// Message decoding never panics on arbitrary bytes.
        #[test]
        fn decode_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = Message::decode(&bytes);
        }

        /// Seen filters never report a fresh item as seen.
        #[test]
        fn seen_filter_no_false_positives_on_fresh(
            items in proptest::collection::vec(any::<u64>(), 1..500),
        ) {
            let mut f = SeenFilter::new(64);
            let mut inserted = std::collections::HashSet::new();
            for item in items {
                let fresh = f.insert(item);
                // If the filter says "fresh", we must never have inserted it
                // recently... but forgetting is allowed; the inverse (claiming
                // seen for a never-inserted item) is the real bug class:
                if fresh {
                    inserted.insert(item);
                } else {
                    prop_assert!(inserted.contains(&item), "false positive");
                }
            }
        }

        /// Relay plans cover each peer exactly once.
        #[test]
        fn relay_plan_partitions_peers(n in 0usize..64, seed in any::<u64>()) {
            let peers: Vec<NodeId> = (0..n as u64).map(|i| NodeId::from_seed("p", i)).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            let plan = plan_block_relay(&peers, None, &mut rng);
            let mut all: Vec<NodeId> = plan.full_block.iter().chain(&plan.announce).copied().collect();
            all.sort();
            let mut expect = peers.clone();
            expect.sort();
            prop_assert_eq!(all, expect);
        }

        /// Link transmission preserves frame length unless corrupted (which
        /// flips, never truncates).
        #[test]
        fn link_never_truncates(
            frame in proptest::collection::vec(any::<u8>(), 0..256),
            seed in any::<u64>(),
        ) {
            let mut link = Link::with_latency(10, 20);
            link.faults = FaultPlan::new(0.2, 0.2, 0.5).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            for d in link.transmit(&frame, &mut rng) {
                prop_assert_eq!(d.bytes.len(), frame.len());
            }
        }

        /// Sealed frames round-trip for arbitrary payloads.
        #[test]
        fn sealed_frames_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
            let frame = seal_frame(&payload);
            prop_assert_eq!(open_frame(&frame), Some(payload.as_slice()));
        }

        /// Any single-byte flip anywhere in a sealed frame — checksum or
        /// payload — is rejected by `open_frame`. This is the guarantee that
        /// makes the link layer's corrupt fault lose frames instead of
        /// minting mutant consensus messages.
        #[test]
        fn sealed_frames_reject_any_single_byte_flip(
            payload in proptest::collection::vec(any::<u8>(), 0..256),
            idx in any::<usize>(),
            mask in 1u8..=255,
        ) {
            let mut frame = seal_frame(&payload);
            // Frames are never empty: the checksum prefix is 4 bytes.
            let i = idx % frame.len();
            frame[i] ^= mask;
            prop_assert_eq!(open_frame(&frame), None, "flip at byte {} undetected", i);
        }

        /// FaultPlan construction is total over finite non-negative inputs
        /// and never yields probabilities outside [0, 1].
        #[test]
        fn fault_plan_always_in_unit_range(
            d in 0.0f64..10.0,
            u in 0.0f64..10.0,
            c in 0.0f64..10.0,
        ) {
            let plan = FaultPlan::new(d, u, c).unwrap();
            for p in [plan.drop_chance(), plan.duplicate_chance(), plan.corrupt_chance()] {
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }
    }
}
