//! Peer-graph construction over the Kademlia overlay.
//!
//! Nodes bootstrap from a seed set, run iterative lookups to populate their
//! routing tables, then dial a mix of XOR-near and random peers — yielding
//! the low-diameter graphs real discv4 deployments produce. The result is a
//! symmetric adjacency map the simulator turns into links.

use std::collections::{HashMap, HashSet};

use rand::seq::SliceRandom;
use rand::Rng;

use crate::kademlia::{iterative_lookup, RoutingTable};
use crate::node_id::NodeId;

/// Configuration for topology construction.
#[derive(Debug, Clone, Copy)]
pub struct TopologyConfig {
    /// Target outbound connections per node (geth's default was 25 total;
    /// we default lower because simulated networks are smaller).
    pub target_degree: usize,
    /// How many bootstrap contacts each node starts with.
    pub bootstrap_contacts: usize,
    /// Lookup rounds per node while populating tables.
    pub lookup_rounds: usize,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            target_degree: 8,
            bootstrap_contacts: 3,
            lookup_rounds: 2,
        }
    }
}

/// A symmetric peer graph.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    /// Adjacency lists; guaranteed symmetric and self-loop free.
    pub adjacency: HashMap<NodeId, Vec<NodeId>>,
}

impl Topology {
    /// Peers of `node` (empty slice if unknown).
    pub fn peers(&self, node: &NodeId) -> &[NodeId] {
        self.adjacency.get(node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Total undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.values().map(Vec::len).sum::<usize>() / 2
    }

    /// Checks whether every node can reach every other (BFS from the first).
    pub fn is_connected(&self) -> bool {
        let Some(start) = self.adjacency.keys().next() else {
            return true;
        };
        let mut visited = HashSet::new();
        let mut queue = vec![*start];
        visited.insert(*start);
        while let Some(n) = queue.pop() {
            for p in self.peers(&n) {
                if visited.insert(*p) {
                    queue.push(*p);
                }
            }
        }
        visited.len() == self.adjacency.len()
    }

    /// Removes a node and its edges (node churn).
    pub fn remove_node(&mut self, node: &NodeId) {
        self.adjacency.remove(node);
        for peers in self.adjacency.values_mut() {
            peers.retain(|p| p != node);
        }
    }

    /// Adds a symmetric edge.
    pub fn connect(&mut self, a: NodeId, b: NodeId) {
        if a == b {
            return;
        }
        let ea = self.adjacency.entry(a).or_default();
        if !ea.contains(&b) {
            ea.push(b);
        }
        let eb = self.adjacency.entry(b).or_default();
        if !eb.contains(&a) {
            eb.push(a);
        }
    }

    /// Splits this topology by a predicate, dropping cross-partition edges —
    /// used to model the handshake-level partition after the fork.
    pub fn partition(&self, keep_side_a: impl Fn(&NodeId) -> bool) -> (Topology, Topology) {
        let mut a = Topology::default();
        let mut b = Topology::default();
        for (node, peers) in &self.adjacency {
            let side_a = keep_side_a(node);
            let target = if side_a { &mut a } else { &mut b };
            target.adjacency.entry(*node).or_default();
            for p in peers {
                if keep_side_a(p) == side_a {
                    target.connect(*node, *p);
                }
            }
        }
        (a, b)
    }
}

/// Builds a topology over `ids` using Kademlia lookups plus random dials.
pub fn build_topology<R: Rng>(ids: &[NodeId], config: TopologyConfig, rng: &mut R) -> Topology {
    let mut tables: HashMap<NodeId, RoutingTable> =
        ids.iter().map(|id| (*id, RoutingTable::new(*id))).collect();

    // Bootstrap: everyone learns a few random contacts.
    for id in ids {
        for _ in 0..config.bootstrap_contacts {
            let other = ids[rng.gen_range(0..ids.len())];
            tables.get_mut(id).expect("own table").insert(other);
        }
    }

    // Lookup rounds: each node looks up random targets and learns the paths.
    for _ in 0..config.lookup_rounds {
        for id in ids {
            let target = ids[rng.gen_range(0..ids.len())];
            let seeds: Vec<NodeId> = tables[id].nearest(&target, 3);
            if seeds.is_empty() {
                continue;
            }
            let learned = iterative_lookup(
                &target,
                &seeds,
                |q| {
                    tables
                        .get(q)
                        .map(|t| t.nearest(&target, 8))
                        .unwrap_or_default()
                },
                8,
            );
            let own = tables.get_mut(id).expect("own table");
            for n in learned {
                if n != *id {
                    own.insert(n);
                }
            }
        }
    }

    // Dial: half the degree to XOR-nearest, half to random table entries.
    let mut topo = Topology::default();
    for id in ids {
        topo.adjacency.entry(*id).or_default();
        let table = &tables[id];
        let mut targets: Vec<NodeId> = table.nearest(id, config.target_degree / 2);
        let mut pool: Vec<NodeId> = table.iter().copied().collect();
        pool.shuffle(rng);
        for p in pool {
            if targets.len() >= config.target_degree {
                break;
            }
            if !targets.contains(&p) {
                targets.push(p);
            }
        }
        for t in targets {
            topo.connect(*id, t);
        }
    }

    // Safety net: stitch any isolated nodes to a random peer so gossip has a
    // path (real nodes would keep dialing bootnodes).
    let isolated: Vec<NodeId> = topo
        .adjacency
        .iter()
        .filter(|(_, peers)| peers.is_empty())
        .map(|(n, _)| *n)
        .collect();
    for n in isolated {
        let other = ids[rng.gen_range(0..ids.len())];
        if other != n {
            topo.connect(n, other);
        }
    }
    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ids(n: u64) -> Vec<NodeId> {
        (0..n).map(|i| NodeId::from_seed("topo", i)).collect()
    }

    #[test]
    fn builds_connected_graph() {
        let ids = ids(100);
        let mut rng = StdRng::seed_from_u64(5);
        let topo = build_topology(&ids, TopologyConfig::default(), &mut rng);
        assert_eq!(topo.len(), 100);
        assert!(topo.is_connected(), "graph must be connected for gossip");
        // Mean degree near the target.
        let mean = 2.0 * topo.edge_count() as f64 / topo.len() as f64;
        assert!(mean >= 4.0, "mean degree {mean}");
    }

    #[test]
    fn adjacency_symmetric_and_loop_free() {
        let ids = ids(50);
        let mut rng = StdRng::seed_from_u64(6);
        let topo = build_topology(&ids, TopologyConfig::default(), &mut rng);
        for (node, peers) in &topo.adjacency {
            assert!(!peers.contains(node), "self loop at {node:?}");
            for p in peers {
                assert!(
                    topo.peers(p).contains(node),
                    "asymmetric edge {node:?} -> {p:?}"
                );
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let ids = ids(40);
        let a = build_topology(
            &ids,
            TopologyConfig::default(),
            &mut StdRng::seed_from_u64(7),
        );
        let b = build_topology(
            &ids,
            TopologyConfig::default(),
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(a.adjacency, b.adjacency);
    }

    #[test]
    fn partition_drops_cross_edges() {
        let ids = ids(60);
        let mut rng = StdRng::seed_from_u64(8);
        let topo = build_topology(&ids, TopologyConfig::default(), &mut rng);
        let side_a: HashSet<NodeId> = ids.iter().take(6).copied().collect();
        let (a, b) = topo.partition(|n| side_a.contains(n));
        assert_eq!(a.len(), 6);
        assert_eq!(b.len(), 54);
        // No node appears in both; no edge crosses.
        for (node, peers) in &a.adjacency {
            assert!(side_a.contains(node));
            for p in peers {
                assert!(side_a.contains(p));
            }
        }
        for (node, peers) in &b.adjacency {
            assert!(!side_a.contains(node));
            for p in peers {
                assert!(!side_a.contains(p));
            }
        }
    }

    #[test]
    fn remove_node_cleans_edges() {
        let mut topo = Topology::default();
        let a = NodeId::from_seed("r", 0);
        let b = NodeId::from_seed("r", 1);
        let c = NodeId::from_seed("r", 2);
        topo.connect(a, b);
        topo.connect(b, c);
        topo.remove_node(&b);
        assert!(topo.peers(&a).is_empty());
        assert!(topo.peers(&c).is_empty());
        assert_eq!(topo.len(), 2);
    }
}
