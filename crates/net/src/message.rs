//! Wire messages (devp2p/eth-protocol shaped) with an RLP codec.
//!
//! Every message serializes as `[type_byte, ...payload]`; blocks and
//! transactions embed their canonical chain-crate RLP, so a corrupted frame
//! fails to decode rather than silently mutating consensus data — the
//! property the fault-injection tests lean on.

use fork_chain::{Block, Header, Transaction};
use fork_primitives::{H256, U256};
use fork_rlp::{expect_fields, RlpError, RlpStream};

/// The eth sub-protocol version spoken during the study period (eth/63-ish;
/// the exact number only matters for handshake equality).
pub const PROTOCOL_VERSION: u32 = 63;

/// A peer-to-peer message.
///
/// Variants differ widely in size (a full `Block` vs a ping), but messages
/// are moved once into the event queue and consumed; boxing the block-bearing
/// variants would add an allocation on the gossip hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// The handshake: protocol compatibility data exchanged on connect.
    Status(Status),
    /// A freshly mined/relayed full block plus its branch total difficulty.
    NewBlock {
        /// The block.
        block: Block,
        /// Sender's total difficulty including this block.
        total_difficulty: U256,
    },
    /// Announcement of block hashes (cheap gossip to non-sqrt peers).
    NewBlockHashes(Vec<H256>),
    /// Transaction gossip.
    Transactions(Vec<Transaction>),
    /// Header request (sync).
    GetBlockHeaders {
        /// First block number wanted.
        start: u64,
        /// Maximum number of headers.
        count: u64,
    },
    /// Header response.
    BlockHeaders(Vec<Header>),
    /// Body request by hash.
    GetBlockBodies(Vec<H256>),
    /// Body response (full blocks for simplicity; the study never measures
    /// body/header bandwidth separately).
    BlockBodies(Vec<Block>),
    /// Liveness probe.
    Ping(u64),
    /// Liveness reply.
    Pong(u64),
}

/// Handshake payload. Two peers stay connected only if
/// [`Status::compatible_with`] holds both ways — after the DAO fork the
/// `fork_id` field splits the once-unified peer set into the two networks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Status {
    /// Protocol version (must match).
    pub protocol_version: u32,
    /// Network id (must match).
    pub network_id: u64,
    /// Sender's chain weight (used for sync decisions, not compatibility).
    pub total_difficulty: U256,
    /// Sender's head block hash.
    pub head_hash: H256,
    /// Genesis hash (must match — ETH and ETC share it!).
    pub genesis_hash: H256,
    /// Hash of the sender's canonical block at the DAO fork height, once it
    /// has one (`None` before the fork). Must agree when both sides have it.
    /// This mirrors the fork-id check real clients added *because of* this
    /// event.
    pub fork_block_hash: Option<H256>,
}

impl Status {
    /// Whether a connection between two peers advertising these statuses
    /// survives the handshake.
    pub fn compatible_with(&self, other: &Status) -> bool {
        if self.protocol_version != other.protocol_version
            || self.network_id != other.network_id
            || self.genesis_hash != other.genesis_hash
        {
            return false;
        }
        match (self.fork_block_hash, other.fork_block_hash) {
            (Some(a), Some(b)) => a == b,
            // One side has not reached the fork height yet: compatible (it
            // cannot tell the chains apart, just as real pre-fork nodes
            // could not).
            _ => true,
        }
    }
}

impl Message {
    /// Encodes the message.
    pub fn encode(&self) -> Vec<u8> {
        fork_rlp::encode_list(|s| match self {
            Message::Status(st) => {
                s.append_u64(0);
                s.append_u64(st.protocol_version as u64);
                s.append_u64(st.network_id);
                s.append_u256(st.total_difficulty);
                s.append_bytes(st.head_hash.as_bytes());
                s.append_bytes(st.genesis_hash.as_bytes());
                match st.fork_block_hash {
                    Some(h) => s.append_bytes(h.as_bytes()),
                    None => s.append_bytes(&[]),
                };
            }
            Message::NewBlock {
                block,
                total_difficulty,
            } => {
                s.append_u64(1);
                s.append_raw(&block.rlp());
                s.append_u256(*total_difficulty);
            }
            Message::NewBlockHashes(hashes) => {
                s.append_u64(2);
                append_hashes(s, hashes);
            }
            Message::Transactions(txs) => {
                s.append_u64(3);
                let l = s.begin_list();
                for tx in txs {
                    s.append_raw(&tx.rlp());
                }
                s.finish_list(l);
            }
            Message::GetBlockHeaders { start, count } => {
                s.append_u64(4);
                s.append_u64(*start);
                s.append_u64(*count);
            }
            Message::BlockHeaders(headers) => {
                s.append_u64(5);
                let l = s.begin_list();
                for h in headers {
                    s.append_raw(&h.rlp());
                }
                s.finish_list(l);
            }
            Message::GetBlockBodies(hashes) => {
                s.append_u64(6);
                append_hashes(s, hashes);
            }
            Message::BlockBodies(blocks) => {
                s.append_u64(7);
                let l = s.begin_list();
                for b in blocks {
                    s.append_raw(&b.rlp());
                }
                s.finish_list(l);
            }
            Message::Ping(n) => {
                s.append_u64(8);
                s.append_u64(*n);
            }
            Message::Pong(n) => {
                s.append_u64(9);
                s.append_u64(*n);
            }
        })
    }

    /// Decodes a message; strict about structure (corrupted frames error).
    pub fn decode(bytes: &[u8]) -> Result<Message, RlpError> {
        let item = fork_rlp::decode(bytes)?;
        let fields = item.list_items()?;
        if fields.is_empty() {
            return Err(RlpError::WrongFieldCount {
                expected: 1,
                got: 0,
            });
        }
        let tag = fields[0].as_u64()?;
        let body = &fields[1..];
        let need = |n: usize| -> Result<(), RlpError> {
            if body.len() != n {
                Err(RlpError::WrongFieldCount {
                    expected: n + 1,
                    got: fields.len(),
                })
            } else {
                Ok(())
            }
        };
        Ok(match tag {
            0 => {
                need(6)?;
                let fork_bytes = body[5].bytes()?;
                let fork_block_hash = match fork_bytes.len() {
                    0 => None,
                    32 => Some(H256(body[5].as_array()?)),
                    n => {
                        return Err(RlpError::WrongLength {
                            expected: 32,
                            got: n,
                        })
                    }
                };
                Message::Status(Status {
                    protocol_version: body[0].as_u64()? as u32,
                    network_id: body[1].as_u64()?,
                    total_difficulty: body[2].as_u256()?,
                    head_hash: H256(body[3].as_array()?),
                    genesis_hash: H256(body[4].as_array()?),
                    fork_block_hash,
                })
            }
            1 => {
                need(2)?;
                // Re-encode the nested block item to reuse Block::decode_bytes.
                let block = decode_block(&body[0])?;
                Message::NewBlock {
                    block,
                    total_difficulty: body[1].as_u256()?,
                }
            }
            2 => {
                need(1)?;
                Message::NewBlockHashes(decode_hashes(&body[0])?)
            }
            3 => {
                need(1)?;
                let mut txs = Vec::new();
                for t in body[0].list()? {
                    txs.push(Transaction::decode(&t?)?);
                }
                Message::Transactions(txs)
            }
            4 => {
                need(2)?;
                Message::GetBlockHeaders {
                    start: body[0].as_u64()?,
                    count: body[1].as_u64()?,
                }
            }
            5 => {
                need(1)?;
                let mut headers = Vec::new();
                for h in body[0].list()? {
                    headers.push(Header::decode(&h?)?);
                }
                Message::BlockHeaders(headers)
            }
            6 => {
                need(1)?;
                Message::GetBlockBodies(decode_hashes(&body[0])?)
            }
            7 => {
                need(1)?;
                let mut blocks = Vec::new();
                for b in body[0].list()? {
                    blocks.push(decode_block(&b?)?);
                }
                Message::BlockBodies(blocks)
            }
            8 => {
                need(1)?;
                Message::Ping(body[0].as_u64()?)
            }
            9 => {
                need(1)?;
                Message::Pong(body[0].as_u64()?)
            }
            _ => {
                return Err(RlpError::UnexpectedType {
                    expected: "known message tag",
                })
            }
        })
    }
}

fn append_hashes(s: &mut RlpStream, hashes: &[H256]) {
    let l = s.begin_list();
    for h in hashes {
        s.append_bytes(h.as_bytes());
    }
    s.finish_list(l);
}

fn decode_hashes(item: &fork_rlp::Item<'_>) -> Result<Vec<H256>, RlpError> {
    let mut out = Vec::new();
    for h in item.list()? {
        out.push(H256(h?.as_array()?));
    }
    Ok(out)
}

fn decode_block(item: &fork_rlp::Item<'_>) -> Result<Block, RlpError> {
    let f = expect_fields(item, 3)?;
    let header = Header::decode(&f[0])?;
    let mut transactions = Vec::new();
    for tx in f[1].list()? {
        transactions.push(Transaction::decode(&tx?)?);
    }
    let mut ommers = Vec::new();
    for o in f[2].list()? {
        ommers.push(Header::decode(&o?)?);
    }
    Ok(Block {
        header,
        transactions,
        ommers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fork_crypto::Keypair;
    use fork_primitives::Address;

    fn status(fork: Option<u8>) -> Status {
        Status {
            protocol_version: PROTOCOL_VERSION,
            network_id: 1,
            total_difficulty: U256::from_u128(1 << 40),
            head_hash: H256([1; 32]),
            genesis_hash: H256([2; 32]),
            fork_block_hash: fork.map(|b| H256([b; 32])),
        }
    }

    fn sample_block() -> Block {
        let kp = Keypair::from_seed("msg", 0);
        let txs = vec![Transaction::transfer(
            &kp,
            0,
            Address([7; 20]),
            U256::from_u64(5),
            U256::ONE,
            None,
        )];
        let mut header = Header {
            number: 3,
            timestamp: 99,
            ..Header::default()
        };
        header.transactions_root = Block::transactions_root(&txs);
        header.ommers_hash = Block::ommers_hash(&[]);
        Block {
            header,
            transactions: txs,
            ommers: vec![],
        }
    }

    #[test]
    fn all_messages_roundtrip() {
        let block = sample_block();
        let msgs = vec![
            Message::Status(status(Some(9))),
            Message::Status(status(None)),
            Message::NewBlock {
                block: block.clone(),
                total_difficulty: U256::from_u64(777),
            },
            Message::NewBlockHashes(vec![H256([1; 32]), H256([2; 32])]),
            Message::Transactions(block.transactions.clone()),
            Message::GetBlockHeaders {
                start: 5,
                count: 10,
            },
            Message::BlockHeaders(vec![block.header.clone()]),
            Message::GetBlockBodies(vec![block.hash()]),
            Message::BlockBodies(vec![block]),
            Message::Ping(42),
            Message::Pong(42),
        ];
        for m in msgs {
            let enc = m.encode();
            let back = Message::decode(&enc).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn corrupted_frames_rejected_not_mutated() {
        let m = Message::NewBlock {
            block: sample_block(),
            total_difficulty: U256::from_u64(7),
        };
        let enc = m.encode();
        let mut hard_failures = 0;
        for i in 0..enc.len() {
            let mut corrupted = enc.clone();
            corrupted[i] ^= 0xFF;
            match Message::decode(&corrupted) {
                Err(_) => hard_failures += 1,
                Ok(other) => {
                    // Flips inside free-form payload bytes (hashes,
                    // signatures) stay structurally decodable — content
                    // integrity is enforced by the chain layer's hashes and
                    // signatures. The codec must still never return the
                    // original message for corrupted bytes.
                    assert_ne!(other, m, "byte {i}");
                }
            }
        }
        // Structural bytes (headers, tags, lengths) must hard-fail.
        assert!(hard_failures > 0, "no corruption detected at all");
    }

    #[test]
    fn unknown_tag_rejected() {
        let enc = fork_rlp::encode_list(|s| {
            s.append_u64(99);
        });
        assert!(Message::decode(&enc).is_err());
    }

    #[test]
    fn handshake_compatibility_rules() {
        // Same everything: compatible.
        assert!(status(Some(1)).compatible_with(&status(Some(1))));
        // Different fork block hash: the partition.
        assert!(!status(Some(1)).compatible_with(&status(Some(2))));
        // One side pre-fork: still compatible.
        assert!(status(None).compatible_with(&status(Some(1))));
        assert!(status(Some(1)).compatible_with(&status(None)));
        // Different genesis: incompatible.
        let mut other_genesis = status(Some(1));
        other_genesis.genesis_hash = H256([9; 32]);
        assert!(!status(Some(1)).compatible_with(&other_genesis));
        // Different network id: incompatible.
        let mut other_net = status(Some(1));
        other_net.network_id = 2;
        assert!(!status(Some(1)).compatible_with(&other_net));
        // Different protocol version: incompatible.
        let mut other_proto = status(Some(1));
        other_proto.protocol_version = 62;
        assert!(!status(Some(1)).compatible_with(&other_proto));
    }

    #[test]
    fn status_difficulty_does_not_affect_compatibility() {
        let a = status(Some(1));
        let mut b = status(Some(1));
        b.total_difficulty = U256::from_u64(1);
        b.head_hash = H256([0xEE; 32]);
        assert!(a.compatible_with(&b));
    }
}
