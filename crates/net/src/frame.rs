//! Frame integrity: a keccak-based checksum wrapper.
//!
//! Real devp2p runs over RLPx, whose per-frame MAC makes corrupted frames
//! die at the transport instead of reaching the protocol decoder. Without
//! this, a corrupted-but-decodable `NewBlock` becomes a *mutant block* with
//! a fresh hash — and at simulation-scale proof-of-work, mutants can pass
//! the seal check and self-replicate through gossip (a branching process
//! that melts the event queue; found the hard way, kept as a regression
//! test). [`seal_frame`]/[`open_frame`] reproduce the MAC's effect.

use fork_crypto::keccak256;

/// Checksum length in bytes (truncated keccak — integrity, not crypto).
pub const CHECKSUM_LEN: usize = 4;

/// Wraps a payload with its checksum.
pub fn seal_frame(payload: &[u8]) -> Vec<u8> {
    crate::telemetry::record_seal();
    let digest = keccak256(payload);
    let mut out = Vec::with_capacity(payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&digest.0[..CHECKSUM_LEN]);
    out.extend_from_slice(payload);
    out
}

/// Verifies and strips the checksum; `None` for corrupted or truncated
/// frames.
pub fn open_frame(frame: &[u8]) -> Option<&[u8]> {
    if frame.len() < CHECKSUM_LEN {
        crate::telemetry::record_open(false);
        return None;
    }
    let (checksum, payload) = frame.split_at(CHECKSUM_LEN);
    let digest = keccak256(payload);
    if &digest.0[..CHECKSUM_LEN] == checksum {
        crate::telemetry::record_open(true);
        Some(payload)
    } else {
        crate::telemetry::record_open(false);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let payload = b"hello gossip";
        let frame = seal_frame(payload);
        assert_eq!(open_frame(&frame), Some(payload.as_slice()));
    }

    #[test]
    fn any_single_byte_flip_detected() {
        let payload = vec![0xABu8; 64];
        let frame = seal_frame(&payload);
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x01;
            assert_eq!(open_frame(&bad), None, "flip at byte {i} undetected");
        }
    }

    #[test]
    fn truncated_frames_rejected() {
        let frame = seal_frame(b"x");
        assert_eq!(open_frame(&frame[..frame.len() - 1]), None);
        assert_eq!(open_frame(&[]), None);
        assert_eq!(open_frame(&frame[..3]), None);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let frame = seal_frame(b"");
        assert_eq!(open_frame(&frame), Some(&b""[..]));
    }
}
