//! Node identities.

use fork_crypto::keccak256;
use fork_primitives::{H256, U256};

/// A node's identity on the discovery overlay: 32 bytes, compared with the
/// Kademlia XOR metric (Ethereum's discv4 does the same over keccak of the
/// node key; the paper notes Ethereum "does use Kademlia's peer-to-peer
/// protocol to find peers", §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub H256);

impl NodeId {
    /// Derives the `index`-th node id from a deterministic seed label.
    pub fn from_seed(label: &str, index: u64) -> Self {
        let mut data = Vec::with_capacity(label.len() + 8);
        data.extend_from_slice(label.as_bytes());
        data.extend_from_slice(&index.to_be_bytes());
        NodeId(keccak256(&data))
    }

    /// XOR distance to another id.
    pub fn distance(&self, other: &NodeId) -> U256 {
        self.0.xor_distance(&other.0)
    }

    /// Index of the highest differing bit (0..=255), i.e. the k-bucket this
    /// peer belongs to relative to `self`; `None` for identical ids.
    pub fn bucket_index(&self, other: &NodeId) -> Option<usize> {
        let d = self.distance(other);
        let bits = d.bits();
        if bits == 0 {
            None
        } else {
            Some((bits - 1) as usize)
        }
    }

    /// Short label for rendering.
    pub fn short(&self) -> String {
        self.0.short()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_ids_deterministic_and_distinct() {
        assert_eq!(NodeId::from_seed("n", 1), NodeId::from_seed("n", 1));
        assert_ne!(NodeId::from_seed("n", 1), NodeId::from_seed("n", 2));
        assert_ne!(NodeId::from_seed("a", 1), NodeId::from_seed("b", 1));
    }

    #[test]
    fn distance_metric_axioms() {
        let a = NodeId::from_seed("x", 0);
        let b = NodeId::from_seed("x", 1);
        let c = NodeId::from_seed("x", 2);
        assert!(a.distance(&a).is_zero());
        assert_eq!(a.distance(&b), b.distance(&a));
        // XOR triangle equality: d(a,c) = d(a,b) ^ d(b,c).
        assert_eq!(a.distance(&c), a.distance(&b) ^ b.distance(&c));
    }

    #[test]
    fn bucket_index_range() {
        let a = NodeId::from_seed("bucket", 0);
        assert_eq!(a.bucket_index(&a), None);
        for i in 1..50u64 {
            let b = NodeId::from_seed("bucket", i);
            let idx = a.bucket_index(&b).unwrap();
            assert!(idx < 256);
        }
    }
}
